"""Bellman-Ford SSSP — the fully vectorized round-based oracle.

A third independent shortest-path implementation (besides Dijkstra and
Delta-stepping) for cross-validation, and a useful object in its own
right: Delta-stepping with one giant bucket degenerates to exactly these
relaxation rounds, which is why huge ``delta`` values waste work
(section 4.4's delta sensitivity).
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph

__all__ = ["bellman_ford"]


def bellman_ford(
    g: CSRGraph, source: int, *, max_rounds: int | None = None
) -> tuple[np.ndarray, int]:
    """Distances from ``source`` plus the number of relaxation rounds.

    Each round relaxes *every* stored edge simultaneously
    (``np.minimum.at``); terminates when a round changes nothing.  For
    nonnegative weights this converges within ``n - 1`` rounds.
    """
    if not 0 <= source < g.n:
        raise ValueError(f"source {source} out of range")
    dist = np.full(g.n, np.inf, dtype=np.float64)
    dist[source] = 0.0
    if g.nnz == 0:
        return dist, 0
    deg = g.degrees
    src = np.repeat(np.arange(g.n, dtype=np.int64), deg)
    dst = g.indices.astype(np.int64)
    w = (
        g.weights
        if g.weights is not None
        else np.ones(g.nnz, dtype=np.float64)
    )
    limit = max_rounds if max_rounds is not None else g.n - 1
    rounds = 0
    for _ in range(max(limit, 0)):
        rounds += 1
        before = dist.copy()
        cand = dist[src] + w
        np.minimum.at(dist, dst, cand)
        if np.array_equal(dist, before):  # inf == inf holds elementwise
            rounds -= 1  # the no-op round does not count as progress
            break
    return dist, rounds
