"""Dijkstra's algorithm — the sequential oracle for Delta-stepping tests.

Binary-heap implementation with lazy deletion; ``O((n + m) log n)``.
Used only as a correctness reference and as the sequential-baseline cost
anchor; the parallel algorithm of the paper is Delta-stepping.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..graph.csr import CSRGraph

__all__ = ["dijkstra"]


def dijkstra(g: CSRGraph, source: int) -> np.ndarray:
    """Shortest-path distances from ``source``; ``inf`` when unreachable.

    Unweighted graphs are treated as having unit weights, so the result
    equals BFS hop counts.
    """
    if not 0 <= source < g.n:
        raise ValueError(f"source {source} out of range")
    dist = np.full(g.n, np.inf, dtype=np.float64)
    dist[source] = 0.0
    indptr, indices = g.indptr, g.indices
    weights = g.weights
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue  # stale entry
        lo, hi = indptr[u], indptr[u + 1]
        nbrs = indices[lo:hi]
        w = weights[lo:hi] if weights is not None else None
        for k in range(len(nbrs)):
            v = int(nbrs[k])
            nd = d + (float(w[k]) if w is not None else 1.0)
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return dist
