"""Delta-stepping parallel SSSP (Meyer & Sanders), GAP-flavoured.

The weighted extension of ParHDE (section 3.3) replaces each BFS with a
Delta-stepping traversal.  Edges split into *light* (``w < delta``) and
*heavy* (``w >= delta``).  Buckets of width ``delta`` are processed in
order; the current bucket's light edges are relaxed repeatedly until the
bucket empties (vertices can be reinserted), then heavy edges of every
vertex settled in the bucket are relaxed once.

Each inner iteration is the GAP two-phase pattern: a relax phase (one
parallel region) followed by a local-to-shared bucket merge (a second
region).  The cost model charges both barriers, the relaxation work, and
latency for the irregular ``dist`` updates.

The paper reports (section 4.4): unit weights cost about 18% more than
the plain BFS, while random weights are 3.66x+ slower and sensitive to
``delta`` — both behaviours emerge here from the relaxation counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.csr import CSRGraph
from ..parallel.costs import KernelCost, Ledger
from ..parallel.primitives import F64, I32
from .buckets import LazyBuckets

__all__ = ["SSSPStats", "delta_stepping", "suggest_delta", "RELAX_OPS"]

#: Scalar instructions per edge relaxation attempt: weight load, add,
#: compare, conditional min-update plus bucket bookkeeping.  Slightly
#: above the BFS top-down per-edge cost, which yields the paper's ~18%
#: unit-weight overhead over plain BFS.
RELAX_OPS = 10.0


@dataclass
class SSSPStats:
    """Per-traversal measurements for the Delta-stepping run."""

    source: int
    delta: float
    buckets_processed: int = 0
    inner_iterations: int = 0
    light_relaxations: int = 0
    heavy_relaxations: int = 0

    @property
    def relaxations(self) -> int:
        return self.light_relaxations + self.heavy_relaxations

    def work_ratio(self, m: int) -> float:
        """Relaxations per stored adjacency entry (1.0 = each edge once)."""
        return self.relaxations / (2 * m) if m else 0.0


def suggest_delta(g: CSRGraph) -> float:
    """The classic heuristic ``delta = max_weight / average_degree``.

    Degenerate graphs fall back to ``1.0``: a weighted graph with zero
    edges has no ``max()`` to take, and non-finite or non-positive
    weights would produce a bucket width that never terminates.
    """
    if g.weights is None or g.weights.size == 0:
        return 1.0
    max_w = float(g.weights.max())
    if not np.isfinite(max_w) or max_w <= 0.0:
        return 1.0
    avg_deg = max(g.average_degree, 1.0)
    return float(max_w / avg_deg)


def _gather_edges(
    g: CSRGraph, vertices: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Concatenated ``(neighbor, weight, src_position)`` of ``vertices``."""
    counts = (g.indptr[vertices + 1] - g.indptr[vertices]).astype(np.int64)
    total = int(counts.sum())
    if total == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, np.zeros(0, dtype=np.float64), empty
    seg_starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    starts = np.repeat(g.indptr[vertices], counts)
    pos = starts + (np.arange(total) - np.repeat(seg_starts, counts))
    nbrs = g.indices[pos].astype(np.int64)
    w = (
        g.weights[pos]
        if g.weights is not None
        else np.ones(total, dtype=np.float64)
    )
    src = np.repeat(vertices, counts)
    return nbrs, w, src


def _relax(
    dist: np.ndarray,
    src: np.ndarray,
    nbrs: np.ndarray,
    w: np.ndarray,
    sel: np.ndarray,
) -> int:
    """Relax selected edges in place; return the relaxation count."""
    if not np.any(sel):
        return 0
    cand = dist[src[sel]] + w[sel]
    np.minimum.at(dist, nbrs[sel], cand)
    return int(np.count_nonzero(sel))


def delta_stepping(
    g: CSRGraph,
    source: int,
    delta: float | None = None,
    *,
    ledger: Ledger | None = None,
    miss: float | None = None,
    max_buckets: int = 10_000_000,
) -> tuple[np.ndarray, SSSPStats]:
    """Shortest-path distances from ``source`` (``inf`` if unreachable).

    Unweighted graphs are traversed with unit weights; with
    ``delta = 1`` this degenerates to a level-synchronous BFS, which is
    why the unit-weight slowdown over real BFS is modest (extra float
    arithmetic and bucket bookkeeping only).
    """
    if not 0 <= source < g.n:
        raise ValueError(f"source {source} out of range")
    if delta is None:
        delta = suggest_delta(g)
    if delta <= 0:
        raise ValueError("delta must be positive")
    if miss is None:
        from ..graph.gaps import miss_rate

        miss = g._cache.setdefault("miss_rate", miss_rate(g))

    dist = np.full(g.n, np.inf, dtype=np.float64)
    dist[source] = 0.0
    buckets = LazyBuckets(dist, delta)
    stats = SSSPStats(source=source, delta=float(delta))

    k = buckets.next_nonempty(0)
    while k >= 0 and stats.buckets_processed < max_buckets:
        stats.buckets_processed += 1
        settled_this_bucket: list[np.ndarray] = []
        while True:
            members = buckets.pop(k)
            if len(members) == 0:
                break
            stats.inner_iterations += 1
            settled_this_bucket.append(members)
            nbrs, w, src = _gather_edges(g, members)
            light = w < delta
            relaxed = _relax(dist, src, nbrs, w, light)
            stats.light_relaxations += relaxed
            if ledger is not None:
                wbytes = F64 if g.weights is not None else 0
                ledger.add(
                    KernelCost(
                        work=RELAX_OPS * len(nbrs) + 10.0 * len(members),
                        bytes_streamed=len(nbrs) * (I32 + wbytes)
                        + len(members) * 8,
                        # One dist[v] probe per inspected edge; improved
                        # entries pay a second (write) touch.
                        random_lines=(len(nbrs) + relaxed) * miss,
                        regions=2,  # relax phase + bucket-merge phase
                    )
                )
        if settled_this_bucket:
            # A vertex popped several times (reinsertion) relaxes its
            # heavy edges once, with its final (settled) distance.
            settled = np.unique(np.concatenate(settled_this_bucket))
            nbrs, w, src = _gather_edges(g, settled)
            heavy = w >= delta
            relaxed = _relax(dist, src, nbrs, w, heavy)
            stats.heavy_relaxations += relaxed
            if ledger is not None and np.any(heavy):
                nheavy = int(np.count_nonzero(heavy))
                wbytes = F64 if g.weights is not None else 0
                ledger.add(
                    KernelCost(
                        work=RELAX_OPS * nheavy + 10.0 * len(settled),
                        bytes_streamed=nheavy * (I32 + wbytes),
                        random_lines=(nheavy + relaxed) * miss,
                        regions=2,
                    )
                )
        k = buckets.next_nonempty(k + 1)
    return dist, stats
