"""Bucket structure for Delta-stepping.

The GAP implementation the paper modifies (section 3.3) uses shared
buckets plus thread-local buckets merged at a barrier each iteration,
does not recycle buckets, and skips settled vertices when popping.  This
lazy array-backed structure reproduces that behaviour: membership is
derived from the live tentative-distance array when a bucket is popped,
so stale entries are skipped for free, and a vertex whose distance
*improves* after being processed automatically becomes poppable again —
the reinsertion semantics Delta-stepping's inner loop requires.
"""

from __future__ import annotations

import numpy as np

__all__ = ["LazyBuckets"]


class LazyBuckets:
    """Lazy bucketing over a tentative-distance array.

    A vertex is *active* while its tentative distance is finite and
    strictly smaller than the distance it was last processed at
    (``processed_at``, initially ``inf``).  Popping bucket ``k`` returns
    active vertices whose distance falls in ``[k*delta, (k+1)*delta)``
    and stamps them processed at their current distance.

    Parameters
    ----------
    dist:
        Shared ``float64[n]`` tentative distances (``inf`` = unreached).
        The structure reads it live; callers mutate it between pops.
    delta:
        Bucket width.
    """

    def __init__(self, dist: np.ndarray, delta: float):
        if delta <= 0:
            raise ValueError("delta must be positive")
        self.dist = dist
        self.delta = float(delta)
        self.processed_at = np.full(len(dist), np.inf, dtype=np.float64)

    def bucket_index(self, values: np.ndarray) -> np.ndarray:
        """Bucket id of each tentative distance (undefined for inf)."""
        return np.floor(values / self.delta).astype(np.int64)

    def active_mask(self) -> np.ndarray:
        return np.isfinite(self.dist) & (self.dist < self.processed_at)

    def pop(self, k: int) -> np.ndarray:
        """Active vertices in bucket ``k``; stamps them processed."""
        d = self.dist
        lo, hi = k * self.delta, (k + 1) * self.delta
        mask = (d >= lo) & (d < hi) & (d < self.processed_at)
        members = np.flatnonzero(mask).astype(np.int64)
        self.processed_at[members] = d[members]
        return members

    def next_nonempty(self, start: int) -> int:
        """Smallest bucket index ``>= start`` with active vertices, ``-1`` if none.

        Computed directly from the distance array so no bucket list needs
        maintenance (the "no recycling" design).
        """
        active = self.active_mask()
        if not np.any(active):
            return -1
        k = int(np.floor(self.dist[active].min() / self.delta))
        return max(k, start)
