"""Parallel single-source shortest paths: Delta-stepping and Dijkstra."""

from .bellman_ford import bellman_ford
from .buckets import LazyBuckets
from .delta_stepping import SSSPStats, delta_stepping, suggest_delta
from .dijkstra import dijkstra

__all__ = [
    "LazyBuckets",
    "SSSPStats",
    "delta_stepping",
    "suggest_delta",
    "dijkstra",
    "bellman_ford",
]
