"""The degradation ladder: always return *a* layout, on time.

The paper's pitch is interactivity; the serving stack's promise is that
a request always gets an answer within its deadline.  When the full
pipeline cannot deliver — a phase stalls past its budget, a kernel
fails, the subspace collapses — :func:`resilient_layout` walks an
explicit ladder of cheaper approximations the repo already contains,
instead of timing out empty-handed:

1. **full** — the requested algorithm with the requested parameters,
   run under a sub-deadline with per-phase budgets
   (:mod:`repro.resilience.deadline`) and retried on transient failures
   with a fresh seed / larger subspace
   (:mod:`repro.resilience.retry`).
2. **reduced** — ParHDE with half the pivots, random pivot selection
   (no sequential farthest-first sweeps) and CGS orthogonalization —
   the cheap end of the paper's own Table 6/7 trade-offs.
3. **coarse** — the multilevel pipeline
   (:func:`repro.multilevel.multilevel_layout`): ParHDE on a
   heavy-edge-matching coarsening, prolonged with a couple of
   refinement sweeps — quality comparable to a minibatch/SGD
   approximate embedding at a fraction of the cost.
4. **baseline** — a deterministic random layout.  Zero information,
   zero failure modes, microsecond cost: the rung that guarantees the
   ladder terminates with a ``LayoutResult`` no matter what burns.

Every result is tagged: ``result.params["quality_tier"]`` names the
rung that produced it and ``result.params["resilience"]`` records the
rungs taken, retries spent and time remaining, so callers (and the
``/stats`` telemetry) can see degradation happening rather than
guessing from latency.
"""

from __future__ import annotations

import inspect
import time
from dataclasses import replace
from typing import Any, Callable, Mapping

import numpy as np

from ..core.hde import parhde
from ..core.result import LayoutResult
from ..graph.csr import CSRGraph
from .deadline import (
    DEFAULT_PHASE_FRACTIONS,
    Deadline,
    DeadlineExceeded,
)
from .retry import RetryPolicy, with_retry

__all__ = [
    "QUALITY_TIERS",
    "baseline_layout",
    "is_lod_tier",
    "resilient_layout",
    "tier_rank",
]

#: Quality tiers, best first.  ``"full"`` is the only tier the serving
#: cache stores; everything below is a per-request answer.
QUALITY_TIERS = ("full", "reduced", "coarse", "baseline")


def is_lod_tier(tier: str) -> bool:
    """True for the progressive tiers (``"lod-1"``, ``"lod-2"``, ...).

    LOD tiers are *transient* approximations on the way to ``"full"``
    (:mod:`repro.lod`), distinct from the degradation tiers above which
    mark a pipeline that could not deliver.
    """
    return str(tier).startswith("lod-")


def tier_rank(tier: str) -> int:
    """Total order over quality tiers: lower is better, ``"full"`` is 0.

    Progressive tiers rank by their hierarchy depth (``"lod-2"`` is
    coarser — worse — than ``"lod-1"``); the degradation tiers rank
    below every realistic LOD depth.  Callers use this to enforce
    monotone quality (never replace a served layout with a coarser one).
    """
    tier = str(tier)
    if tier == "full":
        return 0
    if is_lod_tier(tier):
        try:
            return max(1, int(tier[4:]))
        except ValueError:
            return 999
    if tier in QUALITY_TIERS:
        return 1000 + QUALITY_TIERS.index(tier)
    return 9999


def _rank_deficient(exc: BaseException) -> bool:
    """The ``s`` too-few-independent-vectors failure (fixable: raise s)."""
    return isinstance(exc, ValueError) and "independent distance vectors" in str(exc)


def _supports(fn: Callable[..., Any], name: str) -> bool:
    try:
        return name in inspect.signature(fn).parameters
    except (TypeError, ValueError):  # builtins / C callables
        return False


def baseline_layout(
    g: CSRGraph, *, dims: int = 2, seed: int = 0
) -> LayoutResult:
    """Deterministic random layout — the ladder's unconditional floor.

    Also what the engine serves inline when a circuit breaker is open:
    no pivots, no traversals, no linear algebra, nothing left to fail.
    """
    rng = np.random.default_rng(seed)
    coords = rng.standard_normal((g.n, dims))
    return LayoutResult(
        coords=coords,
        algorithm="baseline-random",
        B=np.zeros((g.n, 0)),
        S=np.zeros((g.n, 0)),
        eigenvalues=np.zeros(dims),
        pivots=np.zeros(0, dtype=np.int64),
        params=dict(dims=dims, seed=seed, quality_tier="baseline"),
    )


def _tag(
    result: LayoutResult,
    tier: str,
    rungs: list[dict],
    retries: int,
    deadline: Deadline | None,
) -> LayoutResult:
    result.params["quality_tier"] = tier
    result.params["resilience"] = {
        "rungs": rungs,
        "retries": retries,
        "deadline_seconds": deadline.seconds if deadline is not None else None,
        "remaining_seconds": (
            deadline.remaining() if deadline is not None else None
        ),
    }
    return result


def resilient_layout(
    g: CSRGraph,
    s: int = 10,
    *,
    algorithm: str | Callable[..., LayoutResult] = "parhde",
    algorithms: Mapping[str, Callable[..., LayoutResult]] | None = None,
    dims: int = 2,
    seed: int = 0,
    deadline: Deadline | float | None = None,
    retry: RetryPolicy | None = None,
    checkpoint=None,
    telemetry=None,
    min_s: int = 3,
    rung_fraction: float = 0.55,
    **params: Any,
) -> LayoutResult:
    """Compute a layout, degrading down the ladder as needed.

    Parameters
    ----------
    algorithm:
        Registry key (with ``algorithms``) or a layout callable; rung 1
        of the ladder.  Callables that accept ``deadline`` /
        ``checkpoint`` keywords get them threaded through.
    deadline:
        Total wall-clock budget — a configured
        :class:`~repro.resilience.deadline.Deadline` or plain seconds.
        ``None`` means rungs only descend on *failure*, never on time.
    retry:
        Transient-failure policy for each rung (default:
        :class:`~repro.resilience.retry.RetryPolicy` extended with
        eigensolver/rank-deficiency restarts).  Retries restart with a
        fresh seed and, for rank deficiency, a larger subspace.
    checkpoint:
        Optional :class:`~repro.resilience.checkpoint.RunCheckpoint`
        threaded into rung 1 when the algorithm supports it.
    telemetry:
        Optional :class:`~repro.service.telemetry.Telemetry` (duck-typed
        ``inc``) for retry/degradation counters.
    rung_fraction:
        Share of the *remaining* deadline each non-final rung may
        spend, reserving the rest for its fallbacks.
    **params:
        Passed to the primary algorithm (``pivots``, ``ortho``, ...).

    Returns
    -------
    LayoutResult
        Tagged with ``params["quality_tier"]`` (one of
        :data:`QUALITY_TIERS`) and a ``params["resilience"]`` record of
        the rungs walked.
    """
    if isinstance(deadline, (int, float)):
        deadline = Deadline(float(deadline))
    registry = dict(algorithms) if algorithms is not None else {"parhde": parhde}
    if callable(algorithm):
        primary, primary_name = algorithm, getattr(algorithm, "__name__", "layout")
    else:
        if algorithm not in registry:
            raise ValueError(
                f"unknown algorithm {algorithm!r}; available:"
                f" {', '.join(sorted(registry))}"
            )
        primary, primary_name = registry[algorithm], algorithm

    base = retry if retry is not None else RetryPolicy()
    extra_should = base.should_retry
    policy = replace(
        base,
        retryable=tuple(base.retryable) + (np.linalg.LinAlgError, FloatingPointError),
        should_retry=lambda exc: _rank_deficient(exc)
        or (extra_should is not None and extra_should(exc)),
    )

    s = int(s)
    s_cap = max(dims, g.n - 1)
    retries = 0
    rungs: list[dict] = []

    def _count_retry(attempt: int, exc: BaseException, pause: float) -> None:
        nonlocal retries
        retries += 1
        if telemetry is not None:
            telemetry.inc("resilience.retries")

    def run_full(attempt: int, dl: Deadline | None) -> LayoutResult:
        kwargs = dict(params)
        kwargs.setdefault("dims", dims)
        kwargs["seed"] = seed if attempt == 0 else seed + 1000 * attempt
        s_eff = s if attempt == 0 else min(s_cap, s + 4 * attempt)
        if dl is not None and _supports(primary, "deadline"):
            kwargs["deadline"] = dl
        if checkpoint is not None and _supports(primary, "checkpoint"):
            kwargs["checkpoint"] = checkpoint
        return primary(g, s_eff, **kwargs)

    def run_reduced(attempt: int, dl: Deadline | None) -> LayoutResult:
        s_red = min(s_cap, max(min_s, dims + 1, s // 2))
        kwargs: dict[str, Any] = dict(
            dims=dims,
            seed=seed + 1 + attempt,
            pivots="random",
            gs_method="cgs",
        )
        if dl is not None:
            kwargs["deadline"] = dl
        return parhde(g, s_red, **kwargs)

    def run_coarse(attempt: int, dl: Deadline | None) -> LayoutResult:
        from ..multilevel.layout import multilevel_layout

        s_coarse = min(s_cap, max(min_s, dims + 1, s // 2))
        return multilevel_layout(
            g, s_coarse, dims=dims, seed=seed + attempt, refine_sweeps=2
        ).layout

    def run_baseline(attempt: int, dl: Deadline | None) -> LayoutResult:
        return baseline_layout(g, dims=dims, seed=seed)

    ladder: list[tuple[str, str, Callable[[int, Deadline | None], LayoutResult]]] = [
        ("full", primary_name, run_full),
        ("reduced", "parhde-reduced-cgs", run_reduced),
        ("coarse", "multilevel-coarse", run_coarse),
        ("baseline", "random-baseline", run_baseline),
    ]

    for i, (tier, name, runner) in enumerate(ladder):
        final = i == len(ladder) - 1
        record = {"rung": name, "tier": tier, "outcome": "skipped", "detail": ""}
        rungs.append(record)
        sub: Deadline | None = None
        if deadline is not None and not final:
            if deadline.expired():
                record["detail"] = "deadline already exceeded"
                continue
            # Full/reduced run the phase pipeline: give them per-phase
            # budgets so one stalled phase aborts the rung early.
            fractions = DEFAULT_PHASE_FRACTIONS if tier in ("full", "reduced") else None
            sub = deadline.sub(rung_fraction, phase_fractions=fractions)
        t0 = time.perf_counter()
        try:
            result = with_retry(
                lambda attempt: runner(attempt, sub),
                policy=policy,
                deadline=sub,
                seed=seed + 31 * i,
                on_retry=_count_retry,
            )
        except DeadlineExceeded as exc:
            record["outcome"] = "overrun"
            record["detail"] = str(exc)
            record["elapsed"] = time.perf_counter() - t0
            continue
        except Exception as exc:  # noqa: BLE001 — descend to the next rung
            if final:
                raise  # the baseline cannot fail; if it did, surface it
            record["outcome"] = "failed"
            record["detail"] = f"{type(exc).__name__}: {exc}"
            record["elapsed"] = time.perf_counter() - t0
            continue
        record["outcome"] = "ok"
        record["elapsed"] = time.perf_counter() - t0
        if telemetry is not None and tier != "full":
            telemetry.inc(f"resilience.degraded.{tier}")
        return _tag(result, tier, rungs, retries, deadline)

    raise AssertionError("unreachable: the baseline rung always returns")
