"""Retry with exponential backoff and deterministic jitter.

Transient failures — an eigensolve that refuses to converge for one
starting vector, a disk write hitting a momentarily-full volume, a
chaos-injected kernel fault — deserve another attempt; malformed
requests do not.  :class:`RetryPolicy` encodes that distinction plus the
backoff schedule, and :func:`with_retry` drives it.

Design points that matter for the serving stack:

* **Deadline-aware** — a retry never sleeps past the caller's
  :class:`~repro.resilience.deadline.Deadline`; when the budget cannot
  cover another attempt, the last error propagates immediately.
* **Deterministic jitter** — the jitter stream is seeded, so tests (and
  incident reproductions) see the same schedule every time.  Jitter
  still decorrelates *different* callers because each call site passes
  its own seed (the engine uses the request fingerprint).
* **Adaptive attempts** — the callable receives the attempt number, so
  callers can restart an eigensolve with a fresh seed or a larger
  subspace on each try, as the degradation ladder does.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, TypeVar

from .deadline import Deadline, DeadlineExceeded

__all__ = ["RetryPolicy", "TransientError", "with_retry"]

T = TypeVar("T")


class TransientError(RuntimeError):
    """An error worth retrying (the default retryable marker type)."""


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff schedule plus the is-this-retryable decision.

    Attributes
    ----------
    max_attempts:
        Total tries including the first (1 = no retries).
    base_delay / max_delay:
        Exponential backoff: attempt ``k`` (0-based) sleeps
        ``min(max_delay, base_delay * 2**k)`` before jitter.
    jitter:
        Fraction of the delay randomized away (0 = none, 0.5 = the
        delay is uniform in ``[0.5 d, d]``), decorrelating retry storms.
    retryable:
        Exception types worth retrying.  Everything else propagates
        immediately.
    should_retry:
        Optional predicate consulted *in addition to* ``retryable``
        (either matching makes the error retryable) for cases a type
        test cannot express, e.g. a ``ValueError`` whose message marks
        a rank-deficient subspace that a larger ``s`` would fix.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.5
    retryable: tuple[type[BaseException], ...] = (TransientError, OSError)
    should_retry: Callable[[BaseException], bool] | None = field(
        default=None, compare=False
    )

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def is_retryable(self, exc: BaseException) -> bool:
        if isinstance(exc, DeadlineExceeded):
            return False  # out of time is out of time
        if isinstance(exc, self.retryable):
            return True
        return self.should_retry is not None and self.should_retry(exc)

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retry number ``attempt`` (0-based), jittered."""
        raw = min(self.max_delay, self.base_delay * (2.0**attempt))
        if self.jitter <= 0 or raw <= 0:
            return raw
        return raw * (1.0 - self.jitter * rng.random())


def with_retry(
    fn: Callable[[int], T],
    *,
    policy: RetryPolicy | None = None,
    deadline: Deadline | None = None,
    seed: int = 0,
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Callable[[int, BaseException, float], None] | None = None,
) -> T:
    """Call ``fn(attempt)`` until it succeeds or the policy gives up.

    ``fn`` receives the 0-based attempt number so it can vary its own
    inputs per try (fresh seed, larger subspace).  ``on_retry`` is
    called as ``(attempt, error, delay)`` before each backoff sleep —
    the engine hooks telemetry there.  Raises the last error when
    attempts are exhausted, the error is not retryable, or the deadline
    cannot cover the backoff.
    """
    pol = policy if policy is not None else RetryPolicy()
    rng = random.Random(seed)
    last: BaseException | None = None
    for attempt in range(pol.max_attempts):
        if deadline is not None and deadline.expired():
            if last is not None:
                raise last
            deadline.check("retry loop")
        try:
            return fn(attempt)
        except BaseException as exc:  # noqa: BLE001 — classified below
            last = exc
            final = attempt == pol.max_attempts - 1
            if final or not pol.is_retryable(exc):
                raise
            pause = pol.delay(attempt, rng)
            if deadline is not None and deadline.remaining() <= pause:
                raise  # no time to back off and try again
            if on_retry is not None:
                on_retry(attempt, exc, pause)
            if pause > 0:
                sleep(pause)
    raise AssertionError("unreachable")  # pragma: no cover
