"""Crash-safe phase checkpoints for the layout pipeline.

A layout of a large graph spends most of its time in the BFS and DOrtho
phases; a process killed in minute nine of a ten-minute run should not
owe the world those nine minutes again.  :class:`CheckpointStore`
persists the expensive intermediates — the pivot-distance matrix ``B``
(with its pivots) after the BFS phase, the orthonormal basis ``S`` after
DOrtho — keyed by a digest of the graph *and* every parameter that
shapes those arrays.  Re-running the identical command resumes from the
last completed phase and, because the persisted arrays are bit-exact,
produces a layout bitwise-equal to an uninterrupted run.

Durability discipline (same as the disk cache, because the failure
modes are the same):

* **atomic publish** — payloads are written to a temp file in the
  target directory and ``os.replace``d into place, so a reader never
  sees a torn archive;
* **checksummed loads** — a sha256 sidecar is published before the
  payload; a load recomputes the digest and treats any mismatch (or a
  missing sidecar — an interrupted write) as corruption;
* **quarantine** — corrupt files are moved into ``quarantine/`` for
  post-mortem instead of being re-read (and re-failed) forever.

The store is deliberately duck-type compatible with what
:func:`repro.core.parhde` expects from its ``checkpoint`` argument:
``load(phase) -> dict | None`` and ``save(phase, **arrays)``.
"""

from __future__ import annotations

import hashlib
import io
import json
import logging
import os
import tempfile
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from .chaos import failpoint

__all__ = ["CheckpointStore", "RunCheckpoint", "run_key"]

logger = logging.getLogger("repro.resilience.checkpoint")


def run_key(g, params: Mapping[str, Any]) -> str:
    """Digest identifying one (graph, parameters) run (hex sha256).

    Folds in the graph's content digest and the canonical parameter
    encoding, so a checkpoint can only ever resume the run that wrote
    it — a different seed, pivot strategy or graph gets a fresh key.
    """
    # Imported lazily: the fingerprint helpers live in the service
    # package, whose __init__ pulls in the engine (and through it the
    # core pipeline); importing it at module load would cycle.
    from ..service.fingerprint import canonical_params, graph_digest

    h = hashlib.sha256()
    h.update(b"repro-checkpoint-v1\x1f")
    h.update(graph_digest(g).encode())
    h.update(b"\x1f")
    h.update(canonical_params(dict(params)).encode())
    return h.hexdigest()


def _sha256_bytes(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


class RunCheckpoint:
    """Checkpoints of one specific run, living under ``root/<key>/``."""

    def __init__(self, root: Path, key: str):
        self.key = key
        self.dir = Path(root) / key[:32]
        self.stats = {"saves": 0, "restores": 0, "corrupt": 0, "errors": 0}

    # -- paths -------------------------------------------------------------
    def _payload(self, phase: str) -> Path:
        return self.dir / f"{phase}.npz"

    def _sidecar(self, phase: str) -> Path:
        return self.dir / f"{phase}.npz.sha256"

    # -- API consumed by parhde(checkpoint=...) ----------------------------
    def save(self, phase: str, **arrays: np.ndarray) -> bool:
        """Atomically persist one phase's arrays; ``True`` on success.

        Persistence failures are absorbed (logged + counted): a
        checkpoint is an optimization, and a full disk must not kill the
        run it was meant to protect.
        """
        try:
            failpoint("checkpoint.save")
            self.dir.mkdir(parents=True, exist_ok=True)
            buf = io.BytesIO()
            np.savez(buf, **arrays)
            data = buf.getvalue()
            digest = _sha256_bytes(data)
            # Sidecar first: a payload without a sidecar is treated as
            # corrupt, so publishing the digest before the payload means
            # a crash at any point leaves a state a reader rejects or
            # ignores, never one it trusts wrongly.
            for target, content in (
                (self._sidecar(phase), digest.encode()),
                (self._payload(phase), data),
            ):
                fd, tmp = tempfile.mkstemp(dir=self.dir, prefix=".tmp-")
                try:
                    with os.fdopen(fd, "wb") as fh:
                        fh.write(content)
                    os.replace(tmp, target)
                except BaseException:
                    if os.path.exists(tmp):
                        os.unlink(tmp)
                    raise
        except Exception as exc:  # noqa: BLE001 — checkpointing is best-effort
            self.stats["errors"] += 1
            logger.warning("checkpoint save %s/%s failed: %s", self.key[:12], phase, exc)
            return False
        self.stats["saves"] += 1
        return True

    def load(self, phase: str) -> dict[str, np.ndarray] | None:
        """Checksum-verified load of one phase (``None`` if unusable)."""
        payload = self._payload(phase)
        if not payload.exists():
            return None
        try:
            data = payload.read_bytes()
            sidecar = self._sidecar(phase)
            expected = (
                sidecar.read_text().strip() if sidecar.exists() else None
            )
            if expected is None or _sha256_bytes(data) != expected:
                self._quarantine(phase, "checksum mismatch" if expected else "missing checksum")
                return None
            with np.load(io.BytesIO(data), allow_pickle=False) as npz:
                return {name: npz[name] for name in npz.files}
        except Exception as exc:  # noqa: BLE001 — unreadable == corrupt
            self.stats["errors"] += 1
            self._quarantine(phase, str(exc))
            return None

    # -- housekeeping ------------------------------------------------------
    def _quarantine(self, phase: str, reason: str) -> None:
        self.stats["corrupt"] += 1
        qdir = self.dir / "quarantine"
        try:
            qdir.mkdir(parents=True, exist_ok=True)
            for path in (self._payload(phase), self._sidecar(phase)):
                if path.exists():
                    os.replace(path, qdir / path.name)
            logger.warning(
                "checkpoint %s/%s corrupt (%s); moved to %s",
                self.key[:12], phase, reason, qdir,
            )
        except OSError:
            # Can't even move it: drop the payload so we stop re-reading it.
            try:
                self._payload(phase).unlink(missing_ok=True)
            except OSError:
                pass

    def phases(self) -> list[str]:
        """Completed (present, not necessarily verified) phase names."""
        if not self.dir.is_dir():
            return []
        return sorted(p.stem for p in self.dir.glob("*.npz"))

    def clear(self) -> None:
        """Delete this run's checkpoints (keep the quarantine)."""
        if not self.dir.is_dir():
            return
        for p in self.dir.glob("*.npz"):
            p.unlink(missing_ok=True)
        for p in self.dir.glob("*.npz.sha256"):
            p.unlink(missing_ok=True)

    def mark_restored(self, count: int = 1) -> None:
        self.stats["restores"] += count


class CheckpointStore:
    """Directory of per-run checkpoints (the ``--checkpoint DIR`` root)."""

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)

    def bind(self, g, params: Mapping[str, Any]) -> RunCheckpoint:
        """The checkpoint namespace for one (graph, params) run."""
        return RunCheckpoint(self.root, run_key(g, params))
