"""Deadlines and per-phase time budgets for the layout pipeline.

A :class:`Deadline` is an absolute point in (monotonic) time a piece of
work must finish by.  The pipeline cooperates with it: ``parhde`` checks
the deadline between phases, and the degradation ladder
(:mod:`repro.resilience.ladder`) catches the resulting
:class:`DeadlineExceeded` and descends to a cheaper rung with whatever
time is left.

Two granularities compose:

* the **total budget** — ``Deadline.after(seconds)``; any check after it
  expires raises;
* optional **per-phase budgets** — ``phase_budgets={"BFS": 0.5, ...}``;
  the ``with deadline.phase("BFS"):`` context times the phase body and
  raises :class:`PhaseOverrun` when it ran past its own budget even if
  the total budget still has room.  This is what lets the ladder abandon
  the full pipeline after one stalled phase instead of burning the whole
  request deadline inside it.

Budgets can be split by wall-clock fractions (:func:`split_budget`,
default fractions follow the paper's Figure 3 phase breakdown) or by the
machine model: :func:`fractions_from_breakdown` turns a previous run's
simulated per-phase seconds on a :class:`~repro.parallel.MachineSpec`
into fractions, so the budget reflects *modeled* relative phase cost on
the serving hardware rather than a hard-coded guess.

The clock is injectable for deterministic tests.
"""

from __future__ import annotations

import time
from contextlib import contextmanager, nullcontext
from typing import Callable, ContextManager, Iterator, Mapping

__all__ = [
    "DEFAULT_PHASE_FRACTIONS",
    "Deadline",
    "DeadlineExceeded",
    "PhaseOverrun",
    "fractions_from_breakdown",
    "phase_scope",
    "split_budget",
]

#: Default share of a pipeline budget per phase, following the paper's
#: Figure 3 breakdown (BFS dominates, the eigensolve is noise).
DEFAULT_PHASE_FRACTIONS: dict[str, float] = {
    "BFS": 0.55,
    "DOrtho": 0.25,
    "TripleProd": 0.15,
    "Other": 0.05,
}


class DeadlineExceeded(Exception):
    """The total time budget ran out before the work finished."""


class PhaseOverrun(DeadlineExceeded):
    """One pipeline phase ran past its own budget (total may remain)."""


def split_budget(
    total: float, fractions: Mapping[str, float] | None = None
) -> dict[str, float]:
    """Split ``total`` seconds into per-phase budgets by fraction.

    Fractions need not sum to 1; they are normalized.  Defaults to
    :data:`DEFAULT_PHASE_FRACTIONS`.
    """
    if total <= 0:
        raise ValueError(f"total budget must be > 0, got {total}")
    frac = dict(fractions if fractions is not None else DEFAULT_PHASE_FRACTIONS)
    norm = sum(frac.values())
    if norm <= 0:
        raise ValueError("phase fractions must sum to a positive value")
    return {name: total * f / norm for name, f in frac.items()}


def fractions_from_breakdown(
    phase_seconds: Mapping[str, float],
) -> dict[str, float]:
    """Phase fractions from modeled per-phase seconds.

    Feed it ``result.phase_seconds(machine, p)`` from a representative
    earlier run to budget phases by their *modeled* cost on the serving
    machine instead of the default paper-derived fractions.
    """
    total = sum(max(0.0, v) for v in phase_seconds.values())
    if total <= 0:
        return dict(DEFAULT_PHASE_FRACTIONS)
    return {k: max(0.0, v) / total for k, v in phase_seconds.items()}


class Deadline:
    """An absolute completion deadline with optional per-phase budgets.

    Parameters
    ----------
    seconds:
        Total budget from "now" (per the injected clock).
    phase_budgets:
        Optional ``phase name -> seconds`` limits enforced by the
        :meth:`phase` context manager.  Unknown phases are unbudgeted
        (only the total applies).
    clock:
        Monotonic time source; injectable for tests.
    """

    __slots__ = ("_clock", "_t0", "seconds", "phase_budgets")

    def __init__(
        self,
        seconds: float,
        *,
        phase_budgets: Mapping[str, float] | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if seconds <= 0:
            raise ValueError(f"deadline must be > 0 seconds, got {seconds}")
        self._clock = clock
        self._t0 = clock()
        self.seconds = float(seconds)
        self.phase_budgets = dict(phase_budgets or {})

    # -- constructors ------------------------------------------------------
    @classmethod
    def after(
        cls,
        seconds: float,
        *,
        phase_fractions: Mapping[str, float] | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> "Deadline":
        """Deadline ``seconds`` from now with fraction-derived phase budgets."""
        return cls(
            seconds,
            phase_budgets=split_budget(seconds, phase_fractions),
            clock=clock,
        )

    # -- queries -----------------------------------------------------------
    def elapsed(self) -> float:
        return self._clock() - self._t0

    def remaining(self) -> float:
        """Seconds left (may be negative once expired)."""
        return self.seconds - self.elapsed()

    def expired(self) -> bool:
        return self.remaining() <= 0

    def check(self, label: str = "") -> None:
        """Raise :class:`DeadlineExceeded` if the total budget is spent."""
        rem = self.remaining()
        if rem <= 0:
            what = f" after {label}" if label else ""
            raise DeadlineExceeded(
                f"deadline of {self.seconds:.3f}s exceeded{what}"
                f" (over by {-rem:.3f}s)"
            )

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time one phase; raise on phase-budget or total overrun.

        The check runs *after* the phase body (the pipeline phases are
        synchronous kernels that cannot be interrupted midway), so a
        stalled phase is detected as soon as it returns and the caller
        can stop investing in the current rung.
        """
        start = self._clock()
        yield
        took = self._clock() - start
        budget = self.phase_budgets.get(name)
        if budget is not None and took > budget:
            raise PhaseOverrun(
                f"phase {name} took {took:.3f}s, over its {budget:.3f}s"
                f" budget ({self.remaining():.3f}s of total remaining)"
            )
        self.check(f"phase {name}")

    def sub(
        self,
        fraction: float = 1.0,
        *,
        phase_fractions: Mapping[str, float] | None = None,
    ) -> "Deadline":
        """A child deadline covering ``fraction`` of the remaining time.

        The degradation ladder hands each rung a sub-deadline so one
        rung can never consume the time reserved for its fallbacks.
        Raises :class:`DeadlineExceeded` when nothing remains.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        rem = self.remaining()
        if rem <= 0:
            raise DeadlineExceeded(
                f"deadline of {self.seconds:.3f}s already exceeded"
            )
        seconds = rem * fraction
        budgets = (
            split_budget(seconds, phase_fractions)
            if phase_fractions is not None
            else None
        )
        return Deadline(seconds, phase_budgets=budgets, clock=self._clock)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Deadline(seconds={self.seconds:.3f},"
            f" remaining={self.remaining():.3f})"
        )


def phase_scope(
    deadline: Deadline | None, name: str
) -> ContextManager[None]:
    """``deadline.phase(name)`` or a no-op when no deadline applies.

    The pipeline wraps every phase in this, so deadline-free calls pay
    nothing and deadline-carrying calls get per-phase enforcement.
    """
    if deadline is None:
        return nullcontext()
    return deadline.phase(name)
