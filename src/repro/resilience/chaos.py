"""Process/I-O-level chaos harness: named failpoints + file corruption.

:mod:`repro.validate.inject` corrupts *algebraic* intermediates to prove
the invariant checkers fire; this module injects *operational* faults —
a kernel that raises, a phase that sleeps past its budget, a disk write
that fails, a cache file whose bits flipped — to prove the resilience
machinery (ladder, retries, breaker, quarantine, checkpoint resume)
actually recovers.

Instrumented code calls :func:`failpoint` with a site name
(``"parhde.bfs"``, ``"cache.disk_store"``, ...).  Unarmed sites cost one
integer comparison.  Tests and the chaos smoke harness arm sites with
:func:`inject`::

    with chaos.inject("parhde.bfs", sleep=0.3, times=1) as fp:
        engine.submit(request)          # BFS stalls once
    assert fp.hits == 1

Faults are deterministic: ``times`` bounds how many calls fire, ``skip``
delays the first firing, and the file corruptor flips a byte chosen by a
seeded RNG.  Arming is global (the instrumented sites are reached from
worker threads), so tests that arm failpoints must not run concurrently
with each other — the context manager restores the previous arming on
exit either way.

Registered site names live in :data:`SITES` so the smoke harness can
enumerate the injection matrix without grepping the source.
"""

from __future__ import annotations

import random
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Iterator

from .retry import TransientError

__all__ = [
    "SITES",
    "ChaosError",
    "Injection",
    "active",
    "corrupt_file",
    "failpoint",
    "inject",
    "reset",
]


class ChaosError(TransientError):
    """The error an armed ``error=True`` failpoint raises.

    Subclasses :class:`~repro.resilience.retry.TransientError`, so the
    default retry policy treats injected kernel faults as transient —
    which is exactly how a flaky real kernel should be treated.
    """


#: Known failpoint sites (name -> where it fires).  Keep in sync with the
#: ``failpoint(...)`` calls; the chaos smoke harness iterates this.
SITES: dict[str, str] = {
    "parhde.bfs": "start of the BFS/SSSP traversal phase",
    "parhde.dortho": "start of the D-orthogonalization phase",
    "parhde.tripleprod": "start of the TripleProd phase",
    "parhde.eigensolve": "before the small eigensolve",
    "cache.disk_store": "before a disk-cache archive write",
    "cache.disk_load": "before a disk-cache archive read",
    "checkpoint.save": "before a checkpoint phase write",
    "cluster.worker.request": "start of a cluster worker layout/update",
}


class Injection:
    """One armed fault; the object ``inject`` yields for assertions."""

    def __init__(
        self,
        name: str,
        *,
        sleep: float = 0.0,
        error: bool | BaseException | None = None,
        times: int | None = None,
        skip: int = 0,
        callback: Callable[[], None] | None = None,
    ):
        self.name = name
        self.sleep = float(sleep)
        self.error = error
        self.times = times
        self.skip = int(skip)
        self.callback = callback
        self._lock = threading.Lock()
        self._calls = 0
        self._hits = 0

    @property
    def calls(self) -> int:
        """Times the site was reached while armed (fired or not)."""
        with self._lock:
            return self._calls

    @property
    def hits(self) -> int:
        """Times the fault actually fired."""
        with self._lock:
            return self._hits

    def _should_fire(self) -> bool:
        with self._lock:
            self._calls += 1
            if self._calls <= self.skip:
                return False
            if self.times is not None and self._hits >= self.times:
                return False
            self._hits += 1
            return True

    def fire(self) -> None:
        if not self._should_fire():
            return
        if self.callback is not None:
            self.callback()
        if self.sleep > 0:
            time.sleep(self.sleep)
        if self.error:
            if isinstance(self.error, BaseException):
                raise self.error
            raise ChaosError(f"chaos: injected failure at {self.name!r}")


_lock = threading.Lock()
_armed: dict[str, Injection] = {}
_armed_count = 0  # fast-path guard; reads race benignly


def failpoint(name: str) -> None:
    """Fire the fault armed at ``name``, if any (no-op otherwise)."""
    if _armed_count == 0:
        return
    with _lock:
        fault = _armed.get(name)
    if fault is not None:
        fault.fire()


@contextmanager
def inject(
    name: str,
    *,
    sleep: float = 0.0,
    error: bool | BaseException | None = None,
    times: int | None = None,
    skip: int = 0,
    callback: Callable[[], None] | None = None,
) -> Iterator[Injection]:
    """Arm ``name`` for the duration of the block.

    ``sleep`` stalls the site; ``error=True`` raises :class:`ChaosError`
    (or pass an exception instance to raise something specific); both
    combine (stall, then fail).  ``times`` caps firings, ``skip`` lets
    the first ``skip`` calls through clean, ``callback`` runs on each
    firing (e.g. corrupt a file at a precise moment).  Nested arming of
    the same site restores the outer fault on exit.
    """
    global _armed_count
    fault = Injection(
        name, sleep=sleep, error=error, times=times, skip=skip, callback=callback
    )
    with _lock:
        previous = _armed.get(name)
        _armed[name] = fault
        _armed_count = len(_armed)
    try:
        yield fault
    finally:
        with _lock:
            if previous is None:
                _armed.pop(name, None)
            else:
                _armed[name] = previous
            _armed_count = len(_armed)


def active() -> list[str]:
    """Names of currently armed failpoints."""
    with _lock:
        return sorted(_armed)


def reset() -> None:
    """Disarm everything (test teardown safety net)."""
    global _armed_count
    with _lock:
        _armed.clear()
        _armed_count = 0


def corrupt_file(path: str | Path, *, seed: int = 0, nbytes: int = 1) -> int:
    """Flip ``nbytes`` deterministic bytes of ``path`` in place.

    Returns the number of bytes flipped.  This is the disk-rot simulator
    for the cache/checkpoint checksum tests: a real archive, damaged the
    way storage damages things — silently, in the middle of the payload.
    """
    p = Path(path)
    data = bytearray(p.read_bytes())
    if not data:
        raise ValueError(f"cannot corrupt empty file {p}")
    rng = random.Random(seed)
    flipped = 0
    for _ in range(max(1, nbytes)):
        # Stay away from the first bytes: corrupting the magic would turn
        # every reader error into "bad zip", masking checksum coverage.
        i = rng.randrange(len(data) // 2, len(data))
        data[i] ^= 0xFF
        flipped += 1
    p.write_bytes(bytes(data))
    return flipped
