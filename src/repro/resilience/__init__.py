"""repro.resilience — keep the serving stack answering when parts fail.

Four cooperating mechanisms:

* :mod:`~repro.resilience.deadline` — wall-clock budgets with per-phase
  sub-budgets the pipeline checks between phases;
* :mod:`~repro.resilience.retry` / :mod:`~repro.resilience.breaker` —
  transient-failure retries with backoff, and per-(graph, algorithm)
  circuit breakers that stop retry storms;
* :mod:`~repro.resilience.ladder` — the degradation ladder: full →
  reduced → coarse → baseline, always returning *a* layout in budget;
* :mod:`~repro.resilience.checkpoint` — crash-safe phase checkpoints
  (atomic writes, checksum-verified resume, quarantine);

plus :mod:`~repro.resilience.chaos`, the failpoint harness that proves
all of the above under injected faults.
"""

from . import chaos
from .breaker import BreakerOpen, BreakerRegistry, CircuitBreaker
from .checkpoint import CheckpointStore, RunCheckpoint, run_key
from .deadline import (
    DEFAULT_PHASE_FRACTIONS,
    Deadline,
    DeadlineExceeded,
    PhaseOverrun,
    fractions_from_breakdown,
    phase_scope,
    split_budget,
)
from .retry import RetryPolicy, TransientError, with_retry

__all__ = [
    "DEFAULT_PHASE_FRACTIONS",
    "BreakerOpen",
    "BreakerRegistry",
    "CheckpointStore",
    "CircuitBreaker",
    "Deadline",
    "DeadlineExceeded",
    "PhaseOverrun",
    "QUALITY_TIERS",
    "RetryPolicy",
    "RunCheckpoint",
    "TransientError",
    "baseline_layout",
    "chaos",
    "fractions_from_breakdown",
    "is_lod_tier",
    "phase_scope",
    "resilient_layout",
    "run_key",
    "split_budget",
    "tier_rank",
    "with_retry",
]

# The ladder imports the core pipeline, and the core pipeline imports
# this package (for its chaos failpoints): expose the ladder lazily so
# ``import repro.core.hde`` never re-enters a half-initialized module.
_LAZY = {
    "QUALITY_TIERS": "ladder",
    "baseline_layout": "ladder",
    "is_lod_tier": "ladder",
    "resilient_layout": "ladder",
    "tier_rank": "ladder",
}


def __getattr__(name: str):
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    value = getattr(import_module(f".{target}", __name__), name)
    globals()[name] = value
    return value
