"""Circuit breakers: stop burning workers on a request that cannot work.

A request shape that keeps failing — a graph whose layout crashes a
kernel, an algorithm hitting a numerical pathology — will fail again if
retried immediately; letting every arrival occupy a
:class:`~repro.parallel.pool.TaskPool` worker converts one bad key into
whole-service brownout.  The classic remedy is the circuit breaker:

* **closed** — normal operation; failures are counted.
* **open** — after ``failure_threshold`` *consecutive* failures the
  breaker trips: arrivals fast-fail (or are served degraded) without
  touching the pool, for ``reset_timeout`` seconds.
* **half-open** — after the timeout, exactly one probe request is let
  through.  Success closes the breaker; failure re-opens it for another
  timeout.

The engine keys breakers per ``(graph, algorithm)``
(:class:`BreakerRegistry`), so one poisoned request shape cannot trip
service for every other graph.  Clocks are injectable for deterministic
tests, and every state transition is reported through an optional
callback (the engine wires telemetry counters and gauges there; the
callback runs under the breaker lock and must not call back into it).
"""

from __future__ import annotations

import threading
import time
from typing import Callable

__all__ = ["BreakerOpen", "CircuitBreaker", "BreakerRegistry"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class BreakerOpen(RuntimeError):
    """Raised (or mapped to a degraded response) when the circuit is open."""


class CircuitBreaker:
    """One key's breaker; thread-safe.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures that trip the breaker open.
    reset_timeout:
        Seconds the breaker stays open before allowing a half-open probe.
    clock:
        Monotonic time source (injectable for tests).
    on_transition:
        ``(old_state, new_state)`` callback fired on every change.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_timeout: float = 30.0,
        *,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Callable[[str, str], None] | None = None,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout <= 0:
            raise ValueError("reset_timeout must be > 0")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False

    @property
    def state(self) -> str:
        """Current state, accounting for open → half-open expiry."""
        with self._lock:
            return self._observe()

    def _observe(self) -> str:
        # Lock held.  An expired open breaker becomes half-open.
        if self._state == OPEN and (
            self._clock() - self._opened_at >= self.reset_timeout
        ):
            self._set(HALF_OPEN)
        return self._state

    def _set(self, new: str) -> None:
        # Lock held.
        old, self._state = self._state, new
        if new == HALF_OPEN:
            self._probing = False
        if old != new and self._on_transition is not None:
            self._on_transition(old, new)

    def allow(self) -> bool:
        """May a request proceed right now?

        Half-open admits exactly one probe; concurrent arrivals during
        the probe are refused (they would all hammer the suspect path).
        """
        with self._lock:
            state = self._observe()
            if state == CLOSED:
                return True
            if state == HALF_OPEN and not self._probing:
                self._probing = True
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            if self._state != CLOSED:
                self._set(CLOSED)

    def record_failure(self) -> None:
        with self._lock:
            state = self._observe()
            if state == HALF_OPEN:
                # The probe failed: back to a full open window.
                self._opened_at = self._clock()
                self._set(OPEN)
            else:
                self._failures += 1
                if self._failures >= self.failure_threshold and state == CLOSED:
                    self._opened_at = self._clock()
                    self._set(OPEN)


class BreakerRegistry:
    """Per-key breakers created on first use, with a shared config.

    ``snapshot()`` feeds the engine's ``/stats`` payload: state counts
    plus the non-closed keys (listing every closed breaker would bloat
    the payload on a long-lived server).
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_timeout: float = 30.0,
        *,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Callable[[str, str, str], None] | None = None,
    ):
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._breakers: dict[str, CircuitBreaker] = {}

    def breaker(self, key: str) -> CircuitBreaker:
        with self._lock:
            br = self._breakers.get(key)
            if br is None:
                callback = None
                if self._on_transition is not None:
                    hook = self._on_transition
                    callback = lambda old, new, _k=key: hook(_k, old, new)  # noqa: E731
                br = self._breakers[key] = CircuitBreaker(
                    self.failure_threshold,
                    self.reset_timeout,
                    clock=self._clock,
                    on_transition=callback,
                )
            return br

    def allow(self, key: str) -> bool:
        return self.breaker(key).allow()

    def record(self, key: str, ok: bool) -> None:
        br = self.breaker(key)
        br.record_success() if ok else br.record_failure()

    def snapshot(self) -> dict:
        with self._lock:
            items = list(self._breakers.items())
        counts = {CLOSED: 0, OPEN: 0, HALF_OPEN: 0}
        tripped: dict[str, str] = {}
        for key, br in items:
            state = br.state
            counts[state] = counts.get(state, 0) + 1
            if state != CLOSED:
                tripped[key] = state
        return {
            "keys": len(items),
            "closed": counts[CLOSED],
            "open": counts[OPEN],
            "half_open": counts[HALF_OPEN],
            "tripped": tripped,
        }
