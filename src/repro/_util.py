"""Small internal helpers shared across subpackages."""

from __future__ import annotations

import numpy as np

__all__ = ["require_connected_distances"]


def require_connected_distances(dist: np.ndarray) -> None:
    """Raise if a traversal left vertices unreached.

    ParHDE expects a connected input graph (section 2.1); callers should
    run :func:`repro.graph.preprocess` first.
    """
    if np.issubdtype(dist.dtype, np.floating):
        ok = bool(np.all(np.isfinite(dist)))
    else:
        ok = bool(dist.min() >= 0)
    if not ok:
        raise ValueError(
            "graph must be connected: a traversal left vertices unreached "
            "(preprocess with repro.graph.preprocess to extract the LCC)"
        )
