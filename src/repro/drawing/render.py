"""Render a layout to an image: edges as straight lines (Figure 1 style)."""

from __future__ import annotations

import os

import numpy as np

from ..graph.csr import CSRGraph
from .png import write_png
from .raster import Canvas

__all__ = ["fit_to_canvas", "render_layout", "save_drawing"]


def fit_to_canvas(
    coords: np.ndarray, width: int, height: int, margin: int
) -> tuple[np.ndarray, np.ndarray]:
    """Scale layout coordinates into pixel space, preserving aspect ratio.

    Returns ``(px, py)`` float arrays; the layout is centered with
    ``margin`` pixels of padding on every side.
    """
    if coords.ndim != 2 or coords.shape[1] < 2:
        raise ValueError("coords must be (n, >=2)")
    if margin * 2 >= min(width, height):
        raise ValueError("margin leaves no drawable area")
    x, y = coords[:, 0], coords[:, 1]
    span_x = float(x.max() - x.min()) or 1.0
    span_y = float(y.max() - y.min()) or 1.0
    scale = min((width - 2 * margin) / span_x, (height - 2 * margin) / span_y)
    px = (x - x.min()) * scale
    py = (y - y.min()) * scale
    px += (width - px.max() - px.min()) / 2 if len(px) else 0
    py += (height - py.max() - py.min()) / 2 if len(py) else 0
    return px, py


def render_layout(
    g: CSRGraph,
    coords: np.ndarray,
    *,
    width: int = 800,
    height: int = 800,
    margin: int = 20,
    edge_color: tuple[int, int, int] = (40, 40, 40),
    edge_colors: np.ndarray | None = None,
    vertex_color: tuple[int, int, int] | None = None,
    vertex_radius: int = 1,
    background: tuple[int, int, int] = (255, 255, 255),
    max_edges: int | None = None,
    seed: int = 0,
) -> Canvas:
    """Draw the node-link diagram of ``g`` under ``coords``.

    ``edge_colors`` (``(m, 3)`` uint8, aligned with
    :meth:`CSRGraph.edge_list`) overrides ``edge_color`` — used for the
    partition visualizations.  ``max_edges`` randomly subsamples the
    edges drawn, which keeps renders of dense graphs legible and fast.
    """
    if coords.shape[0] != g.n:
        raise ValueError("coords rows must equal vertex count")
    px, py = fit_to_canvas(coords, width, height, margin)
    canvas = Canvas(width, height, background)
    u, v = g.edge_list()
    if max_edges is not None and len(u) > max_edges:
        sel = np.random.default_rng(seed).choice(
            len(u), size=max_edges, replace=False
        )
        u, v = u[sel], v[sel]
        if edge_colors is not None:
            edge_colors = edge_colors[sel]
    colors = edge_colors if edge_colors is not None else edge_color
    canvas.draw_lines(px[u], py[u], px[v], py[v], colors)
    if vertex_color is not None:
        canvas.draw_points(px, py, vertex_color, radius=vertex_radius)
    return canvas


def save_drawing(
    g: CSRGraph,
    coords: np.ndarray,
    path: str | os.PathLike,
    **render_kwargs,
) -> None:
    """Render and write a PNG in one call."""
    canvas = render_layout(g, coords, **render_kwargs)
    write_png(path, canvas.pixels)
