"""Drawing substrate: PNG encoding, rasterization, layout rendering."""

from .color import PALETTE, category_colors, partition_edge_colors
from .png import read_png, write_png
from .projection import project_orthographic, rotation_matrix, turntable_views
from .raster import Canvas
from .render import fit_to_canvas, render_layout, save_drawing
from .svg import write_interactive_html, write_svg

__all__ = [
    "PALETTE",
    "category_colors",
    "partition_edge_colors",
    "read_png",
    "write_png",
    "Canvas",
    "rotation_matrix",
    "project_orthographic",
    "turntable_views",
    "fit_to_canvas",
    "render_layout",
    "save_drawing",
    "write_svg",
    "write_interactive_html",
]
