"""Minimal pure-Python PNG writer/reader.

The paper renders layouts with "an open-source PNG format file writer"
(untimed, section 4.1).  This is ours: truecolor 8-bit, zlib-compressed,
filter type 0 scanlines — everything a graph drawing needs, nothing
more.  The reader exists for round-trip tests and only supports what the
writer emits.
"""

from __future__ import annotations

import os
import struct
import zlib

import numpy as np

__all__ = ["write_png", "read_png"]

_MAGIC = b"\x89PNG\r\n\x1a\n"


def _chunk(tag: bytes, payload: bytes) -> bytes:
    return (
        struct.pack(">I", len(payload))
        + tag
        + payload
        + struct.pack(">I", zlib.crc32(tag + payload) & 0xFFFFFFFF)
    )


def write_png(path: str | os.PathLike, image: np.ndarray) -> None:
    """Write an ``(h, w, 3)`` uint8 RGB image as a PNG file."""
    image = np.asarray(image)
    if image.ndim != 3 or image.shape[2] != 3 or image.dtype != np.uint8:
        raise ValueError("image must be (h, w, 3) uint8")
    h, w = image.shape[:2]
    if h < 1 or w < 1:
        raise ValueError("image must be at least 1x1")
    ihdr = struct.pack(">IIBBBBB", w, h, 8, 2, 0, 0, 0)  # 8-bit truecolor
    # Filter byte 0 (None) prepended to every scanline.
    raw = np.empty((h, 1 + w * 3), dtype=np.uint8)
    raw[:, 0] = 0
    raw[:, 1:] = image.reshape(h, w * 3)
    idat = zlib.compress(raw.tobytes(), level=6)
    with open(path, "wb") as fh:
        fh.write(_MAGIC)
        fh.write(_chunk(b"IHDR", ihdr))
        fh.write(_chunk(b"IDAT", idat))
        fh.write(_chunk(b"IEND", b""))


def read_png(path: str | os.PathLike) -> np.ndarray:
    """Read a PNG produced by :func:`write_png` back into an array.

    Supports only this module's output profile: 8-bit truecolor, no
    interlace, filter type 0 on every scanline.
    """
    with open(path, "rb") as fh:
        data = fh.read()
    if data[:8] != _MAGIC:
        raise ValueError("not a PNG file")
    pos = 8
    width = height = None
    idat = b""
    while pos < len(data):
        (length,) = struct.unpack(">I", data[pos : pos + 4])
        tag = data[pos + 4 : pos + 8]
        payload = data[pos + 8 : pos + 8 + length]
        crc = struct.unpack(">I", data[pos + 8 + length : pos + 12 + length])[0]
        if crc != (zlib.crc32(tag + payload) & 0xFFFFFFFF):
            raise ValueError(f"bad CRC in {tag!r} chunk")
        if tag == b"IHDR":
            width, height, depth, ctype, comp, filt, interlace = struct.unpack(
                ">IIBBBBB", payload
            )
            if (depth, ctype, comp, filt, interlace) != (8, 2, 0, 0, 0):
                raise ValueError("unsupported PNG profile")
        elif tag == b"IDAT":
            idat += payload
        elif tag == b"IEND":
            break
        pos += 12 + length
    if width is None or height is None:
        raise ValueError("missing IHDR")
    raw = np.frombuffer(zlib.decompress(idat), dtype=np.uint8)
    stride = 1 + width * 3
    if len(raw) != height * stride:
        raise ValueError("scanline data size mismatch")
    raw = raw.reshape(height, stride)
    if np.any(raw[:, 0] != 0):
        raise ValueError("only filter type 0 is supported")
    return raw[:, 1:].reshape(height, width, 3).copy()
