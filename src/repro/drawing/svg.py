"""SVG and interactive HTML export.

Section 4.5.2 motivates the zoom feature with "future browser-based
interactive graph visualization"; this module delivers that artifact: a
plain SVG writer for documents, and a self-contained HTML page with the
layout as inline SVG plus pan/zoom (wheel + drag) and vertex tooltips —
no external assets, viewable offline.
"""

from __future__ import annotations

import os

import numpy as np

from ..graph.csr import CSRGraph
from .render import fit_to_canvas

__all__ = ["write_svg", "write_interactive_html"]


def _edge_svg(
    g: CSRGraph,
    px: np.ndarray,
    py: np.ndarray,
    edge_color: str,
    stroke_width: float,
    max_edges: int | None,
    seed: int,
) -> str:
    u, v = g.edge_list()
    if max_edges is not None and len(u) > max_edges:
        sel = np.random.default_rng(seed).choice(
            len(u), size=max_edges, replace=False
        )
        u, v = u[sel], v[sel]
    parts = [
        f'<g stroke="{edge_color}" stroke-width="{stroke_width}"'
        ' stroke-linecap="round" fill="none">'
    ]
    for a, b in zip(u.tolist(), v.tolist()):
        parts.append(
            f'<line x1="{px[a]:.2f}" y1="{py[a]:.2f}"'
            f' x2="{px[b]:.2f}" y2="{py[b]:.2f}"/>'
        )
    parts.append("</g>")
    return "\n".join(parts)


def write_svg(
    g: CSRGraph,
    coords: np.ndarray,
    path: str | os.PathLike,
    *,
    width: int = 800,
    height: int = 800,
    margin: int = 20,
    edge_color: str = "#282828",
    stroke_width: float = 0.5,
    max_edges: int | None = None,
    seed: int = 0,
) -> None:
    """Write the node-link diagram as a standalone SVG file."""
    px, py = fit_to_canvas(coords, width, height, margin)
    body = _edge_svg(g, px, py, edge_color, stroke_width, max_edges, seed)
    svg = (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}"'
        f' height="{height}" viewBox="0 0 {width} {height}">\n'
        f'<rect width="100%" height="100%" fill="white"/>\n{body}\n</svg>\n'
    )
    with open(path, "w") as fh:
        fh.write(svg)


_HTML_TEMPLATE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{title}</title>
<style>
  body {{ margin: 0; font-family: system-ui, sans-serif; }}
  header {{ padding: 8px 14px; background: #f4f4f4; font-size: 14px; }}
  #view {{ cursor: grab; display: block; }}
  circle {{ fill: #0072b2; }}
  circle:hover {{ fill: #d55e00; }}
</style>
</head>
<body>
<header>{title} &mdash; n={n}, m={m}. Drag to pan, wheel to zoom,
hover a vertex for its id.</header>
<svg id="view" width="{width}" height="{height}"
     viewBox="0 0 {width} {height}">
<rect width="200%" height="200%" x="-50%" y="-50%" fill="white"/>
<g id="world">
{edges}
<g>
{vertices}
</g>
</g>
</svg>
<script>
(function () {{
  var svg = document.getElementById("view");
  var world = document.getElementById("world");
  var tx = 0, ty = 0, scale = 1, dragging = null;
  function apply() {{
    world.setAttribute("transform",
      "translate(" + tx + "," + ty + ") scale(" + scale + ")");
  }}
  svg.addEventListener("wheel", function (e) {{
    e.preventDefault();
    var factor = e.deltaY < 0 ? 1.15 : 1 / 1.15;
    var pt = svg.createSVGPoint();
    pt.x = e.clientX; pt.y = e.clientY;
    var loc = pt.matrixTransform(svg.getScreenCTM().inverse());
    tx = loc.x - factor * (loc.x - tx);
    ty = loc.y - factor * (loc.y - ty);
    scale *= factor;
    apply();
  }});
  svg.addEventListener("mousedown", function (e) {{
    dragging = {{ x: e.clientX - tx, y: e.clientY - ty }};
    svg.style.cursor = "grabbing";
  }});
  window.addEventListener("mousemove", function (e) {{
    if (!dragging) return;
    tx = e.clientX - dragging.x;
    ty = e.clientY - dragging.y;
    apply();
  }});
  window.addEventListener("mouseup", function () {{
    dragging = null;
    svg.style.cursor = "grab";
  }});
}})();
</script>
</body>
</html>
"""


def write_interactive_html(
    g: CSRGraph,
    coords: np.ndarray,
    path: str | os.PathLike,
    *,
    title: str = "ParHDE layout",
    width: int = 900,
    height: int = 700,
    margin: int = 25,
    vertex_radius: float = 1.6,
    max_edges: int | None = 20000,
    max_vertices: int | None = 5000,
    seed: int = 0,
) -> None:
    """Write a self-contained interactive HTML viewer for a layout.

    Pan with the mouse, zoom with the wheel, hover vertices for ids —
    the "browser-based interactive graph visualization" the paper's
    zoom feature targets.  Edge and vertex counts are capped (randomly
    subsampled) to keep the page responsive.
    """
    px, py = fit_to_canvas(coords, width, height, margin)
    edges = _edge_svg(g, px, py, "#30303080", 0.4, max_edges, seed)
    ids = np.arange(g.n)
    if max_vertices is not None and g.n > max_vertices:
        ids = np.random.default_rng(seed).choice(
            g.n, size=max_vertices, replace=False
        )
    vparts = []
    for v in ids.tolist():
        vparts.append(
            f'<circle cx="{px[v]:.2f}" cy="{py[v]:.2f}"'
            f' r="{vertex_radius}"><title>vertex {v}</title></circle>'
        )
    html = _HTML_TEMPLATE.format(
        title=title,
        n=g.n,
        m=g.m,
        width=width,
        height=height,
        edges=edges,
        vertices="\n".join(vparts),
    )
    with open(path, "w") as fh:
        fh.write(html)
