"""Projecting 3D layouts to 2D for rendering.

The paper fixes ``p = 2`` for screen layouts but the pipeline supports
``p = 3`` (section 2.1); ``parhde(g, dims=3)`` returns three axes.  This
module turns such layouts into drawable 2D views: a rotation about
arbitrary axes followed by orthographic projection, plus a turntable
helper for generating view sequences.
"""

from __future__ import annotations

import numpy as np

__all__ = ["rotation_matrix", "project_orthographic", "turntable_views"]


def rotation_matrix(yaw: float = 0.0, pitch: float = 0.0, roll: float = 0.0) -> np.ndarray:
    """3D rotation from Euler angles (radians), applied roll->pitch->yaw."""
    cy, sy = np.cos(yaw), np.sin(yaw)
    cp, sp = np.cos(pitch), np.sin(pitch)
    cr, sr = np.cos(roll), np.sin(roll)
    rz = np.array([[cy, -sy, 0.0], [sy, cy, 0.0], [0.0, 0.0, 1.0]])
    ry = np.array([[cp, 0.0, sp], [0.0, 1.0, 0.0], [-sp, 0.0, cp]])
    rx = np.array([[1.0, 0.0, 0.0], [0.0, cr, -sr], [0.0, sr, cr]])
    return rz @ ry @ rx


def project_orthographic(
    coords3d: np.ndarray,
    *,
    yaw: float = 0.0,
    pitch: float = 0.0,
    roll: float = 0.0,
) -> np.ndarray:
    """Rotate a 3D layout and drop the depth axis.

    Returns ``(n, 2)`` screen coordinates (x, y of the rotated frame).
    """
    coords3d = np.asarray(coords3d, dtype=np.float64)
    if coords3d.ndim != 2 or coords3d.shape[1] != 3:
        raise ValueError("coords3d must be (n, 3)")
    R = rotation_matrix(yaw, pitch, roll)
    return (coords3d @ R.T)[:, :2]


def turntable_views(
    coords3d: np.ndarray, frames: int = 8, *, pitch: float = 0.35
) -> list[np.ndarray]:
    """Orthographic views rotating once around the vertical axis.

    Render each returned ``(n, 2)`` array (e.g. with
    :func:`repro.drawing.save_drawing`) for a turntable animation.
    """
    if frames < 1:
        raise ValueError("frames must be >= 1")
    return [
        project_orthographic(
            coords3d, yaw=2.0 * np.pi * k / frames, pitch=pitch
        )
        for k in range(frames)
    ]
