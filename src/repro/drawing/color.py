"""Color utilities for layout rendering.

Section 4.5.4: the authors color intra- and inter-partition edges
differently to visualize partitioning/clustering output.  This module
provides a small qualitative palette and the edge-coloring helper.
"""

from __future__ import annotations

import numpy as np

__all__ = ["PALETTE", "partition_edge_colors", "category_colors"]

# A colorblind-aware qualitative palette (Okabe-Ito).
PALETTE: tuple[tuple[int, int, int], ...] = (
    (0, 114, 178),    # blue
    (230, 159, 0),    # orange
    (0, 158, 115),    # green
    (204, 121, 167),  # purple-pink
    (213, 94, 0),     # vermillion
    (86, 180, 233),   # sky
    (240, 228, 66),   # yellow
    (0, 0, 0),        # black
)


def category_colors(labels: np.ndarray) -> np.ndarray:
    """Map integer category labels to palette RGB rows (cycled)."""
    labels = np.asarray(labels, dtype=np.int64)
    if len(labels) and labels.min() < 0:
        raise ValueError("labels must be nonnegative")
    pal = np.array(PALETTE, dtype=np.uint8)
    return pal[labels % len(pal)]


def partition_edge_colors(
    u: np.ndarray,
    v: np.ndarray,
    parts: np.ndarray,
    *,
    cut_color: tuple[int, int, int] = (213, 94, 0),
    by_partition: bool = True,
) -> np.ndarray:
    """Per-edge colors for a partition visualization.

    Cut edges (endpoints in different parts) get ``cut_color``; internal
    edges get their partition's palette color (or black when
    ``by_partition`` is False).
    """
    parts = np.asarray(parts, dtype=np.int64)
    pu, pv = parts[u], parts[v]
    colors = np.zeros((len(u), 3), dtype=np.uint8)
    internal = pu == pv
    if by_partition:
        colors[internal] = category_colors(pu[internal])
    colors[~internal] = np.array(cut_color, dtype=np.uint8)
    return colors
