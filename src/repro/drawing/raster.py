"""Software rasterizer: canvas, batched line drawing, point plotting.

Edges are drawn as straight fixed-thickness lines (paper section 4.1).
Line rasterization is fully vectorized across the whole edge list: each
segment is sampled at ``max(|dx|, |dy|) + 1`` integer steps, and all
samples of all edges are scattered into the canvas in one fancy-indexing
pass — no per-edge Python loop.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Canvas"]


class Canvas:
    """An RGB drawing surface backed by an ``(h, w, 3)`` uint8 array."""

    def __init__(
        self,
        width: int,
        height: int,
        background: tuple[int, int, int] = (255, 255, 255),
    ):
        if width < 1 or height < 1:
            raise ValueError("canvas must be at least 1x1")
        self.width = width
        self.height = height
        self.pixels = np.empty((height, width, 3), dtype=np.uint8)
        self.pixels[:] = np.array(background, dtype=np.uint8)

    # -- primitives ---------------------------------------------------------
    def draw_lines(
        self,
        x0: np.ndarray,
        y0: np.ndarray,
        x1: np.ndarray,
        y1: np.ndarray,
        colors: np.ndarray | tuple[int, int, int] = (0, 0, 0),
    ) -> None:
        """Draw many line segments at once.

        Coordinates are float pixel positions; ``colors`` is either one
        RGB triple or an ``(n_edges, 3)`` uint8 array (used for the
        partition-coloring visualizations of section 4.5.4).
        """
        x0 = np.asarray(x0, dtype=np.float64).ravel()
        y0 = np.asarray(y0, dtype=np.float64).ravel()
        x1 = np.asarray(x1, dtype=np.float64).ravel()
        y1 = np.asarray(y1, dtype=np.float64).ravel()
        if not (len(x0) == len(y0) == len(x1) == len(y1)):
            raise ValueError("segment endpoint arrays differ in length")
        n = len(x0)
        if n == 0:
            return
        steps = np.maximum(
            np.maximum(np.abs(x1 - x0), np.abs(y1 - y0)).astype(np.int64) + 1,
            2,
        )
        total = int(steps.sum())
        seg = np.repeat(np.arange(n), steps)
        local = np.arange(total) - np.repeat(np.cumsum(steps) - steps, steps)
        t = local / (steps[seg] - 1)
        xs = np.rint(x0[seg] + t * (x1[seg] - x0[seg])).astype(np.int64)
        ys = np.rint(y0[seg] + t * (y1[seg] - y0[seg])).astype(np.int64)
        inside = (xs >= 0) & (xs < self.width) & (ys >= 0) & (ys < self.height)
        xs, ys, seg = xs[inside], ys[inside], seg[inside]
        if isinstance(colors, tuple):
            self.pixels[ys, xs] = np.array(colors, dtype=np.uint8)
        else:
            colors = np.asarray(colors, dtype=np.uint8)
            if colors.shape != (n, 3):
                raise ValueError("colors must be (n_edges, 3)")
            self.pixels[ys, xs] = colors[seg]

    def draw_points(
        self,
        x: np.ndarray,
        y: np.ndarray,
        color: tuple[int, int, int] = (0, 0, 0),
        radius: int = 0,
    ) -> None:
        """Plot points (optionally as small filled squares)."""
        x = np.rint(np.asarray(x, dtype=np.float64)).astype(np.int64)
        y = np.rint(np.asarray(y, dtype=np.float64)).astype(np.int64)
        rgb = np.array(color, dtype=np.uint8)
        for dx in range(-radius, radius + 1):
            for dy in range(-radius, radius + 1):
                xs = x + dx
                ys = y + dy
                inside = (
                    (xs >= 0) & (xs < self.width) & (ys >= 0) & (ys < self.height)
                )
                self.pixels[ys[inside], xs[inside]] = rgb

    # -- queries ------------------------------------------------------------
    def ink_fraction(self) -> float:
        """Fraction of pixels that differ from pure white (test helper)."""
        return float(np.mean(np.any(self.pixels != 255, axis=2)))
