"""Comparison baselines: the prior parallel HDE and exact spectral layout."""

from .force_directed import FRResult, fruchterman_reingold
from .prior_hde import parhde_peak_bytes, prior_hde, prior_peak_bytes
from .spectral import spectral_layout

__all__ = [
    "prior_hde",
    "prior_peak_bytes",
    "parhde_peak_bytes",
    "spectral_layout",
    "FRResult",
    "fruchterman_reingold",
]
