"""The prior parallel HDE implementation (Table 3 comparator).

Re-creates the design of Kirmani & Madduri's SpectralGraphDrawing code
[27, 33] as the paper characterizes it:

* **no parallel BFS** — traversals are sequential, classical top-down
  (the dominant deficiency; ParHDE's direction-optimizing parallel BFS
  is where most of the 2.9x-18x of Table 3 comes from);
* **explicit Laplacian** — an Eigen sparse matrix for ``L`` is
  materialized before the triple product, adding a full construction
  pass and a value array to every SpMM sweep, and roughly doubling the
  peak memory footprint (which is why the prior code could not run the
  billion-edge inputs on the 128 GB node);
* Eigen-based dense phases — parallel, but with expression-template
  temporaries charged as extra streaming traffic.

The numerics are identical to ParHDE (same pivots given the same seed),
so output quality matches; only the recorded costs differ.
"""

from __future__ import annotations

import numpy as np

from ..bfs.direction_optimizing import bfs_sequential_cost, bfs_topdown_only
from ..bfs.runner import farthest_update_cost
from ..graph.csr import CSRGraph
from ..linalg import blas
from ..linalg.eigen import extreme_eigenpairs
from ..linalg.gram_schmidt import d_orthogonalize
from ..linalg.spmv import spmm
from ..parallel.costs import KernelCost, Ledger
from ..parallel.primitives import F64, I32, I64, map_cost
from .._util import require_connected_distances
from ..core.result import LayoutResult

__all__ = ["prior_hde", "prior_peak_bytes", "parhde_peak_bytes"]


def prior_peak_bytes(g: CSRGraph, s: int) -> float:
    """Peak memory estimate of the prior implementation.

    CSR graph (indptr + indices) + explicit Laplacian (indptr, indices,
    float64 values, including the diagonal) + the ``n x s`` distance and
    subspace matrices + the ``L S`` temporary.
    """
    graph = (g.n + 1) * I64 + g.nnz * I32
    laplacian = (g.n + 1) * I64 + (g.nnz + g.n) * (I32 + F64)
    dense = 3 * g.n * s * F64
    return float(graph + laplacian + dense)


def parhde_peak_bytes(g: CSRGraph, s: int) -> float:
    """Peak memory estimate of ParHDE (no materialized Laplacian)."""
    graph = (g.n + 1) * I64 + g.nnz * I32
    dense = 3 * g.n * s * F64
    return float(graph + g.n * F64 + dense)


def prior_hde(
    g: CSRGraph,
    s: int = 10,
    *,
    dims: int = 2,
    seed: int = 0,
    drop_tol: float = 1e-3,
    ledger: Ledger | None = None,
) -> LayoutResult:
    """Run the prior-implementation cost model; returns a ParHDE-quality
    layout whose ledger reflects the old design's execution profile."""
    if g.n < 3:
        raise ValueError("layout needs at least 3 vertices")
    if s < dims:
        raise ValueError(f"s={s} must be at least dims={dims}")
    led = ledger if ledger is not None else Ledger()
    n = g.n
    rng = np.random.default_rng(seed)
    v = int(rng.integers(n))

    B = np.empty((n, s), dtype=np.float64)
    sources = np.empty(s, dtype=np.int64)
    stats = []
    dmin = np.full(n, np.inf)
    with led.phase("BFS"):
        for i in range(s):
            sources[i] = v
            # Compute distances with the library traversal, but charge
            # the cost of the prior code's plain sequential FIFO BFS
            # (full 2m edge examinations, one thread, no barriers).
            dist, st = bfs_topdown_only(g, v)
            led.add(bfs_sequential_cost(st, g), sequential=True)
            stats.append(st)
            require_connected_distances(dist)
            col = dist.astype(np.float64)
            B[:, i] = col
            led.add(
                map_cost(
                    n, flops_per_elem=1.0, bytes_per_elem=I32 + F64
                ).with_regions(0),
                sequential=True,
            )
            np.minimum(dmin, col, out=dmin)
            led.add(farthest_update_cost(n))  # selection was parallel
            if i + 1 < s:
                v = int(np.argmax(dmin))
                if dmin[v] <= 0:
                    chosen = set(sources[: i + 1].tolist())
                    v = next(u for u in range(n) if u not in chosen)

    d = g.weighted_degrees
    with led.phase("DOrtho"):
        ores = d_orthogonalize(B, d, method="mgs", drop_tol=drop_tol, ledger=led)
        # Eigen expression-template temporaries: one extra full pass over
        # the working vectors per projection, charged as streaming.
        tot = led.phase_totals().get("DOrtho")
        if tot is not None:
            led.add(
                KernelCost(bytes_streamed=0.5 * tot.parallel.bytes_streamed)
            )
    if ores.S.shape[1] < dims:
        raise ValueError("too few independent distance vectors; increase s")
    S = ores.S

    with led.phase("TripleProd"):
        # Materialize L: stream the adjacency once to build (indices,
        # values, diagonal) — an allocation + construction pass ParHDE
        # avoids entirely.
        led.add(
            KernelCost(
                work=g.nnz + n,
                bytes_streamed=g.nnz * I32  # read adjacency
                + (g.nnz + n) * (I32 + F64)  # write L indices + values
                + (n + 1) * I64,
                regions=1,
            ),
            subphase="build-L",
        )
        # SpMM against the explicit L: same gathers as ParHDE's kernel
        # plus the value array streamed alongside (and the explicit
        # diagonal entries).
        P = spmm(g, S, ledger=led, subphase="LS")
        P = d[:, None] * S - P
        k = S.shape[1]
        led.add(
            KernelCost(
                work=2.0 * n * k,
                bytes_streamed=(g.nnz + n) * F64 + 3 * n * k * F64,
                regions=1,
            ),
            subphase="LS",
        )
        Z = blas.dense_gemm(S.T, P, led, subphase="S'(LS)")

    with led.phase("Other"):
        evals, Y = extreme_eigenpairs(Z, dims, which="smallest")
        coords = S @ Y
        led.add(
            map_cost(n * S.shape[1] * dims, flops_per_elem=2.0, bytes_per_elem=F64)
        )

    return LayoutResult(
        coords=coords,
        algorithm="prior-hde",
        B=B,
        S=S,
        eigenvalues=evals,
        pivots=sources,
        bfs_stats=stats,
        dropped=ores.dropped,
        ledger=led,
        params=dict(s=s, dims=dims, seed=seed, prior=True),
    )
