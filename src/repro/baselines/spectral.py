"""Exact spectral layout: the Figure 1 (bottom) reference drawing.

Lays the graph out on the true dominant non-trivial eigenvectors of the
normalized adjacency (walk) matrix — i.e. the degree-normalized
eigenvectors HDE approximates.  Orders of magnitude slower than ParHDE
on large graphs (that gap is HDE's whole reason to exist), so use it on
small and medium graphs as a quality oracle.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from ..linalg.power_iteration import power_iteration
from ..parallel.costs import Ledger
from ..core.result import LayoutResult

__all__ = ["spectral_layout"]


def spectral_layout(
    g: CSRGraph,
    dims: int = 2,
    *,
    tol: float = 1e-9,
    max_iter: int = 50_000,
    seed: int = 0,
    x0: np.ndarray | None = None,
    ledger: Ledger | None = None,
) -> LayoutResult:
    """Layout on the exact degree-normalized eigenvectors.

    ``x0`` may warm-start the iteration (pass an HDE layout to reproduce
    the §4.5.3 preprocessing experiment).  The iteration counts are in
    ``result.params["iterations"]``.
    """
    led = ledger if ledger is not None else Ledger()
    with led.phase("PowerIteration"):
        res = power_iteration(
            g, dims, tol=tol, max_iter=max_iter, seed=seed, x0=x0, ledger=led
        )
    return LayoutResult(
        coords=res.vectors,
        algorithm="spectral-exact",
        B=np.zeros((g.n, 0)),
        S=res.vectors,
        eigenvalues=res.eigenvalues,
        pivots=np.zeros(0, dtype=np.int64),
        ledger=led,
        params=dict(
            dims=dims,
            tol=tol,
            iterations=res.iterations,
            residuals=res.residuals,
        ),
    )
