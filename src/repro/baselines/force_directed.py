"""Force-directed layout baseline (Fruchterman-Reingold family).

Section 4.2 compares ParHDE against recent force-directed
parallelizations (MulMent, ForceAtlas2-on-GPU) and estimates one to two
orders of magnitude advantage.  This module provides the comparator: a
Fruchterman-Reingold-style layout with *sampled repulsion* — each
iteration every vertex is repelled by ``repulsion_samples`` random
others instead of all ``n``, the standard linear-time approximation
used by large-graph force-directed codes.  Costs are recorded per
iteration so the machine model can price the comparison
(``benchmarks/bench_force_directed.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.csr import CSRGraph
from ..parallel.costs import KernelCost, Ledger
from ..parallel.primitives import F64

__all__ = ["FRResult", "fruchterman_reingold"]


@dataclass
class FRResult:
    """Force-directed layout output."""

    coords: np.ndarray
    iterations: int
    final_temperature: float


def fruchterman_reingold(
    g: CSRGraph,
    *,
    iterations: int = 100,
    repulsion_samples: int = 8,
    seed: int = 0,
    coords0: np.ndarray | None = None,
    ledger: Ledger | None = None,
) -> FRResult:
    """Fruchterman-Reingold layout with sampled repulsion.

    Parameters
    ----------
    iterations:
        Cooling schedule length; temperature decays linearly to zero.
    repulsion_samples:
        Random repulsion partners per vertex per iteration (the
        linear-time approximation of the all-pairs term).
    coords0:
        Optional warm start (e.g. a ParHDE layout).

    Returns
    -------
    FRResult
        Coordinates are in a box of side ``sqrt(n)`` (the classical
        ideal-area convention, ``k = sqrt(area / n) = 1``).
    """
    if iterations < 0:
        raise ValueError("iterations must be >= 0")
    if repulsion_samples < 1:
        raise ValueError("repulsion_samples must be >= 1")
    n = g.n
    if n == 0:
        return FRResult(np.zeros((0, 2)), 0, 0.0)
    rng = np.random.default_rng(seed)
    side = float(np.sqrt(n))
    if coords0 is not None:
        if coords0.shape != (n, 2):
            raise ValueError("coords0 must be (n, 2)")
        coords = coords0.astype(np.float64, copy=True)
        span = coords.max(axis=0) - coords.min(axis=0)
        scale = side / max(float(span.max()), 1e-12)
        coords = (coords - coords.mean(axis=0)) * scale
    else:
        coords = rng.random((n, 2)) * side

    k = 1.0  # ideal edge length under the unit-area-per-vertex convention
    u, v = g.edge_list()
    temperature = side / 10.0
    eps = 1e-9

    for it in range(iterations):
        disp = np.zeros_like(coords)
        # Sampled repulsion: k^2 / d, scaled by n/samples so the
        # expected total force matches the all-pairs model.
        others = rng.integers(0, n, size=(n, repulsion_samples))
        delta = coords[:, None, :] - coords[others]
        dist = np.sqrt((delta**2).sum(axis=2)) + eps
        force = (k * k / dist) * (n / repulsion_samples) / n
        disp += (delta / dist[:, :, None] * force[:, :, None]).sum(axis=1)
        # Attraction along edges: d^2 / k.
        edelta = coords[u] - coords[v]
        edist = np.sqrt((edelta**2).sum(axis=1)) + eps
        eforce = (edist**2 / k) / edist
        pull = edelta * eforce[:, None]
        np.add.at(disp, u, -pull)
        np.add.at(disp, v, pull)
        # Cap displacement at the current temperature and cool.
        dlen = np.sqrt((disp**2).sum(axis=1)) + eps
        step = np.minimum(dlen, temperature)
        coords += disp / dlen[:, None] * step[:, None]
        temperature *= 1.0 - (it + 1) / (iterations + 1) * 0.1
        if ledger is not None:
            pairs = n * repulsion_samples + 2 * g.m
            ledger.add(
                KernelCost(
                    flops=12.0 * pairs + 8.0 * n,
                    bytes_streamed=(pairs * 4 + n * 2) * F64,
                    random_lines=pairs * 0.5,  # gather partner coords
                    regions=3,  # repulsion, attraction, integrate
                )
            )

    return FRResult(
        coords=coords, iterations=iterations, final_temperature=temperature
    )
