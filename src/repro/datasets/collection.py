"""The evaluation graph collection (paper Table 2), scaled.

Each paper input maps to a synthetic stand-in that preserves the
structural character driving the performance results (see DESIGN.md
section 2).  Three size presets are provided; all loads apply the
paper's preprocessing (simple graph, largest connected component,
contiguous relabeling preserving the generator's vertex order).

=============  =======================  ===================================
collection     paper graph              generator (structural character)
=============  =======================  ===================================
``urand``      urand27                  GAP uniform random: no locality/skew
``kron``       kron27                   GAP Kronecker: skewed, shuffled ids
``web``        sk-2005                  host-local web crawl: high locality
``twitter``    twitter7                 power-law social: skew, no locality
``road``       road_usa                 thinned grid: degree ~2.5, huge
                                        diameter
``cage``       cage14                   near-regular small-world
``curlcurl``   CurlCurl_4               banded FEM stencil
``kkt``        kkt_power                sparse skewed optimization KKT
``ecology``    ecology1                 exact 5-point grid
``pa``         pa2010                   planar-ish geometric (census)
``barth``      barth5 (Figures 1/7/8)   triangulated plate with 4 holes
=============  =======================  ===================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..graph import generators as gen
from ..graph.build import preprocess
from ..graph.csr import CSRGraph

__all__ = [
    "SCALES",
    "PAPER_NAMES",
    "LARGE_FIVE",
    "SMALL_FIVE",
    "available",
    "load",
    "collection_table",
    "format_table2",
]

SCALES = ("tiny", "small", "medium", "large")

#: collection key -> the paper's graph name (Table 2).
PAPER_NAMES: dict[str, str] = {
    "urand": "urand27",
    "kron": "kron27",
    "web": "sk-2005",
    "twitter": "twitter7",
    "road": "road_usa",
    "cage": "cage14",
    "curlcurl": "CurlCurl_4",
    "kkt": "kkt_power",
    "ecology": "ecology1",
    "pa": "pa2010",
    "barth": "barth5",
}

#: The five large graphs used by Tables 3/5/7 and Figures 2-6.
LARGE_FIVE = ("urand", "kron", "web", "twitter", "road")
#: The five small graphs of Table 6.
SMALL_FIVE = ("curlcurl", "kkt", "cage", "ecology", "pa")


@dataclass(frozen=True)
class _Spec:
    build: Callable[[str, int], CSRGraph]


def _sizes(tiny, small, medium, large):
    return {"tiny": tiny, "small": small, "medium": medium, "large": large}


_N = {
    # Sizes (per scale preset) are chosen so the *relative* edge-count
    # ordering of Table 2 is preserved: urand > kron > web > twitter >>
    # road among the large five.
    "urand": _sizes(10, 12, 14, 16),         # log2(n)
    "kron": _sizes(9, 11, 13, 15),           # log2(n)
    "web": _sizes(500, 1_800, 6_500, 26_000),
    "twitter": _sizes(450, 1_500, 5_500, 22_000),
    "road": _sizes(28, 60, 150, 350),        # grid side
    "cage": _sizes(500, 2_000, 10_000, 50_000),
    "curlcurl": _sizes(600, 3_000, 14_000, 70_000),
    "kkt": _sizes(9, 11, 13, 15),            # log2(n)
    "ecology": _sizes(24, 45, 110, 260),     # grid side
    "pa": _sizes(600, 2_500, 12_000, 60_000),
    "barth": _sizes(30, 64, 126, 250),       # grid side
}


def _build(name: str, scale: str, seed: int) -> CSRGraph:
    size = _N[name][scale]
    if name == "urand":
        return gen.uniform_random(size, degree=16, seed=seed)
    if name == "kron":
        # Degree 32 (not the GAP generator's 16): at scale 2^11-2^15 the
        # R-MAT process collapses many duplicate edges, and kron27's
        # post-preprocessing density is ~33 edges/vertex (Table 2); the
        # bumped degree restores that dimensionless density.
        return gen.kronecker(size, degree=32, seed=seed)
    if name == "web":
        return gen.webgraph(size, seed=seed)
    if name == "twitter":
        return gen.copying_powerlaw(size, out_degree=24, seed=seed)
    if name == "road":
        return gen.road_network(size, size, seed=seed)
    if name == "cage":
        return gen.watts_strogatz(size, k=8, p=0.05, seed=seed)
    if name == "curlcurl":
        return gen.banded(size, offsets=(1, 2, 3, 64, 65))
    if name == "kkt":
        return gen.kronecker(size, degree=3, seed=seed + 7)
    if name == "ecology":
        return gen.grid2d(size, size)
    if name == "pa":
        return gen.random_geometric(size, seed=seed)
    if name == "barth":
        return gen.mesh_with_holes(size, size)
    raise KeyError(name)


def available() -> tuple[str, ...]:
    """Collection keys, in Table 2 order (plus ``barth``)."""
    return tuple(PAPER_NAMES)


def load(name: str, scale: str = "small", seed: int = 0) -> CSRGraph:
    """Build and preprocess one collection graph.

    Parameters
    ----------
    name:
        A key from :func:`available` (or the paper's graph name).
    scale:
        ``"tiny"`` (unit tests), ``"small"`` (default; integration
        tests), ``"medium"`` (benchmarks), or ``"large"``.
    """
    reverse = {v: k for k, v in PAPER_NAMES.items()}
    key = reverse.get(name, name)
    if key not in PAPER_NAMES:
        raise KeyError(
            f"unknown graph {name!r}; available: {', '.join(available())}"
        )
    if scale not in SCALES:
        raise ValueError(f"scale must be one of {SCALES}, got {scale!r}")
    raw = _build(key, scale, seed)
    return preprocess(raw, name=f"{PAPER_NAMES[key]}[{scale}]")


def collection_table(
    scale: str = "small", seed: int = 0, names: tuple[str, ...] | None = None
) -> list[tuple[str, int, int]]:
    """Rows ``(paper_name, m, n)`` after preprocessing — Table 2's columns."""
    rows = []
    for key in names or available():
        g = load(key, scale, seed)
        rows.append((PAPER_NAMES[key], g.m, g.n))
    return rows


def format_table2(rows: list[tuple[str, int, int]]) -> str:
    """Render collection rows in the paper's Table 2 layout."""
    lines = [f"{'Graph':<12} {'m':>12} {'n':>12}", "-" * 38]
    for name, m, n in rows:
        lines.append(f"{name:<12} {m:>12,} {n:>12,}")
    return "\n".join(lines)
