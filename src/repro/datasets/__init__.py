"""Scaled stand-ins for the paper's Table 2 evaluation collection."""

from .collection import (
    LARGE_FIVE,
    PAPER_NAMES,
    SCALES,
    SMALL_FIVE,
    available,
    collection_table,
    format_table2,
    load,
)

__all__ = [
    "LARGE_FIVE",
    "SMALL_FIVE",
    "PAPER_NAMES",
    "SCALES",
    "available",
    "load",
    "collection_table",
    "format_table2",
]
