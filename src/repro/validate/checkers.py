"""Per-phase invariant checkers for the ParHDE pipeline.

Each checker is a pure function returning a
:class:`~repro.validate.policy.CheckResult`; none of them raises on a
violation — escalation (warn vs. raise) is the caller's policy decision.
Checkers deliberately recompute their reference quantities through a
*different* code path than the kernel they guard (per-edge scatters
instead of the SpMM, per-vertex adjacency merges instead of the overlay
edge-list merge, fresh traversals instead of the incremental repair), so
a bug in the guarded kernel cannot hide itself in the check.

Checker catalogue (see docs/validate.md):

=====================  ======  ==========================================
check                  phase   invariant
=====================  ======  ==========================================
``bfs.levels``         BFS     pivot rows are 0; levels are finite,
                               non-negative (integral when unweighted)
                               and 1-Lipschitz along every edge
``dortho.residual``    DOrtho  ``max |S' D S - I|`` and ``S' D 1 = 0``
``tripleprod.lap``     Triple  SpMM ``L S`` equals the per-edge scatter
                       Prod    of ``sum w (e_u - e_v)(e_u - e_v)' S``
``eigen.residual``     Other   ``||Z Y - Y diag(evals)||`` small; the
                               eigenvalues are sorted ascending
``stream.overlay``     Stream  overlay-materialized CSR digest equals a
                               rebuild from per-vertex adjacency merges
``stream.repair``      Stream  repaired ``B`` exactly equals fresh
                               traversals from the same pivots
``cache.consistency``  Cache   a cached layout's own parameters echo the
                               request that keyed it (shape included)
=====================  ======  ==========================================
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from ..bfs.runner import run_sources
from ..graph.csr import CSRGraph
from ..linalg.laplacian import laplacian_spmm
from .policy import CheckResult

__all__ = [
    "check_bfs_levels",
    "check_cache_consistency",
    "check_constraints",
    "check_d_orthogonality",
    "check_eigenpairs",
    "check_laplacian_identity",
    "check_lod_distortion",
    "check_overlay_digest",
    "check_repair_equivalence",
]


def _directed_edges(g: CSRGraph) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """All stored (directed) adjacency entries as ``(src, dst, w)``."""
    src = np.repeat(np.arange(g.n, dtype=np.int64), g.degrees)
    dst = g.indices.astype(np.int64)
    w = (
        g.weights.astype(np.float64)
        if g.weights is not None
        else np.ones(g.nnz, dtype=np.float64)
    )
    return src, dst, w


def check_bfs_levels(
    g: CSRGraph,
    B: np.ndarray,
    pivots: np.ndarray,
    *,
    weighted: bool = False,
) -> CheckResult:
    """BFS/SSSP level sanity for every column of the distance matrix.

    A valid column ``i`` satisfies ``B[pivots[i], i] == 0``, every entry
    finite and non-negative (and integral for hop counts), and the
    triangle inequality along every edge: ``|d[u] - d[v]| <= w(u, v)``
    (1 for unweighted traversals) — distance levels cannot jump across
    an edge, which is exactly the frontier-monotonicity of a level-
    synchronous BFS.  Hop counts are checked exactly; weighted distances
    get a relative epsilon since SSSP accumulates floating-point sums.
    """
    B = np.asarray(B, dtype=np.float64)
    pivots = np.asarray(pivots, dtype=np.int64)
    residual = 0.0
    detail = ""
    if B.ndim != 2 or B.shape[0] != g.n or B.shape[1] != len(pivots):
        return CheckResult(
            "bfs.levels", "BFS", np.inf, 0.0,
            f"B shape {B.shape} does not match (n={g.n}, s={len(pivots)})",
        )
    if not np.all(np.isfinite(B)):
        return CheckResult(
            "bfs.levels", "BFS", np.inf, 0.0, "non-finite distance entries"
        )
    neg = float(np.maximum(-B.min(), 0.0))
    if neg > residual:
        residual = neg
        detail = "negative distance level"
    root = float(np.abs(B[pivots, np.arange(len(pivots))]).max()) if len(pivots) else 0.0
    if root > residual:
        residual = root
        detail = "pivot row is not zero"
    if not weighted:
        frac = float(np.abs(B - np.round(B)).max())
        if frac > residual:
            residual = frac
            detail = "non-integral hop count"
    src, dst, w = _directed_edges(g)
    bound = w[:, None] if weighted else 1.0
    jump = float(np.maximum(np.abs(B[src] - B[dst]) - bound, 0.0).max())
    if jump > residual:
        residual = jump
        detail = "levels jump by more than the edge length"
    threshold = 1e-9 * (1.0 + float(np.abs(B).max())) if weighted else 0.0
    return CheckResult("bfs.levels", "BFS", residual, threshold, detail)


def check_d_orthogonality(
    S: np.ndarray,
    d: np.ndarray | None,
    *,
    tol: float = 1e-6,
    centered: bool = True,
) -> CheckResult:
    """Residual of ``S' D S = I`` plus ``S' D 1 = 0`` (Algorithm 3).

    ``d`` is the degree diagonal; ``None`` means plain orthogonality
    (``d = 1``), the section 4.5.1 variant.  Mass-weighted layouts pass
    ``d = m·d`` so this is the ``‖SᵀMDS − I‖`` invariant.

    ``centered=False`` skips the constant-vector term: pin-deflated
    bases are D-orthogonal to the *free-vertex indicator*, not to the
    all-ones vector, so only the Gram residual applies.
    """
    S = np.asarray(S, dtype=np.float64)
    n, k = S.shape
    dd = np.ones(n, dtype=np.float64) if d is None else np.asarray(d, dtype=np.float64)
    G = S.T @ (dd[:, None] * S)
    resid = float(np.abs(G - np.eye(k)).max()) if k else 0.0
    # D-orthogonality to the constant vector, normalized like column 0 of
    # Algorithm 3 (1 / sqrt(sum d)).
    total = float(dd.sum())
    if centered and total > 0 and k:
        center_resid = float(np.abs(S.T @ dd).max()) / np.sqrt(total)
        resid = max(resid, center_resid)
    return CheckResult("dortho.residual", "DOrtho", resid, tol)


def check_laplacian_identity(
    g: CSRGraph,
    S: np.ndarray,
    P: np.ndarray | None = None,
    *,
    tol: float = 1e-8,
) -> CheckResult:
    """``L S = D S - A S``: SpMM output vs. an independent edge scatter.

    The pipeline computes ``P = L S`` through :func:`laplacian_spmm`
    (degree scaling minus one SpMM).  The reference here accumulates the
    factored form ``sum over edges of w (e_u - e_v)(e_u - e_v)' S`` with
    ``np.add.at`` scatters, a disjoint code path: a corrupted SpMM,
    degree array or overlay correction shows up as a mismatch.
    """
    S = np.asarray(S, dtype=np.float64)
    if P is None:
        P = laplacian_spmm(g, S)
    src, dst, w = _directed_edges(g)
    ref = np.zeros_like(S)
    # Each stored direction (u -> v) contributes w * (S[u] - S[v]) to row
    # u; summing over both directions covers the symmetric factor.
    np.add.at(ref, src, w[:, None] * (S[src] - S[dst]))
    scale = 1.0 + float(np.abs(ref).max()) if ref.size else 1.0
    resid = float(np.abs(P - ref).max()) / scale if ref.size else 0.0
    return CheckResult("tripleprod.laplacian", "TripleProd", resid, tol)


def check_eigenpairs(
    Z: np.ndarray,
    evals: np.ndarray,
    Y: np.ndarray,
    *,
    tol: float = 1e-6,
) -> CheckResult:
    """Eigenpair residual ``||Z Y - Y diag(evals)|| / (1 + ||Z||)``.

    Also verifies the eigenvalues come back sorted ascending — the
    projection step takes ``Y``'s leading columns as the smallest axes.
    """
    Z = np.asarray(Z, dtype=np.float64)
    evals = np.asarray(evals, dtype=np.float64)
    Y = np.asarray(Y, dtype=np.float64)
    if Y.shape[0] != Z.shape[0] or Y.shape[1] != len(evals):
        return CheckResult(
            "eigen.residual", "Other", np.inf, tol,
            f"Y shape {Y.shape} does not match Z {Z.shape} / {len(evals)} evals",
        )
    scale = 1.0 + float(np.linalg.norm(Z))
    resid = float(np.linalg.norm(Z @ Y - Y * evals)) / scale
    detail = ""
    if len(evals) > 1:
        disorder = float(np.maximum(evals[:-1] - evals[1:], 0.0).max())
        if disorder > 0:
            resid = max(resid, disorder / scale)
            detail = "eigenvalues out of ascending order"
    return CheckResult("eigen.residual", "Other", resid, tol, detail)


def check_overlay_digest(dyn) -> CheckResult:
    """Overlay-materialized CSR equals a per-vertex adjacency rebuild.

    ``DynamicGraph.to_csr`` merges the base *edge list* with the overlay
    (and caches the snapshot); this check rebuilds the graph from the
    *per-vertex* merged ``neighbors(v)`` views instead and compares
    content digests.  Divergence means the two read paths disagree —
    e.g. a stale snapshot or an overlay entry missing its mirror.
    """
    from ..graph.build import from_edges
    from ..service.fingerprint import graph_digest

    us: list[int] = []
    vs: list[int] = []
    ws: list[float] = []
    for u in range(dyn.n):
        for v in dyn.neighbors(u):
            v = int(v)
            if u < v:
                us.append(u)
                vs.append(v)
                if dyn.is_weighted:
                    ws.append(dyn.edge_weight(u, v))
    rebuilt = from_edges(
        dyn.n,
        np.asarray(us, dtype=np.int64),
        np.asarray(vs, dtype=np.int64),
        np.asarray(ws, dtype=np.float64) if dyn.is_weighted else None,
    )
    snapshot = dyn.to_csr()
    same = graph_digest(snapshot) == graph_digest(rebuilt)
    detail = "" if same else (
        f"snapshot has {snapshot.m} edges, adjacency rebuild has {rebuilt.m}"
    )
    return CheckResult(
        "stream.overlay", "Stream", 0.0 if same else 1.0, 0.0, detail
    )


def check_repair_equivalence(
    g: CSRGraph,
    B: np.ndarray,
    pivots: np.ndarray,
) -> CheckResult:
    """Repaired distances exactly equal fresh traversals (PR 2 contract).

    The incremental repair (Ramalingam-Reps deletions + decrease-only
    insertions) promises *exact* hop distances, not approximations — so
    the check is equality, not a tolerance.
    """
    pivots = np.asarray(pivots, dtype=np.int64)
    fresh = run_sources(g, pivots).distances
    B = np.asarray(B, dtype=np.float64)
    if B.shape != fresh.shape:
        return CheckResult(
            "stream.repair", "Stream", np.inf, 0.0,
            f"B shape {B.shape} vs fresh {fresh.shape}",
        )
    diff = B != fresh
    bad = int(diff.sum())
    resid = float(np.abs(B - fresh)[diff].max()) if bad else 0.0
    detail = f"{bad} of {B.size} entries diverge" if bad else ""
    return CheckResult("stream.repair", "Stream", resid, 0.0, detail)


def check_cache_consistency(
    result,
    g: CSRGraph,
    algorithm: str,
    params: Mapping[str, Any],
) -> CheckResult:
    """A cached layout must echo the request that keyed it.

    The cache keys on the full request fingerprint, so a hit whose
    *result* disagrees with the request parameters (different ``s`` or
    ``seed``, wrong vertex count, wrong algorithm) means the fingerprint
    pipeline broke — e.g. an epoch that failed to bump, or a disk
    archive renamed under a foreign key.
    """
    mismatches: list[str] = []
    if result.coords.shape[0] != g.n:
        mismatches.append(
            f"coords rows {result.coords.shape[0]} != n {g.n}"
        )
    if result.algorithm != algorithm:
        mismatches.append(
            f"algorithm {result.algorithm!r} != {algorithm!r}"
        )
    for key, expected in params.items():
        if key not in result.params:
            continue
        got = result.params[key]
        try:
            same = bool(got == expected)
        except Exception:
            same = got is expected
        if not same:
            mismatches.append(f"params[{key!r}] {got!r} != {expected!r}")
    return CheckResult(
        "cache.consistency",
        "Cache",
        float(len(mismatches)),
        0.0,
        "; ".join(mismatches),
    )


def check_constraints(
    coords: np.ndarray,
    spec,
    *,
    S: np.ndarray | None = None,
    w: np.ndarray | None = None,
    tol: float = 1e-8,
) -> CheckResult:
    """Constrained-layout invariants (pins, region, mass-orthogonality).

    ``spec`` is a :class:`repro.core.constraints.ConstraintSpec` (duck-
    typed to avoid a circular import).  Three facets:

    * every pinned vertex sits *exactly* at its pin position (the
      pipeline writes the positions back verbatim, so the check is
      equality — any drift means a kernel overwrote a pin);
    * every coordinate lies inside the bounding region;
    * when the basis ``S`` and weight ``w = m·d`` are supplied, the
      mass-weighted Gram residual ``‖SᵀWS − I‖`` is within ``tol``
      (the centering term is omitted: a pin-deflated basis is
      W-orthogonal to the free-vertex indicator, not to all-ones).
    """
    coords = np.asarray(coords, dtype=np.float64)
    residual = 0.0
    detail = ""
    pins = getattr(spec, "pins", ())
    if pins:
        idx = np.array([v for v, _ in pins], dtype=np.int64)
        pos = np.array([list(p) for _, p in pins], dtype=np.float64)
        if idx.max() >= coords.shape[0] or pos.shape[1] != coords.shape[1]:
            return CheckResult(
                "constraints", "Other", np.inf, tol,
                "pin indices/coords do not fit the layout shape",
            )
        if np.any(coords[idx] != pos):
            drift = float(np.abs(coords[idx] - pos).max())
            residual = max(residual, drift, np.finfo(np.float64).tiny)
            detail = "pinned coordinates drifted"
    region = getattr(spec, "region", None)
    if region is not None:
        lo = np.array([b[0] for b in region], dtype=np.float64)
        hi = np.array([b[1] for b in region], dtype=np.float64)
        overflow = float(
            np.maximum(
                np.maximum(lo[None, :] - coords, coords - hi[None, :]), 0.0
            ).max()
        )
        if overflow > residual:
            residual = overflow
            detail = "coordinates escape the bounding region"
    if S is not None:
        gram = check_d_orthogonality(S, w, tol=tol, centered=False)
        if gram.residual > residual:
            residual = gram.residual
            detail = "mass-weighted Gram residual out of tolerance"
    return CheckResult("constraints", "Other", residual, tol, detail)


def check_lod_distortion(hierarchy, *, bound: float = 3.0) -> CheckResult:
    """A LOD hierarchy's measured eigenvalue distortion must stay bounded.

    Galerkin coarsening guarantees one-sided interlacing (coarse
    generalized eigenvalues dominate fine ones), but not by how much; a
    hierarchy whose measured worst per-step ratio ``mu_i / lambda_i``
    exceeds ``bound`` has drifted too far from the fine spectrum to be a
    trustworthy coarse-tier answer.  Levels too large for an exact dense
    solve report no measurement and are exempt (the residual covers the
    measured levels only).
    """
    measured = [
        (i + 1, lvl.distortion)
        for i, lvl in enumerate(hierarchy.levels)
        if lvl.distortion is not None
    ]
    if not measured:
        return CheckResult(
            "lod.distortion", "Lod", 0.0, float(bound), "no level measured"
        )
    worst_depth, worst = max(measured, key=lambda t: t[1])
    detail = (
        f"worst step -> depth {worst_depth} of {len(hierarchy.levels)}"
        f" ({len(measured)} measured)"
    )
    return CheckResult("lod.distortion", "Lod", float(worst), float(bound), detail)
