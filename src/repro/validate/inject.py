"""Fault injection: prove each checker actually catches its fault.

An invariant checker that never fires is dead code with a false sense of
security attached.  This harness makes the checkers themselves testable:
for each registered fault it builds a *known-good* pipeline state,
corrupts exactly one thing (a distance column, the orthonormal basis,
the overlay bookkeeping, a cached layout, an eigenpair, a BFS level) and
runs the checker that guards it.  A fault the checker misses is a
harness failure.

The registry doubles as documentation of the failure modes the
subsystem defends against; ``parhde check --inject`` drives it from the
command line (one named report line per fault, nonzero exit when any
corruption is detected — or, for ``--inject all``, when any is missed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .checkers import (
    check_bfs_levels,
    check_cache_consistency,
    check_d_orthogonality,
    check_eigenpairs,
    check_laplacian_identity,
    check_overlay_digest,
    check_repair_equivalence,
)
from .policy import CheckResult

__all__ = ["FAULTS", "InjectionOutcome", "run_injection"]


@dataclass(frozen=True)
class InjectionOutcome:
    """One fault's verdict: was the deliberate corruption detected?"""

    fault: str
    description: str
    caught: bool
    result: CheckResult

    def format(self) -> str:
        if self.caught:
            return (
                f"inject {self.fault:<24} -> CAUGHT by {self.result.check}"
                f" (residual {self.result.residual:.3e})"
            )
        return f"inject {self.fault:<24} -> MISSED ({self.result.check} stayed ok)"


class _State:
    """A known-good pipeline state the injectors corrupt copies of."""

    def __init__(self, g, s: int, seed: int):
        from ..core.pivots import select_and_traverse
        from ..linalg.blas import dense_gemm
        from ..linalg.eigen import extreme_eigenpairs
        from ..linalg.gram_schmidt import d_orthogonalize
        from ..linalg.laplacian import laplacian_spmm

        self.g = g
        self.seed = seed
        ms = select_and_traverse(g, s, strategy="kcenters", seed=seed)
        self.B = ms.distances
        self.pivots = np.asarray(ms.sources, dtype=np.int64)
        self.d = g.weighted_degrees
        self.ores = d_orthogonalize(self.B, self.d)
        self.S = self.ores.S
        self.P = laplacian_spmm(g, self.S)
        self.Z = dense_gemm(self.S.T, self.P)
        k = min(2, self.Z.shape[0])
        self.evals, self.Y = extreme_eigenpairs(self.Z, k, which="smallest")


def _negative_bfs_level(st: _State) -> CheckResult:
    B = np.array(st.B)
    B[(st.pivots[0] + 1) % st.g.n, 0] = -3.0
    return check_bfs_levels(st.g, B, st.pivots)


def _corrupted_b_column(st: _State) -> CheckResult:
    # A positive, integral, but wrong distance column: one vertex's level
    # jumps by 5, violating the 1-Lipschitz edge condition.
    B = np.array(st.B)
    v = int((st.pivots[-1] + 1) % st.g.n)
    B[v, -1] += 5.0
    return check_bfs_levels(st.g, B, st.pivots)


def _deorthogonalized_s(st: _State) -> CheckResult:
    S = np.array(st.S)
    if S.shape[1] >= 2:
        S[:, 1] += 0.25 * S[:, 0]  # re-introduce a dropped projection
    else:
        S[:, 0] *= 1.5  # break the unit D-norm
    return check_d_orthogonality(S, st.d)


def _corrupted_tripleprod(st: _State) -> CheckResult:
    P = np.array(st.P)
    P[P.shape[0] // 2, 0] += 1.0  # one wrong SpMM output entry
    return check_laplacian_identity(st.g, st.S, P)


def _broken_eigenpair(st: _State) -> CheckResult:
    evals = np.array(st.evals)
    evals[0] += 0.5 * (1.0 + abs(float(evals[0])))
    return check_eigenpairs(st.Z, evals, st.Y)


def _overlay_divergence(st: _State) -> CheckResult:
    from ..stream.overlay import DynamicGraph
    from .runner import suite_delta

    dyn = DynamicGraph(st.g)
    dyn.apply(suite_delta(st.g, seed=st.seed), strict=False)
    dyn.to_csr()  # populate the snapshot cache
    # Simulate a lost-invalidation bug: an edge lands in the overlay
    # without the snapshot being dropped, so the two read paths diverge.
    u = 0
    nbrs = set(int(x) for x in dyn.neighbors(u))
    v = next(x for x in range(1, dyn.n) if x != u and x not in nbrs)
    dyn._added.setdefault(u, {})[v] = 1.0
    dyn._added.setdefault(v, {})[u] = 1.0
    return check_overlay_digest(dyn)


def _repair_divergence(st: _State) -> CheckResult:
    # A repaired matrix with one silently-stale entry (off by one hop but
    # still plausible levels).
    B = np.array(st.B)
    v = int((st.pivots[0] + 1) % st.g.n)
    B[v, 0] += 1.0
    return check_repair_equivalence(st.g, B, st.pivots)


def _stale_cache_entry(st: _State) -> CheckResult:
    from ..service.cache import LayoutCache
    from ..service.fingerprint import layout_fingerprint

    from ..core.hde import parhde

    # A layout computed for seed=1 stored under the fingerprint of the
    # seed-0 request — exactly what an epoch-bump bug would produce.
    stale = parhde(st.g, min(4, st.g.n - 1), seed=st.seed + 1)
    kwargs = {"s": min(4, st.g.n - 1), "seed": st.seed}
    fp = layout_fingerprint(st.g, "parhde", kwargs)
    cache = LayoutCache(max_bytes=64 * 1024 * 1024)
    cache.put(fp, stale)
    hit = cache.get(fp)
    assert hit is not None
    return check_cache_consistency(hit[0], st.g, "parhde", kwargs)


#: fault name -> (description, injector).  Every injector corrupts one
#: copy of the known-good state and returns its checker's verdict.
FAULTS: dict[str, tuple[str, Callable[[_State], CheckResult]]] = {
    "negative-bfs-level": (
        "a distance entry driven below zero",
        _negative_bfs_level,
    ),
    "corrupted-b-column": (
        "a distance column with a 5-hop level jump across an edge",
        _corrupted_b_column,
    ),
    "deorthogonalized-s": (
        "S with a projection re-introduced (S' D S != I)",
        _deorthogonalized_s,
    ),
    "corrupted-tripleprod": (
        "one wrong entry in the SpMM product P = L S",
        _corrupted_tripleprod,
    ),
    "broken-eigenpair": (
        "an eigenvalue shifted away from its eigenvector",
        _broken_eigenpair,
    ),
    "overlay-divergence": (
        "an overlay edit applied without invalidating the CSR snapshot",
        _overlay_divergence,
    ),
    "repair-divergence": (
        "a repaired distance entry stale by one hop",
        _repair_divergence,
    ),
    "stale-cache-entry": (
        "a layout cached under another request's fingerprint",
        _stale_cache_entry,
    ),
}


def run_injection(
    g,
    names: list[str] | None = None,
    *,
    s: int = 8,
    seed: int = 0,
) -> list[InjectionOutcome]:
    """Inject each named fault (default: all) and report detection.

    Raises ``KeyError`` for an unknown fault name; the registry keys are
    the valid names.
    """
    chosen = list(FAULTS) if names is None else list(names)
    unknown = [n for n in chosen if n not in FAULTS]
    if unknown:
        raise KeyError(
            f"unknown fault(s) {unknown}; available: {sorted(FAULTS)}"
        )
    state = _State(g, s, seed)
    outcomes = []
    for name in chosen:
        description, injector = FAULTS[name]
        result = injector(state)
        outcomes.append(
            InjectionOutcome(
                fault=name,
                description=description,
                caught=not result.ok,
                result=result,
            )
        )
    return outcomes
