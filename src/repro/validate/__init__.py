"""Pipeline-wide invariant checking and fault injection.

The ParHDE pipeline rests on invariants the paper states but — until
this package — the code never verified at runtime: ``S' D S = I`` after
DOrtho, ``L S = D S - A S`` in TripleProd, monotone BFS levels, exact
equivalence of overlay-repaired and from-scratch distance matrices, and
cache/fingerprint consistency in the serving tier.  Three pieces:

* :mod:`~repro.validate.checkers` — pure per-phase checkers returning
  :class:`CheckResult`; each recomputes its reference through a code
  path disjoint from the kernel it guards.
* :class:`ValidationPolicy` — ``off`` / ``warn`` / ``strict``, threaded
  through :func:`repro.core.parhde` (``validate=``),
  :class:`repro.service.LayoutEngine` (``validation=``) and
  :class:`repro.stream.StreamSession` (``validation=``) so every layout
  can self-check at configurable cost.
* :mod:`~repro.validate.inject` — the fault-injection harness: each
  registered corruption must be caught by its checker, making the
  checkers themselves testable code.

``parhde check`` runs the full suite (and ``--inject`` the harness) on a
dataset from the command line; see docs/validate.md.

``run_suite`` / ``run_injection`` / ``FAULTS`` are loaded lazily: their
modules import the pipeline they validate, and the pipeline imports this
package for the policy objects.
"""

from __future__ import annotations

from .checkers import (
    check_bfs_levels,
    check_cache_consistency,
    check_constraints,
    check_d_orthogonality,
    check_eigenpairs,
    check_laplacian_identity,
    check_lod_distortion,
    check_overlay_digest,
    check_repair_equivalence,
)
from .policy import (
    OFF,
    STRICT,
    WARN,
    CheckResult,
    InvariantViolation,
    ValidationPolicy,
    ValidationReport,
    ValidationWarning,
)

__all__ = [
    "OFF",
    "STRICT",
    "WARN",
    "CheckResult",
    "FAULTS",
    "InjectionOutcome",
    "InvariantViolation",
    "ValidationPolicy",
    "ValidationReport",
    "ValidationWarning",
    "check_bfs_levels",
    "check_cache_consistency",
    "check_constraints",
    "check_d_orthogonality",
    "check_eigenpairs",
    "check_laplacian_identity",
    "check_lod_distortion",
    "check_overlay_digest",
    "check_repair_equivalence",
    "run_injection",
    "run_suite",
    "suite_delta",
]

_LAZY = {
    "run_suite": ("repro.validate.runner", "run_suite"),
    "suite_delta": ("repro.validate.runner", "suite_delta"),
    "run_injection": ("repro.validate.inject", "run_injection"),
    "InjectionOutcome": ("repro.validate.inject", "InjectionOutcome"),
    "FAULTS": ("repro.validate.inject", "FAULTS"),
}


def __getattr__(name: str):
    """PEP 562 lazy loading for the modules that import the pipeline."""
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value
    return value
