"""Run the full invariant suite over one dataset (``parhde check``).

The runner re-executes the ParHDE pipeline phase by phase — pivot
traversals, DOrtho, TripleProd, eigensolve — keeping every intermediate,
and feeds each into its checker.  With ``deep=True`` it additionally
exercises the streaming overlay (apply a small synthetic delta, repair,
compare against fresh traversals and an adjacency-merge rebuild) and the
serving cache (store, re-fetch, cross-check the echo against the
request), so one ``parhde check --strict`` sweep covers every subsystem
a layout response can pass through.

Core/service/stream imports happen inside the functions: the checkers
package is imported *by* ``repro.core`` (the pipeline threads a policy
through), so a module-level import here would be circular.
"""

from __future__ import annotations

import numpy as np

from .checkers import (
    check_bfs_levels,
    check_cache_consistency,
    check_d_orthogonality,
    check_eigenpairs,
    check_laplacian_identity,
    check_overlay_digest,
    check_repair_equivalence,
)
from .policy import ValidationPolicy, ValidationReport

__all__ = ["run_suite", "suite_delta"]


def suite_delta(g, seed: int = 0):
    """A small deterministic edge delta for the stream checks.

    Inserts a few absent edges and deletes a few existing non-bridge
    edges, sized to the graph so the repair has real work but the graph
    stays connected (deletions only remove edges whose endpoints both
    keep degree >= 2; that does not guarantee connectivity, so callers
    fall back to insert-only when the repair reports a disconnect).
    """
    from ..stream.delta import edge_delta

    rng = np.random.default_rng(seed)
    n = g.n
    inserts = []
    tries = 0
    while len(inserts) < 3 and tries < 200:
        tries += 1
        u, v = int(rng.integers(n)), int(rng.integers(n))
        if u == v:
            continue
        a, b = min(u, v), max(u, v)
        if g.has_edge(a, b) or (a, b) in inserts:
            continue
        inserts.append((a, b))
    deletes = []
    eu, ev = g.edge_list()
    deg = g.degrees.copy()
    order = rng.permutation(len(eu))
    for idx in order[: min(200, len(order))]:
        if len(deletes) >= 2:
            break
        a, b = int(eu[idx]), int(ev[idx])
        if deg[a] > 2 and deg[b] > 2:
            deletes.append((a, b))
            deg[a] -= 1
            deg[b] -= 1
    return edge_delta(inserts=inserts, deletes=deletes)


def run_suite(
    g,
    s: int = 8,
    *,
    seed: int = 0,
    policy: ValidationPolicy | str | None = "strict",
    weighted: bool = False,
    delta: float | None = None,
) -> ValidationReport:
    """Execute every applicable checker against ``g``; return the report.

    The report only *records* violations — escalation is the caller's
    job (the CLI exits nonzero, the tests assert, the policy objects
    raise or warn when threaded through the pipeline).
    """
    from ..core.pivots import select_and_traverse
    from ..linalg.blas import dense_gemm
    from ..linalg.eigen import extreme_eigenpairs
    from ..linalg.gram_schmidt import d_orthogonalize
    from ..linalg.laplacian import laplacian_spmm

    policy = ValidationPolicy.coerce(policy)
    report = ValidationReport()

    # Phase 1: traversals.
    ms = select_and_traverse(g, s, strategy="kcenters", seed=seed, weighted=weighted)
    B = ms.distances
    report.add(check_bfs_levels(g, B, ms.sources, weighted=weighted))

    # Phase 2: DOrtho (both GS variants must satisfy the same invariant).
    d = g.weighted_degrees
    for method in ("mgs", "cgs"):
        ores = d_orthogonalize(B, d, method=method)
        report.add(
            check_d_orthogonality(ores.S, d, tol=policy.ortho_tol)
        )
    S = ores.S

    # Phase 3: TripleProd.
    P = laplacian_spmm(g, S)
    report.add(check_laplacian_identity(g, S, P, tol=policy.laplacian_tol))
    Z = dense_gemm(S.T, P)

    # Phase 4: eigensolve.
    k = min(2, Z.shape[0])
    evals, Y = extreme_eigenpairs(Z, k, which="smallest")
    report.add(check_eigenpairs(Z, evals, Y, tol=policy.eigen_tol))

    if policy.run_deep and not weighted:
        report.extend(_stream_checks(g, B, ms.sources, seed=seed))

    if policy.run_deep:
        report.extend(_cache_checks(g, s=s, seed=seed))

    return report


def _stream_checks(g, B, pivots, *, seed: int) -> list:
    """Apply a synthetic delta, repair, and verify both stream invariants."""
    from ..stream.delta import edge_delta
    from ..stream.incremental import repair_distances
    from ..stream.overlay import DynamicGraph

    delta = suite_delta(g, seed=seed)
    pivots = np.asarray(pivots, dtype=np.int64)
    for attempt in range(2):
        dyn = DynamicGraph(g)
        applied = dyn.apply(delta, strict=False)
        repaired = np.array(B)  # repair mutates in place
        rep = repair_distances(
            dyn, repaired, pivots, applied.inserted, applied.deleted
        )
        if not rep.disconnected:
            break
        # Rare: the delta cut the graph. Retry with the inserts only —
        # insertions can never disconnect.
        delta = edge_delta(
            inserts=[
                (int(u), int(v))
                for u, v in zip(delta.insert_u, delta.insert_v)
            ]
        )
    return [
        check_overlay_digest(dyn),
        check_repair_equivalence(dyn.to_csr(), repaired, pivots),
    ]


def _cache_checks(g, *, s: int, seed: int) -> list:
    """Round-trip a layout through the cache and cross-check the echo."""
    from ..core.hde import parhde
    from ..service.cache import LayoutCache
    from ..service.fingerprint import layout_fingerprint

    kwargs = {"s": s, "seed": seed}
    result = parhde(g, s, seed=seed)
    fp = layout_fingerprint(g, "parhde", kwargs)
    cache = LayoutCache(max_bytes=64 * 1024 * 1024)
    cache.put(fp, result)
    hit = cache.get(fp)
    if hit is None:
        from .policy import CheckResult

        return [
            CheckResult(
                "cache.consistency", "Cache", np.inf, 0.0,
                "stored layout missed on immediate re-fetch",
            )
        ]
    return [check_cache_consistency(hit[0], g, "parhde", kwargs)]
