"""Validation policy, check results and the violation report.

The paper states invariants the pipeline never verified at runtime:
``S' D S = I`` after DOrtho (Algorithm 3), ``L S = D S - A S`` inside
TripleProd, monotone BFS levels, and — since the streaming subsystem —
exact equivalence of overlay-repaired and from-scratch distance
matrices.  A silent violation surfaces only as a subtly wrong drawing,
the worst failure mode for a serving system.  This module defines *how*
violations are handled; the checks themselves live in
:mod:`repro.validate.checkers`.

Three policy levels:

``off``
    No checking at all (the pre-existing behaviour; zero cost).
``warn``
    Cheap per-phase checks run and violations are reported through
    :mod:`warnings`; the layout is still returned.
``strict``
    All checks run — including the expensive deep ones (stream repair
    equivalence, overlay digest) — and the first violation raises
    :class:`InvariantViolation`.

A policy is accepted anywhere as either a :class:`ValidationPolicy`
instance or one of the level strings; ``None`` means ``off``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace

__all__ = [
    "CheckResult",
    "InvariantViolation",
    "ValidationPolicy",
    "ValidationReport",
    "ValidationWarning",
]

LEVELS = ("off", "warn", "strict")


class ValidationWarning(UserWarning):
    """Emitted for invariant violations under the ``warn`` policy."""


class InvariantViolation(Exception):
    """A pipeline invariant failed under the ``strict`` policy.

    Carries the failing :class:`CheckResult` (``.result``) so callers can
    report the phase, residual and threshold without parsing the message.
    """

    def __init__(self, result: "CheckResult"):
        self.result = result
        super().__init__(
            f"[{result.phase}] {result.check}: residual"
            f" {result.residual:.3e} exceeds {result.threshold:.3e}"
            + (f" ({result.detail})" if result.detail else "")
        )


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one invariant check.

    ``residual`` is the measured violation magnitude (0.0 for exact
    checks that hold); ``threshold`` is the largest residual the check
    tolerates.  ``ok`` is ``residual <= threshold``.
    """

    check: str  # e.g. "dortho.residual"
    phase: str  # "BFS" | "DOrtho" | "TripleProd" | "Other" | "Stream" | "Cache"
    residual: float
    threshold: float
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.residual <= self.threshold

    def format(self) -> str:
        status = "ok" if self.ok else "FAIL"
        line = (
            f"[{self.phase:<10}] {self.check:<22} residual {self.residual:9.3e}"
            f"  <= {self.threshold:.1e}  {status}"
        )
        if self.detail:
            line += f"  ({self.detail})"
        return line


@dataclass
class ValidationReport:
    """An ordered collection of check results with a pass/fail verdict."""

    results: list[CheckResult] = field(default_factory=list)

    def add(self, result: CheckResult) -> CheckResult:
        self.results.append(result)
        return result

    def extend(self, results) -> None:
        self.results.extend(results)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    @property
    def failures(self) -> list[CheckResult]:
        return [r for r in self.results if not r.ok]

    def format(self) -> str:
        lines = [r.format() for r in self.results]
        n_fail = len(self.failures)
        verdict = (
            f"PASS: {len(self.results)}/{len(self.results)} checks ok"
            if not n_fail
            else f"FAIL: {n_fail}/{len(self.results)} checks violated"
        )
        return "\n".join(lines + [verdict])

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)


@dataclass(frozen=True)
class ValidationPolicy:
    """How much checking to do and what to do on a violation.

    Attributes
    ----------
    level:
        ``"off"``, ``"warn"`` or ``"strict"``.
    ortho_tol:
        Largest tolerated ``max |S' D S - I|`` entry (also covers the
        D-orthogonality of ``S`` against the constant vector).
    laplacian_tol:
        Largest tolerated relative mismatch between the SpMM-computed
        ``L S`` and an independent per-edge scatter of the same product.
    eigen_tol:
        Largest tolerated relative eigenpair residual
        ``||Z Y - Y diag(evals)|| / (1 + ||Z||)``.
    deep:
        Run the expensive checks too (stream repair equivalence, overlay
        digest rebuild, full BFS level Lipschitz sweep).  ``None`` means
        "iff strict".
    """

    level: str = "off"
    ortho_tol: float = 1e-6
    laplacian_tol: float = 1e-8
    eigen_tol: float = 1e-6
    deep: bool | None = None

    def __post_init__(self) -> None:
        if self.level not in LEVELS:
            raise ValueError(f"level must be one of {LEVELS}, got {self.level!r}")

    # -- coercion ----------------------------------------------------------
    @classmethod
    def coerce(
        cls, value: "ValidationPolicy | str | None"
    ) -> "ValidationPolicy":
        """Accept a policy, a level string, or ``None`` (= off)."""
        if value is None:
            return OFF
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls(level=value)
        raise TypeError(
            f"expected ValidationPolicy, level string or None, got {value!r}"
        )

    def with_level(self, level: str) -> "ValidationPolicy":
        return replace(self, level=level)

    # -- behaviour ---------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self.level != "off"

    @property
    def run_deep(self) -> bool:
        """Whether the expensive checks should run."""
        if not self.enabled:
            return False
        return self.level == "strict" if self.deep is None else bool(self.deep)

    def handle(self, result: CheckResult) -> CheckResult:
        """Dispatch one result: raise under strict, warn under warn.

        Returns the result unchanged so call sites can chain it into a
        report.
        """
        if result.ok or not self.enabled:
            return result
        if self.level == "strict":
            raise InvariantViolation(result)
        warnings.warn(
            f"invariant violated: {result.format()}",
            ValidationWarning,
            stacklevel=2,
        )
        return result


#: Shared singletons for the three levels.
OFF = ValidationPolicy("off")
WARN = ValidationPolicy("warn")
STRICT = ValidationPolicy("strict")
