"""Incremental repair of the pivot distance matrix ``B``.

ParHDE's BFS phase dominates end-to-end time, but after a small edge
delta most of it is wasted: Buluç & Madduri's observation that traversal
cost tracks the frontier actually touched cuts both ways — when only a
few edges change, only the *affected region* of each pivot's shortest
path tree needs revisiting.  This module repairs each column of ``B``
in place:

* **Insertions** only *decrease* hop distances.  Seed a bounded
  relaxation at the inserted endpoints (``d[u] + 1 < d[v]`` or vice
  versa) and propagate decreases outward; vertices whose distance
  cannot improve are never visited.
* **Deletions** only *increase* distances, and only when the deleted
  edge was *tight* (``|d[u] - d[v]| == 1``) for that pivot.  The classic
  two-phase repair (Ramalingam-Reps specialized to unit weights):
  phase 1 identifies the affected set — vertices all of whose shortest
  path parents are themselves affected — by a worklist sweep in
  increasing old-distance order; phase 2 re-settles the affected set by
  a multi-source relaxation from its unaffected boundary.

Hop distances only (unweighted traversals); weighted sessions fall back
to full relayout.  Costs are charged to the caller's open ledger phase
under subphase ``"repair"`` with the same per-edge pricing as the BFS
kernels (``TD_OPS`` scalar ops per inspected edge, one irregular
distance-array touch per edge), so repair work and full-traversal work
are directly comparable through the machine model.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from ..bfs.topdown import TD_OPS
from ..graph.gaps import miss_rate
from ..parallel.costs import KernelCost, Ledger
from ..parallel.primitives import F64, I32
from .overlay import DynamicGraph

__all__ = ["RepairResult", "repair_distances"]

_INF = np.inf


@dataclass
class RepairResult:
    """Outcome of one incremental repair pass over all columns.

    Attributes
    ----------
    changed:
        ``int64[s]`` — entries of each column whose distance changed.
    n:
        Row count of ``B`` (vertices), the drift denominator.
    edges_examined:
        Total adjacency entries inspected across all columns (the
        modeled BFS work of the repair).
    columns_touched:
        Columns whose repair did any work at all.
    disconnected:
        True when some vertex became unreachable from a pivot — the
        repaired column holds ``inf`` there and the caller must either
        roll back or fall back to a full recompute.
    """

    changed: np.ndarray
    n: int
    edges_examined: int
    columns_touched: int
    disconnected: bool = False

    @property
    def drift(self) -> float:
        """Changed entries as a fraction of ``B``'s ``n * s`` size."""
        entries = self.n * self.changed.size
        return float(self.changed.sum()) / entries if entries else 0.0

    @property
    def column_drift(self) -> np.ndarray:
        """Per-column drift: changed entries over ``n``."""
        return self.changed.astype(np.float64) / max(self.n, 1)


def _repair_deletions(
    dyn: DynamicGraph, d: np.ndarray, deleted: np.ndarray
) -> tuple[int, bool]:
    """Raise distances broken by ``deleted`` edges; return (edges, infinite)."""
    edges = 0
    # Candidate roots: far endpoints of tight deleted edges.
    cands: list[int] = []
    for u, v in deleted:
        du, dv = d[u], d[v]
        if abs(du - dv) != 1.0:
            continue  # not on any shortest path for this pivot
        cands.append(int(v if dv > du else u))
    if not cands:
        return 0, False

    # Phase 1: affected set.  Processing in increasing old-distance order
    # means every potential parent is decided before its children.
    decided: set[int] = set()
    affected: set[int] = set()
    heap = [(d[x], x) for x in cands]
    heapq.heapify(heap)
    while heap:
        dx, x = heapq.heappop(heap)
        if x in decided:
            continue
        decided.add(x)
        nbrs = dyn.neighbors(x)
        edges += len(nbrs)
        has_parent = False
        for y in nbrs:
            if d[y] == dx - 1.0 and int(y) not in affected:
                has_parent = True
                break
        if has_parent:
            continue
        affected.add(x)
        for y in nbrs:
            y = int(y)
            if d[y] == dx + 1.0 and y not in decided:
                heapq.heappush(heap, (d[y], y))
    if not affected:
        return edges, False

    # Phase 2: re-settle the affected set from its unaffected boundary.
    for x in affected:
        d[x] = _INF
    heap = []
    for x in affected:
        nbrs = dyn.neighbors(x)
        edges += len(nbrs)
        best = _INF
        for y in nbrs:
            dy = d[int(y)]
            if dy + 1.0 < best:
                best = dy + 1.0
        if np.isfinite(best):
            heapq.heappush(heap, (best, x))
    while heap:
        dx, x = heapq.heappop(heap)
        if dx >= d[x]:
            continue
        d[x] = dx
        nbrs = dyn.neighbors(x)
        edges += len(nbrs)
        for y in nbrs:
            y = int(y)
            if dx + 1.0 < d[y]:
                heapq.heappush(heap, (dx + 1.0, y))
    infinite = any(not np.isfinite(d[x]) for x in affected)
    return edges, infinite


def _repair_insertions(
    dyn: DynamicGraph, d: np.ndarray, inserted: np.ndarray
) -> int:
    """Propagate distance decreases from inserted edges; return edges."""
    edges = 0
    heap: list[tuple[float, int]] = []
    for u, v in inserted:
        u, v = int(u), int(v)
        if d[u] + 1.0 < d[v]:
            heapq.heappush(heap, (d[u] + 1.0, v))
        if d[v] + 1.0 < d[u]:
            heapq.heappush(heap, (d[v] + 1.0, u))
    while heap:
        dx, x = heapq.heappop(heap)
        if dx >= d[x]:
            continue
        d[x] = dx
        nbrs = dyn.neighbors(x)
        edges += len(nbrs)
        for y in nbrs:
            y = int(y)
            if dx + 1.0 < d[y]:
                heapq.heappush(heap, (dx + 1.0, y))
    return edges


def repair_distances(
    dyn: DynamicGraph,
    B: np.ndarray,
    pivots: np.ndarray,
    inserted: np.ndarray,
    deleted: np.ndarray,
    *,
    ledger: Ledger | None = None,
) -> RepairResult:
    """Repair every column of ``B`` in place after an applied delta.

    Parameters
    ----------
    dyn:
        The graph *after* the delta was applied (repair walks current
        adjacency).
    B:
        ``(n, s)`` float64 hop-count matrix, column ``i`` = distances
        from ``pivots[i]`` in the pre-delta graph.  Mutated in place.
    pivots:
        Pivot vertex ids aligned with the columns.
    inserted / deleted:
        ``(k, 2)`` effective edits from
        :meth:`~repro.stream.overlay.DynamicGraph.apply`.

    Returns
    -------
    RepairResult
        Per-column change counts; if :attr:`RepairResult.disconnected`
        the matrix holds ``inf`` entries and must not be fed onward.
    """
    n, s = B.shape
    if n != dyn.n:
        raise ValueError(f"B has {n} rows but the graph has {dyn.n} vertices")
    if len(pivots) != s:
        raise ValueError("pivot count must match B's column count")
    if dyn.is_weighted:
        raise ValueError(
            "incremental repair supports hop distances only;"
            " weighted graphs require a full recompute"
        )
    changed = np.zeros(s, dtype=np.int64)
    total_edges = 0
    worst_edges = 0
    touched = 0
    disconnected = False
    miss = miss_rate(dyn.base)
    for i in range(s):
        col = B[:, i]
        before = col.copy()
        col_edges = 0
        e, infinite = _repair_deletions(dyn, col, deleted)
        col_edges += e
        disconnected = disconnected or infinite
        col_edges += _repair_insertions(dyn, col, inserted)
        if col_edges:
            touched += 1
        total_edges += col_edges
        worst_edges = max(worst_edges, col_edges)
        changed[i] = int(np.count_nonzero(col != before))
        if col[int(pivots[i])] != 0.0:
            raise AssertionError("pivot distance drifted from zero")
    # Re-check reachability after insertions (an insert can reconnect a
    # region a deletion cut off).
    if disconnected:
        disconnected = not bool(np.all(np.isfinite(B)))
    if ledger is not None and total_edges:
        # Columns repair independently (one per thread); inside a column
        # the worklist is sequential, so the critical path is the
        # heaviest column.  Priced like the BFS kernels: TD_OPS scalar
        # ops + one irregular distance touch per inspected edge, plus
        # the per-column snapshot/compare sweeps.
        ledger.add(
            KernelCost(
                work=TD_OPS * total_edges,
                depth=TD_OPS * worst_edges,
                bytes_streamed=total_edges * I32 + 2.0 * n * s * F64,
                random_lines=total_edges * miss,
                regions=1,
            ),
            subphase="repair",
        )
    return RepairResult(
        changed=changed,
        n=n,
        edges_examined=total_edges,
        columns_touched=touched,
        disconnected=disconnected,
    )
