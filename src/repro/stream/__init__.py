"""Dynamic-graph layout: edge-delta overlays and incremental relayout.

The static ParHDE pipeline assumes a frozen graph; this subsystem keeps
a layout *tracking* an evolving one:

* :mod:`~repro.stream.delta` — validated, deduplicated
  :class:`EdgeDelta` batches (the update wire format);
* :mod:`~repro.stream.overlay` — :class:`DynamicGraph`, a base CSR plus
  an adjacency overlay with threshold-triggered compaction;
* :mod:`~repro.stream.incremental` — affected-region repair of the
  pivot-distance matrix ``B`` with a drift metric;
* :mod:`~repro.stream.session` — :class:`StreamSession`, the
  repair-vs-relayout policy loop with warm starts and Procrustes
  frame anchoring.

See ``docs/streaming.md`` for the end-to-end story.
"""

from .delta import EdgeDelta, edge_delta, parse_events, read_events
from .incremental import RepairResult, repair_distances
from .overlay import AppliedDelta, DynamicGraph
from .session import StreamPolicy, StreamSession, StreamUpdate, bfs_work_units

__all__ = [
    "AppliedDelta",
    "DynamicGraph",
    "EdgeDelta",
    "RepairResult",
    "StreamPolicy",
    "StreamSession",
    "StreamUpdate",
    "bfs_work_units",
    "edge_delta",
    "parse_events",
    "read_events",
    "repair_distances",
]
