"""Validated, deduplicated edge-delta batches for dynamic graphs.

A :class:`EdgeDelta` is one atomic batch of structural edits — edge
insertions (optionally weighted) and deletions — applied between two
layout frames.  Batches are *canonical*: endpoints are stored with
``u < v``, self loops are rejected, and duplicated operations on the
same edge collapse with last-op-wins semantics (matching how an event
stream would replay).  The overlay (:mod:`repro.stream.overlay`)
validates the batch against the actual graph at apply time; this module
only enforces batch-internal invariants, which keeps deltas graph-free
and serializable.

Deltas never change the vertex set: the streaming subsystem tracks a
fixed universe of ``n`` vertices (the pivot distance matrix ``B`` is
``(n, s)``), so endpoint range checks happen at apply time when ``n``
is known.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

__all__ = ["EdgeDelta", "edge_delta", "parse_events", "read_events"]


def _canonical_pairs(
    pairs: Iterable[Sequence[float]], kind: str
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Normalize ``(u, v)`` / ``(u, v, w)`` rows to sorted-endpoint arrays."""
    us: list[int] = []
    vs: list[int] = []
    ws: list[float] = []
    any_weight = False
    for row in pairs:
        if len(row) == 2:
            u, v = row
            w = 1.0
        elif len(row) == 3:
            u, v, w = row
            any_weight = True
        else:
            raise ValueError(
                f"{kind} entries must be (u, v) or (u, v, w), got {row!r}"
            )
        u, v = int(u), int(v)
        if u == v:
            raise ValueError(f"self loop ({u}, {u}) in {kind}")
        if u < 0 or v < 0:
            raise ValueError(f"negative endpoint in {kind}: ({u}, {v})")
        w = float(w)
        if w <= 0:
            raise ValueError(f"non-positive weight {w} in {kind}")
        if u > v:
            u, v = v, u
        us.append(u)
        vs.append(v)
        ws.append(w)
    u_arr = np.asarray(us, dtype=np.int64)
    v_arr = np.asarray(vs, dtype=np.int64)
    w_arr = np.asarray(ws, dtype=np.float64) if any_weight else None
    return u_arr, v_arr, w_arr


@dataclass(frozen=True)
class EdgeDelta:
    """One validated batch of edge insertions and deletions.

    Attributes
    ----------
    insert_u, insert_v:
        ``int64`` endpoint arrays of the edges to insert, ``u < v``.
    insert_w:
        Aligned positive weights, or ``None`` when every insert is
        implicit weight 1 (unweighted graphs).
    delete_u, delete_v:
        ``int64`` endpoint arrays of the edges to delete, ``u < v``.

    Use :func:`edge_delta` or :meth:`from_events` instead of the raw
    constructor — they canonicalize and deduplicate.
    """

    insert_u: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    insert_v: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    insert_w: np.ndarray | None = None
    delete_u: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    delete_v: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))

    # -- construction ------------------------------------------------------
    @classmethod
    def from_events(
        cls, events: Iterable[Sequence[object]]
    ) -> "EdgeDelta":
        """Build a batch from an ordered event stream, last op per edge wins.

        Each event is ``("+", u, v)``, ``("+", u, v, w)`` or
        ``("-", u, v)``.  An edge inserted then deleted inside one batch
        collapses to the delete (and vice versa) — exactly what replaying
        the events one at a time would leave behind.
        """
        last: dict[tuple[int, int], tuple[str, float]] = {}
        any_weight = False
        for ev in events:
            op = str(ev[0])
            if op not in ("+", "-"):
                raise ValueError(f"event op must be '+' or '-', got {op!r}")
            rest = ev[1:]
            if op == "-" and len(rest) != 2:
                raise ValueError(f"delete event must be ('-', u, v): {ev!r}")
            if len(rest) == 3:
                u, v, w = int(rest[0]), int(rest[1]), float(rest[2])
                any_weight = True
            else:
                u, v, w = int(rest[0]), int(rest[1]), 1.0
            if u == v:
                raise ValueError(f"self loop event on vertex {u}")
            if u > v:
                u, v = v, u
            last[(u, v)] = (op, w)
        if any_weight:
            inserts = [
                (u, v, w) for (u, v), (op, w) in last.items() if op == "+"
            ]
        else:
            inserts = [(u, v) for (u, v), (op, _) in last.items() if op == "+"]
        deletes = [(u, v) for (u, v), (op, _) in last.items() if op == "-"]
        return edge_delta(inserts=inserts, deletes=deletes)

    # -- views -------------------------------------------------------------
    @property
    def n_inserts(self) -> int:
        return len(self.insert_u)

    @property
    def n_deletes(self) -> int:
        return len(self.delete_u)

    def __len__(self) -> int:
        return self.n_inserts + self.n_deletes

    @property
    def is_weighted(self) -> bool:
        return self.insert_w is not None

    def insert_weights(self) -> np.ndarray:
        """Per-insert weights (ones when the batch carries none)."""
        if self.insert_w is not None:
            return self.insert_w
        return np.ones(self.n_inserts, dtype=np.float64)

    def max_endpoint(self) -> int:
        """Largest vertex id referenced, or ``-1`` for an empty batch."""
        parts = [
            arr.max()
            for arr in (self.insert_v, self.delete_v)
            if len(arr)
        ]
        return int(max(parts)) if parts else -1

    # -- serialization -----------------------------------------------------
    def to_json(self) -> dict:
        """Plain-JSON form, the ``POST /update`` body shape."""
        inserts: list[list[float]] = []
        ws = self.insert_weights()
        for i in range(self.n_inserts):
            row: list[float] = [int(self.insert_u[i]), int(self.insert_v[i])]
            if self.insert_w is not None:
                row.append(float(ws[i]))
            inserts.append(row)
        deletes = [
            [int(self.delete_u[i]), int(self.delete_v[i])]
            for i in range(self.n_deletes)
        ]
        return {"inserts": inserts, "deletes": deletes}

    @classmethod
    def from_json(cls, doc: dict) -> "EdgeDelta":
        if not isinstance(doc, dict):
            raise ValueError("delta document must be a JSON object")
        return edge_delta(
            inserts=doc.get("inserts") or (),
            deletes=doc.get("deletes") or (),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EdgeDelta(+{self.n_inserts} -{self.n_deletes})"


def edge_delta(
    inserts: Iterable[Sequence[float]] = (),
    deletes: Iterable[Sequence[float]] = (),
) -> EdgeDelta:
    """Canonicalize and validate one delta batch.

    ``inserts`` rows are ``(u, v)`` or ``(u, v, w)``; ``deletes`` rows are
    ``(u, v)``.  Duplicate operations on the same edge deduplicate (for
    duplicated inserts the last weight wins); an edge appearing in both
    lists is an error — use :meth:`EdgeDelta.from_events` for ordered
    streams where last-op-wins resolution is wanted.
    """
    iu, iv, iw = _canonical_pairs(inserts, "inserts")
    du, dv, _ = _canonical_pairs(deletes, "deletes")

    seen: dict[tuple[int, int], float] = {}
    for i in range(len(iu)):
        seen[(int(iu[i]), int(iv[i]))] = (
            float(iw[i]) if iw is not None else 1.0
        )
    if seen:
        iu = np.fromiter((k[0] for k in seen), dtype=np.int64, count=len(seen))
        iv = np.fromiter((k[1] for k in seen), dtype=np.int64, count=len(seen))
        iw = (
            np.fromiter(seen.values(), dtype=np.float64, count=len(seen))
            if iw is not None
            else None
        )
    dseen = dict.fromkeys(zip(du.tolist(), dv.tolist()))
    if dseen:
        du = np.fromiter((k[0] for k in dseen), dtype=np.int64, count=len(dseen))
        dv = np.fromiter((k[1] for k in dseen), dtype=np.int64, count=len(dseen))
    both = set(zip(iu.tolist(), iv.tolist())) & set(zip(du.tolist(), dv.tolist()))
    if both:
        raise ValueError(
            f"edges {sorted(both)} appear in both inserts and deletes;"
            " use EdgeDelta.from_events for ordered streams"
        )
    return EdgeDelta(
        insert_u=iu, insert_v=iv, insert_w=iw, delete_u=du, delete_v=dv
    )


def parse_events(text: str) -> list[tuple]:
    """Parse an edge-event text block into ``(op, u, v[, w])`` tuples.

    Line format (the ``parhde stream`` replay format)::

        + u v [w]     insert edge (u, v), optional weight
        - u v         delete edge (u, v)
        # ...         comment
        ---           batch boundary (kept as the sentinel ("|",))

    Blank lines are ignored.
    """
    events: list[tuple] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line == "---":
            events.append(("|",))
            continue
        parts = line.split()
        op = parts[0]
        if op not in ("+", "-"):
            raise ValueError(
                f"line {lineno}: expected '+', '-' or '---', got {raw!r}"
            )
        if op == "+" and len(parts) == 4:
            events.append(("+", int(parts[1]), int(parts[2]), float(parts[3])))
        elif len(parts) == 3:
            events.append((op, int(parts[1]), int(parts[2])))
        else:
            raise ValueError(f"line {lineno}: malformed event {raw!r}")
    return events


def read_events(path) -> list[tuple]:
    """Read an edge-event file (see :func:`parse_events`)."""
    with open(path, "r", encoding="utf-8") as fh:
        return parse_events(fh.read())
