"""A CSR graph with an adjacency-delta overlay.

Rebuilding a :class:`~repro.graph.csr.CSRGraph` costs ``O(m log m)``;
a 32-edge delta should not.  :class:`DynamicGraph` keeps an immutable
*base* CSR plus a small per-vertex overlay (added neighbors with
weights, removed base neighbors) and exposes the CSR read API —
``n`` / ``m`` / ``degrees`` / ``neighbors`` / ``has_edge`` — merged on
the fly.  Reads of untouched vertices stay zero-copy views into the
base arrays, so the common case (tiny delta against a large graph) pays
only for the vertices it touched.

When the overlay grows past ``compact_threshold * base.m`` edits, the
merged edge list is rebuilt into a fresh base CSR (compaction), exactly
the batching trade-off BatchLayout makes: amortize restructuring cost
over many cheap incremental steps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.build import from_edges
from ..graph.csr import CSRGraph
from .delta import EdgeDelta

__all__ = ["AppliedDelta", "DynamicGraph"]


@dataclass(frozen=True)
class AppliedDelta:
    """The edits one :meth:`DynamicGraph.apply` actually performed.

    With ``strict=False`` no-op operations (inserting an existing edge,
    deleting a missing one) are skipped, so these arrays may be smaller
    than the requested batch.  ``deleted_w`` records the weight each
    deleted edge had, which makes the batch invertible (rollback).
    """

    inserted: np.ndarray  # (k, 2) int64, u < v
    inserted_w: np.ndarray  # float64[k]
    deleted: np.ndarray  # (k, 2) int64, u < v
    deleted_w: np.ndarray  # float64[k]
    skipped: int = 0

    @property
    def size(self) -> int:
        return len(self.inserted) + len(self.deleted)

    def inverse(self) -> EdgeDelta:
        """The delta that undoes this one (deleted edges reinstated with
        their recorded weights)."""
        from .delta import edge_delta

        # Only carry weights when any differ from 1 — a weighted batch
        # would be rejected by an unweighted base at re-apply time.
        if len(self.deleted_w) and np.any(self.deleted_w != 1.0):
            inserts = [
                (int(u), int(v), float(w))
                for (u, v), w in zip(self.deleted, self.deleted_w)
            ]
        else:
            inserts = [(int(u), int(v)) for u, v in self.deleted]
        deletes = [(int(u), int(v)) for u, v in self.inserted]
        return edge_delta(inserts=inserts, deletes=deletes)


class DynamicGraph:
    """A mutable graph view: immutable base CSR + adjacency-delta overlay.

    Parameters
    ----------
    base:
        The starting graph.  Never mutated; compaction replaces it.
    compact_threshold:
        Overlay edits (added + removed edges) tolerated as a fraction of
        the base edge count before :attr:`needs_compaction` turns on.

    The vertex set is fixed at ``base.n``; deltas may only rewire
    existing vertices.
    """

    def __init__(self, base: CSRGraph, *, compact_threshold: float = 0.25):
        if compact_threshold <= 0:
            raise ValueError("compact_threshold must be positive")
        self.base = base
        self.compact_threshold = float(compact_threshold)
        #: Monotone version counter, bumped once per applied batch.
        self.epoch = 0
        self._added: dict[int, dict[int, float]] = {}
        self._removed: dict[int, set[int]] = {}
        self._added_edges = 0  # undirected count
        self._removed_edges = 0
        self._deg_adjust: dict[int, int] = {}
        self._wdeg_adjust: dict[int, float] = {}
        self._snapshot: CSRGraph | None = None

    # -- CSR read API ------------------------------------------------------
    @property
    def n(self) -> int:
        return self.base.n

    @property
    def m(self) -> int:
        return self.base.m + self._added_edges - self._removed_edges

    @property
    def is_weighted(self) -> bool:
        return self.base.is_weighted

    @property
    def degrees(self) -> np.ndarray:
        """``int64[n]`` current vertex degrees."""
        deg = self.base.degrees.copy()
        for v, adj in self._deg_adjust.items():
            deg[v] += adj
        return deg

    @property
    def weighted_degrees(self) -> np.ndarray:
        """``float64[n]`` current weighted degrees (the diagonal of D)."""
        wd = self.base.weighted_degrees.copy()
        for v, adj in self._wdeg_adjust.items():
            wd[v] += adj
        return wd

    def degree(self, v: int) -> int:
        return int(self.base.degree(v)) + self._deg_adjust.get(v, 0)

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted current adjacency list of ``v``.

        Untouched vertices return the base's zero-copy view; touched
        vertices pay one small merge.
        """
        added = self._added.get(v)
        removed = self._removed.get(v)
        basev = self.base.neighbors(v)
        if added is None and removed is None:
            return basev
        out = basev.astype(np.int64)
        if removed:
            out = out[~np.isin(out, np.fromiter(removed, dtype=np.int64))]
        if added:
            out = np.concatenate(
                [out, np.fromiter(added, dtype=np.int64)]
            )
            out.sort()
        return out

    def has_edge(self, u: int, v: int) -> bool:
        added = self._added.get(u)
        if added is not None and v in added:
            return True
        removed = self._removed.get(u)
        if removed is not None and v in removed:
            return False
        return self.base.has_edge(u, v)

    def edge_weight(self, u: int, v: int) -> float:
        """Weight of edge ``(u, v)`` (1.0 on unweighted graphs).

        Raises ``KeyError`` when the edge does not currently exist.
        """
        added = self._added.get(u)
        if added is not None and v in added:
            return added[v]
        removed = self._removed.get(u)
        if (removed is not None and v in removed) or not self.base.has_edge(u, v):
            raise KeyError(f"no edge ({u}, {v})")
        return self._base_weight(u, v)

    def _base_weight(self, u: int, v: int) -> float:
        if self.base.weights is None:
            return 1.0
        adj = self.base.neighbors(u)
        i = int(np.searchsorted(adj, v))
        return float(self.base.weights[self.base.indptr[u] + i])

    # -- overlay inspection ------------------------------------------------
    @property
    def overlay_edges(self) -> int:
        """Undirected edits currently carried by the overlay."""
        return self._added_edges + self._removed_edges

    @property
    def overlay_fraction(self) -> float:
        """Overlay size relative to the base edge count."""
        return self.overlay_edges / max(self.base.m, 1)

    @property
    def needs_compaction(self) -> bool:
        return self.overlay_fraction > self.compact_threshold

    def overlay_entries(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """All overlay edits as ``(u, v, w, sign)`` arrays, ``u < v``.

        ``sign`` is ``+1`` for added edges and ``-1`` for removed ones;
        this is exactly the sparse Laplacian correction
        ``L_current = L_base + sum sign * w * (e_u - e_v)(e_u - e_v)'``.
        """
        us: list[int] = []
        vs: list[int] = []
        ws: list[float] = []
        ss: list[float] = []
        for u, adj in self._added.items():
            for v, w in adj.items():
                if u < v:
                    us.append(u)
                    vs.append(v)
                    ws.append(w)
                    ss.append(1.0)
        for u, removed in self._removed.items():
            for v in removed:
                if u < v:
                    us.append(u)
                    vs.append(v)
                    ws.append(self._base_weight(u, v))
                    ss.append(-1.0)
        return (
            np.asarray(us, dtype=np.int64),
            np.asarray(vs, dtype=np.int64),
            np.asarray(ws, dtype=np.float64),
            np.asarray(ss, dtype=np.float64),
        )

    # -- mutation ----------------------------------------------------------
    def apply(self, delta: EdgeDelta, *, strict: bool = True) -> AppliedDelta:
        """Apply one delta batch atomically.

        With ``strict=True`` (default) inserting an existing edge or
        deleting a missing one raises ``ValueError`` and nothing is
        applied.  With ``strict=False`` such no-ops are skipped and
        counted in :attr:`AppliedDelta.skipped`.

        Returns the effective edits (the repair kernel's seed set).
        """
        hi = delta.max_endpoint()
        if hi >= self.n:
            raise ValueError(
                f"delta references vertex {hi} but the graph has"
                f" {self.n} vertices (the vertex set is fixed)"
            )
        if delta.is_weighted and not self.is_weighted:
            raise ValueError(
                "weighted inserts require an edge-weighted base graph"
            )
        ins_w = delta.insert_weights()
        if strict:
            for i in range(delta.n_inserts):
                u, v = int(delta.insert_u[i]), int(delta.insert_v[i])
                if self.has_edge(u, v):
                    raise ValueError(f"insert of existing edge ({u}, {v})")
            for i in range(delta.n_deletes):
                u, v = int(delta.delete_u[i]), int(delta.delete_v[i])
                if not self.has_edge(u, v):
                    raise ValueError(f"delete of missing edge ({u}, {v})")

        inserted: list[tuple[int, int]] = []
        inserted_w: list[float] = []
        deleted: list[tuple[int, int]] = []
        deleted_w: list[float] = []
        skipped = 0
        for i in range(delta.n_deletes):
            u, v = int(delta.delete_u[i]), int(delta.delete_v[i])
            if not self.has_edge(u, v):
                skipped += 1
                continue
            deleted_w.append(self.edge_weight(u, v))
            deleted.append((u, v))
            self._remove_edge(u, v)
        for i in range(delta.n_inserts):
            u, v = int(delta.insert_u[i]), int(delta.insert_v[i])
            if self.has_edge(u, v):
                skipped += 1
                continue
            w = float(ins_w[i])
            self._add_edge(u, v, w)
            inserted.append((u, v))
            inserted_w.append(w)
        self.epoch += 1
        self._snapshot = None
        return AppliedDelta(
            inserted=np.asarray(inserted, dtype=np.int64).reshape(-1, 2),
            inserted_w=np.asarray(inserted_w, dtype=np.float64),
            deleted=np.asarray(deleted, dtype=np.int64).reshape(-1, 2),
            deleted_w=np.asarray(deleted_w, dtype=np.float64),
            skipped=skipped,
        )

    def _add_edge(self, u: int, v: int, w: float) -> None:
        # Re-inserting a removed base edge with the base weight simply
        # clears the removal marker; anything else lands in the overlay.
        removed_u = self._removed.get(u)
        if removed_u is not None and v in removed_u:
            if w == self._base_weight(u, v):
                removed_u.discard(v)
                self._removed[v].discard(u)
                self._removed_edges -= 1
                self._bump_degree(u, v, +1, w)
                return
        self._added.setdefault(u, {})[v] = w
        self._added.setdefault(v, {})[u] = w
        self._added_edges += 1
        self._bump_degree(u, v, +1, w)

    def _remove_edge(self, u: int, v: int) -> None:
        w = self.edge_weight(u, v)
        added_u = self._added.get(u)
        if added_u is not None and v in added_u:
            del added_u[v]
            del self._added[v][u]
            self._added_edges -= 1
        else:
            self._removed.setdefault(u, set()).add(v)
            self._removed.setdefault(v, set()).add(u)
            self._removed_edges += 1
        self._bump_degree(u, v, -1, w)

    def _bump_degree(self, u: int, v: int, sign: int, w: float) -> None:
        for x in (u, v):
            self._deg_adjust[x] = self._deg_adjust.get(x, 0) + sign
            if self._deg_adjust[x] == 0:
                del self._deg_adjust[x]
            self._wdeg_adjust[x] = self._wdeg_adjust.get(x, 0.0) + sign * w
            if self._wdeg_adjust[x] == 0.0:
                del self._wdeg_adjust[x]

    # -- materialization ---------------------------------------------------
    def to_csr(self) -> CSRGraph:
        """The current graph as a fresh validated :class:`CSRGraph`.

        Cached until the next :meth:`apply`; with an empty overlay the
        base itself is returned.
        """
        if not self.overlay_edges:
            return self.base
        if self._snapshot is not None:
            return self._snapshot
        u, v = self.base.edge_list()
        if self.base.weights is None:
            w = None
        else:
            # edge_list keeps row order: recover each edge's weight from
            # the (u, v) direction of the adjacency.
            src = np.repeat(
                np.arange(self.base.n, dtype=np.int64), self.base.degrees
            )
            keep = src < self.base.indices
            w = self.base.weights[keep]
        if self._removed_edges:
            gone = set()
            for a, removed in self._removed.items():
                for b in removed:
                    if a < b:
                        gone.add((a, b))
            mask = np.fromiter(
                ((int(a), int(b)) not in gone for a, b in zip(u, v)),
                dtype=bool,
                count=len(u),
            )
            u, v = u[mask], v[mask]
            if w is not None:
                w = w[mask]
        au2, av2, aw2 = [], [], []
        for x, adj in self._added.items():
            for y, wt in adj.items():
                if x < y:
                    au2.append(x)
                    av2.append(y)
                    aw2.append(wt)
        au = np.asarray(au2, dtype=np.int64)
        av = np.asarray(av2, dtype=np.int64)
        aw = np.asarray(aw2, dtype=np.float64)
        u = np.concatenate([np.asarray(u, dtype=np.int64), au])
        v = np.concatenate([np.asarray(v, dtype=np.int64), av])
        if w is not None:
            w = np.concatenate([np.asarray(w, dtype=np.float64), aw])
        g = from_edges(self.n, u, v, w, name=self.base.name)
        self._snapshot = g
        return g

    def compact(self) -> CSRGraph:
        """Fold the overlay into a fresh base CSR and clear it."""
        g = self.to_csr()
        self.base = g
        self._added.clear()
        self._removed.clear()
        self._added_edges = self._removed_edges = 0
        self._deg_adjust.clear()
        self._wdeg_adjust.clear()
        self._snapshot = None
        return g

    def maybe_compact(self) -> bool:
        """Compact if the overlay passed the threshold; report whether."""
        if self.needs_compaction:
            self.compact()
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DynamicGraph(n={self.n} m={self.m} overlay={self.overlay_edges}"
            f" epoch={self.epoch})"
        )
