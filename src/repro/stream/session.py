"""Stateful dynamic-layout sessions: repair vs. relayout orchestration.

A :class:`StreamSession` owns a :class:`~repro.stream.overlay.DynamicGraph`
plus the last layout's intermediates (``B``, ``S``, pivots, axes) and
turns each :class:`~repro.stream.delta.EdgeDelta` into a fresh frame:

1. apply the delta to the overlay;
2. *repair* the pivot-distance matrix ``B`` incrementally
   (:mod:`repro.stream.incremental`) when the policy allows, else run a
   *full relayout*;
3. rebuild the downstream pipeline (DOrtho → TripleProd → eigensolve)
   on the repaired ``B`` — the Laplacian product uses the base CSR plus
   a sparse per-edge overlay correction, so no CSR rebuild happens on
   the hot path;
4. re-anchor the new frame onto the previous one with Procrustes
   alignment so successive frames don't flip or spin.

Repair vs. relayout policy (:class:`StreamPolicy`):

* ``drift_threshold`` — if the repaired ``B`` changed more than this
  fraction of its entries, the pivots themselves are presumed stale
  (k-centers picked them for the *old* metric) and a full relayout with
  re-pivoting runs instead.
* ``staleness_limit`` — after this many consecutive repairs a full
  relayout runs regardless, bounding accumulated pivot drift.  This
  relayout is *warm*: it keeps the previous pivot set and skips the
  farthest-first selection sweeps.

Warm starts:

* Staleness relayouts reuse the previous pivots (``run_sources``),
  skipping k-centers selection; drift relayouts re-pivot from scratch.
* With ``ortho="plain"`` the orthogonalization is degree-free, so the
  leading ``S`` columns whose ``B`` columns the repair left untouched
  are reused verbatim and MGS continues from there.  (``ortho="D"``
  cannot reuse: any structural edit perturbs the weighted degrees and
  with them every D-inner product.)
* The small eigensolve warm-starts from the previous axes ``Y``: if the
  previous subspace is still (numerically) invariant under the new
  projected matrix ``Z``, its Ritz pairs are accepted without a fresh
  Jacobi sweep.

Every kernel — including repair and the overlay correction — records
into the per-update :class:`~repro.parallel.costs.Ledger` under the
standard phase names, so ``bfs_work_units`` comparisons between a
streamed update and a from-scratch run are apples-to-apples.
"""

from __future__ import annotations

import logging
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..bfs.batched import run_sources_batched
from ..bfs.runner import run_sources
from ..core.constraints import ConstraintSpec
from ..core.hde import parhde
from ..core.pivots import select_and_traverse
from ..core.result import LayoutResult
from ..graph.csr import CSRGraph
from ..graph.gaps import miss_rate
from ..linalg import blas
from ..linalg.blas import dense_gemm
from ..linalg.eigen import extreme_eigenpairs
from ..linalg.gram_schmidt import OrthoResult, d_orthogonalize
from ..linalg.laplacian import laplacian_spmm
from ..metrics.procrustes import procrustes_align
from ..parallel.costs import KernelCost, Ledger
from ..parallel.primitives import F64, I64, map_cost, random_lines_for
from ..validate import (
    ValidationPolicy,
    check_d_orthogonality,
    check_overlay_digest,
    check_repair_equivalence,
)
from .delta import EdgeDelta
from .incremental import repair_distances
from .overlay import DynamicGraph

__all__ = ["StreamPolicy", "StreamSession", "StreamUpdate", "bfs_work_units"]

logger = logging.getLogger("repro.stream.session")


@dataclass(frozen=True)
class StreamPolicy:
    """Knobs of the repair-vs-relayout decision.

    Attributes
    ----------
    drift_threshold:
        Fraction of ``B`` entries a repair may change before the update
        escalates to a full relayout with fresh k-centers pivots.
    staleness_limit:
        Consecutive repairs tolerated before a warm full relayout
        (previous pivots, no selection sweeps) re-grounds the session.
    compact_threshold:
        Passed to :class:`~repro.stream.overlay.DynamicGraph` — overlay
        size (as a fraction of the base edge count) that triggers CSR
        compaction.
    """

    drift_threshold: float = 0.10
    staleness_limit: int = 64
    compact_threshold: float = 0.25

    def __post_init__(self) -> None:
        if not (0.0 < self.drift_threshold <= 1.0):
            raise ValueError("drift_threshold must be in (0, 1]")
        if self.staleness_limit < 1:
            raise ValueError("staleness_limit must be >= 1")


@dataclass
class StreamUpdate:
    """One update's outcome: the new frame plus how it was produced."""

    epoch: int
    mode: str  # "repair" | "relayout" | "constraint"
    reason: str  # "repair" | "drift" | "staleness" | "weighted" | "pin" | ...
    coords: np.ndarray
    drift: float
    changed_entries: int
    edges_examined: int
    elapsed: float
    ledger: Ledger
    compacted: bool = False
    warm_pivots: bool = False
    warm_ortho_cols: int = 0
    warm_eigensolve: bool = False
    applied_edits: int = 0
    skipped_edits: int = 0


def bfs_work_units(ledger: Ledger) -> float:
    """Modeled BFS-phase work units recorded in ``ledger``.

    This is the acceptance metric for streamed updates: repair work and
    full-traversal work both land in the ``"BFS"`` phase, priced with
    the same per-edge constants.
    """
    totals = ledger.phase_totals().get("BFS")
    return float(totals.combined.work) if totals is not None else 0.0


class StreamSession:
    """Dynamic-graph layout session over one evolving graph.

    Parameters
    ----------
    g:
        The starting graph (connected; use :func:`repro.graph.preprocess`
        first).  Weighted graphs are accepted but every update runs a
        full relayout — incremental repair covers hop distances only.
    s, dims, seed, ortho, gs_method, drop_tol:
        Forwarded to :func:`repro.core.parhde` semantics; the session
        always projects through ``S`` (``project_basis="S"``).
    policy:
        Repair-vs-relayout policy; default :class:`StreamPolicy`.
    layout:
        Optional previous :class:`~repro.core.result.LayoutResult` for
        ``g`` to adopt instead of computing the initial frame (it must
        carry ``B``, ``S`` and pivots — see ``save_layout``'s
        ``include_subspace``).
    validation:
        Invariant-checking policy (:mod:`repro.validate`): ``None`` /
        ``"off"`` (default), ``"warn"``, ``"strict"`` or a configured
        :class:`~repro.validate.ValidationPolicy`.  Checks run inside
        ``update``'s try block, so a strict violation rolls the graph
        and layout state back before propagating.  Deep (strict-level)
        checks re-traverse from the pivots after every repair — exact
        but expensive; use ``warn`` for production streams.
    autosave:
        Optional archive path.  The current frame is written there
        atomically (temp file + rename, the ``save_layout`` format)
        after the initial layout and after every successful update, so
        a killed process resumes via :meth:`resume` from the last
        completed frame instead of replaying the stream.  Save failures
        are logged once per path, counted in
        ``stats["autosave_failures"]`` and absorbed — persistence must
        not kill the stream it protects.
    wal:
        Optional :mod:`repro.wal` directory (or an open
        :class:`~repro.wal.WriteAheadLog`).  Unlike ``autosave`` — a
        full archive rewrite per update — the WAL journals each delta /
        constraint edit as an O(delta) append and checkpoints a full
        snapshot (frame + graph archives) every ``wal_snapshot_every``
        updates, compacting the journal behind it.  Resume with
        :meth:`resume_wal`.
    wal_fsync / wal_snapshot_every:
        Journal durability policy (``"always"``/``"batch"``/``"off"``)
        and checkpoint cadence in journaled updates.
    """

    def __init__(
        self,
        g: CSRGraph,
        s: int = 10,
        *,
        dims: int = 2,
        seed: int = 0,
        policy: StreamPolicy | None = None,
        ortho: str = "D",
        gs_method: str = "mgs",
        drop_tol: float = 1e-3,
        traversal: str = "per-source",
        constraints: ConstraintSpec | dict | None = None,
        pins=None,
        masses=None,
        region=None,
        layout: LayoutResult | None = None,
        validation: ValidationPolicy | str | None = None,
        autosave: str | os.PathLike | None = None,
        wal=None,
        wal_fsync: str = "batch",
        wal_snapshot_every: int = 16,
        telemetry=None,
        _wal_replay: list | None = None,
    ):
        self.policy = policy if policy is not None else StreamPolicy()
        self.validation = ValidationPolicy.coerce(validation)
        self.dyn = DynamicGraph(
            g, compact_threshold=self.policy.compact_threshold
        )
        self.s = int(s)
        self.dims = int(dims)
        self.seed = int(seed)
        self.ortho = ortho
        self.gs_method = gs_method
        self.drop_tol = float(drop_tol)
        self.traversal = traversal
        self.telemetry = telemetry
        self._spec = ConstraintSpec.resolve(
            constraints, pins=pins, masses=masses, region=region
        )
        self._spec.validate_for(g.n, self.dims)
        #: Cached Gram products keyed to the *current* base basis: the
        #: pin-deflated (pin_set, S_c, Z_c) triple and/or the plain Z.
        #: Cleared whenever the basis is rebuilt (any graph change).
        self._warm_extra: dict = {}
        self._fallback_warned = False
        #: Successful updates applied so far (the session's frame number).
        self.epoch = 0
        self._since_full = 0
        self.stats = {
            "updates": 0,
            "repairs": 0,
            "relayouts": 0,
            "warm_eigensolves": 0,
            "constraint_updates": 0,
            "repair_fallbacks": 0,
            "autosave_failures": 0,
        }
        self._autosave_warned = False
        if layout is not None:
            self._adopt(g, layout)
        else:
            res = parhde(
                g,
                self.s,
                dims=self.dims,
                seed=self.seed,
                ortho=ortho,
                gs_method=gs_method,
                drop_tol=drop_tol,
                traversal=self.traversal,
                constraints=self._spec if not self._spec.is_trivial else None,
                validate=self.validation,
            )
            self.coords = res.coords
            self.B = res.B
            self.pivots = np.asarray(res.pivots, dtype=np.int64)
            self.eigenvalues = res.eigenvalues
            if res.warm is not None:
                # Keep the *pre-deflation* basis: repairs, warm prefixes
                # and snapshots all operate on it; deflation products
                # ride separately in _warm_extra.
                self.S = np.asarray(res.warm["S"], dtype=np.float64)
                self._kept = [int(i) for i in res.warm["kept"]]
                self._warm_extra = {
                    k: res.warm[k] for k in ("deflated", "Z") if k in res.warm
                }
            else:
                self.S = res.S
                dropped = set(res.dropped)
                self._kept = [
                    i for i in range(self.B.shape[1]) if i not in dropped
                ]
        self._Y: np.ndarray | None = None
        self.autosave_path = Path(autosave) if autosave is not None else None
        self._wal = None
        self._wal_suppress = False
        self._wal_snapshot_every = max(1, int(wal_snapshot_every))
        if wal is not None:
            from ..wal import WriteAheadLog

            self._wal = (
                wal
                if isinstance(wal, WriteAheadLog)
                else WriteAheadLog(wal, fsync=wal_fsync, telemetry=telemetry)
            )
        if _wal_replay:
            # Records journaled after the snapshot this session was
            # constructed from (resume_wal): re-apply them through the
            # normal update paths with journaling suppressed — they are
            # already in the log.
            self._wal_suppress = True
            try:
                for record in _wal_replay:
                    try:
                        self._replay_wal_record(record)
                    except Exception as exc:  # noqa: BLE001 — stop at tear
                        logger.warning(
                            "stream WAL replay stopped at lsn %s (%s); the"
                            " session resumes from the %d updates before it",
                            record.get("lsn"), exc, self.epoch,
                        )
                        break
            finally:
                self._wal_suppress = False
        if self._wal is not None:
            # Checkpoint the constructed (or resumed) state: the WAL dir
            # is self-contained from birth, and a resume compacts the
            # records it just replayed.
            self._wal_snapshot()
        self._autosave()

    @classmethod
    def from_layout(cls, g: CSRGraph, path, **kwargs) -> "StreamSession":
        """Warm-start a session from a saved layout archive.

        The archive must have been written with
        ``save_layout(..., include_subspace=True)`` (the default); slim
        archives raise a clear error.
        """
        from ..core.serialize import load_layout

        result = load_layout(path)
        return cls(g, layout=result, **kwargs)

    @classmethod
    def resume(cls, g: CSRGraph, path, **kwargs) -> "StreamSession":
        """Resume from an autosave archive, or start fresh without one.

        The crash-recovery entry point: pass the same ``path`` the
        killed session autosaved to.  A missing or unreadable archive
        (including one corrupted mid-crash) falls back to a fresh
        session that autosaves to the same path; a readable one restores
        the frame, subspace and stream epoch of the last completed
        update.  ``g`` must be the graph as of that update.
        """
        p = Path(path)
        if p.exists():
            try:
                return cls.from_layout(g, p, autosave=p, **kwargs)
            except (OSError, ValueError, KeyError) as exc:
                logger.warning(
                    "cannot resume stream session from %s (%s);"
                    " starting fresh", p, exc,
                )
        return cls(g, autosave=p, **kwargs)

    @classmethod
    def resume_wal(
        cls, g: CSRGraph, wal_dir, *, wal_fsync: str = "batch", **kwargs
    ) -> "StreamSession":
        """Resume from (or start journaling to) a WAL directory.

        ``g`` is the stream's *initial* graph; it seeds a fresh session
        when the directory is empty.  Otherwise the newest checkpoint's
        graph + frame archives restore the last snapshotted state and
        the post-snapshot journal records replay on top — O(snapshot +
        recent deltas), not O(stream history).  An unreadable checkpoint
        falls back to a fresh session on ``g`` (with a warning): the
        journal alone cannot reconstruct state older than its compaction
        floor.
        """
        from ..core.serialize import load_layout
        from ..graph.io import load_npz
        from ..wal import WriteAheadLog

        log = WriteAheadLog(
            wal_dir, fsync=wal_fsync, telemetry=kwargs.get("telemetry")
        )
        replay = log.replay()
        base_g, layout, records = g, None, []
        if replay.snapshot is not None:
            try:
                base_g = load_npz(Path(wal_dir) / replay.snapshot["graph"])
                layout = load_layout(Path(wal_dir) / replay.snapshot["frame"])
                records = [
                    r
                    for r in replay.records
                    if int(r.get("lsn", 0)) > replay.floor
                ]
            except (OSError, ValueError, KeyError) as exc:
                logger.warning(
                    "cannot restore stream checkpoint from %s (%s);"
                    " starting fresh", wal_dir, exc,
                )
                base_g, layout, records = g, None, []
        return cls(base_g, layout=layout, wal=log, _wal_replay=records, **kwargs)

    def _replay_wal_record(self, record: dict) -> None:
        rtype = record.get("type")
        if rtype == "update":
            self.update(
                EdgeDelta.from_json(record.get("delta") or {}),
                strict=bool(record.get("strict", True)),
            )
        elif rtype == "constraints":
            self.set_constraints(record.get("spec") or {})
        else:
            raise ValueError(f"unknown stream WAL record type {rtype!r}")

    def _journal(self, record: dict) -> None:
        """Append one record (update ack path); checkpoint on cadence."""
        if self._wal is None or self._wal_suppress:
            return
        self._wal.append(record)
        if self._wal.appends_since_snapshot >= self._wal_snapshot_every:
            self._wal_snapshot()

    def _wal_snapshot(self) -> None:
        """Checkpoint frame + graph archives and compact the journal."""
        from ..core.serialize import save_layout
        from ..graph.io import save_npz

        if self._wal is None:
            return
        floor = self._wal.last_lsn
        frame_name = f"frame-{floor:016d}.npz"
        graph_name = f"graph-{floor:016d}.npz"
        wal_dir = self._wal.dir
        try:
            save_layout(self.snapshot_result(), wal_dir / frame_name)
            save_npz(self.graph, wal_dir / graph_name)
            self._wal.snapshot(
                {"frame": frame_name, "graph": graph_name, "epoch": self.epoch},
                floor=floor,
            )
            for old in wal_dir.glob("frame-*.npz"):
                if old.name < frame_name:
                    old.unlink(missing_ok=True)
            for old in wal_dir.glob("graph-*.npz"):
                if old.name < graph_name:
                    old.unlink(missing_ok=True)
        except OSError as exc:
            # Same contract as autosave: persistence must not kill the
            # stream it protects (the journal itself is still intact).
            self.stats["autosave_failures"] += 1
            if self.telemetry is not None:
                self.telemetry.inc("stream.autosave_failures")
            if not self._autosave_warned:
                self._autosave_warned = True
                logger.warning(
                    "stream WAL checkpoint in %s failed: %s (logged once;"
                    " failures counted in stats['autosave_failures'])",
                    wal_dir, exc,
                )

    def wal_stats(self) -> dict | None:
        """The journal's counter snapshot, or ``None`` without a WAL."""
        return self._wal.stats() if self._wal is not None else None

    def close(self) -> None:
        """Flush and close the WAL (no-op for journal-less sessions)."""
        if self._wal is not None:
            self._wal.close()

    def _adopt(self, g: CSRGraph, layout: LayoutResult) -> None:
        B = np.asarray(layout.B, dtype=np.float64)
        S = np.asarray(layout.S, dtype=np.float64)
        pivots = np.asarray(layout.pivots, dtype=np.int64)
        if B.size == 0 or S.size == 0 or pivots.size == 0:
            raise ValueError(
                "layout archive lacks the subspace (B/S/pivots); re-save"
                " with include_subspace=True to warm-start a session"
            )
        if B.shape[0] != g.n or S.shape[0] != g.n:
            raise ValueError(
                f"layout is for a {B.shape[0]}-vertex graph,"
                f" got one with {g.n} vertices"
            )
        if len(pivots) != B.shape[1]:
            raise ValueError("pivot count does not match B's columns")
        self.coords = np.array(layout.coords, dtype=np.float64)
        self.B = np.array(B)
        self.S = np.array(S)
        self.pivots = pivots
        self.eigenvalues = np.asarray(layout.eigenvalues, dtype=np.float64)
        self.s = B.shape[1]
        dropped = set(int(i) for i in np.asarray(layout.dropped).ravel())
        self._kept = [i for i in range(self.s) if i not in dropped]
        for key in ("dims", "seed", "ortho", "gs_method", "drop_tol", "traversal"):
            if key in layout.params:
                setattr(self, key, layout.params[key])
        self.dims = int(self.dims)
        self.epoch = int(layout.params.get("stream_epoch", 0))
        spec = ConstraintSpec.coerce(layout.params.get("constraints"))
        spec.validate_for(g.n, self.dims)
        self._spec = spec
        self._warm_extra = {}

    # -- public API --------------------------------------------------------
    @property
    def graph(self) -> CSRGraph:
        """The current graph, materialized (cached by the overlay)."""
        return self.dyn.to_csr()

    @property
    def n(self) -> int:
        return self.dyn.n

    @property
    def constraints(self) -> ConstraintSpec:
        """The session's active constraint set (pins, masses, region)."""
        return self._spec

    # -- constraint edits ---------------------------------------------------
    def pin(self, vertex: int, pos) -> StreamUpdate:
        """Pin (or drag) one vertex to ``pos`` and emit the next frame.

        A pin/drag is just another delta: the existing basis is reused
        (deflation products too when the *set* of pinned vertices is
        unchanged — the drag case), so the frame costs a small eigensolve
        plus a carrier solve instead of BFS + orthogonalization.
        """
        pins = dict(self._spec.pins)
        pins[int(vertex)] = tuple(float(c) for c in pos)
        return self.set_constraints(
            ConstraintSpec(
                pins=pins, masses=self._spec.masses, region=self._spec.region
            ),
            _reason="pin",
        )

    def unpin(self, vertex: int | None = None) -> StreamUpdate:
        """Release one pinned vertex (or all of them) and re-relax."""
        pins = dict(self._spec.pins)
        if vertex is None:
            pins.clear()
        else:
            pins.pop(int(vertex), None)
        return self.set_constraints(
            ConstraintSpec(
                pins=pins, masses=self._spec.masses, region=self._spec.region
            ),
            _reason="unpin",
        )

    def set_constraints(
        self,
        constraints: ConstraintSpec | dict | None = None,
        *,
        pins=None,
        masses=None,
        region=None,
        _reason: str = "constraints",
    ) -> StreamUpdate:
        """Replace the session's constraint set and emit the next frame.

        The graph is untouched, so no BFS runs.  Mass changes alter the
        orthogonalization inner product and re-orthogonalize the basis;
        pure pin/region edits reuse it as-is (and a drag — same pin set,
        new coordinates — additionally reuses the deflated Gram
        products).  Rolls back on failure like :meth:`update`.
        """
        t0 = time.perf_counter()
        spec = ConstraintSpec.resolve(
            constraints, pins=pins, masses=masses, region=region
        )
        spec.validate_for(self.n, self.dims)
        led = Ledger()
        prev = (self.coords, self.S, self.eigenvalues, self._kept,
                self._Y, self._spec, dict(self._warm_extra))
        masses_changed = spec.masses != self._spec.masses
        self._spec = spec
        try:
            if masses_changed:
                # New inner product: the basis (and everything derived
                # from it) must be rebuilt from the repaired B.
                self._warm_extra = {}
                with led.phase("DOrtho"):
                    ores = d_orthogonalize(
                        self.B,
                        self._ortho_weight(self.dyn.to_csr()),
                        method=self.gs_method,
                        drop_tol=self.drop_tol,
                        ledger=led,
                    )
                if ores.S.shape[1] < self.dims:
                    raise ValueError(
                        f"only {ores.S.shape[1]} independent distance"
                        " vectors survived under the new masses"
                    )
                self.S = ores.S
                self._kept = list(ores.kept)
                self._Y = None
            res = self._constrained_finish(led)
            coords = self._place(res.coords)
        except Exception:
            (self.coords, self.S, self.eigenvalues, self._kept,
             self._Y, self._spec, self._warm_extra) = prev
            raise
        self.coords = coords
        self.eigenvalues = res.eigenvalues
        self.epoch += 1
        self.stats["constraint_updates"] += 1
        self._journal(
            {"type": "constraints", "spec": spec.to_params(), "reason": _reason}
        )
        self._autosave()
        return StreamUpdate(
            epoch=self.epoch,
            mode="constraint",
            reason=_reason,
            coords=coords,
            drift=0.0,
            changed_entries=0,
            edges_examined=0,
            elapsed=time.perf_counter() - t0,
            ledger=led,
        )

    def update(self, delta: EdgeDelta, *, strict: bool = True) -> StreamUpdate:
        """Apply one delta batch and produce the next frame.

        Raises ``ValueError`` (after rolling the graph and layout state
        back) when the delta would disconnect the graph — layouts are
        defined for connected graphs only.
        """
        t0 = time.perf_counter()
        led = Ledger()
        prev = (self.coords, self.B.copy(), self.S, self.pivots,
                self.eigenvalues, self._kept, self._Y,
                dict(self._warm_extra))
        applied = self.dyn.apply(delta, strict=strict)
        try:
            if self.dyn.is_weighted:
                # Incremental repair covers hop distances only; make the
                # silent degradation observable (satellite: the fallback
                # used to be invisible in production streams).
                self.stats["repair_fallbacks"] += 1
                if self.telemetry is not None:
                    self.telemetry.inc("stream.repair_fallbacks")
                if not self._fallback_warned:
                    self._fallback_warned = True
                    logger.warning(
                        "weighted session: incremental repair unavailable,"
                        " every update runs a full traversal (counted in"
                        " stats['repair_fallbacks'])"
                    )
                out = self._full_relayout(led, "weighted", warm=False)
            elif self._since_full + 1 >= self.policy.staleness_limit:
                out = self._full_relayout(led, "staleness", warm=True)
            else:
                out = self._try_repair(led, applied)
        except Exception:
            # Roll back: reinstate the pre-update graph and layout state.
            (self.coords, self.B, self.S, self.pivots,
             self.eigenvalues, self._kept, self._Y,
             self._warm_extra) = prev
            self.dyn.apply(applied.inverse(), strict=False)
            raise
        self.epoch += 1
        self.stats["updates"] += 1
        out.epoch = self.epoch
        out.elapsed = time.perf_counter() - t0
        out.applied_edits = applied.size
        out.skipped_edits = applied.skipped
        out.compacted = self.dyn.maybe_compact() or out.compacted
        self._journal(
            {"type": "update", "delta": delta.to_json(), "strict": bool(strict)}
        )
        self._autosave()
        return out

    def _autosave(self) -> bool:
        """Atomically persist the current frame; ``True`` on success."""
        path = self.autosave_path
        if path is None or self._wal_suppress:
            return False
        from ..core.serialize import save_layout

        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=".tmp-", suffix=".npz"
            )
            os.close(fd)
            try:
                save_layout(self.snapshot_result(), tmp)
                os.replace(tmp, path)
            finally:
                if os.path.exists(tmp):
                    os.unlink(tmp)
        except Exception as exc:  # noqa: BLE001 — autosave is best-effort
            self.stats["autosave_failures"] += 1
            if self.telemetry is not None:
                self.telemetry.inc("stream.autosave_failures")
            if not self._autosave_warned:
                # Log-once: a broken path would otherwise warn on every
                # update for the stream's whole lifetime; the counter
                # keeps the failures observable after the first line.
                self._autosave_warned = True
                logger.warning(
                    "stream autosave to %s failed: %s (logged once; failures"
                    " counted in stats['autosave_failures'])", path, exc,
                )
            return False
        return True

    def snapshot_result(self) -> LayoutResult:
        """The current frame as a :class:`LayoutResult` (serializable)."""
        return LayoutResult(
            coords=self.coords,
            algorithm="parhde",
            B=self.B,
            S=self.S,
            eigenvalues=self.eigenvalues,
            pivots=self.pivots,
            dropped=[i for i in range(self.B.shape[1]) if i not in self._kept],
            params=self._snapshot_params(),
        )

    def _snapshot_params(self) -> dict:
        params = dict(
            s=self.s,
            dims=self.dims,
            seed=self.seed,
            pivots="kcenters",
            ortho=self.ortho,
            gs_method=self.gs_method,
            project_basis="S",
            drop_tol=self.drop_tol,
            traversal=self.traversal,
            stream_epoch=self.epoch,
        )
        if not self._spec.is_trivial:
            params["constraints"] = self._spec.to_params()
        return params

    # -- repair path -------------------------------------------------------
    def _try_repair(self, led: Ledger, applied) -> StreamUpdate:
        with led.phase("BFS"):
            rep = repair_distances(
                self.dyn,
                self.B,
                self.pivots,
                applied.inserted,
                applied.deleted,
                ledger=led,
            )
        if rep.disconnected:
            raise ValueError(
                "delta disconnects the graph; layouts require a connected"
                " graph (update rolled back)"
            )
        if rep.drift > self.policy.drift_threshold:
            # B is already repaired (and exact), but the pivots were
            # chosen for the old metric — re-pivot from scratch.
            return self._full_relayout(led, "drift", warm=False, drift=rep.drift)

        if self.validation.enabled and self.validation.run_deep:
            # Exact-repair contract: the repaired B must equal fresh
            # traversals from the same pivots on the post-delta graph,
            # and the overlay's two read paths must agree.  Raising here
            # is inside update()'s try block, so state rolls back.
            self.validation.handle(check_overlay_digest(self.dyn))
            self.validation.handle(
                check_repair_equivalence(self.dyn.to_csr(), self.B, self.pivots)
            )

        prev_kept = self._kept
        d_eff = self._ortho_weight(self.dyn)
        with led.phase("DOrtho"):
            warm_cols = 0
            if self.ortho == "plain" and not self._spec.has_masses:
                # Masses change even the "plain" inner product, so the
                # column-prefix reuse only applies unweighted.
                warm_cols = self._warm_prefix(prev_kept, rep.changed)
            if warm_cols:
                ores = self._continue_dortho(warm_cols, led)
            else:
                ores = d_orthogonalize(
                    self.B,
                    d_eff,
                    method=self.gs_method,
                    drop_tol=self.drop_tol,
                    ledger=led,
                )
        if ores.S.shape[1] < self.dims:
            raise ValueError(
                f"only {ores.S.shape[1]} independent distance vectors"
                " survived after repair; escalate to a full relayout"
            )
        S = ores.S
        if self.validation.enabled:
            self.validation.handle(
                check_d_orthogonality(S, d_eff, tol=self.validation.ortho_tol)
            )

        if not self._spec.is_trivial:
            return self._finish_constrained_update(
                led, S, ores, mode="repair", reason="repair",
                drift=rep.drift, changed=int(rep.changed.sum()),
                edges_examined=rep.edges_examined, warm_cols=warm_cols,
            )

        with led.phase("TripleProd"):
            P = laplacian_spmm(self.dyn.base, S, ledger=led, subphase="LS")
            self._overlay_correction(P, S, led)
            Z = dense_gemm(S.T, P, ledger=led, subphase="S'(LS)")

        with led.phase("Other"):
            warm_eig = False
            pair = self._warm_eigenpairs(Z)
            if pair is not None:
                evals, Y = pair
                warm_eig = True
                self.stats["warm_eigensolves"] += 1
            else:
                evals, Y = extreme_eigenpairs(Z, self.dims, which="smallest")
            coords = S @ Y
            led.add(
                map_cost(
                    self.dyn.n * S.shape[1] * self.dims,
                    flops_per_elem=2.0,
                    bytes_per_elem=F64,
                )
            )
        coords = self._anchor(coords)

        self.coords = coords
        self.S = S
        self.eigenvalues = evals
        self._kept = list(ores.kept)
        self._Y = Y
        self._since_full += 1
        self.stats["repairs"] += 1
        return StreamUpdate(
            epoch=self.epoch,
            mode="repair",
            reason="repair",
            coords=coords,
            drift=rep.drift,
            changed_entries=int(rep.changed.sum()),
            edges_examined=rep.edges_examined,
            elapsed=0.0,
            ledger=led,
            warm_ortho_cols=warm_cols,
            warm_eigensolve=warm_eig,
        )

    def _warm_prefix(self, prev_kept: list[int], changed: np.ndarray) -> int:
        """Leading ``S`` columns reusable after repair (plain ortho only).

        Column ``i`` of the previous ``S`` equals what MGS would
        recompute iff every earlier input column was kept (no drops
        shift the basis) and columns ``0..i`` of ``B`` are unchanged.
        """
        p = 0
        while (
            p < len(prev_kept)
            and prev_kept[p] == p
            and p < len(changed)
            and changed[p] == 0
        ):
            p += 1
        return p

    def _continue_dortho(self, p: int, led: Ledger) -> OrthoResult:
        """Resume plain MGS after the first ``p`` reusable basis columns."""
        n, s = self.B.shape
        d = np.ones(n, dtype=np.float64)
        cols = [np.full(n, 1.0 / np.sqrt(float(n)), dtype=np.float64)]
        cols.extend(self.S[:, j].copy() for j in range(p))
        kept = list(range(p))
        dropped: list[int] = []
        for i in range(p, s):
            v = self.B[:, i].astype(np.float64, copy=True)
            for q in cols:
                coeff = blas.weighted_dot(q, d, v, led)
                blas.axpy(-coeff, q, v, led)
            nrm = blas.weighted_norm(v, d, led)
            if nrm <= self.drop_tol:
                dropped.append(i)
                continue
            blas.scale(1.0 / nrm, v, led)
            cols.append(v)
            kept.append(i)
        S = (
            np.column_stack(cols[1:])
            if kept
            else np.zeros((n, 0), dtype=np.float64)
        )
        return OrthoResult(S=S, kept=kept, dropped=dropped)

    def _overlay_correction(self, P: np.ndarray, S: np.ndarray, led: Ledger) -> None:
        """Add ``(L_current - L_base) S`` to ``P`` from the overlay edges.

        Each overlay edit contributes ``sign * w * (e_u - e_v)(e_u - e_v)'``
        to the Laplacian (covering both the degree-diagonal and adjacency
        changes), so the product correction is two scattered row updates
        per edge — no CSR rebuild on the hot path.
        """
        us, vs, ws, ss = self.dyn.overlay_entries()
        k = S.shape[1]
        if not len(us):
            return
        coef = (ss * ws)[:, None]
        diff = coef * (S[us] - S[vs])
        np.add.at(P, us, diff)
        np.add.at(P, vs, -diff)
        miss = miss_rate(self.dyn.base)
        led.add(
            KernelCost(
                work=6.0 * len(us) * k,
                flops=4.0 * len(us) * k,
                bytes_streamed=len(us) * 2 * I64,
                random_lines=random_lines_for(4 * len(us) * k, miss),
                regions=1,
            ),
            subphase="overlay",
        )

    def _warm_eigenpairs(self, Z: np.ndarray) -> tuple[np.ndarray, np.ndarray] | None:
        """Accept the previous axes as Ritz pairs of the new ``Z`` if the
        old subspace is still numerically invariant; else signal a cold
        solve.  Safe: a loose residual never passes, so quality cannot
        silently degrade."""
        Y0 = self._Y
        k = Z.shape[0]
        if Y0 is None or Y0.shape[0] != k or Y0.shape[1] != self.dims:
            return None
        Q, _ = np.linalg.qr(Y0)
        H = Q.T @ Z @ Q
        H = (H + H.T) / 2.0
        evals, W = np.linalg.eigh(H)
        Y = Q @ W
        resid = Z @ Y - Y * evals
        scale = float(np.linalg.norm(Z)) or 1.0
        if float(np.linalg.norm(resid)) > 1e-8 * scale:
            return None
        return evals, Y

    # -- full relayout -----------------------------------------------------
    def _full_relayout(
        self, led: Ledger, reason: str, *, warm: bool, drift: float = 0.0
    ) -> StreamUpdate:
        self.dyn.compact()
        g = self.dyn.base
        warm_pivots = bool(
            warm and not g.is_weighted and len(self.pivots) == self.s
        )
        # The configured traversal kernel must survive relayouts and
        # post-compaction re-traversals (it used to be silently dropped
        # here, falling back to per-source scalar BFS).
        traversal = "per-source" if g.is_weighted else self.traversal
        with led.phase("BFS"):
            if warm_pivots:
                if traversal == "batched":
                    ms = run_sources_batched(g, self.pivots, ledger=led)
                else:
                    ms = run_sources(g, self.pivots, ledger=led)
            else:
                ms = select_and_traverse(
                    g,
                    self.s,
                    strategy="kcenters",
                    traversal=traversal,
                    seed=self.seed,
                    ledger=led,
                )
        B = ms.distances
        if B.min() < 0:
            raise ValueError(
                "delta disconnects the graph; layouts require a connected"
                " graph (update rolled back)"
            )
        d_eff = self._ortho_weight(g)
        with led.phase("DOrtho"):
            ores = d_orthogonalize(
                B, d_eff, method=self.gs_method, drop_tol=self.drop_tol,
                ledger=led,
            )
        if ores.S.shape[1] < self.dims:
            raise ValueError(
                f"only {ores.S.shape[1]} independent distance vectors"
                f" survived; increase s (got s={self.s})"
            )
        S = ores.S
        if self.validation.enabled:
            self.validation.handle(
                check_d_orthogonality(S, d_eff, tol=self.validation.ortho_tol)
            )
        if not self._spec.is_trivial:
            self.B = B
            self.pivots = np.asarray(ms.sources, dtype=np.int64)
            return self._finish_constrained_update(
                led, S, ores, mode="relayout", reason=reason, drift=drift,
                compacted=True, warm_pivots=warm_pivots, g=g,
            )
        with led.phase("TripleProd"):
            P = laplacian_spmm(g, S, ledger=led, subphase="LS")
            Z = dense_gemm(S.T, P, ledger=led, subphase="S'(LS)")
        with led.phase("Other"):
            evals, Y = extreme_eigenpairs(Z, self.dims, which="smallest")
            coords = S @ Y
            led.add(
                map_cost(
                    g.n * S.shape[1] * self.dims,
                    flops_per_elem=2.0,
                    bytes_per_elem=F64,
                )
            )
        coords = self._anchor(coords)

        self.coords = coords
        self.B = B
        self.S = S
        self.pivots = np.asarray(ms.sources, dtype=np.int64)
        self.eigenvalues = evals
        self._kept = list(ores.kept)
        self._Y = Y
        self._since_full = 0
        self.stats["relayouts"] += 1
        return StreamUpdate(
            epoch=self.epoch,
            mode="relayout",
            reason=reason,
            coords=coords,
            drift=drift,
            changed_entries=0,
            edges_examined=0,
            elapsed=0.0,
            ledger=led,
            compacted=True,
            warm_pivots=warm_pivots,
        )

    # -- constrained assembly ----------------------------------------------
    def _ortho_weight(self, src) -> np.ndarray | None:
        """The orthogonalization weight ``m·d`` (or ``m``, ``d``, ``None``)."""
        d = src.weighted_degrees if self.ortho == "D" else None
        if not self._spec.has_masses:
            return d
        m = self._spec.mass_vector(src.n)
        return m * d if d is not None else m

    def _place(self, coords: np.ndarray) -> np.ndarray:
        """Anchor/clamp a new frame according to the constraint set.

        Pinned frames skip Procrustes — the pins fix the gauge, and any
        rigid motion would move them off their bitwise positions.  The
        region re-clamps after anchoring (idempotent, so an in-region
        frame is untouched).
        """
        if self._spec.has_pins:
            return coords
        return self._spec.clamp(self._anchor(coords))

    def _constrained_finish(self, led: Ledger, *, g=None, pivots=None):
        """Run the warm ParHDE tail (deflation → eigensolve → carrier →
        clamp) on the session's current basis, reusing cached Gram
        products when the pin set is unchanged."""
        g = g if g is not None else self.dyn.to_csr()
        warm = {
            "S": self.S,
            "kept": list(self._kept),
            "pivots": np.asarray(
                pivots if pivots is not None else self.pivots, dtype=np.int64
            ),
        }
        warm.update(self._warm_extra)
        res = parhde(
            g,
            self.s,
            dims=self.dims,
            seed=self.seed,
            ortho=self.ortho,
            gs_method=self.gs_method,
            drop_tol=self.drop_tol,
            constraints=self._spec if not self._spec.is_trivial else None,
            warm_base=warm,
            ledger=led,
            validate=self.validation,
        )
        if res.warm is not None:
            self._warm_extra = {
                k: res.warm[k] for k in ("deflated", "Z") if k in res.warm
            }
        return res

    def _finish_constrained_update(
        self,
        led: Ledger,
        S: np.ndarray,
        ores: OrthoResult,
        *,
        mode: str,
        reason: str,
        drift: float = 0.0,
        changed: int = 0,
        edges_examined: int = 0,
        warm_cols: int = 0,
        compacted: bool = False,
        warm_pivots: bool = False,
        g=None,
    ) -> StreamUpdate:
        """Constrained tail of a repair or relayout: the basis was just
        rebuilt, so cached Gram products are stale and are dropped."""
        self._warm_extra = {}
        self.S = S
        self._kept = list(ores.kept)
        res = self._constrained_finish(led, g=g)
        coords = self._place(res.coords)
        self.coords = coords
        self.eigenvalues = res.eigenvalues
        self._Y = None
        if mode == "repair":
            self._since_full += 1
            self.stats["repairs"] += 1
        else:
            self._since_full = 0
            self.stats["relayouts"] += 1
        return StreamUpdate(
            epoch=self.epoch,
            mode=mode,
            reason=reason,
            coords=coords,
            drift=drift,
            changed_entries=changed,
            edges_examined=edges_examined,
            elapsed=0.0,
            ledger=led,
            compacted=compacted,
            warm_pivots=warm_pivots,
            warm_ortho_cols=warm_cols,
        )

    def _anchor(self, coords: np.ndarray) -> np.ndarray:
        """Procrustes-align the new frame onto the previous one."""
        try:
            return procrustes_align(coords, self.coords).aligned
        except ValueError:
            return coords
