"""Weighted-centroid refinement and eigensolver preprocessing (§4.5.3).

Kirmani & Madduri observed that an HDE layout followed by a lightweight
*weighted centroid* refinement closely approximates the true
degree-normalized eigenvectors — one can go from the HDE drawing to the
exact spectral drawing of Figure 1 with a few cheap smoothing sweeps.
A centroid sweep moves every vertex to the weighted average of its
neighbors, i.e. applies the walk operator ``D^{-1} A``; interleaved
D-orthonormalization keeps the axes from collapsing onto the trivial
eigenvector.  This is exactly power iteration *warm-started* by HDE,
which is why it converges 22x-131x faster than power iteration from a
random start (Table 6 of [Kirmani & Madduri 2018], reproduced by
``benchmarks/bench_refine_eigensolver.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.csr import CSRGraph
from ..linalg import blas
from ..linalg.laplacian import walk_spmm
from ..parallel.costs import Ledger

__all__ = ["RefineResult", "centroid_sweep", "refine", "residual"]


def _d_orthonormalize_columns(
    X: np.ndarray, d: np.ndarray, ledger: Ledger | None
) -> np.ndarray:
    """MGS D-orthonormalization of columns against 1 and each other."""
    n, k = X.shape
    ones = np.full(n, 1.0 / np.sqrt(float(d.sum())))
    basis = [ones]
    out = np.empty_like(X)
    for j in range(k):
        v = X[:, j].copy()
        for q in basis:
            coeff = blas.weighted_dot(q, d, v, ledger)
            blas.axpy(-coeff, q, v, ledger)
        nrm = blas.weighted_norm(v, d, ledger)
        if nrm == 0:
            raise ValueError("refinement collapsed a layout axis")
        blas.scale(1.0 / nrm, v, ledger)
        basis.append(v)
        out[:, j] = v
    return out


def centroid_sweep(
    g: CSRGraph, coords: np.ndarray, *, ledger: Ledger | None = None
) -> np.ndarray:
    """One weighted-centroid smoothing step with re-orthonormalization."""
    if coords.shape[0] != g.n:
        raise ValueError("coords row count must equal n")
    d = g.weighted_degrees
    Y = walk_spmm(g, coords, ledger=ledger)
    return _d_orthonormalize_columns(Y, d, ledger)


def residual(g: CSRGraph, coords: np.ndarray) -> float:
    """How far the axes are from walk-matrix eigenvectors.

    Measured as the maximum column D-norm of
    ``D^{-1} A x - (x' D D^{-1} A x) x`` after D-normalizing ``x``; zero
    iff every column is an exact eigenvector.
    """
    d = g.weighted_degrees
    total = 0.0
    for j in range(coords.shape[1]):
        x = coords[:, j].astype(np.float64, copy=True)
        nrm = float(np.sqrt(np.dot(x * d, x)))
        if nrm == 0:
            return np.inf
        x /= nrm
        wx = walk_spmm(g, x)
        lam = float(np.dot(x * d, wx))
        r = wx - lam * x
        total = max(total, float(np.sqrt(np.dot(r * d, r))))
    return total


@dataclass
class RefineResult:
    coords: np.ndarray
    sweeps: int
    residual: float


def refine(
    g: CSRGraph,
    coords: np.ndarray,
    *,
    tol: float = 1e-6,
    max_sweeps: int = 1000,
    ledger: Ledger | None = None,
) -> RefineResult:
    """Refine a layout toward the degree-normalized eigenvectors.

    Runs centroid sweeps until the per-sweep coordinate change (maximum
    column D-norm, sign-adjusted) drops below ``tol``.  Warm-started from
    an HDE layout this typically needs a small fraction of the sweeps a
    random start would (the §4.5.3 use case: preprocessing for iterative
    eigensolvers such as LOBPCG).
    """
    d = g.weighted_degrees
    X = _d_orthonormalize_columns(
        coords.astype(np.float64, copy=True), d, ledger
    )
    sweeps = 0
    change = np.inf
    while sweeps < max_sweeps and change > tol:
        sweeps += 1
        Xn = centroid_sweep(g, X, ledger=ledger)
        change = 0.0
        for j in range(X.shape[1]):
            diff = Xn[:, j] - X[:, j]
            summ = Xn[:, j] + X[:, j]
            cj = min(
                float(np.sqrt(np.dot(diff * d, diff))),
                float(np.sqrt(np.dot(summ * d, summ))),
            )
            change = max(change, cj)
        X = Xn
    return RefineResult(coords=X, sweeps=sweeps, residual=residual(g, X))
