"""Constrained-layout kernels: pin deflation and carrier fields.

Three primitives turn the unconstrained ParHDE subspace machinery into a
pin-respecting solver (ROADMAP item 4; cf. the mass-weighted fixed-
coordinate spectral drawing of FRAME's ``spectral_algorithm.py``):

* :func:`deflate_basis` — given the W-orthonormal basis ``S``
  (``W = M·D``), produce a basis of the *free* subspace: every column
  is exactly zero on the pinned rows.  Zero the pinned rows of ``S``,
  then re-orthogonalize under ``W`` against the **free-vertex
  indicator** instead of the all-ones vector — Gram-Schmidt only forms
  linear combinations, so rows that start at zero stay bitwise zero,
  and deflating the indicator removes the quasi-constant free mode that
  would otherwise dominate the spectrum (a constant-on-free-vertices
  eigenvector collapses the layout).
* :func:`carrier_field` — the minimum-Dirichlet-energy interpolation of
  the pin positions within the affine space ``X_p + span(S_c)``:
  solve ``(S_cᵀ L S_c) W = −S_cᵀ L X_p`` (the normal equations of
  ``min_W ‖X_p + S_c W‖_L``), where ``X_p`` carries the pin coordinates
  on pinned rows and zeros elsewhere.  The Gram matrix is exactly the
  TripleProd output ``Z_c``, so the carrier costs one extra
  ``dims``-column SpMM plus an ``s×s`` dense solve.
* :func:`free_indicator` — the deflation vector itself.

The final constrained coordinates are
``carrier + S_c · Y`` (``Y`` = smallest eigenvectors of ``Z_c``),
followed by a bitwise write-back of the pin positions and the
idempotent region clamp — assembled by the caller
(:func:`repro.core.parhde`, :class:`repro.stream.StreamSession`).
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from ..linalg.blas import dense_gemm
from ..linalg.gram_schmidt import OrthoResult, d_orthogonalize
from ..linalg.laplacian import laplacian_spmm
from ..parallel.costs import Ledger
from ..parallel.primitives import F64, map_cost

__all__ = ["free_indicator", "deflate_basis", "carrier_field"]

#: Relative ridge added to the deflated Gram matrix before the carrier
#: solve.  ``Z_c`` is PSD and can be numerically singular when the free
#: subspace retains a near-null direction; a trace-scaled ridge keeps
#: the solve stable without visibly moving the interpolant.
_CARRIER_RIDGE = 1e-10


def free_indicator(n: int, pin_idx: np.ndarray) -> np.ndarray:
    """The (n,) vector that is 1 on free vertices and 0 on pinned ones."""
    c = np.ones(n, dtype=np.float64)
    c[pin_idx] = 0.0
    return c


def deflate_basis(
    S: np.ndarray,
    w: np.ndarray | None,
    pin_idx: np.ndarray,
    *,
    gs_method: str = "mgs",
    drop_tol: float = 1e-3,
    ledger: Ledger | None = None,
) -> OrthoResult:
    """W-orthonormal basis of the pin-free subspace spanned by ``S``.

    Parameters
    ----------
    S:
        ``(n, k)`` basis, typically already W-orthonormal (not
        required).  Not modified.
    w:
        The weight vector ``m·d`` (``None`` for unweighted).
    pin_idx:
        Pinned vertex ids.  Every returned column is exactly 0 there.

    Returns
    -------
    OrthoResult
        ``S`` has ``SᵀWS = I``, zero pinned rows, and is W-orthogonal
        to the free-vertex indicator; ``kept``/``dropped`` index the
        *input* columns.
    """
    n = S.shape[0]
    if len(pin_idx) >= n:
        raise ValueError("cannot pin every vertex — nothing left to lay out")
    S0 = S.copy()
    S0[pin_idx, :] = 0.0
    if ledger is not None:
        ledger.add(
            map_cost(
                len(pin_idx) * S.shape[1], flops_per_elem=0.0, bytes_per_elem=F64
            )
        )
    return d_orthogonalize(
        S0,
        w,
        method=gs_method,
        drop_tol=drop_tol,
        ledger=ledger,
        constant=free_indicator(n, pin_idx),
    )


def carrier_field(
    g: CSRGraph,
    S_c: np.ndarray,
    Z_c: np.ndarray,
    pin_idx: np.ndarray,
    pin_pos: np.ndarray,
    *,
    ledger: Ledger | None = None,
) -> np.ndarray:
    """Energy-minimizing interpolation of the pins over the free basis.

    Returns the ``(n, dims)`` carrier ``X_p + S_c W`` where
    ``(Z_c + εI) W = −S_cᵀ L X_p``.  Pinned rows equal ``pin_pos``
    exactly up to the (all-zero) contribution of ``S_c`` there — the
    caller still writes the pin positions back verbatim so the result
    is bitwise regardless of rounding.
    """
    n = g.n
    dims = pin_pos.shape[1]
    X = np.zeros((n, dims), dtype=np.float64)
    X[pin_idx] = pin_pos
    LX = laplacian_spmm(g, X, ledger=ledger, subphase="LXp")
    rhs = -dense_gemm(S_c.T, LX, ledger=ledger, subphase="S'(LXp)")
    k = Z_c.shape[0]
    scale = max(1.0, float(np.trace(Z_c)) / max(k, 1))
    W = np.linalg.solve(Z_c + (_CARRIER_RIDGE * scale) * np.eye(k), rhs)
    carrier = X + S_c @ W
    if ledger is not None:
        ledger.add(
            map_cost(n * k * dims, flops_per_elem=2.0, bytes_per_elem=F64)
        )
    return carrier
