"""Save and load layout results.

Layouts of large graphs are expensive enough to be worth persisting —
the zoom feature, partitioners, stress majorization and the serving
layer's disk cache tier (:mod:`repro.service.cache`) all consume a
previously computed layout.  The archive stores the numeric payload of
a :class:`LayoutResult` (coordinates, distance matrix, subspace,
eigenvalues, pivots) plus the parameter echo; the cost ledger and BFS
statistics are runtime artifacts and are not serialized.

Format history
--------------
* **v1** — initial format; the params echo was JSON-encoded with
  ``default=str``, which silently stringified numpy scalars (``s=10``
  saved from a ``np.int64`` came back as ``"10"``).
* **v2** — params echo preserves numeric types: numpy integers/floats/
  bools/arrays are converted to their Python equivalents before
  encoding, so a save → load round trip yields ``int``/``float``/
  ``bool``/``list`` values.

:func:`load_layout` accepts any version up to the current one and
raises a clear error for archives written by a *newer* library.
"""

from __future__ import annotations

import json
import os
from typing import Any

import numpy as np

from ..parallel.costs import Ledger
from .result import LayoutResult

__all__ = ["save_layout", "load_layout", "FORMAT_VERSION"]

#: Current archive format (see "Format history" above).
FORMAT_VERSION = 2
_FORMAT_VERSION = FORMAT_VERSION  # backwards-compatible alias
_MIN_FORMAT_VERSION = 1


def _params_default(value: Any) -> Any:
    """JSON fallback that keeps numeric params numeric (v2 behavior)."""
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    return str(value)


def save_layout(result: LayoutResult, path: str | os.PathLike) -> None:
    """Write a layout to a compressed ``.npz`` archive."""
    np.savez_compressed(
        path,
        format_version=np.int64(FORMAT_VERSION),
        coords=result.coords,
        B=result.B,
        S=result.S,
        eigenvalues=result.eigenvalues,
        pivots=result.pivots,
        dropped=np.asarray(result.dropped, dtype=np.int64),
        algorithm=np.array(result.algorithm),
        params=np.array(json.dumps(result.params, default=_params_default)),
    )


def load_layout(path: str | os.PathLike) -> LayoutResult:
    """Load a layout saved by :func:`save_layout`.

    Raises
    ------
    ValueError
        If the archive was written by a newer library version (its
        ``format_version`` exceeds :data:`FORMAT_VERSION`) or predates
        the earliest supported format.

    The returned result carries an empty ledger (costs are not
    persisted); performance queries require re-running the algorithm.
    """
    with np.load(path, allow_pickle=False) as data:
        version = int(data["format_version"])
        if version > FORMAT_VERSION:
            raise ValueError(
                f"layout archive {os.fspath(path)!r} has format version"
                f" {version}, newer than this library's supported version"
                f" {FORMAT_VERSION}; upgrade repro to read it"
            )
        if version < _MIN_FORMAT_VERSION:
            raise ValueError(
                f"unsupported layout archive version {version}"
                f" (supported: {_MIN_FORMAT_VERSION}..{FORMAT_VERSION})"
            )
        return LayoutResult(
            coords=data["coords"],
            algorithm=str(data["algorithm"]),
            B=data["B"],
            S=data["S"],
            eigenvalues=data["eigenvalues"],
            pivots=data["pivots"],
            dropped=data["dropped"].tolist(),
            ledger=Ledger(),
            params=json.loads(str(data["params"])),
        )
