"""Save and load layout results.

Layouts of large graphs are expensive enough to be worth persisting —
the zoom feature, partitioners and stress majorization all consume a
previously computed layout.  The archive stores the numeric payload of
a :class:`LayoutResult` (coordinates, distance matrix, subspace,
eigenvalues, pivots) plus the parameter echo; the cost ledger and BFS
statistics are runtime artifacts and are not serialized.
"""

from __future__ import annotations

import json
import os

import numpy as np

from ..parallel.costs import Ledger
from .result import LayoutResult

__all__ = ["save_layout", "load_layout"]

_FORMAT_VERSION = 1


def save_layout(result: LayoutResult, path: str | os.PathLike) -> None:
    """Write a layout to a compressed ``.npz`` archive."""
    np.savez_compressed(
        path,
        format_version=np.int64(_FORMAT_VERSION),
        coords=result.coords,
        B=result.B,
        S=result.S,
        eigenvalues=result.eigenvalues,
        pivots=result.pivots,
        dropped=np.asarray(result.dropped, dtype=np.int64),
        algorithm=np.array(result.algorithm),
        params=np.array(json.dumps(result.params, default=str)),
    )


def load_layout(path: str | os.PathLike) -> LayoutResult:
    """Load a layout saved by :func:`save_layout`.

    The returned result carries an empty ledger (costs are not
    persisted); performance queries require re-running the algorithm.
    """
    with np.load(path, allow_pickle=False) as data:
        version = int(data["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported layout archive version {version}"
            )
        return LayoutResult(
            coords=data["coords"],
            algorithm=str(data["algorithm"]),
            B=data["B"],
            S=data["S"],
            eigenvalues=data["eigenvalues"],
            pivots=data["pivots"],
            dropped=data["dropped"].tolist(),
            ledger=Ledger(),
            params=json.loads(str(data["params"])),
        )
