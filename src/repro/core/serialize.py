"""Save and load layout results.

Layouts of large graphs are expensive enough to be worth persisting —
the zoom feature, partitioners, stress majorization and the serving
layer's disk cache tier (:mod:`repro.service.cache`) all consume a
previously computed layout.  The archive stores the numeric payload of
a :class:`LayoutResult` (coordinates, distance matrix, subspace,
eigenvalues, pivots) plus the parameter echo; the cost ledger and BFS
statistics are runtime artifacts and are not serialized.

Format history
--------------
* **v1** — initial format; the params echo was JSON-encoded with
  ``default=str``, which silently stringified numpy scalars (``s=10``
  saved from a ``np.int64`` came back as ``"10"``).
* **v2** — params echo preserves numeric types: numpy integers/floats/
  bools/arrays are converted to their Python equivalents before
  encoding, so a save → load round trip yields ``int``/``float``/
  ``bool``/``list`` values.
* **v3** — the subspace payload (``B``, ``S``, pivots) became optional:
  ``save_layout(..., include_subspace=False)`` writes a slim
  coords-only archive (the serving cache doesn't need the subspace),
  while the default keeps it so :class:`repro.stream.StreamSession`
  can warm-start from the archive.  A ``has_subspace`` flag records
  the choice; v1/v2 archives always carried the subspace and load
  unchanged.

:func:`load_layout` accepts any version up to the current one and
raises a clear error for archives written by a *newer* library.
"""

from __future__ import annotations

import json
import os
from typing import Any

import numpy as np

from ..parallel.costs import Ledger
from .result import LayoutResult

__all__ = ["save_layout", "load_layout", "FORMAT_VERSION"]

#: Current archive format (see "Format history" above).
FORMAT_VERSION = 3
_FORMAT_VERSION = FORMAT_VERSION  # backwards-compatible alias
_MIN_FORMAT_VERSION = 1


def _params_default(value: Any) -> Any:
    """JSON fallback that keeps numeric params numeric (v2 behavior)."""
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    return str(value)


def save_layout(
    result: LayoutResult,
    path: str | os.PathLike,
    *,
    include_subspace: bool = True,
) -> None:
    """Write a layout to a compressed ``.npz`` archive.

    ``include_subspace=False`` drops the warm-start payload (``B``,
    ``S``, pivots), shrinking the archive to roughly the coordinates —
    appropriate for the serving cache, whose consumers only read
    coordinates.  Archives saved that way cannot seed a
    :class:`repro.stream.StreamSession`.
    """
    full = bool(include_subspace)
    empty_f = np.empty((0, 0), dtype=np.float64)
    empty_i = np.empty(0, dtype=np.int64)
    np.savez_compressed(
        path,
        format_version=np.int64(FORMAT_VERSION),
        has_subspace=np.int64(1 if full else 0),
        coords=result.coords,
        B=result.B if full else empty_f,
        S=result.S if full else empty_f,
        eigenvalues=result.eigenvalues,
        pivots=np.asarray(result.pivots) if full else empty_i,
        dropped=np.asarray(result.dropped, dtype=np.int64),
        algorithm=np.array(result.algorithm),
        params=np.array(json.dumps(result.params, default=_params_default)),
    )


def load_layout(path: str | os.PathLike) -> LayoutResult:
    """Load a layout saved by :func:`save_layout`.

    Raises
    ------
    ValueError
        If the archive was written by a newer library version (its
        ``format_version`` exceeds :data:`FORMAT_VERSION`) or predates
        the earliest supported format.

    The returned result carries an empty ledger (costs are not
    persisted); performance queries require re-running the algorithm.
    Slim v3 archives (``include_subspace=False``) come back with empty
    ``B``/``S``/``pivots`` arrays.
    """
    with np.load(path, allow_pickle=False) as data:
        version = int(data["format_version"])
        if version > FORMAT_VERSION:
            raise ValueError(
                f"layout archive {os.fspath(path)!r} has format version"
                f" {version}, newer than this library's supported version"
                f" {FORMAT_VERSION}; upgrade repro to read it"
            )
        if version < _MIN_FORMAT_VERSION:
            raise ValueError(
                f"unsupported layout archive version {version}"
                f" (supported: {_MIN_FORMAT_VERSION}..{FORMAT_VERSION})"
            )
        return LayoutResult(
            coords=data["coords"],
            algorithm=str(data["algorithm"]),
            B=data["B"],
            S=data["S"],
            eigenvalues=data["eigenvalues"],
            pivots=data["pivots"],
            dropped=data["dropped"].tolist(),
            ledger=Ledger(),
            params=json.loads(str(data["params"])),
        )
