"""Sparse stress majorization with ParHDE initialization (section 4.5.4).

The paper notes that PHDE layouts are a known good initialization for
stress majorization [Gansner-Koren-North] and proposes replacing PHDE
by ParHDE.  This module implements a localized SMACOF-style majorizer
over a sparse term set — every edge (target distance 1, or the SSSP
distance for weighted graphs) plus the BFS distance rows of a few
pivots, which anchor the global shape the way PivotMDS's columns do —
and exposes the warm-start comparison the paper suggests.

Each iteration applies the standard majorization update

    x_i <- ( sum_j w_ij * (x_j + d_ij * (x_i - x_j)/|x_i - x_j|) )
           / sum_j w_ij

with ``w_ij = d_ij^-2``, which monotonically decreases the stress
objective.  Fully vectorized over the term list.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..bfs.direction_optimizing import bfs_distances
from ..graph.csr import CSRGraph
from .._util import require_connected_distances

__all__ = ["MajorizationResult", "build_terms", "stress_majorization"]

_EPS = 1e-12


@dataclass
class MajorizationResult:
    """Final coordinates plus the per-iteration stress trace."""

    coords: np.ndarray
    stress_history: list[float]

    @property
    def iterations(self) -> int:
        return max(len(self.stress_history) - 1, 0)

    @property
    def initial_stress(self) -> float:
        return self.stress_history[0]

    @property
    def final_stress(self) -> float:
        return self.stress_history[-1]


def build_terms(
    g: CSRGraph, *, pivots: int = 8, seed: int = 0
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The sparse term set ``(i, j, d)``: edges plus pivot rows.

    Edges contribute their unit (or weight) distance; each pivot
    contributes its full BFS row, deduplicated against the edges by the
    majorizer's weighting (a pair appearing twice is simply counted
    twice, which only reweights it — harmless for a layout).
    """
    if pivots < 0:
        raise ValueError("pivots must be >= 0")
    u, v = g.edge_list()
    i_parts = [u.astype(np.int64)]
    j_parts = [v.astype(np.int64)]
    if g.weights is None:
        d_parts = [np.ones(len(u))]
    else:
        deg = g.degrees
        src = np.repeat(np.arange(g.n), deg)
        keep = src < g.indices
        d_parts = [g.weights[keep].astype(np.float64)]

    rng = np.random.default_rng(seed)
    chosen = rng.choice(g.n, size=min(pivots, g.n), replace=False)
    for p in chosen:
        dist, _ = bfs_distances(g, int(p))
        require_connected_distances(dist)
        others = np.flatnonzero(np.arange(g.n) != p)
        i_parts.append(np.full(len(others), p, dtype=np.int64))
        j_parts.append(others.astype(np.int64))
        d_parts.append(dist[others].astype(np.float64))

    return (
        np.concatenate(i_parts),
        np.concatenate(j_parts),
        np.concatenate(d_parts),
    )


def _term_stress(coords, i, j, d, w) -> float:
    delta = coords[i] - coords[j]
    dist = np.sqrt((delta**2).sum(axis=1))
    return float((w * (dist - d) ** 2).sum())


def stress_majorization(
    g: CSRGraph,
    coords0: np.ndarray,
    *,
    pivots: int = 8,
    max_iter: int = 200,
    tol: float = 1e-4,
    seed: int = 0,
) -> MajorizationResult:
    """Minimize sparse stress starting from ``coords0``.

    Stops when the relative stress decrease per iteration drops below
    ``tol``.  The stress history starts with the initial value, so
    ``result.iterations`` counts majorization steps — the currency for
    comparing ParHDE warm starts against random ones.
    """
    if coords0.shape[0] != g.n:
        raise ValueError("coords0 rows must equal n")
    if max_iter < 0:
        raise ValueError("max_iter must be >= 0")
    i, j, d = build_terms(g, pivots=pivots, seed=seed)
    d = np.maximum(d, _EPS)
    w = 1.0 / d**2
    # Symmetrize the update: each term pulls both endpoints.
    i2 = np.concatenate([i, j])
    j2 = np.concatenate([j, i])
    d2 = np.concatenate([d, d])
    w2 = np.concatenate([w, w])
    wsum = np.zeros(g.n)
    np.add.at(wsum, i2, w2)
    free = wsum > 0

    coords = coords0.astype(np.float64, copy=True)
    # Stress is scale-sensitive but layouts are scale-free (a ParHDE
    # start arrives D-normalized, i.e. tiny): rescale to the optimal
    # factor before iterating so the start is judged on shape alone.
    delta0 = coords[i] - coords[j]
    dist0 = np.sqrt((delta0**2).sum(axis=1))
    denom = float((w * dist0 * dist0).sum())
    if denom > 0:
        coords *= float((w * dist0 * d).sum()) / denom
    history = [_term_stress(coords, i, j, d, w)]
    for _ in range(max_iter):
        delta = coords[i2] - coords[j2]
        dist = np.sqrt((delta**2).sum(axis=1))
        dist = np.maximum(dist, _EPS)
        target = coords[j2] + (d2 / dist)[:, None] * delta
        num = np.zeros_like(coords)
        np.add.at(num, i2, w2[:, None] * target)
        coords = np.where(free[:, None], num / wsum[:, None], coords)
        history.append(_term_stress(coords, i, j, d, w))
        prev, cur = history[-2], history[-1]
        if prev - cur <= tol * max(prev, _EPS):
            break
    return MajorizationResult(coords=coords, stress_history=history)
