"""ParHDE: parallel High-Dimensional Embedding (paper Algorithm 3).

The pipeline (see DESIGN.md for the phase inventory):

1. **BFS phase** — ``s`` traversals from pivots (farthest-first by
   default) produce the distance matrix ``B``; weighted graphs use
   Delta-stepping SSSP instead of BFS (section 3.3).
2. **DOrtho phase** — D-orthonormalize ``[1 | B]`` and drop the constant
   column and any near-dependent columns, giving ``S`` with
   ``S' D S = I`` and ``S' D 1 = 0``.
3. **TripleProd phase** — ``P = L S`` (s SpMVs, Laplacian never
   materialized) then ``Z = S' P`` (dense gemm).
4. **Eigensolve + projection** ("Other") — the two smallest eigenpairs
   of the tiny ``Z`` give the axes ``Y``; coordinates are ``S Y``
   (or ``B Y``; see DESIGN.md section 5 on the paper's pseudocode).

Variants reachable through keyword arguments:

* ``ortho="plain"`` — plain orthogonalization instead of
  D-orthogonalization: approximates Laplacian eigenvectors (Hall's
  eigen-projection), the section 4.5.1 variant.
* ``gs_method="cgs"`` — Classical Gram-Schmidt DOrtho (Table 7).
* ``pivots="random-concurrent"`` — random pivots with concurrent
  traversals (Table 6).
* ``weighted=True`` — Delta-stepping distances on the weighted graph.

The coupled BFS+DOrtho execution the paper mentions alongside Table 7
lives in :func:`repro.core.variants.parhde_coupled`.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from ..linalg.blas import dense_gemm
from ..linalg.eigen import extreme_eigenpairs
from ..linalg.gram_schmidt import d_orthogonalize
from ..linalg.laplacian import laplacian_spmm
from ..parallel.costs import KernelCost, Ledger
from ..parallel.primitives import F64, map_cost
from ..resilience.chaos import failpoint
from ..resilience.deadline import Deadline, phase_scope
from ..validate import (
    ValidationPolicy,
    check_bfs_levels,
    check_constraints,
    check_d_orthogonality,
    check_eigenpairs,
    check_laplacian_identity,
)
from .constrained import carrier_field, deflate_basis
from .constraints import ConstraintSpec
from .kernels import KernelConfig
from .pivots import select_and_traverse
from .result import LayoutResult

__all__ = ["parhde"]


def _params_echo(
    cfg: KernelConfig,
    spec: ConstraintSpec,
    *,
    s: int,
    dims: int,
    seed: int,
    weighted: bool,
    weight_interpretation: str,
    delta: float | None,
) -> dict:
    """The canonical params echo shared by cold and warm ParHDE runs."""
    params = dict(
        s=s,
        dims=dims,
        seed=seed,
        pivots=cfg.pivots,
        ortho=cfg.ortho,
        gs_method=cfg.gs_method,
        project_basis=cfg.project_basis,
        drop_tol=cfg.drop_tol,
        traversal=cfg.traversal,
        subspace=cfg.subspace,
        rounds=cfg.rounds,
        weighted=weighted,
        weight_interpretation=weight_interpretation,
        delta=delta,
    )
    if not spec.is_trivial:
        params["constraints"] = spec.to_params()
    return params


def parhde(
    g: CSRGraph,
    s: int = 10,
    *,
    dims: int = 2,
    seed: int = 0,
    kernels: KernelConfig | dict | None = None,
    pivots: str | None = None,
    ortho: str | None = None,
    gs_method: str | None = None,
    project_basis: str | None = None,
    drop_tol: float | None = None,
    traversal: str | None = None,
    subspace: str | None = None,
    rounds: int | None = None,
    constraints: ConstraintSpec | dict | None = None,
    pins=None,
    masses=None,
    region=None,
    warm_base: dict | None = None,
    weighted: bool = False,
    weight_interpretation: str = "distance",
    delta: float | None = None,
    ledger: Ledger | None = None,
    validate: ValidationPolicy | str | None = None,
    deadline: Deadline | None = None,
    checkpoint=None,
) -> LayoutResult:
    """Compute a ``dims``-dimensional spectral layout of ``g``.

    Parameters
    ----------
    g:
        A connected simple undirected graph (use
        :func:`repro.graph.preprocess` to extract the largest component
        first, as the paper does).
    s:
        Subspace dimension = number of pivot traversals.  The paper uses
        10 for timing tables and notes 50 is a common quality choice.
    dims:
        Number of layout axes (2 for screen drawings).
    kernels:
        A :class:`~repro.core.kernels.KernelConfig` (or an equivalent
        dict) selecting every kernel of the pipeline in one object —
        the preferred spelling.  The individual kwargs below remain
        accepted and are merged onto it; an explicit kwarg that
        contradicts an explicit config field raises ``ValueError``.
    pivots:
        ``"kcenters"`` (default), ``"random"`` or ``"random-concurrent"``.
    ortho:
        ``"D"`` for degree-normalized axes (default) or ``"plain"`` for
        Laplacian-eigenvector axes.
    gs_method:
        ``"mgs"`` (default) or ``"cgs"``.
    project_basis:
        ``"S"`` projects through the orthonormal basis (Koren's
        derivation); ``"B"`` follows the paper's pseudocode literally.
    traversal:
        ``"per-source"`` (default) or ``"batched"`` — run the BFS phase
        through the frontier-matrix multi-source sweep
        (:mod:`repro.bfs.batched`).  Unweighted graphs only.
    subspace / rounds:
        Optional subspace refinement between DOrtho and TripleProd:
        ``rounds`` walk-operator applications with ``"deterministic"``
        per-round re-orthonormalization or the ``"randomized"``
        range-finding kernel (one final orthonormalization;
        :mod:`repro.linalg.randomized`).  ``rounds=0`` (default) skips
        refinement; ``rounds > 0`` requires ``ortho="D"`` and
        ``project_basis="S"`` (the refinement lives in D-geometry).
    constraints:
        A :class:`~repro.core.constraints.ConstraintSpec` (or an
        equivalent dict) of pinned vertices, per-vertex masses and a
        bounding region — the preferred spelling; the ``pins`` /
        ``masses`` / ``region`` kwargs below are merged onto it and a
        contradiction raises ``ValueError``.  Masses turn the
        orthogonalization weight into ``m·d`` (invariant
        ``‖SᵀMDS − I‖``); pins hold the named coordinates bitwise fixed
        while free vertices relax around the energy-minimizing carrier
        field; the region is clamped during back-projection
        (idempotently).  Constraints require ``rounds == 0``, and pins
        additionally require ``project_basis="S"``.
    pins / masses / region:
        Legacy spellings of the corresponding ``constraints`` fields
        (``{vertex: coords}`` mapping or pair list; ``{vertex: mass}``;
        ``[(lo, hi), ...]`` per dimension).
    warm_base:
        Internal warm-restart carrier (used by the serving engine and
        the stream session): a dict with the pre-deflation basis ``S``,
        ``kept``, ``pivots`` — and optionally the cached deflation
        products ``pin_set``/``S_c``/``Z_c`` or the unconstrained Gram
        ``Z`` — from a previous run on the *same graph content and
        non-pin parameters*.  The BFS and base-DOrtho phases are
        skipped entirely (and, on a pin-set match, deflation and
        TripleProd too), which is what makes a drag ≥3× cheaper than a
        cold constrained layout.  Requires ``rounds == 0`` and
        ``project_basis="S"``; the dict is updated in place with newly
        computed products.
    weighted:
        Use Delta-stepping SSSP distances; requires ``g.is_weighted``.
    weight_interpretation:
        ``"distance"`` (default) feeds the edge weights to SSSP as path
        lengths, the paper's implicit convention.  ``"similarity"``
        follows HDE's own semantics (section 2.1: heavier = more
        similar = *closer*): traversals run on inverted weights
        ``max_w / w`` while the D matrix and Laplacian keep the original
        similarities.
    delta:
        Bucket width for Delta-stepping (default: a standard heuristic).
    ledger:
        Optional existing ledger to record costs into (a fresh one is
        created otherwise and attached to the result).
    validate:
        Invariant-checking policy (:mod:`repro.validate`): ``None`` /
        ``"off"`` (default, no checks), ``"warn"`` (check each phase,
        warn on violation), ``"strict"`` (raise
        :class:`~repro.validate.InvariantViolation`), or a configured
        :class:`~repro.validate.ValidationPolicy`.
    deadline:
        Optional :class:`~repro.resilience.Deadline`.  Checked after
        each phase (the kernels are uninterruptible); a phase running
        past its budget, or the total budget expiring, raises
        :class:`~repro.resilience.DeadlineExceeded` so callers (the
        degradation ladder, the serving engine) can fall back instead
        of blocking.
    checkpoint:
        Optional :class:`~repro.resilience.RunCheckpoint` (or anything
        with ``load(phase) -> dict | None`` / ``save(phase,
        **arrays)``).  The expensive intermediates — ``B`` and the
        pivots after the BFS phase, ``S`` after DOrtho — are persisted
        after each phase and restored on the next identical run, so an
        interrupted layout resumes instead of restarting and (the
        arrays round-tripping bit-exactly) produces coordinates
        bitwise-equal to an uninterrupted run.

    Returns
    -------
    LayoutResult
        ``coords`` is ``(n, dims)``; the ledger yields simulated phase
        times on any :class:`~repro.parallel.MachineSpec`.
    """
    if g.n < 3:
        raise ValueError("layout needs at least 3 vertices")
    if s < dims:
        raise ValueError(f"s={s} must be at least dims={dims}")
    if weighted and not g.is_weighted:
        raise ValueError("weighted=True requires an edge-weighted graph")
    if weight_interpretation not in ("distance", "similarity"):
        raise ValueError(
            "weight_interpretation must be 'distance' or 'similarity'"
        )
    cfg = KernelConfig.resolve(
        kernels,
        pivots=pivots,
        ortho=ortho,
        gs_method=gs_method,
        project_basis=project_basis,
        drop_tol=drop_tol,
        traversal=traversal,
        subspace=subspace,
        rounds=rounds,
    )
    if cfg.rounds > 0 and (cfg.ortho != "D" or cfg.project_basis != "S"):
        raise ValueError(
            "subspace refinement (rounds > 0) requires ortho='D' and"
            " project_basis='S' — the refinement operates in D-geometry"
        )
    spec = ConstraintSpec.resolve(
        constraints, pins=pins, masses=masses, region=region
    )
    spec.validate_for(g.n, dims)
    if not spec.is_trivial and cfg.rounds > 0:
        raise ValueError(
            "constrained layouts do not compose with subspace refinement"
            " (rounds > 0) — drop the constraints or set rounds=0"
        )
    if spec.has_pins and cfg.project_basis == "B":
        raise ValueError(
            "pinned vertices require project_basis='S' — pin deflation"
            " operates on the orthonormal basis"
        )
    if warm_base is not None and (cfg.rounds > 0 or cfg.project_basis != "S"):
        raise ValueError("warm_base requires rounds=0 and project_basis='S'")
    policy = ValidationPolicy.coerce(validate)
    led = ledger if ledger is not None else Ledger()

    # Mass weighting: per-vertex masses fold into the orthogonalization
    # weight (W = M·D, or just M under ortho="plain"), so the invariant
    # the basis satisfies becomes ‖SᵀMDS − I‖.
    d = g.weighted_degrees if cfg.ortho == "D" else None
    if spec.has_masses:
        mvec = spec.mass_vector(g.n)
        d_eff = mvec * d if d is not None else mvec
    else:
        d_eff = d

    if warm_base is not None:
        # Warm restart: the basis comes from a previous run on the same
        # graph content, masses and kernel choices — skip the BFS and
        # base-DOrtho phases outright (that skipped work is the warm
        # path's entire advantage; the ledger records none of it).
        S = np.asarray(warm_base["S"], dtype=np.float64)
        kept = [int(i) for i in warm_base["kept"]]
        sources = np.asarray(warm_base["pivots"])
        B = np.zeros((g.n, 0), dtype=np.float64)
        bfs_stats = []
        dropped = []
        if S.shape[0] != g.n:
            raise ValueError("warm_base basis does not match the graph")
        if S.shape[1] < dims:
            raise ValueError(
                f"warm_base basis has only {S.shape[1]} columns; need dims={dims}"
            )
    else:
        # Phase 1: BFS (or SSSP) traversals.  Under the similarity
        # reading, traversal lengths are the inverted weights;
        # everything spectral (D, L) keeps the original similarities.
        g_traverse = g
        if weighted and weight_interpretation == "similarity":
            g_traverse = g.with_weights(float(g.weights.max()) / g.weights)
        restored = checkpoint.load("bfs") if checkpoint is not None else None
        if restored is not None:
            B = restored["B"]
            sources = restored["pivots"]
            bfs_stats = []
            checkpoint.mark_restored()
        else:
            with led.phase("BFS"), phase_scope(deadline, "BFS"):
                failpoint("parhde.bfs")
                ms = select_and_traverse(
                    g_traverse,
                    s,
                    strategy=cfg.pivots,
                    traversal=cfg.traversal,
                    seed=seed,
                    ledger=led,
                    weighted=weighted,
                    delta=delta,
                )
            B = ms.distances
            sources = ms.sources
            bfs_stats = ms.stats
            if checkpoint is not None:
                checkpoint.save("bfs", B=B, pivots=sources)
        if weighted:
            if not np.all(np.isfinite(B)):
                raise ValueError(
                    "graph must be connected (infinite distances found)"
                )
        elif B.min() < 0:
            raise ValueError("graph must be connected (unreached vertices found)")
        if policy.enabled:
            # Levels are checked against the graph actually traversed (the
            # similarity reading inverts the weights before SSSP).
            policy.handle(
                check_bfs_levels(g_traverse, B, sources, weighted=weighted)
            )

        # Phase 2: D-orthogonalization (mass-weighted when masses exist).
        restored = checkpoint.load("dortho") if checkpoint is not None else None
        if restored is not None:
            S = restored["S"]
            kept = [int(i) for i in restored["kept"]]
            dropped = [int(i) for i in restored["dropped"]]
            checkpoint.mark_restored()
        else:
            with led.phase("DOrtho"), phase_scope(deadline, "DOrtho"):
                failpoint("parhde.dortho")
                ores = d_orthogonalize(
                    B,
                    d_eff,
                    method=cfg.gs_method,
                    drop_tol=cfg.drop_tol,
                    ledger=led,
                )
            S, kept, dropped = ores.S, ores.kept, ores.dropped
            if checkpoint is not None:
                checkpoint.save(
                    "dortho",
                    S=S,
                    kept=np.asarray(kept, dtype=np.int64),
                    dropped=np.asarray(dropped, dtype=np.int64),
                )
        if S.shape[1] < dims:
            raise ValueError(
                f"only {S.shape[1]} independent distance vectors survived; "
                f"increase s (got s={s}) or check the graph"
            )
        if policy.enabled:
            policy.handle(check_d_orthogonality(S, d_eff, tol=policy.ortho_tol))

    # Optional subspace refinement (kernels.rounds > 0): rotate the basis
    # toward the walk operator's dominant eigenvectors before projecting.
    if cfg.rounds > 0:
        from .subspace_iteration import subspace_iterate

        with led.phase("SubspaceIter"), phase_scope(deadline, "SubspaceIter"):
            S = subspace_iterate(
                g, S, cfg.rounds, method=cfg.subspace, ledger=led
            )
        if S.shape[1] < dims:
            raise ValueError(
                f"subspace refinement left only {S.shape[1]} independent"
                f" columns; reduce rounds or increase s (got s={s})"
            )
        if policy.enabled:
            policy.handle(check_d_orthogonality(S, d_eff, tol=policy.ortho_tol))

    # Pin deflation: restrict the basis to the free subspace (every
    # column bitwise zero on pinned rows, the quasi-constant free mode
    # deflated).  The deflated products depend only on *which* vertices
    # are pinned, so a warm restart whose pin set matches the cached one
    # (a drag: same pins, new position) reuses S_c and Z_c and skips
    # deflation and TripleProd entirely.
    base_S = S
    pin_idx, pin_pos = spec.pin_arrays()
    pin_set = tuple(int(v) for v in pin_idx)
    P = None
    cached = warm_base.get("deflated") if warm_base is not None else None
    if spec.has_pins:
        if cached is not None and cached[0] == pin_set:
            S, Z = cached[1], cached[2]
        else:
            with led.phase("DOrtho"), phase_scope(deadline, "DOrtho"):
                dres = deflate_basis(
                    base_S,
                    d_eff,
                    pin_idx,
                    gs_method=cfg.gs_method,
                    drop_tol=cfg.drop_tol,
                    ledger=led,
                )
            S = dres.S
            if S.shape[1] < dims:
                raise ValueError(
                    f"pin deflation left only {S.shape[1]} independent"
                    f" columns; increase s (got s={s}) or pin fewer vertices"
                )
            if policy.enabled:
                policy.handle(
                    check_d_orthogonality(
                        S, d_eff, tol=policy.ortho_tol, centered=False
                    )
                )
            with led.phase("TripleProd"), phase_scope(deadline, "TripleProd"):
                failpoint("parhde.tripleprod")
                P = laplacian_spmm(g, S, ledger=led, subphase="LS")
                Z = dense_gemm(S.T, P, ledger=led, subphase="S'(LS)")
    elif warm_base is not None and "Z" in warm_base:
        Z = warm_base["Z"]
    else:
        # Phase 3: TripleProd — P = L S, then Z = S' P.
        with led.phase("TripleProd"), phase_scope(deadline, "TripleProd"):
            failpoint("parhde.tripleprod")
            P = laplacian_spmm(g, S, ledger=led, subphase="LS")
            Z = dense_gemm(S.T, P, ledger=led, subphase="S'(LS)")
    if P is not None and policy.enabled and policy.run_deep:
        # The edge-scatter reference costs another SpMM's worth of work,
        # so it only runs at strict (or deep=True) level.
        policy.handle(
            check_laplacian_identity(g, S, P, tol=policy.laplacian_tol)
        )

    # Phase 4 ("Other"): eigensolve on the tiny matrix + back-projection
    # (plus carrier field and region clamp for constrained runs).
    with led.phase("Other"), phase_scope(deadline, "Other"):
        failpoint("parhde.eigensolve")
        evals, Y = extreme_eigenpairs(Z, dims, which="smallest")
        basis = S if cfg.project_basis == "S" else B[:, kept]
        coords = basis @ Y
        led.add(
            map_cost(
                g.n * S.shape[1] * dims,
                flops_per_elem=2.0,
                bytes_per_elem=F64,
            )
        )
        if spec.has_pins:
            coords = coords + carrier_field(
                g, S, Z, pin_idx, pin_pos, ledger=led
            )
            coords[pin_idx] = pin_pos
        coords = spec.clamp(coords)
    if policy.enabled:
        policy.handle(check_eigenpairs(Z, evals, Y, tol=policy.eigen_tol))
    if policy.enabled and not spec.is_trivial:
        policy.handle(
            check_constraints(coords, spec, S=S, w=d_eff, tol=policy.ortho_tol)
        )

    result = LayoutResult(
        coords=coords,
        algorithm="parhde",
        B=B,
        S=S,
        eigenvalues=evals,
        pivots=sources,
        bfs_stats=bfs_stats,
        dropped=dropped,
        ledger=led,
        params=_params_echo(
            cfg,
            spec,
            s=s,
            dims=dims,
            seed=seed,
            weighted=weighted,
            weight_interpretation=weight_interpretation,
            delta=delta,
        ),
    )
    if cfg.rounds == 0 and cfg.project_basis == "S":
        # Warm-restart carrier for the serving engine / stream session:
        # the pre-deflation basis plus whichever Gram products this run
        # produced (a fresh dict — never mutate the caller's).
        warm: dict = dict(warm_base) if warm_base is not None else {}
        warm.update(S=base_S, kept=list(kept), pivots=sources)
        if spec.has_pins:
            warm["deflated"] = (pin_set, S, Z)
        else:
            warm["Z"] = Z
        result.warm = warm
    return result
