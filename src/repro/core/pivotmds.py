"""PivotMDS (Brandes & Pich 2007): sampled classical MDS.

Computationally a sibling of PHDE (section 3.2): the same BFS phase,
then *double centering* of the squared pivot-distance matrix instead of
column centering, the same small gemm and eigensolve.  Classical MDS
recovers coordinates from the doubly centered squared-distance Gram
matrix; PivotMDS restricts the columns to the ``s`` pivots.

Phases follow Figure 6's labels: BFS, DblCntr, MatMul, Other.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from ..linalg.blas import dense_gemm
from ..linalg.eigen import extreme_eigenpairs
from ..parallel.costs import Ledger
from ..parallel.primitives import F64, map_cost, reduce_cost
from .constraints import ConstraintSpec
from .pivots import select_and_traverse
from .result import LayoutResult

__all__ = ["pivotmds", "double_center"]


def double_center(B: np.ndarray, ledger: Ledger | None = None) -> np.ndarray:
    """Doubly centered squared-distance matrix ``C``.

    ``C_ij = -1/2 (d_ij^2 - rowmean_i - colmean_j + grandmean)`` where the
    means are over the squared distances.  Like PHDE's column centering
    this is a reduction pass followed by an elementwise pass; the row
    means add a second reduction of the same size.
    """
    n, s = B.shape
    D2 = B * B
    col = D2.mean(axis=0)
    row = D2.mean(axis=1)
    grand = col.mean()
    if ledger is not None:
        # squared-distance pass + two mean reductions + final combine
        ledger.add(map_cost(n * s, flops_per_elem=1.0, bytes_per_elem=2 * F64))
        ledger.add(reduce_cost(n * s, flops_per_elem=2.0, bytes_per_elem=F64))
        ledger.add(map_cost(n * s, flops_per_elem=4.0, bytes_per_elem=2 * F64))
    return -0.5 * (D2 - row[:, None] - col[None, :] + grand)


def pivotmds(
    g: CSRGraph,
    s: int = 10,
    *,
    dims: int = 2,
    seed: int = 0,
    pivots: str = "kcenters",
    traversal: str = "per-source",
    constraints: ConstraintSpec | dict | None = None,
    pins=None,
    masses=None,
    region=None,
    weighted: bool = False,
    delta: float | None = None,
    ledger: Ledger | None = None,
) -> LayoutResult:
    """PivotMDS layout.  Parameters as in :func:`repro.core.parhde`.

    Constraints follow the PHDE treatment: mass-weighted Gram, pinned
    centroid translation + bitwise pin write-back, idempotent region
    clamp.
    """
    if g.n < 3:
        raise ValueError("layout needs at least 3 vertices")
    if s < dims:
        raise ValueError(f"s={s} must be at least dims={dims}")
    spec = ConstraintSpec.resolve(
        constraints, pins=pins, masses=masses, region=region
    )
    spec.validate_for(g.n, dims)
    led = ledger if ledger is not None else Ledger()

    with led.phase("BFS"):
        ms = select_and_traverse(
            g, s, strategy=pivots, traversal=traversal, seed=seed,
            ledger=led, weighted=weighted, delta=delta,
        )
    B = ms.distances
    if (weighted and not np.all(np.isfinite(B))) or (
        not weighted and B.min() < 0
    ):
        raise ValueError("graph must be connected")

    with led.phase("DblCntr"):
        C = double_center(B, led)

    with led.phase("MatMul"):
        if spec.has_masses:
            mvec = spec.mass_vector(g.n)
            led.add(
                map_cost(g.n * s, flops_per_elem=1.0, bytes_per_elem=2 * F64)
            )
            M = dense_gemm(C.T, mvec[:, None] * C, led)
        else:
            M = dense_gemm(C.T, C, led)

    with led.phase("Other"):
        evals, Y = extreme_eigenpairs(M, dims, which="largest")
        coords = C @ Y
        led.add(
            map_cost(g.n * s * dims, flops_per_elem=2.0, bytes_per_elem=F64)
        )
        if spec.has_pins:
            pin_idx, pin_pos = spec.pin_arrays()
            coords = coords + (
                pin_pos.mean(axis=0) - coords[pin_idx].mean(axis=0)
            )
            coords[pin_idx] = pin_pos
        coords = spec.clamp(coords)

    params = dict(
        s=s, dims=dims, seed=seed, pivots=pivots, traversal=traversal,
        weighted=weighted, delta=delta,
    )
    if not spec.is_trivial:
        params["constraints"] = spec.to_params()
    return LayoutResult(
        coords=coords,
        algorithm="pivotmds",
        B=B,
        S=C,
        eigenvalues=evals,
        pivots=ms.sources,
        bfs_stats=ms.stats,
        ledger=led,
        params=params,
    )
