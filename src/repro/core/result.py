"""Layout result type shared by ParHDE, PHDE and PivotMDS."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..bfs.direction_optimizing import BFSStats
from ..parallel.costs import Ledger
from ..parallel.machine import MachineSpec, phase_times, simulate_ledger, subphase_times
from ..parallel.report import Breakdown

__all__ = ["LayoutResult"]


@dataclass
class LayoutResult:
    """Coordinates plus everything needed to analyze the run.

    Attributes
    ----------
    coords:
        ``(n, p)`` layout (``p = 2`` by default).
    algorithm:
        ``"parhde"``, ``"phde"``, ``"pivotmds"`` or a baseline name.
    B:
        ``(n, s)`` raw pivot-distance matrix from the BFS/SSSP phase.
    S:
        ``(n, kept)`` orthonormalized subspace basis (ParHDE) or the
        centered matrix ``C`` (PHDE/PivotMDS).
    eigenvalues:
        The ``p`` projected eigenvalues backing the chosen axes.
    pivots:
        Source vertices, in traversal order.
    bfs_stats:
        Per-traversal statistics (empty for SSSP-free baselines).
    dropped:
        Indices of distance vectors discarded as near-dependent.
    ledger:
        Cost ledger for the whole run; feeds the machine model.
    params:
        Echo of the algorithm parameters for reporting.
    warm:
        Optional warm-restart carrier (ParHDE only): the pre-deflation
        basis and Gram products a follow-up constrained layout on the
        same graph content can reuse to skip the BFS/DOrtho phases.
        Never serialized; see ``warm_base`` in :func:`repro.core.parhde`.
    """

    coords: np.ndarray
    algorithm: str
    B: np.ndarray
    S: np.ndarray
    eigenvalues: np.ndarray
    pivots: np.ndarray
    bfs_stats: list[BFSStats] = field(default_factory=list)
    dropped: list[int] = field(default_factory=list)
    ledger: Ledger = field(default_factory=Ledger)
    params: dict[str, Any] = field(default_factory=dict)
    warm: dict[str, Any] | None = None

    @property
    def n(self) -> int:
        return self.coords.shape[0]

    @property
    def quality_tier(self) -> str:
        """Degradation tier that produced this layout (default ``"full"``).

        Set by :func:`repro.resilience.resilient_layout` when a request
        was served from a lower rung of the degradation ladder; results
        from a direct pipeline call are always ``"full"``.
        """
        return str(self.params.get("quality_tier", "full"))

    @property
    def x(self) -> np.ndarray:
        return self.coords[:, 0]

    @property
    def y(self) -> np.ndarray:
        return self.coords[:, 1]

    # -- performance queries against the machine model ---------------------
    def simulated_seconds(self, machine: MachineSpec, p: int) -> float:
        """Total simulated run time on ``p`` threads of ``machine``."""
        return simulate_ledger(self.ledger, machine, p)

    def phase_seconds(self, machine: MachineSpec, p: int) -> dict[str, float]:
        """Per-phase simulated seconds (BFS / DOrtho / TripleProd / ...)."""
        return phase_times(self.ledger, machine, p)

    def subphase_seconds(
        self, machine: MachineSpec, p: int, phase: str
    ) -> dict[str, float]:
        """Within-phase split, e.g. TripleProd -> {LS, S'(LS)}."""
        return subphase_times(self.ledger, machine, p, phase)

    def breakdown(self, machine: MachineSpec, p: int) -> Breakdown:
        return Breakdown(machine.name, machine.clamp(p), self.phase_seconds(machine, p))

    def speedup(self, machine: MachineSpec, p: int) -> float:
        """Relative speedup over the single-threaded simulated time."""
        t1 = self.simulated_seconds(machine, 1)
        tp = self.simulated_seconds(machine, p)
        return t1 / tp if tp > 0 else float("inf")
