"""KernelConfig: one typed home for the pipeline's kernel-selection knobs.

Before this module the kernel choices were a sprawl of loose keyword
arguments (``pivots=``, ``ortho=``, ``gs_method=``, ``project_basis=``,
``drop_tol=``) threaded separately through :func:`repro.core.parhde`,
the serving engine and the HTTP params whitelist.  The batched-BFS and
randomized-subspace kernels add two more axes (``traversal=`` and
``subspace=``/``rounds=``), which is where a flat kwarg list stops
scaling.  :class:`KernelConfig` consolidates them:

* ``parhde(kernels=KernelConfig(...))`` — or a plain dict with the same
  keys — configures every kernel choice in one object;
* the legacy kwargs keep working and are mapped onto the config; an
  explicit legacy kwarg that *contradicts* an explicit config field
  raises ``ValueError`` (silently preferring either would corrupt cache
  fingerprints);
* :meth:`KernelConfig.to_params` produces the canonical minimal dict
  used in ``LayoutResult.params`` echoes and cache fingerprints —
  default values are omitted, so requests that never mention a kernel
  knob keep the fingerprints they had before this API existed, and a
  legacy-kwarg request fingerprints identically to the equivalent
  ``kernels=`` request.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Mapping

__all__ = ["KernelConfig", "TRAVERSALS", "SUBSPACE_METHODS"]

TRAVERSALS = ("per-source", "batched")
SUBSPACE_METHODS = ("deterministic", "randomized")

_CHOICES = {
    "pivots": ("kcenters", "random", "random-concurrent"),
    "ortho": ("D", "plain"),
    "gs_method": ("mgs", "cgs"),
    "project_basis": ("S", "B"),
    "traversal": TRAVERSALS,
    "subspace": SUBSPACE_METHODS,
}


@dataclass(frozen=True)
class KernelConfig:
    """Every kernel choice of the layout pipeline, in one place.

    Attributes
    ----------
    pivots:
        Source-selection strategy for the BFS phase (``"kcenters"``,
        ``"random"``, ``"random-concurrent"``).
    ortho:
        ``"D"`` (degree-normalized) or ``"plain"`` orthogonalization.
    gs_method:
        Gram-Schmidt variant for DOrtho (``"mgs"`` or ``"cgs"``).
    project_basis:
        Final projection basis (``"S"`` or ``"B"``).
    drop_tol:
        Near-dependence drop tolerance in DOrtho.
    traversal:
        BFS execution backend: ``"per-source"`` (one traversal at a
        time, the seed behaviour) or ``"batched"`` (the frontier-matrix
        multi-source sweep of :mod:`repro.bfs.batched`; bitwise-equal
        distances, far cheaper).  Unweighted graphs only.
    subspace:
        Subspace-refinement kernel used when ``rounds > 0``:
        ``"deterministic"`` block power iteration (re-orthonormalizes
        every round) or ``"randomized"`` range finding (one final
        orthonormalization; :mod:`repro.linalg.randomized`).
    rounds:
        Subspace-refinement rounds run between DOrtho and TripleProd
        (0 = skip refinement entirely, the seed behaviour).
    """

    pivots: str = "kcenters"
    ortho: str = "D"
    gs_method: str = "mgs"
    project_basis: str = "S"
    drop_tol: float = 1e-3
    traversal: str = "per-source"
    subspace: str = "deterministic"
    rounds: int = 0

    def __post_init__(self) -> None:
        for name, options in _CHOICES.items():
            value = getattr(self, name)
            if value not in options:
                raise ValueError(
                    f"kernels.{name} must be one of {options}, got {value!r}"
                )
        if not isinstance(self.rounds, int) or isinstance(self.rounds, bool):
            raise ValueError(f"kernels.rounds must be an int, got {self.rounds!r}")
        if self.rounds < 0:
            raise ValueError(f"kernels.rounds must be >= 0, got {self.rounds}")
        if not self.drop_tol > 0:
            raise ValueError(f"kernels.drop_tol must be > 0, got {self.drop_tol}")

    # -- construction ------------------------------------------------------
    @classmethod
    def coerce(cls, value: "KernelConfig | Mapping[str, Any] | None") -> "KernelConfig":
        """Accept a config, an equivalent mapping, or ``None`` (defaults)."""
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, Mapping):
            known = {f.name for f in fields(cls)}
            unknown = set(value) - known
            if unknown:
                raise ValueError(
                    f"unknown kernels keys {sorted(unknown)}; known:"
                    f" {sorted(known)}"
                )
            kwargs = dict(value)
            if "rounds" in kwargs:
                r = kwargs["rounds"]
                # JSON round-trips may deliver numerics as floats.
                if isinstance(r, float) and r.is_integer():
                    kwargs["rounds"] = int(r)
            return cls(**kwargs)
        raise ValueError(
            f"kernels must be a KernelConfig or a mapping, got {type(value).__name__}"
        )

    @classmethod
    def resolve(
        cls,
        kernels: "KernelConfig | Mapping[str, Any] | None",
        **legacy: Any,
    ) -> "KernelConfig":
        """Merge legacy kwargs onto ``kernels``; conflicts raise.

        ``legacy`` values of ``None`` mean "not given".  A legacy kwarg
        may restate what the config already says; it may fill a field
        the config left at its default; but a legacy kwarg that
        *contradicts* an explicitly non-default config field is a
        programming error and raises ``ValueError``.
        """
        cfg = cls.coerce(kernels)
        defaults = cls()
        overrides: dict[str, Any] = {}
        for name, value in legacy.items():
            if value is None:
                continue
            current = getattr(cfg, name)
            if current == value:
                continue
            if current != getattr(defaults, name):
                raise ValueError(
                    f"conflicting kernel settings: legacy {name}={value!r}"
                    f" vs kernels.{name}={current!r} — pass one or the other"
                )
            overrides[name] = value
        if not overrides:
            return cfg
        merged = {f.name: getattr(cfg, f.name) for f in fields(cls)}
        merged.update(overrides)
        return cls(**merged)

    # -- serialization -----------------------------------------------------
    def to_params(self, *, minimal: bool = True) -> dict[str, Any]:
        """Canonical dict form for params echoes and fingerprints.

        With ``minimal=True`` (the default) only non-default fields are
        emitted, so configurations that match the seed behaviour leave
        fingerprints untouched and every spelling of the same choice
        (legacy kwargs, ``kernels=`` dict, ``kernels=`` dataclass)
        canonicalizes to the same bytes.
        """
        defaults = KernelConfig()
        out: dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if minimal and value == getattr(defaults, f.name):
                continue
            out[f.name] = value
        return out
