"""ConstraintSpec: pins, per-vertex masses and bounding regions, typed.

Interactive layout needs three constraint families on top of the plain
ParHDE pipeline (ROADMAP item 4):

* **pins** — vertices whose coordinates the user fixed (a drag, an
  anchor).  Pinned coordinates are held *bitwise* through the solve:
  the subspace basis is deflated so every basis vector vanishes on the
  pinned rows, free vertices relax around a carrier field that
  interpolates the pinned values, and the final assembly writes the pin
  positions back verbatim.
* **masses** — per-vertex multiplicities (supernodes from coarsening,
  collapsed clusters).  The orthogonalization weight becomes ``M·D`` so
  the invariant is ``‖SᵀMDS − I‖`` and heavy vertices anchor the
  spectral axes proportionally to the vertices they stand for.
* **region** — a per-dimension bounding box applied to the free
  vertices during back-projection (clamping is idempotent, so re-running
  it is a no-op).

Like :class:`repro.core.kernels.KernelConfig`, the spec is frozen,
canonicalizes every accepted spelling (mappings, pair lists, tuples,
JSON round-trips) to one normal form, and serializes minimally via
:meth:`to_params` using **nested lists** so the echoed params survive
JSON round-trips (HTTP bodies, ``.npz`` archives) with equality intact
— that is what keeps one cache fingerprint per distinct constraint set.

Conflicting constraints (the same vertex pinned at two positions, a pin
outside the region, contradictory ``constraints=`` vs legacy kwargs)
raise ``ValueError`` here; the serving layer maps that to HTTP 400
exactly like kernel-config conflicts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from typing import Any, Iterable, Mapping

import numpy as np

__all__ = ["ConstraintSpec"]


def _canon_pins(value: Any) -> tuple[tuple[int, tuple[float, ...]], ...]:
    """Normalize any accepted pin spelling to a sorted pair tuple."""
    if value is None:
        return ()
    if isinstance(value, Mapping):
        items: Iterable[tuple[Any, Any]] = value.items()
    else:
        items = list(value)
    out: dict[int, tuple[float, ...]] = {}
    for entry in items:
        try:
            vertex, pos = entry
        except (TypeError, ValueError):
            raise ValueError(
                "pins must be a mapping {vertex: coords} or (vertex, coords)"
                f" pairs, got entry {entry!r}"
            ) from None
        v = _canon_vertex(vertex, "pin")
        try:
            coords = tuple(float(c) for c in pos)
        except (TypeError, ValueError):
            raise ValueError(
                f"pin for vertex {v} needs a coordinate sequence, got {pos!r}"
            ) from None
        if not coords or not all(math.isfinite(c) for c in coords):
            raise ValueError(
                f"pin for vertex {v} must be finite and non-empty, got {pos!r}"
            )
        if v in out and out[v] != coords:
            raise ValueError(
                f"conflicting constraints: vertex {v} pinned at both"
                f" {out[v]} and {coords}"
            )
        out[v] = coords
    return tuple(sorted(out.items()))


def _canon_masses(value: Any) -> tuple[tuple[int, float], ...]:
    """Normalize masses; unit masses are dropped (they are the default)."""
    if value is None:
        return ()
    if isinstance(value, Mapping):
        items: Iterable[tuple[Any, Any]] = value.items()
    else:
        items = list(value)
    out: dict[int, float] = {}
    for entry in items:
        try:
            vertex, mass = entry
        except (TypeError, ValueError):
            raise ValueError(
                "masses must be a mapping {vertex: mass} or (vertex, mass)"
                f" pairs, got entry {entry!r}"
            ) from None
        v = _canon_vertex(vertex, "mass")
        m = float(mass)
        if not (math.isfinite(m) and m > 0):
            raise ValueError(f"mass for vertex {v} must be finite and > 0, got {mass!r}")
        if v in out and out[v] != m:
            raise ValueError(
                f"conflicting constraints: vertex {v} given masses"
                f" {out[v]} and {m}"
            )
        out[v] = m
    return tuple(sorted((v, m) for v, m in out.items() if m != 1.0))


def _canon_region(value: Any) -> tuple[tuple[float, float], ...] | None:
    if value is None:
        return None
    try:
        bounds = tuple((float(lo), float(hi)) for lo, hi in value)
    except (TypeError, ValueError):
        raise ValueError(
            "region must be a sequence of (lo, hi) bounds per dimension,"
            f" got {value!r}"
        ) from None
    if not bounds:
        return None
    for axis, (lo, hi) in enumerate(bounds):
        if not (math.isfinite(lo) and math.isfinite(hi)):
            raise ValueError(f"region axis {axis} bounds must be finite, got ({lo}, {hi})")
        if lo >= hi:
            raise ValueError(
                f"region axis {axis} needs lo < hi, got ({lo}, {hi})"
            )
    return bounds


def _canon_vertex(vertex: Any, what: str) -> int:
    if isinstance(vertex, bool):
        raise ValueError(f"{what} vertex must be an integer, got {vertex!r}")
    if isinstance(vertex, float):
        if not vertex.is_integer():
            raise ValueError(f"{what} vertex must be an integer, got {vertex!r}")
        vertex = int(vertex)
    elif isinstance(vertex, str):
        # HTTP/JSON mappings force string keys; accept decimal spellings.
        try:
            vertex = int(vertex, 10)
        except ValueError:
            raise ValueError(f"{what} vertex must be an integer, got {vertex!r}") from None
    try:
        v = int(vertex)
    except (TypeError, ValueError):
        raise ValueError(f"{what} vertex must be an integer, got {vertex!r}") from None
    if v < 0:
        raise ValueError(f"{what} vertex must be >= 0, got {v}")
    return v


@dataclass(frozen=True)
class ConstraintSpec:
    """Pins, masses and bounding region of one constrained layout.

    Attributes
    ----------
    pins:
        Sorted ``((vertex, (x, y, ...)), ...)`` pairs.  Construction
        accepts a mapping ``{vertex: coords}`` or any iterable of pairs.
    masses:
        Sorted ``((vertex, mass), ...)`` pairs of non-unit positive
        masses; vertices absent here weigh 1.  Accepts a mapping or
        pair iterable.
    region:
        ``((lo, hi), ...)`` per layout dimension, or ``None`` for
        unbounded.
    """

    pins: tuple[tuple[int, tuple[float, ...]], ...] = ()
    masses: tuple[tuple[int, float], ...] = ()
    region: tuple[tuple[float, float], ...] | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "pins", _canon_pins(self.pins))
        object.__setattr__(self, "masses", _canon_masses(self.masses))
        object.__setattr__(self, "region", _canon_region(self.region))
        if self.region is not None:
            ndim = len(self.region)
            for v, pos in self.pins:
                if len(pos) != ndim:
                    raise ValueError(
                        f"conflicting constraints: pin for vertex {v} has"
                        f" {len(pos)} coordinates but region has {ndim} axes"
                    )
                for (lo, hi), c in zip(self.region, pos):
                    if not (lo <= c <= hi):
                        raise ValueError(
                            f"conflicting constraints: vertex {v} pinned at"
                            f" {pos}, outside region {self.region}"
                        )

    # -- construction ------------------------------------------------------
    @classmethod
    def coerce(
        cls, value: "ConstraintSpec | Mapping[str, Any] | None"
    ) -> "ConstraintSpec":
        """Accept a spec, an equivalent mapping, or ``None`` (no constraints)."""
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, Mapping):
            known = {f.name for f in fields(cls)}
            unknown = set(value) - known
            if unknown:
                raise ValueError(
                    f"unknown constraints keys {sorted(unknown)}; known:"
                    f" {sorted(known)}"
                )
            return cls(**dict(value))
        raise ValueError(
            "constraints must be a ConstraintSpec or a mapping,"
            f" got {type(value).__name__}"
        )

    @classmethod
    def resolve(
        cls,
        constraints: "ConstraintSpec | Mapping[str, Any] | None",
        *,
        pins: Any = None,
        masses: Any = None,
        region: Any = None,
    ) -> "ConstraintSpec":
        """Merge legacy kwargs onto ``constraints``; contradictions raise.

        Mirrors :meth:`KernelConfig.resolve`: a legacy kwarg may restate
        what the spec already says or fill a field the spec left empty,
        but a kwarg that *contradicts* an explicitly non-empty spec
        field raises ``ValueError`` (silently preferring either would
        corrupt cache fingerprints).
        """
        spec = cls.coerce(constraints)
        legacy = {
            "pins": _canon_pins(pins),
            "masses": _canon_masses(masses),
            "region": _canon_region(region),
        }
        defaults = cls()
        merged: dict[str, Any] = {}
        for name, value in legacy.items():
            current = getattr(spec, name)
            default = getattr(defaults, name)
            if value == default or value == current:
                merged[name] = current
                continue
            if current != default:
                raise ValueError(
                    f"conflicting constraints: legacy {name}={value!r}"
                    f" vs constraints.{name}={current!r} — pass one or the"
                    " other"
                )
            merged[name] = value
        return cls(**merged)

    # -- predicates --------------------------------------------------------
    @property
    def is_trivial(self) -> bool:
        return not self.pins and not self.masses and self.region is None

    @property
    def has_pins(self) -> bool:
        return bool(self.pins)

    @property
    def has_masses(self) -> bool:
        return bool(self.masses)

    @property
    def has_region(self) -> bool:
        return self.region is not None

    # -- derived views -----------------------------------------------------
    def validate_for(self, n: int, dims: int) -> None:
        """Check the spec fits an ``n``-vertex, ``dims``-D layout."""
        for v, pos in self.pins:
            if v >= n:
                raise ValueError(f"pin vertex {v} out of range for n={n}")
            if len(pos) != dims:
                raise ValueError(
                    f"pin for vertex {v} has {len(pos)} coordinates,"
                    f" expected dims={dims}"
                )
        for v, _m in self.masses:
            if v >= n:
                raise ValueError(f"mass vertex {v} out of range for n={n}")
        if self.region is not None and len(self.region) != dims:
            raise ValueError(
                f"region has {len(self.region)} axes, expected dims={dims}"
            )

    def mass_vector(self, n: int) -> np.ndarray:
        """Dense ``(n,)`` mass vector (ones where no mass was given)."""
        m = np.ones(n, dtype=np.float64)
        for v, mass in self.masses:
            m[v] = mass
        return m

    def pin_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """``(idx, pos)`` arrays: pinned vertex ids and their coordinates."""
        if not self.pins:
            return (
                np.zeros(0, dtype=np.int64),
                np.zeros((0, 0), dtype=np.float64),
            )
        idx = np.array([v for v, _ in self.pins], dtype=np.int64)
        pos = np.array([list(p) for _, p in self.pins], dtype=np.float64)
        return idx, pos

    def clamp(self, coords: np.ndarray) -> np.ndarray:
        """Clamp free coordinates into the region (idempotent).

        Values already inside the bounds are returned bitwise-unchanged
        (``np.clip`` only replaces out-of-range entries), so applying the
        clamp twice equals applying it once.
        """
        if self.region is None:
            return coords
        lo = np.array([b[0] for b in self.region], dtype=np.float64)
        hi = np.array([b[1] for b in self.region], dtype=np.float64)
        return np.clip(coords, lo[None, :], hi[None, :])

    def warm_base_spec(self) -> "ConstraintSpec":
        """The spec facet that determines the reusable warm basis.

        Pins and region act *after* the mass-weighted orthogonalization
        (deflation / clamping of an existing basis), so a warm restart
        can reuse the basis across any pin/drag/region change; masses
        change the inner product itself and therefore stay in the key.
        """
        if not self.pins and self.region is None:
            return self
        return ConstraintSpec(masses=self.masses)

    def with_base_pins(
        self, base: Mapping[int, tuple[float, ...]] | None
    ) -> "ConstraintSpec":
        """Overlay this spec on top of server-side pin state.

        Request pins win per-vertex; state pins fill the rest.  Used by
        the serving engine to merge ``POST /update`` pin state into each
        layout request.
        """
        if not base:
            return self
        merged = dict(base)
        merged.update(dict(self.pins))
        return ConstraintSpec(
            pins=merged, masses=self.masses, region=self.region
        )

    # -- serialization -----------------------------------------------------
    def to_params(self) -> dict[str, Any]:
        """Canonical minimal dict for params echoes and fingerprints.

        Empty facets are omitted and everything nests as **lists** so
        the dict compares equal to itself after any JSON round-trip.
        """
        out: dict[str, Any] = {}
        if self.pins:
            out["pins"] = [[v, list(pos)] for v, pos in self.pins]
        if self.masses:
            out["masses"] = [[v, m] for v, m in self.masses]
        if self.region is not None:
            out["region"] = [[lo, hi] for lo, hi in self.region]
        return out
