"""PHDE: PCA-based high-dimensional embedding (paper Algorithm 2).

Harel & Koren's original HDE — the algorithm most papers mean when they
say "HDE" (section 4.5.1 discusses the naming).  Same BFS phase as
ParHDE, but instead of a Laplacian product it column-centers the distance
matrix and projects onto the two dominant principal components:

1. BFS phase: ``B in R^{n x s}`` of pivot distances;
2. ColCenter: ``C = B - column_means(B)`` — two-phase (means pass, then
   subtraction pass) exactly as parallelized in section 3.2;
3. MatMul: ``M = C' C`` (dense gemm);
4. Other: top-2 eigenpairs of ``M``; coordinates ``[x, y] = C Y``.

Maximizes node scatter (the denominator of Eq. 1, without the
D-normalization).
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from ..linalg.blas import center_columns, dense_gemm
from ..linalg.eigen import extreme_eigenpairs
from ..parallel.costs import Ledger
from ..parallel.primitives import F64, map_cost
from .constraints import ConstraintSpec
from .pivots import select_and_traverse
from .result import LayoutResult

__all__ = ["phde"]


def phde(
    g: CSRGraph,
    s: int = 10,
    *,
    dims: int = 2,
    seed: int = 0,
    pivots: str = "kcenters",
    traversal: str = "per-source",
    constraints: ConstraintSpec | dict | None = None,
    pins=None,
    masses=None,
    region=None,
    weighted: bool = False,
    delta: float | None = None,
    ledger: Ledger | None = None,
) -> LayoutResult:
    """PCA-based HDE layout.  Parameters as in :func:`repro.core.parhde`.

    Constraints get the PCA-appropriate treatment: masses weight the
    Gram matrix (``M = Cᵀ diag(m) C``, mass-weighted principal axes);
    pins translate the layout onto the pinned centroid and are then
    written back bitwise; the region clamp is identical to ParHDE's.
    """
    if g.n < 3:
        raise ValueError("layout needs at least 3 vertices")
    if s < dims:
        raise ValueError(f"s={s} must be at least dims={dims}")
    spec = ConstraintSpec.resolve(
        constraints, pins=pins, masses=masses, region=region
    )
    spec.validate_for(g.n, dims)
    led = ledger if ledger is not None else Ledger()

    with led.phase("BFS"):
        ms = select_and_traverse(
            g, s, strategy=pivots, traversal=traversal, seed=seed,
            ledger=led, weighted=weighted, delta=delta,
        )
    B = ms.distances
    if (weighted and not np.all(np.isfinite(B))) or (
        not weighted and B.min() < 0
    ):
        raise ValueError("graph must be connected")

    with led.phase("ColCenter"):
        C = center_columns(B, led)

    with led.phase("MatMul"):
        if spec.has_masses:
            mvec = spec.mass_vector(g.n)
            led.add(
                map_cost(g.n * s, flops_per_elem=1.0, bytes_per_elem=2 * F64)
            )
            M = dense_gemm(C.T, mvec[:, None] * C, led)
        else:
            M = dense_gemm(C.T, C, led)

    with led.phase("Other"):
        evals, Y = extreme_eigenpairs(M, dims, which="largest")
        coords = C @ Y
        led.add(
            map_cost(g.n * s * dims, flops_per_elem=2.0, bytes_per_elem=F64)
        )
        if spec.has_pins:
            pin_idx, pin_pos = spec.pin_arrays()
            coords = coords + (
                pin_pos.mean(axis=0) - coords[pin_idx].mean(axis=0)
            )
            coords[pin_idx] = pin_pos
        coords = spec.clamp(coords)

    params = dict(
        s=s, dims=dims, seed=seed, pivots=pivots, traversal=traversal,
        weighted=weighted, delta=delta,
    )
    if not spec.is_trivial:
        params["constraints"] = spec.to_params()
    return LayoutResult(
        coords=coords,
        algorithm="phde",
        B=B,
        S=C,
        eigenvalues=evals,
        pivots=ms.sources,
        bfs_stats=ms.stats,
        ledger=led,
        params=params,
    )
