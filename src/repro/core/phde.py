"""PHDE: PCA-based high-dimensional embedding (paper Algorithm 2).

Harel & Koren's original HDE — the algorithm most papers mean when they
say "HDE" (section 4.5.1 discusses the naming).  Same BFS phase as
ParHDE, but instead of a Laplacian product it column-centers the distance
matrix and projects onto the two dominant principal components:

1. BFS phase: ``B in R^{n x s}`` of pivot distances;
2. ColCenter: ``C = B - column_means(B)`` — two-phase (means pass, then
   subtraction pass) exactly as parallelized in section 3.2;
3. MatMul: ``M = C' C`` (dense gemm);
4. Other: top-2 eigenpairs of ``M``; coordinates ``[x, y] = C Y``.

Maximizes node scatter (the denominator of Eq. 1, without the
D-normalization).
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from ..linalg.blas import center_columns, dense_gemm
from ..linalg.eigen import extreme_eigenpairs
from ..parallel.costs import Ledger
from ..parallel.primitives import F64, map_cost
from .pivots import select_and_traverse
from .result import LayoutResult

__all__ = ["phde"]


def phde(
    g: CSRGraph,
    s: int = 10,
    *,
    dims: int = 2,
    seed: int = 0,
    pivots: str = "kcenters",
    traversal: str = "per-source",
    weighted: bool = False,
    delta: float | None = None,
    ledger: Ledger | None = None,
) -> LayoutResult:
    """PCA-based HDE layout.  Parameters as in :func:`repro.core.parhde`."""
    if g.n < 3:
        raise ValueError("layout needs at least 3 vertices")
    if s < dims:
        raise ValueError(f"s={s} must be at least dims={dims}")
    led = ledger if ledger is not None else Ledger()

    with led.phase("BFS"):
        ms = select_and_traverse(
            g, s, strategy=pivots, traversal=traversal, seed=seed,
            ledger=led, weighted=weighted, delta=delta,
        )
    B = ms.distances
    if (weighted and not np.all(np.isfinite(B))) or (
        not weighted and B.min() < 0
    ):
        raise ValueError("graph must be connected")

    with led.phase("ColCenter"):
        C = center_columns(B, led)

    with led.phase("MatMul"):
        M = dense_gemm(C.T, C, led)

    with led.phase("Other"):
        evals, Y = extreme_eigenpairs(M, dims, which="largest")
        coords = C @ Y
        led.add(
            map_cost(g.n * s * dims, flops_per_elem=2.0, bytes_per_elem=F64)
        )

    return LayoutResult(
        coords=coords,
        algorithm="phde",
        B=B,
        S=C,
        eigenvalues=evals,
        pivots=ms.sources,
        bfs_stats=ms.stats,
        ledger=led,
        params=dict(
            s=s, dims=dims, seed=seed, pivots=pivots, traversal=traversal,
            weighted=weighted, delta=delta,
        ),
    )
