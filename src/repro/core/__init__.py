"""Core layout algorithms: ParHDE, PHDE, PivotMDS, and extensions."""

from .constrained import carrier_field, deflate_basis, free_indicator
from .constraints import ConstraintSpec
from .hde import parhde
from .kernels import SUBSPACE_METHODS, KernelConfig
from .phde import phde
from .pivotmds import double_center, pivotmds
from .pivots import TRAVERSALS, STRATEGIES, random_pivots, select_and_traverse
from .refine import RefineResult, centroid_sweep, refine, residual
from .serialize import load_layout, save_layout
from .subspace_iteration import parhde_refined_subspace, subspace_iterate
from .result import LayoutResult
from .stress_majorization import (
    MajorizationResult,
    build_terms,
    stress_majorization,
)
from .variants import laplacian_layout, parhde_coupled
from .zoom import ZoomResult, khop_subgraph, khop_vertices, zoom_layout

__all__ = [
    "parhde",
    "phde",
    "pivotmds",
    "double_center",
    "KernelConfig",
    "ConstraintSpec",
    "carrier_field",
    "deflate_basis",
    "free_indicator",
    "STRATEGIES",
    "TRAVERSALS",
    "SUBSPACE_METHODS",
    "random_pivots",
    "select_and_traverse",
    "LayoutResult",
    "MajorizationResult",
    "build_terms",
    "stress_majorization",
    "laplacian_layout",
    "parhde_coupled",
    "RefineResult",
    "centroid_sweep",
    "refine",
    "residual",
    "save_layout",
    "load_layout",
    "subspace_iterate",
    "parhde_refined_subspace",
    "ZoomResult",
    "khop_vertices",
    "khop_subgraph",
    "zoom_layout",
]
