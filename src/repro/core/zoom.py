"""The "zoom" feature: interactive neighborhood layouts (§4.5.2).

Because ParHDE lays out million-edge graphs in real time, the paper adds
a zoom interaction: pick a vertex in the global layout, extract its
k-hop neighborhood, and lay out just that subgraph (Figure 8 shows the
10-hop neighborhood of a barth5 vertex).  The heavy lifting is a single
truncated BFS plus a small induced-subgraph ParHDE run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..bfs.frontier import gather_neighbors
from ..graph.build import induced_subgraph
from ..graph.csr import CSRGraph
from .hde import parhde
from .result import LayoutResult

__all__ = ["ZoomResult", "khop_vertices", "khop_subgraph", "zoom_layout"]


def khop_vertices(g: CSRGraph, center: int, hops: int) -> np.ndarray:
    """Sorted ids of all vertices within ``hops`` of ``center``."""
    if not 0 <= center < g.n:
        raise ValueError("center out of range")
    if hops < 0:
        raise ValueError("hops must be >= 0")
    visited = np.zeros(g.n, dtype=bool)
    visited[center] = True
    frontier = np.array([center], dtype=np.int64)
    for _ in range(hops):
        if len(frontier) == 0:
            break
        nbrs, _, _ = gather_neighbors(g, frontier)
        nbrs = nbrs.astype(np.int64)
        fresh = np.unique(nbrs[~visited[nbrs]])
        visited[fresh] = True
        frontier = fresh
    return np.flatnonzero(visited).astype(np.int64)


def khop_subgraph(
    g: CSRGraph, center: int, hops: int
) -> tuple[CSRGraph, np.ndarray]:
    """Induced subgraph of the k-hop ball and the original vertex ids.

    ``ids[k]`` is the original id of subgraph vertex ``k``; the center's
    new id is ``searchsorted(ids, center)``.
    """
    ids = khop_vertices(g, center, hops)
    sub = induced_subgraph(g, ids, name=f"{g.name or 'graph'}-zoom")
    return sub, ids


@dataclass
class ZoomResult:
    """Neighborhood layout plus the id mapping back to the host graph."""

    layout: LayoutResult
    subgraph: CSRGraph
    vertex_ids: np.ndarray  # original id of each subgraph vertex
    center: int  # original id
    hops: int

    @property
    def center_local(self) -> int:
        return int(np.searchsorted(self.vertex_ids, self.center))


def zoom_layout(
    g: CSRGraph, center: int, hops: int = 10, s: int = 10, **hde_kwargs
) -> ZoomResult:
    """Lay out the ``hops``-hop neighborhood of ``center`` with ParHDE.

    Extra keyword arguments flow to :func:`repro.core.parhde`.  The
    induced ball is connected by construction, so no LCC pass is needed.
    """
    sub, ids = khop_subgraph(g, center, hops)
    s_eff = min(s, max(2, sub.n - 1))
    layout = parhde(sub, s_eff, **hde_kwargs)
    return ZoomResult(
        layout=layout, subgraph=sub, vertex_ids=ids, center=center, hops=hops
    )
