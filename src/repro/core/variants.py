"""ParHDE execution variants.

Section 4.4 notes that the default MGS D-orthogonalization "can also be
executed with a coupled BFS and D-orthogonalization steps" — each
distance vector is orthogonalized as soon as its traversal finishes,
which overlaps the two phases' memory footprints and is the structure
Algorithm 1 originally had.  The result is numerically identical to the
decoupled pipeline (same projections in the same order); what changes is
phase attribution and the ability to pipeline.

This module implements that coupled variant plus a convenience wrapper
for the plain-orthogonalization layout of section 4.5.1.
"""

from __future__ import annotations

import numpy as np

from ..bfs.direction_optimizing import bfs_distances
from ..graph.csr import CSRGraph
from ..linalg import blas
from ..linalg.eigen import extreme_eigenpairs
from ..linalg.laplacian import laplacian_spmm
from ..parallel.costs import Ledger
from ..parallel.primitives import F64, I32, map_cost
from .hde import parhde
from .result import LayoutResult

__all__ = ["parhde_coupled", "laplacian_layout"]


def laplacian_layout(g: CSRGraph, s: int = 10, **kwargs) -> LayoutResult:
    """Eigen-projection with plain orthogonalization (Algorithm 1).

    Approximates the *Laplacian* eigenvectors instead of the
    degree-normalized ones; for graphs with uniform degree distributions
    the drawings are nearly identical (section 4.5.1).
    """
    kwargs.setdefault("ortho", "plain")
    return parhde(g, s, **kwargs)


def parhde_coupled(
    g: CSRGraph,
    s: int = 10,
    *,
    dims: int = 2,
    seed: int = 0,
    drop_tol: float = 1e-3,
    project_basis: str = "S",
    ledger: Ledger | None = None,
) -> LayoutResult:
    """ParHDE with BFS and MGS D-orthogonalization interleaved.

    Equivalent output to ``parhde(..., gs_method="mgs")`` when given the
    same pivots; exists to demonstrate the pipelining opportunity CGS
    gives up (Table 7 discussion).  K-centers pivot selection only.
    """
    if g.n < 3:
        raise ValueError("layout needs at least 3 vertices")
    if s < dims:
        raise ValueError(f"s={s} must be at least dims={dims}")
    led = ledger if ledger is not None else Ledger()
    n = g.n
    d = g.weighted_degrees
    rng = np.random.default_rng(seed)

    B = np.empty((n, s), dtype=np.float64)
    sources = np.empty(s, dtype=np.int64)
    stats = []
    cols: list[np.ndarray] = [
        np.full(n, 1.0 / np.sqrt(float(d.sum())), dtype=np.float64)
    ]
    kept: list[int] = []
    dropped: list[int] = []
    dmin = np.full(n, np.inf)
    v = int(rng.integers(n))

    for i in range(s):
        sources[i] = v
        with led.phase("BFS"):
            dist, st = bfs_distances(g, v, ledger=led)
            led.add(map_cost(n, flops_per_elem=1.0, bytes_per_elem=I32 + F64))
        stats.append(st)
        if dist.min() < 0:
            raise ValueError("graph must be connected")
        col = dist.astype(np.float64)
        B[:, i] = col
        # Orthogonalize this vector immediately against finished columns.
        with led.phase("DOrtho"):
            w = col.copy()
            for q in cols:
                coeff = blas.weighted_dot(q, d, w, led)
                blas.axpy(-coeff, q, w, led)
            nrm = blas.weighted_norm(w, d, led)
            if nrm <= drop_tol:
                dropped.append(i)
            else:
                blas.scale(1.0 / nrm, w, led)
                cols.append(w)
                kept.append(i)
        with led.phase("BFS"):
            np.minimum(dmin, col, out=dmin)
            from ..bfs.runner import farthest_update_cost

            led.add(farthest_update_cost(n), subphase="overhead")
            if i + 1 < s:
                v = int(np.argmax(dmin))
                if dmin[v] <= 0:
                    chosen = set(sources[: i + 1].tolist())
                    v = next(u for u in range(n) if u not in chosen)

    if len(cols) - 1 < dims:
        raise ValueError(
            f"only {len(cols) - 1} independent distance vectors; increase s"
        )
    S = np.column_stack(cols[1:])

    with led.phase("TripleProd"):
        P = laplacian_spmm(g, S, ledger=led, subphase="LS")
        Z = blas.dense_gemm(S.T, P, led, subphase="S'(LS)")

    with led.phase("Other"):
        evals, Y = extreme_eigenpairs(Z, dims, which="smallest")
        basis = S if project_basis == "S" else B[:, kept]
        coords = basis @ Y
        led.add(
            map_cost(n * S.shape[1] * dims, flops_per_elem=2.0, bytes_per_elem=F64)
        )

    return LayoutResult(
        coords=coords,
        algorithm="parhde-coupled",
        B=B,
        S=S,
        eigenvalues=evals,
        pivots=sources,
        bfs_stats=stats,
        dropped=dropped,
        ledger=led,
        params=dict(s=s, dims=dims, seed=seed, coupled=True),
    )
