"""Pivot (source vertex) selection strategies for the BFS phase.

The default strategy is the farthest-first traversal — the classical
2-approximation to the k-centers problem (Gonzalez): start from a random
vertex, then repeatedly add the vertex farthest from all chosen sources.
Because the next source depends on the previous traversal, the ``s``
searches are inherently sequential and each one is internally parallel.

Decoupling source selection from traversal (a ParHDE design change,
section 3) enables the *random pivots* alternative of Table 6: choose
all sources uniformly at random up front and run the traversals
concurrently, one per thread — a large win on small and high-diameter
graphs.
"""

from __future__ import annotations

import numpy as np

from ..bfs.batched import batched_bfs_distances, run_sources_batched
from ..bfs.direction_optimizing import bfs_distances
from ..bfs.runner import (
    MultiSourceResult,
    farthest_update_cost,
    run_sources,
    run_sources_concurrent,
)
from ..graph.csr import CSRGraph
from ..parallel.costs import Ledger
from ..parallel.primitives import F64, I32, map_cost
from ..sssp.delta_stepping import delta_stepping

__all__ = ["STRATEGIES", "TRAVERSALS", "select_and_traverse", "random_pivots"]

STRATEGIES = ("kcenters", "random", "random-concurrent")
TRAVERSALS = ("per-source", "batched")


def random_pivots(g: CSRGraph, s: int, seed: int = 0) -> np.ndarray:
    """``s`` distinct vertices chosen uniformly at random."""
    if s > g.n:
        raise ValueError(f"cannot choose {s} pivots from {g.n} vertices")
    rng = np.random.default_rng(seed)
    return rng.choice(g.n, size=s, replace=False).astype(np.int64)


def _kcenters(
    g: CSRGraph,
    s: int,
    seed: int,
    ledger: Ledger | None,
    weighted: bool,
    delta: float | None,
) -> MultiSourceResult:
    rng = np.random.default_rng(seed)
    v = int(rng.integers(g.n))
    B = np.empty((g.n, s), dtype=np.float64)
    sources = np.empty(s, dtype=np.int64)
    stats = []
    dmin = np.full(g.n, np.inf)
    for i in range(s):
        sources[i] = v
        if weighted:
            dist, st = delta_stepping(g, v, delta, ledger=_tag(ledger, "traversal"))
            col = dist
        else:
            dist, st = bfs_distances(g, v, ledger=_tag(ledger, "traversal"))
            col = dist.astype(np.float64)
        B[:, i] = col
        stats.append(st)
        if ledger is not None:
            # Column write-back (part of the traversal bookkeeping).
            ledger.add(
                map_cost(g.n, flops_per_elem=1.0, bytes_per_elem=I32 + F64),
                subphase="traversal",
            )
        # Farthest-first update: d <- min(d, b_i), next source = argmax d
        # ("BFS: Other" in Table 1; unreachable vertices are excluded so a
        # disconnected fragment cannot absorb every pivot).
        reach = col >= 0 if not weighted else np.isfinite(col)
        np.minimum(dmin, np.where(reach, col, -np.inf), out=dmin)
        if ledger is not None:
            ledger.add(farthest_update_cost(g.n), subphase="overhead")
        if i + 1 < s:
            v = int(np.argmax(dmin))
            if dmin[v] <= 0:
                # Every reachable vertex is already a source (tiny or
                # disconnected graph): fall back to any unchosen vertex.
                chosen = set(sources[: i + 1].tolist())
                v = next(u for u in range(g.n) if u not in chosen)
    return MultiSourceResult(B, sources, stats)


def _kcenters_batched(
    g: CSRGraph,
    s: int,
    seed: int,
    ledger: Ledger | None,
) -> MultiSourceResult:
    """Farthest-first selection with batched traversal rounds.

    Exact farthest-first forces the traversals to run one at a time
    (each next source depends on the previous traversal), which is
    precisely what the batched kernel cannot accelerate.  This variant
    batches the *legal* parallelism: sources are chosen in rounds of
    doubling size (1, 1, 2, 4, ...), each round picking the current
    top-``r`` farthest vertices and traversing them together in one
    frontier-matrix sweep.  The first two picks match exact
    farthest-first; later rounds approximate it (all of a round's picks
    are farthest with respect to the sources chosen *before* the round).
    Unweighted graphs only.
    """
    rng = np.random.default_rng(seed)
    B = np.empty((g.n, s), dtype=np.float64)
    sources = np.empty(s, dtype=np.int64)
    stats = []
    dmin = np.full(g.n, np.inf)
    chosen = np.zeros(g.n, dtype=bool)
    batch = [int(rng.integers(g.n))]
    filled = 0
    while filled < s:
        batch_arr = np.asarray(batch, dtype=np.int64)
        dist, sts = batched_bfs_distances(
            g, batch_arr, ledger=_tag(ledger, "traversal")
        )
        cols = dist.astype(np.float64)
        B[:, filled : filled + len(batch)] = cols
        sources[filled : filled + len(batch)] = batch_arr
        stats.extend(sts)
        chosen[batch_arr] = True
        if ledger is not None:
            ledger.add(
                map_cost(
                    g.n * len(batch),
                    flops_per_elem=1.0,
                    bytes_per_elem=I32 + F64,
                ),
                subphase="traversal",
            )
            # One farthest-first min-update+argmax per round, not per
            # source — the other half of the batching win.
            ledger.add(farthest_update_cost(g.n), subphase="overhead")
        np.minimum(
            dmin, np.where(cols >= 0, cols, -np.inf).min(axis=1), out=dmin
        )
        filled += len(batch)
        if filled >= s:
            break
        r = min(filled, s - filled)
        avail = np.where(chosen, -np.inf, dmin)
        top = np.argpartition(avail, -r)[-r:]
        top = top[np.argsort(avail[top])[::-1]]
        batch = [int(u) for u in top if avail[u] > 0]
        if len(batch) < r:
            # Every reachable vertex is already a source (tiny or
            # disconnected graph): fall back to unchosen vertices.
            have = set(batch)
            for u in range(g.n):
                if len(batch) == r:
                    break
                if not chosen[u] and u not in have:
                    batch.append(u)
                    have.add(u)
    return MultiSourceResult(B, sources, stats)


class _TagLedger:
    """Minimal ledger proxy forcing a fixed subphase on recorded costs."""

    def __init__(self, ledger: Ledger, subphase: str):
        self._ledger = ledger
        self._subphase = subphase

    def add(self, cost, subphase: str = "", *, sequential: bool = False) -> None:
        self._ledger.add(cost, subphase=self._subphase, sequential=sequential)

    @property
    def current_phase(self) -> str:
        return self._ledger.current_phase


def _tag(ledger: Ledger | None, subphase: str):
    return None if ledger is None else _TagLedger(ledger, subphase)


def select_and_traverse(
    g: CSRGraph,
    s: int,
    *,
    strategy: str = "kcenters",
    traversal: str = "per-source",
    seed: int = 0,
    ledger: Ledger | None = None,
    weighted: bool = False,
    delta: float | None = None,
) -> MultiSourceResult:
    """Choose ``s`` pivots and compute the ``(n, s)`` distance matrix.

    Strategies
    ----------
    ``"kcenters"``
        Farthest-first selection interleaved with parallel traversals
        (the default algorithm of Table 6).
    ``"random"``
        Random pivots, traversals still run one-at-a-time (each
        internally parallel) — isolates the selection cost.
    ``"random-concurrent"``
        Random pivots with all traversals running concurrently, one
        sequential BFS per thread (the "Rand. Pivots" column of Table 6).
        Unweighted only.

    Traversal backends
    ------------------
    ``"per-source"`` (default) runs the strategies exactly as above.
    ``"batched"`` executes traversals through the frontier-matrix
    multi-source sweep (:mod:`repro.bfs.batched`): ``random`` and
    ``random-concurrent`` keep their pivot sets and distances
    bitwise-identical (one sweep replaces the loop / the thread pool);
    ``kcenters`` switches to round-batched farthest-first selection
    (see :func:`_kcenters_batched`), an approximation whose pivot set
    may differ.  Unweighted graphs only.
    """
    if s < 1:
        raise ValueError("s must be >= 1")
    if s > g.n:
        raise ValueError(f"s={s} exceeds vertex count {g.n}")
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}; options: {STRATEGIES}")
    if traversal not in TRAVERSALS:
        raise ValueError(
            f"unknown traversal {traversal!r}; options: {TRAVERSALS}"
        )
    if traversal == "batched" and weighted:
        raise ValueError("batched traversal supports unweighted BFS only")
    if strategy == "kcenters":
        if traversal == "batched":
            return _kcenters_batched(g, s, seed, ledger)
        return _kcenters(g, s, seed, ledger, weighted, delta)
    sources = random_pivots(g, s, seed)
    if traversal == "batched":
        # One frontier-matrix sweep serves both random strategies: it IS
        # the concurrent execution, with identical distances and stats.
        return run_sources_batched(g, sources, ledger=ledger)
    if strategy == "random-concurrent":
        if weighted:
            raise ValueError("concurrent traversal supports unweighted BFS only")
        return run_sources_concurrent(g, sources, ledger=ledger)
    if weighted:
        B = np.empty((g.n, s), dtype=np.float64)
        stats = []
        for i, src in enumerate(sources):
            dist, st = delta_stepping(
                g, int(src), delta, ledger=_tag(ledger, "traversal")
            )
            B[:, i] = dist
            stats.append(st)
        return MultiSourceResult(B, sources, stats)
    return run_sources(g, sources, ledger=ledger)
