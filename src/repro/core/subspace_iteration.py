"""Subspace iteration on top of the HDE basis (Koren's refinement).

Koren's subspace-optimization paper (the HDE source, [30]) observes that
the BFS-distance subspace can be *improved* before projecting: apply the
walk operator to the whole basis a few times and re-D-orthonormalize —
block power iteration restricted to ``s`` vectors.  Each round rotates
the subspace toward the dominant eigenvectors, so the final 2D
projection approaches the exact spectral layout at the cost of a few
extra SpMMs (each round costs about one TripleProd phase, Table 1).

This sits between plain ParHDE (0 rounds) and the full §4.5.3
refinement: the iteration happens in the s-dimensional subspace, so one
round improves *all* candidate axes at once rather than just the two
chosen ones.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from ..linalg.blas import dense_gemm
from ..linalg.eigen import extreme_eigenpairs
from ..linalg.laplacian import laplacian_spmm, walk_spmm
from ..parallel.costs import Ledger
from ..parallel.primitives import F64, map_cost
from .hde import parhde
from .result import LayoutResult

__all__ = ["subspace_iterate", "parhde_refined_subspace"]


def _d_orthonormalize_block(
    S: np.ndarray, d: np.ndarray, ledger: Ledger | None = None
) -> np.ndarray:
    """MGS D-orthonormalization of a block against 1 and itself."""
    from ..linalg.randomized import d_orthonormalize_block

    return d_orthonormalize_block(S, d, ledger)


def subspace_iterate(
    g: CSRGraph,
    S: np.ndarray,
    rounds: int = 2,
    *,
    method: str = "deterministic",
    ledger: Ledger | None = None,
) -> np.ndarray:
    """Improve a D-orthonormal subspace by block power iteration.

    With ``method="deterministic"`` (the default) each round applies the
    lazy walk operator ``(I + D^-1 A)/2`` to every column and
    re-D-orthonormalizes the block.  ``method="randomized"`` delegates
    to :func:`repro.linalg.randomized.randomized_subspace_refine`: the
    same walk applications but a single final orthonormalization — the
    cheaper range-finding kernel (``kernels.subspace="randomized"``).
    Returns a new D-orthonormal basis of the same (or smaller, if rank
    drops) width.
    """
    if rounds < 0:
        raise ValueError("rounds must be >= 0")
    if S.shape[0] != g.n:
        raise ValueError("basis rows must equal n")
    if method not in ("deterministic", "randomized"):
        raise ValueError(
            f"method must be 'deterministic' or 'randomized', got {method!r}"
        )
    if method == "randomized":
        from ..linalg.randomized import randomized_subspace_refine

        return randomized_subspace_refine(g, S, rounds, ledger=ledger)
    d = g.weighted_degrees
    X = S.astype(np.float64, copy=True)
    for _ in range(rounds):
        W = walk_spmm(g, X, ledger=ledger)
        W += X
        W *= 0.5
        if ledger is not None:
            ledger.add(
                map_cost(X.size, flops_per_elem=2.0, bytes_per_elem=3 * F64)
            )
        X = _d_orthonormalize_block(W, d, ledger)
    return X


def parhde_refined_subspace(
    g: CSRGraph,
    s: int = 10,
    rounds: int = 2,
    *,
    dims: int = 2,
    seed: int = 0,
    ledger: Ledger | None = None,
    **parhde_kwargs,
) -> LayoutResult:
    """ParHDE with ``rounds`` of subspace iteration before the eigensolve.

    ``rounds = 0`` reproduces plain ParHDE exactly.  The extra phase is
    recorded as ``SubspaceIter`` in the ledger.
    """
    led = ledger if ledger is not None else Ledger()
    base = parhde(g, s, dims=dims, seed=seed, ledger=led, **parhde_kwargs)
    if rounds == 0:
        return base
    with led.phase("SubspaceIter"):
        S = subspace_iterate(g, base.S, rounds, ledger=led)
    with led.phase("TripleProd"):
        P = laplacian_spmm(g, S, ledger=led, subphase="LS")
        Z = dense_gemm(S.T, P, led, subphase="S'(LS)")
    with led.phase("Other"):
        evals, Y = extreme_eigenpairs(Z, dims, which="smallest")
        coords = S @ Y
        led.add(
            map_cost(
                g.n * S.shape[1] * dims, flops_per_elem=2.0, bytes_per_elem=F64
            )
        )
    return LayoutResult(
        coords=coords,
        algorithm="parhde-subspace-iter",
        B=base.B,
        S=S,
        eigenvalues=evals,
        pivots=base.pivots,
        bfs_stats=base.bfs_stats,
        dropped=base.dropped,
        ledger=led,
        params={**base.params, "rounds": rounds},
    )
