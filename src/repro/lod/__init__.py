"""repro.lod — spectrum-preserving coarsening + progressive serving.

Million-vertex graphs pay the full ParHDE pipeline before the first
response; this package turns first paint into a coarse-tier answer:

* :mod:`~repro.lod.hierarchy` — :class:`LodHierarchy`: a chain of
  spectrally coarsened CSR levels (effective-resistance-scored matching,
  :func:`repro.multilevel.spectral_matching`) with per-level mass
  vectors, prolongation maps and a measured eigenvalue-distortion bound
  (:func:`repro.validate.check_lod_distortion`).
* :mod:`~repro.lod.progressive` — :func:`progressive_layout`, a
  generator of progressively finer full-coverage layouts, and
  :class:`ProgressiveEngine`, the serving wrapper that answers requests
  from the coarsest servable level (``quality_tier="lod-k"``), refines
  asynchronously on the engine's pool and publishes every refinement
  through an epoch bump so polling clients converge on ``"full"``
  without ever seeing a stale cache entry.

See docs/lod.md for tier semantics and the refinement protocol.
"""

from .hierarchy import (
    LodHierarchy,
    LodLevel,
    build_lod_hierarchy,
    measure_distortion,
    tier_name,
)
from .progressive import (
    LodConfig,
    ProgressiveEngine,
    ProgressiveFrame,
    progressive_layout,
)

__all__ = [
    "LodConfig",
    "LodHierarchy",
    "LodLevel",
    "ProgressiveEngine",
    "ProgressiveFrame",
    "build_lod_hierarchy",
    "measure_distortion",
    "progressive_layout",
    "tier_name",
]
