"""Spectrum-preserving level-of-detail hierarchies.

A :class:`LodHierarchy` is a chain of coarse CSR graphs built with
:func:`repro.multilevel.spectral_matching` (edge contraction scored by
the effective-resistance proxy of Brissette, Huang & Slota), together
with everything progressive serving needs:

* a per-level **mass vector** — each coarse vertex carries the total
  mass of the fine vertices it absorbed (``m_c = P^T m_f`` for the 0/1
  partition prolongator ``P``), so the coarse generalized eigenproblem
  ``L_c x = mu M_c x`` is the exact Galerkin restriction of the fine
  one;
* the **prolongation maps** — composing the per-step fine->coarse
  mappings yields, for any depth, the map from finest vertex ids to
  that level's coarse ids, so a coarse layout can be pushed back to
  finest coordinates (`prolong_to_finest`) and a fine vector can be
  mass-averaged down (`restrict_to`);
* a **measured eigenvalue-distortion bound** — for levels small enough
  to afford a dense solve, the first nonzero generalized eigenvalues of
  the fine and coarse pencils are computed exactly and their worst
  ratio ``max_i mu_i / lambda_i`` recorded.  Galerkin restriction
  guarantees one-sided interlacing (``mu_i >= lambda_i``); the measured
  ratio quantifies how much the spectrum drifted and is checked against
  a configured bound by :func:`repro.validate.check_lod_distortion`.

Tier naming: depth ``0`` is the finest graph (quality tier ``"full"``);
depth ``k >= 1`` serves tier ``"lod-k"`` — larger ``k``, coarser
answer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.csr import CSRGraph
from ..multilevel.coarsen import absorb_singletons, contract, spectral_matching

__all__ = [
    "LodHierarchy",
    "LodLevel",
    "build_lod_hierarchy",
    "measure_distortion",
    "tier_name",
]


def tier_name(depth: int) -> str:
    """Quality-tier label for a hierarchy depth (0 = ``"full"``)."""
    return "full" if depth <= 0 else f"lod-{int(depth)}"


@dataclass(frozen=True)
class LodLevel:
    """One coarsening step of the hierarchy.

    ``mapping`` sends the *previous* (finer) level's vertex ids to this
    level's coarse ids; ``mass`` is the total fine mass absorbed per
    coarse vertex; ``distortion`` is the measured worst eigenvalue
    ratio ``mu_i / lambda_i`` against the previous level, or ``None``
    when the previous level was too large for an exact dense solve.
    """

    graph: CSRGraph
    mapping: np.ndarray  # int64[n_finer] -> coarse vertex id
    mass: np.ndarray  # float64[n_coarse]
    distortion: float | None = None

    @property
    def n(self) -> int:
        return self.graph.n


@dataclass(frozen=True)
class LodHierarchy:
    """The finest graph plus its chain of spectral coarsenings."""

    graph: CSRGraph
    mass: np.ndarray  # float64[n] finest-level mass (ones by default)
    levels: tuple[LodLevel, ...]  # finest-first coarsening steps

    @property
    def depth(self) -> int:
        """Number of coarsening steps below the finest graph."""
        return len(self.levels)

    def graph_at(self, depth: int) -> CSRGraph:
        """The CSR graph at ``depth`` (0 = finest)."""
        return self.graph if depth <= 0 else self.levels[depth - 1].graph

    def mass_at(self, depth: int) -> np.ndarray:
        return self.mass if depth <= 0 else self.levels[depth - 1].mass

    def sizes(self) -> list[int]:
        """Vertex counts finest-first, e.g. ``[100000, 51200, ..., 512]``."""
        return [self.graph.n] + [lvl.n for lvl in self.levels]

    @property
    def max_distortion(self) -> float | None:
        """Worst measured per-step eigenvalue distortion, if any step
        was small enough to measure."""
        measured = [
            lvl.distortion for lvl in self.levels if lvl.distortion is not None
        ]
        return max(measured) if measured else None

    def mapping_to_finest(self, depth: int) -> np.ndarray:
        """Composed map from finest vertex ids to depth-``depth`` ids."""
        mapping = np.arange(self.graph.n, dtype=np.int64)
        for lvl in self.levels[:depth]:
            mapping = lvl.mapping[mapping]
        return mapping

    def prolong_to_finest(
        self,
        coords: np.ndarray,
        depth: int,
        *,
        jitter: float = 1e-4,
        seed: int = 0,
    ) -> np.ndarray:
        """Push depth-``depth`` coordinates back to finest vertex ids.

        Finest vertices inherit their coarse representative's position
        plus a deterministic micro-jitter scaled to the layout spread,
        so vertices merged into one supernode do not coincide exactly
        (the refinement operator could never separate them).
        """
        coords = np.asarray(coords, dtype=np.float64)
        if depth <= 0:
            return coords
        fine = coords[self.mapping_to_finest(depth)]
        rng = np.random.default_rng(seed + depth)
        scale = float(np.abs(coords).max()) or 1.0
        return fine + jitter * scale * rng.standard_normal(fine.shape)

    def restrict_to(self, x: np.ndarray, depth: int) -> np.ndarray:
        """Mass-weighted average of a finest-level vector at ``depth``.

        Left inverse of (jitter-free) prolongation: restricting a
        prolonged vector returns it to within roundoff (each coarse
        vertex averages copies of its own value).
        """
        x = np.asarray(x, dtype=np.float64)
        if depth <= 0:
            return x
        mapping = self.mapping_to_finest(depth)
        n_c = self.graph_at(depth).n
        mass = np.bincount(mapping, weights=self.mass, minlength=n_c)
        if x.ndim == 1:
            acc = np.bincount(mapping, weights=self.mass * x, minlength=n_c)
            return acc / mass
        out = np.empty((n_c, x.shape[1]))
        for j in range(x.shape[1]):
            out[:, j] = np.bincount(
                mapping, weights=self.mass * x[:, j], minlength=n_c
            )
        return out / mass[:, None]


def _laplacian_dense(g: CSRGraph) -> np.ndarray:
    """Dense weighted Laplacian (exact reference; small graphs only)."""
    n = g.n
    a = np.zeros((n, n))
    src = np.repeat(np.arange(n), g.degrees)
    w = g.weights if g.weights is not None else np.ones(g.nnz)
    a[src, g.indices] = w
    a = 0.5 * (a + a.T)
    np.fill_diagonal(a, 0.0)
    return np.diag(a.sum(axis=1)) - a


def _pencil_eigvals(g: CSRGraph, mass: np.ndarray) -> np.ndarray:
    """Exact ascending eigenvalues of ``L x = lambda M x``, ``M = diag(mass)``."""
    lap = _laplacian_dense(g)
    inv_sqrt = 1.0 / np.sqrt(np.maximum(np.asarray(mass, dtype=np.float64), 1e-300))
    sym = inv_sqrt[:, None] * lap * inv_sqrt[None, :]
    return np.linalg.eigvalsh(0.5 * (sym + sym.T))


def measure_distortion(
    fine: CSRGraph,
    fine_mass: np.ndarray,
    coarse: CSRGraph,
    coarse_mass: np.ndarray,
    *,
    k: int = 8,
    zero_tol: float = 1e-9,
) -> float:
    """Worst ratio ``mu_i / lambda_i`` over the first ``k`` nonzero
    generalized eigenvalues of the fine and coarse ``(L, diag(mass))``
    pencils, computed exactly (dense).

    Galerkin coarsening guarantees ``mu_i >= lambda_i`` (the coarse
    pencil is the fine one restricted to the prolongator's range), so
    the ratio is >= 1 up to roundoff; 1.0 means the low spectrum — the
    part a spectral layout draws with — survived coarsening untouched.
    """
    lam = _pencil_eigvals(fine, fine_mass)
    mu = _pencil_eigvals(coarse, coarse_mass)
    # Drop the zero modes (one per connected component) from both ends:
    # the pencils share their component structure under contraction.
    scale = max(abs(lam[-1]), abs(mu[-1]), 1.0)
    lam_nz = lam[lam > zero_tol * scale]
    mu_nz = mu[mu > zero_tol * scale]
    k = min(int(k), len(lam_nz), len(mu_nz))
    if k <= 0:
        return 1.0
    return float(np.max(mu_nz[:k] / lam_nz[:k]))


# A step keeping more than this fraction of its vertices triggers
# singleton aggregation (absorb_singletons); pure matching steps below
# it keep the lower measured distortion of pairwise contraction.
_ABSORB_ABOVE = 0.7


def build_lod_hierarchy(
    g: CSRGraph,
    *,
    coarsest_size: int = 512,
    max_levels: int = 12,
    shrink_floor: float = 0.9,
    seed: int = 0,
    mass: np.ndarray | None = None,
    measure_limit: int = 600,
    measure_k: int = 8,
) -> LodHierarchy:
    """Coarsen ``g`` spectrally until ``coarsest_size`` vertices.

    A step whose 1-1 matching starves (keeps more than 70% of its
    vertices — hub-dominated coarse graphs cap a matching at one
    satellite per hub) retries with singleton aggregation
    (:func:`repro.multilevel.absorb_singletons`), so the hierarchy
    shrinks geometrically instead of stalling.  Stops early when even
    the aggregated step keeps more than ``shrink_floor`` of its
    vertices or after ``max_levels`` steps.  Per-step eigenvalue
    distortion is measured exactly whenever the finer level has at most
    ``measure_limit`` vertices (a dense solve; beyond that the bound is
    inherited from the construction's interlacing guarantee rather than
    measured).
    """
    if mass is None:
        mass = np.ones(g.n)
    else:
        mass = np.asarray(mass, dtype=np.float64)
        if mass.shape != (g.n,):
            raise ValueError(f"mass must have shape ({g.n},), got {mass.shape}")
    levels: list[LodLevel] = []
    current, current_mass = g, mass
    for i in range(int(max_levels)):
        if current.n <= coarsest_size:
            break
        match = spectral_matching(current, seed + i)
        step = contract(current, match)
        if step.graph.n > _ABSORB_ABOVE * current.n:
            # The 1-1 matching starved (hub-dominated coarse graph whose
            # singleton satellites form an independent set).  Retry the
            # step with singleton aggregation, which keeps the shrink
            # factor bounded away from 1 at a small measured-distortion
            # cost; plain matching steps keep the better constant.
            step = contract(current, absorb_singletons(current, match))
        if step.graph.n > shrink_floor * current.n:
            break
        coarse_mass = np.bincount(
            step.mapping, weights=current_mass, minlength=step.graph.n
        )
        distortion = None
        if current.n <= measure_limit:
            distortion = measure_distortion(
                current, current_mass, step.graph, coarse_mass, k=measure_k
            )
        levels.append(
            LodLevel(
                graph=step.graph,
                mapping=step.mapping,
                mass=coarse_mass,
                distortion=distortion,
            )
        )
        current, current_mass = step.graph, coarse_mass
    return LodHierarchy(graph=g, mass=mass, levels=tuple(levels))
