"""Progressive level-of-detail layouts: coarse first, full eventually.

Two layers share the same refinement ladder:

* :func:`progressive_layout` — a library-level generator.  It lays out
  the coarsest level of a :class:`~repro.lod.hierarchy.LodHierarchy`,
  yields that as the first :class:`ProgressiveFrame` (coords prolonged
  to *finest* vertex ids, tagged ``quality_tier="lod-k"``), then walks
  the hierarchy up — one-step prolongation plus a few centroid sweeps
  per level — yielding a frame per level and finishing with a genuine
  full-pipeline run tagged ``"full"``.
* :class:`ProgressiveEngine` — a serving wrapper over
  :class:`~repro.service.engine.LayoutEngine`.  The first request for a
  large graph computes only the first frame synchronously (so the
  response arrives in coarse-tier time), then drains the rest of the
  generator asynchronously on the engine's pool, publishing every
  refinement through :meth:`LayoutEngine.publish_layout` — an epoch
  bump plus a cache put, the same invalidation path ``POST /update``
  uses — so clients polling ``GET /layout`` observe monotonically
  improving tiers and converge on ``"full"`` without ever seeing a
  stale epoch's entry.

The HTTP contract is unchanged: every frame's coordinates cover all
fine vertices, and responses differ from non-progressive serving only
in ``quality_tier`` and a ``params["lod"]`` metadata record.
"""

from __future__ import annotations

import inspect
import math
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterator, Mapping

import numpy as np

from ..core.hde import parhde
from ..core.refine import centroid_sweep
from ..core.result import LayoutResult
from ..graph.csr import CSRGraph
from ..parallel.pool import PoolSaturated
from ..resilience.ladder import tier_rank
from ..validate import InvariantViolation, check_lod_distortion
from ..service.engine import (
    BadRequest,
    LayoutEngine,
    LayoutRequest,
    LayoutResponse,
    Overloaded,
    ServiceError,
    UpdateRequest,
    UpdateResponse,
    ValidationFailed,
)
from ..service.fingerprint import canonical_params, layout_fingerprint
from .hierarchy import LodHierarchy, build_lod_hierarchy, tier_name

__all__ = [
    "LodConfig",
    "ProgressiveEngine",
    "ProgressiveFrame",
    "progressive_layout",
]


@dataclass(frozen=True)
class LodConfig:
    """Knobs for progressive level-of-detail serving.

    Attributes
    ----------
    mode:
        ``"auto"`` — first paint from the coarsest level;
        ``"budget"`` — first paint from the finest level whose
        estimated coarse-layout cost fits ``budget_ms``.
    budget_ms:
        First-paint wall-clock budget in milliseconds (``mode ==
        "budget"`` only).
    min_vertices:
        Graphs smaller than this are served directly — coarsening a
        graph that already lays out in interactive time only adds
        epochs.
    coarsest_size / max_levels / shrink_floor:
        Hierarchy construction knobs
        (:func:`~repro.lod.hierarchy.build_lod_hierarchy`).
    distortion_bound:
        Largest tolerated measured eigenvalue distortion; checked by
        :func:`repro.validate.check_lod_distortion` under the engine's
        validation policy.
    measure_limit:
        Largest level size for which distortion is measured exactly
        (dense eigensolve).
    refine_sweeps:
        Centroid sweeps per intermediate level during refinement.
    """

    mode: str = "auto"
    budget_ms: float | None = None
    min_vertices: int = 4096
    coarsest_size: int = 512
    max_levels: int = 12
    shrink_floor: float = 0.9
    distortion_bound: float = 3.0
    measure_limit: int = 600
    refine_sweeps: int = 3

    def __post_init__(self) -> None:
        if self.mode not in ("auto", "budget"):
            raise ValueError(f"mode must be 'auto' or 'budget', got {self.mode!r}")
        if self.mode == "budget" and (
            self.budget_ms is None
            or not math.isfinite(self.budget_ms)
            or self.budget_ms <= 0
        ):
            raise ValueError(
                f"budget mode needs a finite budget_ms > 0, got {self.budget_ms!r}"
            )

    @classmethod
    def parse(cls, value: "LodConfig | str | float | bool | None") -> "LodConfig | None":
        """Coerce a user-facing ``lod`` value to a config (or ``None``).

        ``None`` / ``False`` / ``"off"`` disable LOD; ``True`` /
        ``"auto"`` mean coarsest-first; a number (or numeric string) is
        a first-paint budget in milliseconds.
        """
        if value is None or value is False or value == "off":
            return None
        if value is True or value == "auto":
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            try:
                value = float(value)
            except ValueError:
                raise ValueError(
                    f"lod must be 'off', 'auto' or a budget in"
                    f" milliseconds, got {value!r}"
                ) from None
        if isinstance(value, (int, float)):
            budget = float(value)
            if not math.isfinite(budget) or budget <= 0:
                raise ValueError(
                    f"lod budget must be finite and > 0 ms, got {budget!r}"
                )
            return cls(mode="budget", budget_ms=budget)
        raise ValueError(f"cannot interpret lod value {value!r}")


@dataclass
class ProgressiveFrame:
    """One rung of a progressive layout: a servable full-coverage result."""

    depth: int  # hierarchy depth this frame was computed at (0 = finest)
    tier: str  # "lod-<depth>" or "full"
    result: LayoutResult  # coords always cover the finest vertex ids
    elapsed: float  # seconds since the progressive run started


def _wrap_frame(
    base: LayoutResult,
    coords_at_depth: np.ndarray,
    hierarchy: LodHierarchy,
    depth: int,
    *,
    algorithm: str,
    params_echo: Mapping[str, Any],
    seed: int,
) -> LayoutResult:
    """Package depth-``depth`` coordinates as a finest-graph result.

    ``algorithm`` and the params echo match what a cache-consistency
    check expects for the original request; the ``lod`` record carries
    the provenance.
    """
    params = dict(params_echo)
    params["quality_tier"] = tier_name(depth)
    params["lod"] = {
        "depth": int(depth),
        "levels": hierarchy.sizes(),
        "distortion": hierarchy.max_distortion,
    }
    return LayoutResult(
        coords=hierarchy.prolong_to_finest(coords_at_depth, depth, seed=seed),
        algorithm=algorithm,
        B=base.B,
        S=base.S,
        eigenvalues=base.eigenvalues,
        pivots=base.pivots,
        params=params,
    )


def _level_masses(
    algorithm: Callable[..., LayoutResult],
    hierarchy: LodHierarchy,
    depth: int,
    params: Mapping[str, Any],
) -> dict[int, float] | None:
    """Per-supernode masses for the coarse-tier layout, if applicable.

    A supernode stands for ``m_c = Pᵀm`` finest vertices; laying the
    coarse level out unit-mass biases positions toward hub clusters
    (every supernode pulls equally regardless of how many vertices it
    represents).  Feed the hierarchy's accumulated mass vector into the
    mass-weighted solver — unless the caller already passed masses or
    constraints of their own, or the algorithm cannot accept them.
    """
    if "masses" in params or "constraints" in params or params.get("rounds"):
        return None
    kernels = params.get("kernels")
    if kernels is not None and (
        kernels.get("rounds") if isinstance(kernels, Mapping)
        else getattr(kernels, "rounds", 0)
    ):
        return None
    try:
        accepted = inspect.signature(algorithm).parameters
    except (TypeError, ValueError):
        return None
    if "masses" not in accepted:
        return None
    mass = hierarchy.mass_at(depth)
    out = {int(i): float(m) for i, m in enumerate(mass) if m != 1.0}
    return out or None


def progressive_layout(
    g: CSRGraph,
    s: int = 10,
    *,
    dims: int = 2,
    seed: int = 0,
    algorithm: Callable[..., LayoutResult] = parhde,
    algorithm_name: str | None = None,
    config: LodConfig | None = None,
    hierarchy: LodHierarchy | None = None,
    start_depth: int | None = None,
    params_echo: Mapping[str, Any] | None = None,
    **params: Any,
) -> Iterator[ProgressiveFrame]:
    """Yield progressively finer layouts of ``g``, coarsest first.

    The first frame is ``algorithm`` run on the hierarchy's coarsest
    level (its *structure*: accumulated contraction weights steer the
    coarsening, BFS hop counts are what HDE consumes) with coordinates
    prolonged to the finest vertex ids.  Each following frame prolongs
    one level and runs ``config.refine_sweeps`` weighted-centroid
    sweeps; the final frame is a genuine full run of ``algorithm`` on
    ``g`` itself, so the generator's last result is bit-identical to a
    non-progressive call with the same parameters.

    ``start_depth`` overrides where the ladder starts (budget mode);
    ``params_echo`` overrides the params dict recorded on intermediate
    frames (the serving engine passes the request's canonical kwargs so
    cache-consistency checks hold).
    """
    cfg = config if config is not None else LodConfig()
    t0 = time.perf_counter()
    name = algorithm_name or getattr(algorithm, "__name__", "layout")
    echo = dict(params_echo) if params_echo is not None else dict(
        s=int(s), seed=int(seed), dims=int(dims), **params
    )
    if hierarchy is None:
        hierarchy = build_lod_hierarchy(
            g,
            coarsest_size=cfg.coarsest_size,
            max_levels=cfg.max_levels,
            shrink_floor=cfg.shrink_floor,
            seed=seed,
            measure_limit=cfg.measure_limit,
        )
    depth = hierarchy.depth if start_depth is None else int(start_depth)
    depth = max(0, min(depth, hierarchy.depth))

    def full_frame() -> ProgressiveFrame:
        result = algorithm(g, int(s), dims=dims, seed=seed, **params)
        return ProgressiveFrame(
            0, "full", result, time.perf_counter() - t0
        )

    if depth == 0:
        yield full_frame()
        return

    coarse = hierarchy.graph_at(depth)
    s_eff = min(int(s), max(dims, coarse.n - 1))
    coarse_params = dict(params)
    level_masses = _level_masses(algorithm, hierarchy, depth, coarse_params)
    if level_masses is not None:
        coarse_params["masses"] = level_masses
    base = algorithm(
        coarse.unweighted(), s_eff, dims=dims, seed=seed, **coarse_params
    )
    coords = base.coords
    yield ProgressiveFrame(
        depth,
        tier_name(depth),
        _wrap_frame(
            base, coords, hierarchy, depth,
            algorithm=name, params_echo=echo, seed=seed,
        ),
        time.perf_counter() - t0,
    )
    for d in range(depth - 1, 0, -1):
        # levels[d].mapping sends depth-d ids to depth-(d+1) ids, so
        # indexing the coarser coords by it is the one-step prolongation.
        coords = coords[hierarchy.levels[d].mapping]
        rng = np.random.default_rng(seed + 7 * d)
        scale = float(np.abs(coords).max()) or 1.0
        coords = coords + 1e-4 * scale * rng.standard_normal(coords.shape)
        level_graph = hierarchy.graph_at(d)
        for _ in range(max(0, int(cfg.refine_sweeps))):
            coords = centroid_sweep(level_graph, coords)
        yield ProgressiveFrame(
            d,
            tier_name(d),
            _wrap_frame(
                base, coords, hierarchy, d,
                algorithm=name, params_echo=echo, seed=seed,
            ),
            time.perf_counter() - t0,
        )
    yield full_frame()


class _Record:
    """Best published result for one (graph-version, request-shape) key."""

    __slots__ = ("lock", "best", "best_rank", "best_fp", "chain_started")

    def __init__(self):
        self.lock = threading.RLock()
        self.best: LayoutResult | None = None
        self.best_rank = 10**9
        self.best_fp: str | None = None
        self.chain_started = False


class _LodState:
    """Hierarchy + per-request records for one graph content version."""

    __slots__ = ("hierarchy", "content", "records", "lock")

    def __init__(self, hierarchy: LodHierarchy, content: int):
        self.hierarchy = hierarchy
        self.content = content
        self.records: dict[str, _Record] = {}
        self.lock = threading.Lock()

    def record(self, key: str) -> _Record:
        with self.lock:
            rec = self.records.get(key)
            if rec is None:
                rec = self.records[key] = _Record()
            return rec


class ProgressiveEngine:
    """Serve coarse-first, refine asynchronously, converge to full.

    Wraps a :class:`~repro.service.engine.LayoutEngine` and preserves
    its whole interface (``submit`` / ``update`` / ``stats`` / ``drain``
    / ``close`` / telemetry), so the HTTP layer, the cluster worker and
    the CLI can treat either interchangeably.  Requests are served
    progressively when the effective LOD mode (the request's ``lod``
    field, falling back to the engine-level default) is enabled *and*
    the graph is at least ``config.min_vertices`` vertices; everything
    else passes straight through.

    Parameters
    ----------
    engine:
        The wrapped engine (owns the cache, pool, graphs and telemetry).
    lod:
        Default mode for requests that do not set ``lod`` themselves:
        ``None``/``"off"`` (opt-in per request), ``"auto"``, or a
        first-paint budget in milliseconds.
    config:
        Knob overrides (hierarchy sizes, refinement sweeps, distortion
        bound); the mode/budget fields are overridden per request.
    """

    def __init__(
        self,
        engine: LayoutEngine,
        *,
        lod: str | float | None = None,
        config: LodConfig | None = None,
    ):
        self.engine = engine
        self.config = config if config is not None else LodConfig()
        # Validate the default eagerly so `serve --lod junk` fails at
        # startup, not on the first request.
        self._default = LodConfig.parse(lod) if not isinstance(lod, LodConfig) else lod
        if self._default is not None and config is not None:
            self._default = replace(
                config, mode=self._default.mode, budget_ms=self._default.budget_ms
            )
        self._states: "OrderedDict[tuple[str, int], _LodState]" = OrderedDict()
        self._states_lock = threading.Lock()
        self._max_states = 8
        self._cost_per_unit = 1e-4  # ms per (n*s + m) unit, EWMA-calibrated
        self._cost_lock = threading.Lock()
        self._closed = False

    # -- delegation ---------------------------------------------------------
    @property
    def telemetry(self):
        return self.engine.telemetry

    @property
    def cache(self):
        return self.engine.cache

    @property
    def draining(self) -> bool:
        return self.engine.draining

    @property
    def inflight(self) -> int:
        return self.engine.inflight

    @property
    def queue_depth(self) -> int:
        return self.engine.queue_depth

    def update(self, request: UpdateRequest) -> UpdateResponse:
        # The content bump invalidates every _LodState for the old
        # version on its own: states are keyed by (digest, content).
        return self.engine.update(request)

    def drain(self, timeout: float = 10.0) -> bool:
        return self.engine.drain(timeout)

    def close(self) -> None:
        self._closed = True
        self.engine.close()

    def __enter__(self) -> "ProgressiveEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def stats(self) -> dict:
        snap = self.engine.stats()
        with self._states_lock:
            hierarchies = [
                state.hierarchy.sizes() for state in self._states.values()
            ]
        snap["lod"] = {
            "default": (
                "off"
                if self._default is None
                else (
                    self._default.mode
                    if self._default.budget_ms is None
                    else f"budget:{self._default.budget_ms:g}ms"
                )
            ),
            "min_vertices": self.config.min_vertices,
            "distortion_bound": self.config.distortion_bound,
            "hierarchies": hierarchies,
        }
        return snap

    # -- request path -------------------------------------------------------
    def submit(self, request: LayoutRequest) -> LayoutResponse:
        try:
            cfg = self._config_for(request)
        except ValueError as exc:
            self.telemetry.inc("requests")
            self.telemetry.inc("errors.bad_request")
            raise BadRequest(str(exc)) from None
        if cfg is None:
            return self.engine.submit(request)
        t0 = time.perf_counter()
        tel = self.telemetry
        tel.inc("requests")
        tel.inc("lod.requests")
        try:
            if self.engine.draining:
                raise Overloaded("engine is draining; not accepting new requests")
            response = self._serve_lod(request, cfg, t0)
        except ServiceError as exc:
            tel.inc(f"errors.{exc.code}")
            raise
        tel.observe("latency_seconds", time.perf_counter() - t0)
        tel.inc(f"responses.{response.status}")
        return response

    def _config_for(self, request: LayoutRequest) -> LodConfig | None:
        value = request.lod if request.lod is not None else self._default
        if isinstance(value, LodConfig):
            return value
        parsed = LodConfig.parse(value)
        if parsed is None:
            return None
        return replace(self.config, mode=parsed.mode, budget_ms=parsed.budget_ms)

    def _serve_lod(
        self, request: LayoutRequest, cfg: LodConfig, t0: float
    ) -> LayoutResponse:
        eng = self.engine
        tel = self.telemetry
        g, digest, name, epoch, content = eng.resolve_versioned(request)
        kwargs = eng._validate(request, g, eng._state_pins(request))
        if g.n < cfg.min_vertices:
            tel.inc("lod.bypass_small")
            return eng._serve(request, t0)
        if "constraints" in kwargs:
            # Pins/masses/region address finest vertex ids; prolonging
            # them through the hierarchy would only approximately honor
            # them.  Constrained requests get the exact (and warm-
            # restartable) direct path.
            tel.inc("lod.bypass_constrained")
            return eng._serve(request, t0)
        fingerprint = layout_fingerprint(
            digest, request.algorithm, kwargs, epoch=epoch
        )

        def respond(result: LayoutResult, status: str, fp: str) -> LayoutResponse:
            return LayoutResponse(
                fingerprint=fp,
                status=status,
                result=result,
                graph_name=name,
                n=g.n,
                m=g.m,
                elapsed=time.perf_counter() - t0,
            )

        cached = eng.cache.get(fingerprint)
        if cached is not None:
            result, where = cached
            self._check_consistency(result, g, request, kwargs)
            tel.inc("cache_hits")
            return respond(result, f"{where}-hit", fingerprint)
        tel.inc("cache_misses")

        state = self._lod_state(request, cfg, g, digest, content)
        if state.hierarchy.depth == 0:
            # The graph would not coarsen (it starved the matching);
            # nothing progressive to serve — fall through to the plain
            # path, which also handles single-flight and caching.
            tel.inc("lod.flat_hierarchy")
            return eng._serve(request, t0)

        reckey = f"{request.algorithm}\x1f{canonical_params(kwargs)}"
        rec = state.record(reckey)
        with rec.lock:
            if rec.best is not None:
                # A refinement already published; the cache miss above
                # just means we raced the epoch bump -> cache put gap
                # (or the entry was evicted).  Serve the best in hand —
                # never something older.
                tel.inc("lod.best_served")
                return respond(rec.best, "lod-hit", rec.best_fp or fingerprint)
            depth = self._choose_depth(state.hierarchy, cfg, kwargs)
            if depth == 0:
                return eng._serve(request, t0)
            frames = self._frames(request, cfg, state, g, kwargs, depth)
            t_paint = time.perf_counter()
            try:
                first = next(frames)
            except InvariantViolation as exc:
                tel.inc("validation_failures")
                raise ValidationFailed(
                    f"coarse layout failed invariant check: {exc}"
                ) from exc
            except TypeError as exc:
                raise BadRequest(str(exc)) from exc
            self._note_cost(
                state.hierarchy, depth, kwargs,
                (time.perf_counter() - t_paint) * 1000.0,
            )
            tel.inc("lod.first_paint")
            tel.observe("lod.first_paint_seconds", time.perf_counter() - t0)
            fp = self._publish(request, kwargs, state, rec, first.result)
            if not rec.chain_started:
                rec.chain_started = True
                self._schedule_chain(request, kwargs, state, rec, frames, depth)
            return respond(first.result, "computed", fp or fingerprint)

    # -- internals ----------------------------------------------------------
    def _check_consistency(
        self, result: LayoutResult, g: CSRGraph, request: LayoutRequest, kwargs: dict
    ) -> None:
        """Mirror the plain engine's cache-hit consistency check."""
        eng = self.engine
        if not eng.validation.enabled:
            return
        from ..validate import check_cache_consistency

        check = check_cache_consistency(result, g, request.algorithm, kwargs)
        if not check.ok:
            self.telemetry.inc("validation_failures")
        try:
            eng.validation.handle(check)
        except InvariantViolation as exc:
            raise ValidationFailed(
                f"cache hit failed consistency check: {exc}"
            ) from exc

    def _lod_state(
        self,
        request: LayoutRequest,
        cfg: LodConfig,
        g: CSRGraph,
        digest: str,
        content: int,
    ) -> _LodState:
        key = (digest, content)
        with self._states_lock:
            state = self._states.get(key)
            if state is not None:
                self._states.move_to_end(key)
                return state
        t0 = time.perf_counter()
        hierarchy = build_lod_hierarchy(
            g,
            coarsest_size=cfg.coarsest_size,
            max_levels=cfg.max_levels,
            shrink_floor=cfg.shrink_floor,
            seed=int(request.seed),
            measure_limit=cfg.measure_limit,
        )
        self.telemetry.inc("lod.hierarchy_builds")
        self.telemetry.observe(
            "lod.hierarchy_build_seconds", time.perf_counter() - t0
        )
        check = check_lod_distortion(hierarchy, bound=cfg.distortion_bound)
        if not check.ok:
            self.telemetry.inc("lod.distortion_violations")
        try:
            self.engine.validation.handle(check)
        except InvariantViolation as exc:
            raise ValidationFailed(
                f"LOD hierarchy failed distortion check: {exc}"
            ) from exc
        state = _LodState(hierarchy, content)
        with self._states_lock:
            state = self._states.setdefault(key, state)
            self._states.move_to_end(key)
            while len(self._states) > self._max_states:
                self._states.popitem(last=False)
        return state

    def _choose_depth(
        self, hierarchy: LodHierarchy, cfg: LodConfig, kwargs: dict
    ) -> int:
        if cfg.mode != "budget" or cfg.budget_ms is None:
            return hierarchy.depth
        s = int(kwargs.get("s", 10))
        with self._cost_lock:
            coeff = self._cost_per_unit
        # Finest level whose estimated coarse-layout cost fits the
        # budget; the coarsest level is the fallback answer.
        for depth in range(1, hierarchy.depth + 1):
            level = hierarchy.graph_at(depth)
            if coeff * (level.n * max(1, s) + level.nnz) <= cfg.budget_ms:
                return depth
        return hierarchy.depth

    def _note_cost(
        self, hierarchy: LodHierarchy, depth: int, kwargs: dict, elapsed_ms: float
    ) -> None:
        """EWMA-calibrate the budget-mode cost model from a real run."""
        level = hierarchy.graph_at(depth)
        units = level.n * max(1, int(kwargs.get("s", 10))) + level.nnz
        if units <= 0 or elapsed_ms <= 0:
            return
        with self._cost_lock:
            self._cost_per_unit = (
                0.7 * self._cost_per_unit + 0.3 * (elapsed_ms / units)
            )

    def _frames(
        self,
        request: LayoutRequest,
        cfg: LodConfig,
        state: _LodState,
        g: CSRGraph,
        kwargs: dict,
        depth: int,
    ) -> Iterator[ProgressiveFrame]:
        eng = self.engine
        algo = eng._algorithms[request.algorithm]
        extras = {
            k: v for k, v in kwargs.items() if k not in ("s", "seed", "dims")
        }
        if eng.validation.enabled and eng._accepts_validate(algo):
            extras["validate"] = eng.validation
        return progressive_layout(
            g,
            kwargs["s"],
            dims=int(kwargs.get("dims", 2)),
            seed=kwargs["seed"],
            algorithm=algo,
            algorithm_name=request.algorithm,
            config=cfg,
            hierarchy=state.hierarchy,
            start_depth=depth,
            params_echo=kwargs,
            **extras,
        )

    def _publish(
        self,
        request: LayoutRequest,
        kwargs: dict,
        state: _LodState,
        rec: _Record,
        result: LayoutResult,
    ) -> str | None:
        """Record ``result`` as the best-so-far and publish it, in tier order.

        Returns the published fingerprint (``None`` for in-memory graphs
        or when the graph's content moved underneath the refinement).
        Caller note: safe to call from any thread; takes ``rec.lock``.
        """
        rank = tier_rank(result.quality_tier)
        with rec.lock:
            if rec.best is not None and rank >= rec.best_rank:
                return None
            rec.best = result
            rec.best_rank = rank
            if not isinstance(request.graph, str):
                # In-memory graphs have no engine-owned state to bump;
                # the record itself is the publication.
                return None
            fp = self.engine.publish_layout(
                request.graph,
                request.scale,
                request.seed,
                request.algorithm,
                kwargs,
                result,
                expect_content=state.content,
            )
            if fp is None:
                self.telemetry.inc("lod.publish_stale")
                return None
            rec.best_fp = fp
            return fp

    def _schedule_chain(
        self,
        request: LayoutRequest,
        kwargs: dict,
        state: _LodState,
        rec: _Record,
        frames: Iterator[ProgressiveFrame],
        depth: int,
    ) -> None:
        tel = self.telemetry
        tel.gauge("lod.refine_backlog").add(depth)

        def run() -> None:
            self._refine_chain(request, kwargs, state, rec, frames, depth)

        try:
            self.engine._pool.submit(run)
        except PoolSaturated:
            # Refinement must not be lost to a momentarily full queue —
            # the first paint was already served promising convergence.
            threading.Thread(
                target=run, name="lod-refine", daemon=True
            ).start()

    def _refine_chain(
        self,
        request: LayoutRequest,
        kwargs: dict,
        state: _LodState,
        rec: _Record,
        frames: Iterator[ProgressiveFrame],
        depth: int,
    ) -> None:
        """Drain the frame generator, publishing each refinement.

        Publishing uses the *request* kwargs (not the frame's params
        echo, which additionally carries quality_tier/lod records), so
        the published fingerprint matches what a future poll computes.
        """
        tel = self.telemetry
        gauge = tel.gauge("lod.refine_backlog")
        pending = depth
        try:
            for frame in frames:
                if self._closed or self.engine.draining or self._stale(
                    request, state
                ):
                    tel.inc("lod.refine_aborted")
                    return
                self._publish(request, kwargs, state, rec, frame.result)
                tel.inc("lod.refinements")
                pending -= 1
                gauge.add(-1)
            tel.inc("lod.converged")
        except Exception:  # noqa: BLE001 — background chain must not leak
            tel.inc("lod.refine_failures")
        finally:
            if pending > 0:
                gauge.add(-pending)

    def _stale(self, request: LayoutRequest, state: _LodState) -> bool:
        if not isinstance(request.graph, str):
            return False
        try:
            graph_state = self.engine._graph_state(
                request.graph, request.scale, request.seed
            )
        except ServiceError:
            return True
        return graph_state.content != state.content
