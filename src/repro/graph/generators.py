"""Synthetic graph generators.

These stand in for the paper's inputs (Table 2): the GAP Benchmark Suite
synthetic generators (uniform random and Kronecker) are reimplemented
faithfully, and the SuiteSparse real-world matrices are replaced by
structural analogs that preserve the properties the evaluation depends on
— degree distribution, diameter, and adjacency-list-gap locality.  See
DESIGN.md section 2 and :mod:`repro.datasets.collection` for the mapping.

All generators are vectorized (no per-edge Python loops), deterministic
given a seed, and return simple undirected :class:`CSRGraph` instances;
connectivity is *not* enforced here — the dataset layer applies the
paper's largest-connected-component preprocessing.
"""

from __future__ import annotations

import numpy as np

from .build import from_edges
from .csr import CSRGraph

__all__ = [
    "uniform_random",
    "kronecker",
    "grid2d",
    "road_network",
    "webgraph",
    "copying_powerlaw",
    "mesh_with_holes",
    "random_geometric",
    "banded",
    "watts_strogatz",
    "planted_partition",
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
    "binary_tree",
]


def uniform_random(scale: int, degree: int = 16, seed: int = 0) -> CSRGraph:
    """GAP ``-u`` uniform random graph: ``n = 2**scale``, ``degree * n``
    endpoint pairs drawn uniformly (Erdos-Renyi-like; duplicates merge).

    This is the paper's urand27 family: no locality, no skew — the
    latency-bound best-scaling instance.
    """
    if scale < 1:
        raise ValueError("scale must be >= 1")
    n = 1 << scale
    rng = np.random.default_rng(seed)
    edges = rng.integers(0, n, size=(degree * n, 2), dtype=np.int64)
    return from_edges(n, edges[:, 0], edges[:, 1], name=f"urand{scale}")


def kronecker(
    scale: int,
    degree: int = 16,
    seed: int = 0,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
) -> CSRGraph:
    """GAP ``-g`` Kronecker (R-MAT) graph with Graph500 parameters.

    ``n = 2**scale``; each of ``degree * n`` edges picks one quadrant bit
    per level with probabilities ``(a, b, c, 1-a-b-c)``.  Vertex ids are
    randomly permuted, as in the GAP generator, which destroys locality
    (the paper notes kron27's gap distribution matches urand27's).
    """
    if not 0 < a + b + c < 1:
        raise ValueError("quadrant probabilities must sum below 1")
    n = 1 << scale
    m = degree * n
    rng = np.random.default_rng(seed)
    u = np.zeros(m, dtype=np.int64)
    v = np.zeros(m, dtype=np.int64)
    for _ in range(scale):
        r = rng.random(m)
        ubit = (r >= a + b).astype(np.int64)
        vbit = (((r >= a) & (r < a + b)) | (r >= a + b + c)).astype(np.int64)
        u = (u << 1) | ubit
        v = (v << 1) | vbit
    perm = rng.permutation(n)
    return from_edges(n, perm[u], perm[v], name=f"kron{scale}")


def grid2d(rows: int, cols: int, *, diagonal: bool = False) -> CSRGraph:
    """Regular 2D grid with 4-point (or 8-point) stencil, row-major ids.

    The 5-point Laplacian stencil of the paper's ecology1 matrix is
    exactly ``grid2d(1000, 1000)``; we use a scaled version.
    """
    if rows < 1 or cols < 1:
        raise ValueError("grid must be at least 1x1")
    ids = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    pairs = [
        (ids[:, :-1].ravel(), ids[:, 1:].ravel()),   # right
        (ids[:-1, :].ravel(), ids[1:, :].ravel()),   # down
    ]
    if diagonal:
        pairs.append((ids[:-1, :-1].ravel(), ids[1:, 1:].ravel()))
        pairs.append((ids[:-1, 1:].ravel(), ids[1:, :-1].ravel()))
    u = np.concatenate([p[0] for p in pairs])
    v = np.concatenate([p[1] for p in pairs])
    return from_edges(rows * cols, u, v, name=f"grid{rows}x{cols}")


def road_network(
    rows: int, cols: int, seed: int = 0, *, keep: float = 0.62
) -> CSRGraph:
    """Road-network analog: sparse grid with random edge deletions.

    Keeps each grid edge with probability ``keep``, yielding the low
    average degree (~2.4 after LCC extraction) and large diameter that
    make road_usa the worst case for direction-optimizing BFS.
    Row-major ids give the mild locality real road matrices have.
    """
    if not 0 < keep <= 1:
        raise ValueError("keep must be in (0, 1]")
    base = grid2d(rows, cols)
    u, v = base.edge_list()
    rng = np.random.default_rng(seed)
    sel = rng.random(len(u)) < keep
    return from_edges(base.n, u[sel], v[sel], name=f"road{rows}x{cols}")


def webgraph(
    n: int,
    seed: int = 0,
    *,
    avg_degree: float = 55.0,
    local_fraction: float = 0.95,
    locality_scale: float = 15.0,
    skew: float = 0.7,
) -> CSRGraph:
    """Web-crawl analog (sk-2005): host-local links + skewed global links.

    Crawl order numbers pages of one host consecutively, so most links
    have *small* adjacency gaps — the favorable Figure 2 trend that makes
    the LS SpMM phase unexpectedly fast.  We model this directly: a
    ``local_fraction`` of each vertex's edges go to geometrically
    distributed nearby ids, the rest to power-law-skewed global targets
    (popular hubs at low ids).
    """
    if n < 4:
        raise ValueError("webgraph needs n >= 4")
    rng = np.random.default_rng(seed)
    # Heavily skewed out-degrees: sk-2005's hubs reach ~10^7 neighbors
    # (0.2 of n), so the tail is clipped only at n/6.
    deg = np.minimum(
        rng.pareto(1.4, n) * avg_degree * 0.5 + 2, n // 6
    ).astype(np.int64)
    src = np.repeat(np.arange(n, dtype=np.int64), deg)
    e = len(src)
    is_local = rng.random(e) < local_fraction
    offs = rng.geometric(1.0 / locality_scale, size=e)
    sign = rng.integers(0, 2, size=e) * 2 - 1
    local_dst = np.clip(src + sign * offs, 0, n - 1)
    # Global links: u^(1/(1-skew)) concentrates mass at low ids (hubs).
    global_dst = (n * rng.random(e) ** (1.0 / (1.0 - skew))).astype(np.int64)
    dst = np.where(is_local, local_dst, np.minimum(global_dst, n - 1))
    return from_edges(n, src, dst, name=f"web{n}")


def copying_powerlaw(
    n: int, out_degree: int = 24, seed: int = 0, *, skew: float = 2.2
) -> CSRGraph:
    """Social-network analog (twitter7): power-law degrees, no locality.

    A vectorized copying model — vertex ``i`` links to ``floor(i * U**skew)``
    for each of its ``out_degree`` stubs, concentrating in-degree on early
    vertices to produce a heavy-tailed distribution; ids are then shuffled
    so the ordering carries no locality, as in the twitter7 matrix.
    """
    if n < 2:
        raise ValueError("copying_powerlaw needs n >= 2")
    rng = np.random.default_rng(seed)
    src = np.repeat(np.arange(1, n, dtype=np.int64), out_degree)
    dst = (src * rng.random(len(src)) ** skew).astype(np.int64)
    perm = rng.permutation(n)
    return from_edges(n, perm[src], perm[dst], name=f"twitter{n}")


def mesh_with_holes(
    rows: int,
    cols: int,
    holes: list[tuple[float, float, float]] | None = None,
    *,
    name: str = "",
) -> CSRGraph:
    """Triangulated plate with circular holes — the barth5 analog (Fig 1).

    barth5 is a 2D airfoil FEM mesh whose drawing shows four "holes".  We
    triangulate a ``rows x cols`` grid (4-point stencil plus one diagonal
    per cell) and delete vertices inside the given holes, each specified
    as ``(center_row_frac, center_col_frac, radius_frac)``.  The result
    may be disconnected at the hole rims; callers apply LCC extraction.
    """
    if holes is None:
        holes = [
            (0.28, 0.28, 0.12),
            (0.28, 0.72, 0.12),
            (0.72, 0.28, 0.12),
            (0.72, 0.72, 0.12),
        ]
    base = grid2d(rows, cols, diagonal=False)
    ids = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    # Add one diagonal per cell to triangulate.
    du = ids[:-1, :-1].ravel()
    dv = ids[1:, 1:].ravel()
    gu, gv = base.edge_list()
    u = np.concatenate([gu, du])
    v = np.concatenate([gv, dv])
    r = np.repeat(np.arange(rows), cols) / max(rows - 1, 1)
    c = np.tile(np.arange(cols), rows) / max(cols - 1, 1)
    alive = np.ones(rows * cols, dtype=bool)
    for cr, cc, rad in holes:
        alive &= (r - cr) ** 2 + (c - cc) ** 2 > rad**2
    sel = alive[u] & alive[v]
    g = from_edges(
        rows * cols, u[sel], v[sel], name=name or f"mesh{rows}x{cols}"
    )
    return g


def random_geometric(
    n: int, radius: float | None = None, seed: int = 0
) -> CSRGraph:
    """Random geometric graph in the unit square — the pa2010 analog.

    Census-block adjacency graphs are near-planar with small degrees and
    strong spatial locality; connecting points within ``radius`` captures
    that.  Points are sorted along a space-filling-ish key (row-major
    cells) so the vertex ordering is locality-friendly like the census
    ordering.  Defaults to a radius targeting average degree ~5.
    """
    from scipy.spatial import cKDTree

    if n < 2:
        raise ValueError("random_geometric needs n >= 2")
    if radius is None:
        radius = float(np.sqrt(5.0 / (np.pi * n)))
    rng = np.random.default_rng(seed)
    pts = rng.random((n, 2))
    cells = 1 + int(np.sqrt(n) / 4)
    key = (pts[:, 0] * cells).astype(np.int64) * cells + (
        pts[:, 1] * cells
    ).astype(np.int64)
    order = np.argsort(key, kind="stable")
    pts = pts[order]
    pairs = cKDTree(pts).query_pairs(radius, output_type="ndarray")
    if len(pairs) == 0:
        raise ValueError("radius too small: no edges generated")
    return from_edges(n, pairs[:, 0], pairs[:, 1], name=f"geo{n}")


def banded(
    n: int, offsets: tuple[int, ...] = (1, 2, 3, 64, 65), *, name: str = ""
) -> CSRGraph:
    """Banded stencil graph — the CurlCurl_4 FEM-matrix analog.

    Finite-element matrices on structured meshes have a few fixed
    diagonals; vertex ``i`` connects to ``i + k`` for each offset ``k``.
    Excellent gap locality by construction.
    """
    if any(k <= 0 for k in offsets):
        raise ValueError("offsets must be positive")
    us, vs = [], []
    for k in offsets:
        if k >= n:
            continue
        base = np.arange(n - k, dtype=np.int64)
        us.append(base)
        vs.append(base + k)
    if not us:
        raise ValueError("all offsets exceed n")
    return from_edges(
        n, np.concatenate(us), np.concatenate(vs), name=name or f"band{n}"
    )


def watts_strogatz(n: int, k: int = 8, p: float = 0.05, seed: int = 0) -> CSRGraph:
    """Small-world ring lattice with rewiring — the cage14 analog.

    cage14 (DNA electrophoresis) has near-uniform moderate degrees and a
    small diameter; a lightly rewired lattice reproduces both, plus the
    mostly-local gap profile of the original ordering.
    """
    if k < 2 or k % 2:
        raise ValueError("k must be even and >= 2")
    if n <= k:
        raise ValueError("need n > k")
    rng = np.random.default_rng(seed)
    base = np.arange(n, dtype=np.int64)
    us, vs = [], []
    for off in range(1, k // 2 + 1):
        us.append(base)
        vs.append((base + off) % n)
    u = np.concatenate(us)
    v = np.concatenate(vs)
    rewire = rng.random(len(u)) < p
    v = np.where(rewire, rng.integers(0, n, size=len(v)), v)
    return from_edges(n, u, v, name=f"sw{n}")


# -- elementary graphs for tests and examples --------------------------------

def path_graph(n: int) -> CSRGraph:
    """Chain of ``n`` vertices (the paper's worst-case BFS depth example)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    base = np.arange(n - 1, dtype=np.int64)
    return from_edges(n, base, base + 1, name=f"path{n}")


def cycle_graph(n: int) -> CSRGraph:
    if n < 3:
        raise ValueError("cycle needs n >= 3")
    base = np.arange(n, dtype=np.int64)
    return from_edges(n, base, (base + 1) % n, name=f"cycle{n}")


def star_graph(n: int) -> CSRGraph:
    """One hub connected to ``n - 1`` leaves (extreme degree skew)."""
    if n < 2:
        raise ValueError("star needs n >= 2")
    leaves = np.arange(1, n, dtype=np.int64)
    return from_edges(n, np.zeros(n - 1, dtype=np.int64), leaves, name=f"star{n}")


def complete_graph(n: int) -> CSRGraph:
    if n < 2:
        raise ValueError("complete graph needs n >= 2")
    u, v = np.triu_indices(n, k=1)
    return from_edges(n, u.astype(np.int64), v.astype(np.int64), name=f"K{n}")


def binary_tree(depth: int) -> CSRGraph:
    """Complete binary tree of the given depth (root = vertex 0)."""
    if depth < 0:
        raise ValueError("depth must be >= 0")
    n = (1 << (depth + 1)) - 1
    child = np.arange(1, n, dtype=np.int64)
    parent = (child - 1) // 2
    return from_edges(n, parent, child, name=f"btree{depth}")


def planted_partition(
    n: int,
    communities: int,
    *,
    degree_in: float = 12.0,
    degree_out: float = 2.0,
    seed: int = 0,
) -> CSRGraph:
    """Stochastic block model with equal-size planted communities.

    Vertices split into ``communities`` consecutive blocks; expected
    within-block degree is ``degree_in`` and cross-block degree
    ``degree_out``.  The section 4.5.4 visualizations (coloring
    intra/inter-cluster edges on a layout) need exactly this kind of
    ground-truth community structure.  Community of vertex ``v`` is
    ``v * communities // n`` (block-contiguous ids).
    """
    if communities < 1 or communities > n:
        raise ValueError("need 1 <= communities <= n")
    if degree_in < 0 or degree_out < 0:
        raise ValueError("expected degrees must be nonnegative")
    rng = np.random.default_rng(seed)
    block = np.arange(n, dtype=np.int64) * communities // n
    # Within-community stubs.
    n_in = rng.poisson(degree_in / 2.0, size=n)
    src_in = np.repeat(np.arange(n, dtype=np.int64), n_in)
    starts = np.searchsorted(block, block[src_in], side="left")
    ends = np.searchsorted(block, block[src_in], side="right")
    dst_in = starts + (
        rng.random(len(src_in)) * (ends - starts)
    ).astype(np.int64)
    # Cross-community stubs (uniform; self-block hits are harmless noise).
    n_out = rng.poisson(degree_out / 2.0, size=n)
    src_out = np.repeat(np.arange(n, dtype=np.int64), n_out)
    dst_out = rng.integers(0, n, size=len(src_out))
    u = np.concatenate([src_in, src_out])
    v = np.concatenate([dst_in, dst_out])
    return from_edges(n, u, v, name=f"sbm{n}x{communities}")
