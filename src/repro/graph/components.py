"""Connected component analysis.

ParHDE requires a connected input graph (section 2.1); the dataset
pipeline uses these utilities to verify and extract components.  The
implementation is a vectorized frontier flood fill — the same primitive
used by :func:`repro.graph.build.preprocess`, exposed here with labels and
statistics.
"""

from __future__ import annotations

import numpy as np

from .csr import CSRGraph

__all__ = [
    "connected_components",
    "component_sizes",
    "is_connected",
    "largest_component_mask",
]


def connected_components(g: CSRGraph) -> np.ndarray:
    """Label each vertex with its component id (``int64[n]``, ids dense).

    Component ids are assigned in order of their smallest vertex.
    """
    n = g.n
    comp = np.full(n, -1, dtype=np.int64)
    label = 0
    ptr = 0
    while True:
        while ptr < n and comp[ptr] >= 0:
            ptr += 1
        if ptr >= n:
            break
        comp[ptr] = label
        frontier = np.array([ptr], dtype=np.int64)
        while len(frontier):
            counts = g.indptr[frontier + 1] - g.indptr[frontier]
            total = int(counts.sum())
            if total == 0:
                break
            starts = np.repeat(g.indptr[frontier], counts)
            offs = np.arange(total) - np.repeat(
                np.cumsum(counts) - counts, counts
            )
            nbrs = g.indices[starts + offs].astype(np.int64)
            frontier = np.unique(nbrs[comp[nbrs] < 0])
            comp[frontier] = label
        label += 1
    return comp


def component_sizes(g: CSRGraph) -> np.ndarray:
    """Sizes of all components, descending."""
    comp = connected_components(g)
    if len(comp) == 0:
        return np.zeros(0, dtype=np.int64)
    sizes = np.bincount(comp)
    return np.sort(sizes)[::-1]


def is_connected(g: CSRGraph) -> bool:
    """True iff the graph has exactly one component (and is nonempty)."""
    if g.n == 0:
        return False
    comp = connected_components(g)
    return bool(comp.max() == 0)


def largest_component_mask(g: CSRGraph) -> np.ndarray:
    """Boolean mask selecting the largest component (ties: smallest id)."""
    comp = connected_components(g)
    if g.n == 0:
        return np.zeros(0, dtype=bool)
    sizes = np.bincount(comp)
    return comp == int(np.argmax(sizes))
