"""Adjacency-list gap analysis and the cache locality model (Figure 2).

A *gap* is the difference between consecutive (sorted) neighbor ids in one
adjacency list.  Gaps predict the memory locality of accesses of the form
``S[v] for v in Adj(u)`` — exactly the access pattern of the LS SpMM and
of bottom-up BFS.  The paper plots gap histograms with Fibonacci-sequence
bin edges (Figure 2) and uses them to explain why the locality-friendly
sk-2005 ordering makes the LS step 6.8x faster than a random permutation.

This module also turns the gap distribution into a *miss-rate estimate*
consumed by the machine model: an access whose gap fits within a cache
line is nearly free, one within last-level-cache reach is cheap, and a
larger jump is a DRAM miss.  Every irregular kernel charges
``random_lines = accesses * miss_rate``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CSRGraph

__all__ = [
    "adjacency_gaps",
    "fibonacci_edges",
    "fibonacci_histogram",
    "GapHistogram",
    "miss_rate",
]


def adjacency_gaps(g: CSRGraph) -> np.ndarray:
    """All adjacency gaps of ``g``: ``2m - n`` values (one list at a time).

    For vertex ``u`` with sorted neighbors ``v1 < v2 < ... < vk`` the gaps
    are ``v2-v1, ..., vk-v(k-1)``; degree-0 and degree-1 vertices
    contribute none.  Total count is ``nnz - n_nonisolated``, which equals
    the paper's ``2m - n`` for graphs without isolated vertices.
    """
    if g.nnz < 2:
        return np.zeros(0, dtype=np.int64)
    diffs = np.diff(g.indices.astype(np.int64))
    # A diff at position indptr[r] - 1 crosses from row r-1 into row r and
    # is therefore not a gap.  Empty rows collapse several boundaries onto
    # one position; leading/trailing empty rows produce out-of-range
    # positions, which we drop.
    boundary = g.indptr[1:-1] - 1
    boundary = boundary[(boundary >= 0) & (boundary < len(diffs))]
    keep = np.ones(len(diffs), dtype=bool)
    keep[boundary] = False
    return diffs[keep]


def fibonacci_edges(max_value: int) -> np.ndarray:
    """Fibonacci bin edges ``[0, 1, 2, 3, 5, 8, ...]`` covering ``max_value``.

    A histogram cell ``[x_{i-1}, x_i)`` with these edges matches Vigna's
    Fibonacci binning used in Figure 2.
    """
    edges = [0, 1]
    while edges[-1] <= max_value:
        edges.append(edges[-1] + edges[-2] if len(edges) > 2 else 2)
    return np.array(edges, dtype=np.int64)


@dataclass(frozen=True)
class GapHistogram:
    """Fibonacci-binned gap histogram.

    ``counts[i]`` is the number of gaps in ``[edges[i], edges[i+1])``.
    """

    edges: np.ndarray
    counts: np.ndarray

    @property
    def total(self) -> int:
        return int(self.counts.sum())

    def series(self) -> list[tuple[int, int]]:
        """Nonzero ``(upper_edge, count)`` points, as plotted in Figure 2."""
        return [
            (int(self.edges[i + 1]), int(c))
            for i, c in enumerate(self.counts)
            if c
        ]

    def format(self) -> str:
        lines = [f"{'gap <':>12}  {'count':>12}"]
        for edge, count in self.series():
            lines.append(f"{edge:>12}  {count:>12}")
        return "\n".join(lines)


def fibonacci_histogram(g: CSRGraph) -> GapHistogram:
    """Figure 2 histogram: gap counts in Fibonacci bins."""
    gaps = adjacency_gaps(g)
    if len(gaps) == 0:
        return GapHistogram(np.array([0, 1], dtype=np.int64), np.zeros(1, np.int64))
    edges = fibonacci_edges(int(gaps.max()))
    counts, _ = np.histogram(gaps, bins=edges)
    return GapHistogram(edges, counts.astype(np.int64))


def miss_rate(
    g: CSRGraph,
    llc_bytes: float | None = None,
    *,
    element_bytes: int = 8,
    line_bytes: int = 64,
    llc_hit_weight: float = 0.12,
    cache_fraction: float = 0.125,
) -> float:
    """Estimated DRAM miss probability for ``S[v], v in Adj(u)`` gathers.

    Classifies each access by the gap that precedes it (the first access
    of every list is charged as a miss):

    * ``gap * element_bytes < line_bytes`` — same or adjacent cache line,
      covered by spatial locality / prefetch: free.
    * ``gap < cache_fraction * n`` — the jump stays within a resident
      working-set window, likely an LLC hit: charged ``llc_hit_weight``
      of a miss (LLC latency is a fraction of DRAM's).
    * otherwise — DRAM miss: charged 1.

    The window is expressed as a *fraction of the vertex count* rather
    than an absolute byte capacity on purpose: the paper's vectors
    (8 bytes x 24M-134M vertices) exceed the 70 MB of LLC by roughly
    8x, i.e. the cache holds ~1/8 of the gathered vector.  Scaling the
    window with ``n`` preserves that dimensionless working-set ratio for
    the reproduction's smaller graphs — otherwise every vector would be
    cache-resident and the Figure 2 locality effects (sk-2005's fast LS
    step, the 6.8x random-permutation slowdown) could not appear.
    ``cache_fraction`` defaults to 1/8; pass ``llc_bytes`` to derive the
    window from an absolute capacity instead (full-size graphs).

    The resulting rate feeds the machine model's latency term.  For a
    uniformly random ordering (urand/kron) almost every gap is huge and
    the rate approaches 1; for banded/web orderings it is small.  This is
    deliberately a *first-order* model: it ignores temporal reuse across
    source vertices, which is also small for the single-pass kernels we
    charge it to.
    """
    if g.nnz == 0:
        return 0.0
    # Classify by *reach* |v - u| rather than within-list gaps: rows are
    # processed in index order, so the resident region slides with the
    # current row, and what determines residency is how far a neighbor
    # lies from it.  (Within-list gaps are what Figure 2 plots, and they
    # correlate with reach for real orderings, but order statistics make
    # them misleadingly small for shuffled graphs: a degree-50 vertex's
    # sorted random neighbors are ~n/50 apart yet each access is a
    # cold, uniformly random one.)
    deg = g.degrees
    src = np.repeat(np.arange(g.n, dtype=np.int64), deg)
    reach = np.abs(g.indices.astype(np.int64) - src)
    total = len(reach)
    line_gap = max(1, line_bytes // element_bytes)
    if llc_bytes is not None:
        window = int(llc_bytes * cache_fraction / element_bytes)
    else:
        window = int(cache_fraction * g.n)
    window = max(line_gap + 1, window)
    mid = int(np.count_nonzero((reach >= line_gap) & (reach < window)))
    far = int(np.count_nonzero(reach >= window))
    # A far access may still hit whatever fraction of the vector the LLC
    # holds (uniform-access residency).
    far_weight = 1.0 - cache_fraction
    misses = far * far_weight + llc_hit_weight * mid
    return float(min(1.0, misses / total))
