"""Compressed sparse row graph representation.

ParHDE stores graphs in a CSR-like format (paper section 3.1): an offsets
array ``indptr`` of length ``n + 1`` and a concatenated adjacency array
``indices`` holding both directions of every undirected edge.  Unweighted
graphs carry no weight array and never materialize the Laplacian; the
diagonal is reconstructed from the degree array on the fly (section 4.4
notes this avoids MKL's sparse-matrix allocation entirely).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["CSRGraph"]


@dataclass(frozen=True)
class CSRGraph:
    """An undirected simple graph in CSR form.

    Invariants (checked by :meth:`validate`):

    * ``indptr`` is nondecreasing, ``indptr[0] == 0``,
      ``indptr[-1] == len(indices)``;
    * adjacency lists are sorted ascending and contain no duplicates;
    * no self loops;
    * symmetric: ``v in Adj(u)`` iff ``u in Adj(v)`` (with equal weight).

    Use :func:`repro.graph.build.from_edges` to construct instances from
    raw edge lists; it enforces all of the above.

    Attributes
    ----------
    indptr:
        ``int64[n + 1]`` adjacency offsets.
    indices:
        ``int32[2m]`` concatenated sorted adjacency lists.
    weights:
        ``float64[2m]`` positive edge weights, or ``None`` for an
        unweighted graph (all weights implicitly 1).
    name:
        Optional label used in reports.
    """

    indptr: np.ndarray
    indices: np.ndarray
    weights: np.ndarray | None = None
    name: str = ""
    _cache: dict = field(default_factory=dict, compare=False, repr=False)

    # -- basic properties ----------------------------------------------------
    @property
    def n(self) -> int:
        """Number of vertices."""
        return len(self.indptr) - 1

    @property
    def m(self) -> int:
        """Number of undirected edges."""
        return len(self.indices) // 2

    @property
    def nnz(self) -> int:
        """Stored adjacency entries (= 2 m)."""
        return len(self.indices)

    @property
    def is_weighted(self) -> bool:
        return self.weights is not None

    @property
    def degrees(self) -> np.ndarray:
        """``int64[n]`` vertex degrees (adjacency list lengths)."""
        if "degrees" not in self._cache:
            self._cache["degrees"] = np.diff(self.indptr)
        return self._cache["degrees"]

    @property
    def weighted_degrees(self) -> np.ndarray:
        """``float64[n]`` sum of incident edge weights (the diagonal of D)."""
        if "wdegrees" not in self._cache:
            if self.weights is None:
                wd = self.degrees.astype(np.float64)
            else:
                wd = np.zeros(self.n, dtype=np.float64)
                np.add.at(
                    wd,
                    np.repeat(np.arange(self.n), self.degrees),
                    self.weights,
                )
            self._cache["wdegrees"] = wd
        return self._cache["wdegrees"]

    @property
    def average_degree(self) -> float:
        return self.nnz / self.n if self.n else 0.0

    # -- accessors -------------------------------------------------------------
    def neighbors(self, v: int) -> np.ndarray:
        """View of vertex ``v``'s sorted adjacency list."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def edge_weights_of(self, v: int) -> np.ndarray:
        """Weights aligned with :meth:`neighbors` (ones if unweighted)."""
        if self.weights is None:
            return np.ones(self.indptr[v + 1] - self.indptr[v], dtype=np.float64)
        return self.weights[self.indptr[v] : self.indptr[v + 1]]

    def degree(self, v: int) -> int:
        return int(self.indptr[v + 1] - self.indptr[v])

    def has_edge(self, u: int, v: int) -> bool:
        adj = self.neighbors(u)
        i = int(np.searchsorted(adj, v))
        return i < len(adj) and adj[i] == v

    def edge_list(self) -> tuple[np.ndarray, np.ndarray]:
        """Each undirected edge once, as ``(u, v)`` arrays with ``u < v``."""
        src = np.repeat(np.arange(self.n, dtype=self.indices.dtype), self.degrees)
        keep = src < self.indices
        return src[keep], self.indices[keep]

    # -- derived graphs ----------------------------------------------------------
    def with_weights(self, weights: np.ndarray | None) -> "CSRGraph":
        """Copy of this graph with a replaced (aligned) weight array."""
        if weights is not None:
            weights = np.ascontiguousarray(weights, dtype=np.float64)
            if len(weights) != self.nnz:
                raise ValueError(
                    f"weights length {len(weights)} != nnz {self.nnz}"
                )
            if np.any(weights <= 0):
                raise ValueError("edge weights must be positive")
        return CSRGraph(self.indptr, self.indices, weights, self.name)

    def with_name(self, name: str) -> "CSRGraph":
        return CSRGraph(self.indptr, self.indices, self.weights, name)

    def unweighted(self) -> "CSRGraph":
        return self.with_weights(None)

    # -- integrity ---------------------------------------------------------------
    def validate(self) -> None:
        """Check all structural invariants; raise ``ValueError`` on breach."""
        if len(self.indptr) < 1 or self.indptr[0] != 0:
            raise ValueError("indptr must start at 0")
        if self.indptr[-1] != len(self.indices):
            raise ValueError("indptr[-1] must equal len(indices)")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be nondecreasing")
        if len(self.indices) and (
            self.indices.min() < 0 or self.indices.max() >= self.n
        ):
            raise ValueError("adjacency index out of range")
        deg = self.degrees
        src = np.repeat(np.arange(self.n), deg)
        if np.any(src == self.indices):
            raise ValueError("self loop present")
        # Sorted, duplicate-free adjacency lists: within each row the
        # neighbor sequence must be strictly increasing.
        interior = np.ones(len(self.indices), dtype=bool)
        interior[self.indptr[:-1][deg > 0]] = False  # row starts
        if np.any(np.diff(self.indices)[interior[1:]] <= 0):
            raise ValueError("adjacency lists must be strictly increasing")
        # Symmetry: the multiset of (u, v) equals the multiset of (v, u).
        order_fwd = np.lexsort((self.indices, src))
        order_rev = np.lexsort((src, self.indices))
        if not (
            np.array_equal(src[order_fwd], self.indices[order_rev])
            and np.array_equal(self.indices[order_fwd], src[order_rev])
        ):
            raise ValueError("adjacency structure is not symmetric")
        if self.weights is not None:
            if len(self.weights) != len(self.indices):
                raise ValueError("weights misaligned with indices")
            if np.any(self.weights <= 0):
                raise ValueError("edge weights must be positive")
            if not np.allclose(
                self.weights[order_fwd], self.weights[order_rev]
            ):
                raise ValueError("edge weights are not symmetric")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        w = "weighted" if self.is_weighted else "unweighted"
        label = f" {self.name!r}" if self.name else ""
        return f"CSRGraph({label} n={self.n} m={self.m} {w})"
