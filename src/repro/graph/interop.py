"""NetworkX interoperability.

NetworkX is the lingua franca for small-graph work in Python; these
converters let users bring their graphs in (and carry layouts back out)
without writing edge-list files.  NetworkX itself is an optional
dependency — the importers raise a clear error when it is absent.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from .build import from_edges
from .csr import CSRGraph

__all__ = ["from_networkx", "to_networkx", "layout_to_networkx_pos"]


def _require_networkx():
    try:
        import networkx as nx
    except ImportError as exc:  # pragma: no cover - environment dependent
        raise ImportError(
            "networkx is required for graph interop; pip install networkx"
        ) from exc
    return nx


def from_networkx(graph: Any, *, weight: str | None = "weight") -> CSRGraph:
    """Convert a NetworkX graph to a :class:`CSRGraph`.

    Nodes are relabeled ``0..n-1`` in iteration order (use
    :func:`node_order` below via the returned name mapping if you need
    to translate back — or relabel in NetworkX first).  Direction and
    multi-edges are collapsed per the paper's preprocessing; edge
    weights are taken from the ``weight`` attribute when every edge has
    one, otherwise the graph is unweighted.
    """
    nx = _require_networkx()
    if not isinstance(graph, nx.Graph):
        raise TypeError("expected a networkx graph")
    nodes = list(graph.nodes())
    index = {node: i for i, node in enumerate(nodes)}
    n = len(nodes)
    u, v, w = [], [], []
    has_all_weights = weight is not None and graph.number_of_edges() > 0
    for a, b, data in graph.edges(data=True):
        u.append(index[a])
        v.append(index[b])
        if weight is not None and weight in data:
            w.append(float(data[weight]))
        else:
            has_all_weights = False
    weights = np.array(w) if has_all_weights else None
    g = from_edges(
        n,
        np.array(u, dtype=np.int64),
        np.array(v, dtype=np.int64),
        weights,
        name=str(graph.name) if graph.name else "",
    )
    return g


def to_networkx(g: CSRGraph):
    """Convert a :class:`CSRGraph` to a ``networkx.Graph``."""
    nx = _require_networkx()
    G = nx.Graph(name=g.name)
    G.add_nodes_from(range(g.n))
    u, v = g.edge_list()
    if g.weights is None:
        G.add_edges_from(zip(u.tolist(), v.tolist()))
    else:
        deg = g.degrees
        src = np.repeat(np.arange(g.n), deg)
        keep = src < g.indices
        w = g.weights[keep]
        G.add_weighted_edges_from(
            zip(u.tolist(), v.tolist(), w.tolist())
        )
    return G


def layout_to_networkx_pos(coords: np.ndarray) -> dict[int, tuple[float, ...]]:
    """Coordinates as the ``pos`` dict NetworkX drawing functions expect."""
    return {i: tuple(row) for i, row in enumerate(coords.tolist())}
