"""Diameter and eccentricity estimation from BFS sweeps.

Table 1's depth bounds carry the graph diameter ``dmax``, and the
evaluation repeatedly reasons about "high-diameter" versus
"low-diameter" instances.  These estimators make that quantity
measurable with the machinery the library already has:

* :func:`double_sweep_lower_bound` — the classical 2-sweep heuristic
  (BFS from an arbitrary vertex, then from the farthest vertex found);
  exact on trees, excellent in practice.
* :func:`eccentricity_bounds` — farthest-first sweeps (the same
  k-centers walk HDE's pivot selection uses) that tighten a global
  lower bound and also report each source's eccentricity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..bfs.direction_optimizing import bfs_distances
from .csr import CSRGraph

__all__ = ["DiameterEstimate", "double_sweep_lower_bound", "eccentricity_bounds"]


@dataclass(frozen=True)
class DiameterEstimate:
    """Lower bound on the diameter plus per-sweep eccentricities."""

    lower_bound: int
    sources: tuple[int, ...]
    eccentricities: tuple[int, ...]


def _ecc(g: CSRGraph, v: int) -> tuple[int, int]:
    """(eccentricity of v, a vertex realizing it) within v's component."""
    dist, _ = bfs_distances(g, v)
    reach = dist >= 0
    far = int(np.argmax(np.where(reach, dist, -1)))
    return int(dist[far]), far


def double_sweep_lower_bound(g: CSRGraph, start: int = 0) -> DiameterEstimate:
    """The 2-sweep heuristic: ecc(start), then ecc(farthest vertex)."""
    if not 0 <= start < g.n:
        raise ValueError("start out of range")
    e1, far = _ecc(g, start)
    e2, _ = _ecc(g, far)
    return DiameterEstimate(
        lower_bound=max(e1, e2),
        sources=(start, far),
        eccentricities=(e1, e2),
    )


def eccentricity_bounds(
    g: CSRGraph, sweeps: int = 4, seed: int = 0
) -> DiameterEstimate:
    """Farthest-first sweeps: each new source is the vertex farthest from
    all previous ones (exactly HDE's pivot rule), so eccentricities climb
    quickly toward the diameter."""
    if sweeps < 1:
        raise ValueError("sweeps must be >= 1")
    if g.n == 0:
        raise ValueError("empty graph")
    rng = np.random.default_rng(seed)
    v = int(rng.integers(g.n))
    dmin = np.full(g.n, np.inf)
    sources: list[int] = []
    eccs: list[int] = []
    for _ in range(min(sweeps, g.n)):
        sources.append(v)
        dist, _ = bfs_distances(g, v)
        reach = dist >= 0
        eccs.append(int(dist[reach].max()) if reach.any() else 0)
        np.minimum(dmin, np.where(reach, dist, -np.inf), out=dmin)
        nxt = int(np.argmax(dmin))
        if dmin[nxt] <= 0:
            break
        v = nxt
    return DiameterEstimate(
        lower_bound=max(eccs),
        sources=tuple(sources),
        eccentricities=tuple(eccs),
    )
