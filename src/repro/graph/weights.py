"""Edge-weight assignment for the weighted (SSSP) experiments.

Section 4.4 evaluates the Delta-stepping extension with unit weights
("only 18% slower than BFS"), random integer weights, and real weights
("3.66x or more" slower, Delta-sensitive).  These helpers attach such
weight vectors to an unweighted graph, symmetrically.
"""

from __future__ import annotations

import numpy as np

from .csr import CSRGraph

__all__ = ["unit_weights", "random_integer_weights", "random_real_weights"]


def _symmetric_weights(g: CSRGraph, per_edge: np.ndarray) -> CSRGraph:
    """Expand one weight per undirected edge into the CSR weight array.

    ``per_edge`` is aligned with :meth:`CSRGraph.edge_list` order (the
    ``u < v`` representative of each edge); both stored directions get the
    same weight.
    """
    if len(per_edge) != g.m:
        raise ValueError(f"need {g.m} weights, got {len(per_edge)}")
    deg = g.degrees
    src = np.repeat(np.arange(g.n, dtype=np.int64), deg)
    dst = g.indices.astype(np.int64)
    lo = np.minimum(src, dst)
    hi = np.maximum(src, dst)
    # Identify each undirected edge by its canonical pair and look up the
    # weight via the same lexsorted order edge_list() produces.
    rep = src < dst
    order = np.lexsort((hi[rep], lo[rep]))
    edge_id_sorted = np.empty(g.m, dtype=np.int64)
    edge_id_sorted[order] = np.arange(g.m)
    # Map every stored direction to its edge id by searching the sorted keys.
    keys = lo.astype(np.int64) * g.n + hi
    rep_keys = keys[rep][order]
    idx = np.searchsorted(rep_keys, keys)
    weights = per_edge[order][idx]
    return g.with_weights(weights.astype(np.float64))


def unit_weights(g: CSRGraph) -> CSRGraph:
    """All weights 1.0 — SSSP should then match BFS distances exactly."""
    return _symmetric_weights(g, np.ones(g.m, dtype=np.float64))


def random_integer_weights(
    g: CSRGraph, low: int = 1, high: int = 256, seed: int = 0
) -> CSRGraph:
    """Uniform random integer weights in ``[low, high)`` (GAP-style)."""
    if low < 1 or high <= low:
        raise ValueError("need 1 <= low < high")
    rng = np.random.default_rng(seed)
    return _symmetric_weights(
        g, rng.integers(low, high, size=g.m).astype(np.float64)
    )


def random_real_weights(g: CSRGraph, seed: int = 0) -> CSRGraph:
    """Uniform random real weights in ``(0, 1]``."""
    rng = np.random.default_rng(seed)
    return _symmetric_weights(g, 1.0 - rng.random(g.m))
