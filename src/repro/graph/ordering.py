"""Vertex ordering transforms.

The paper shows (section 4.4) that the initial vertex ordering has a
large performance impact on the SpMM step: randomly permuting sk-2005's
locality-friendly crawl order slows LS by 6.8x and the whole pipeline by
3.5x.  These transforms let the benchmarks reproduce that experiment and,
in the other direction, recover locality with a BFS-based reordering
(reverse Cuthill-McKee flavour).
"""

from __future__ import annotations

import numpy as np

from .build import relabel
from .csr import CSRGraph

__all__ = [
    "random_permutation",
    "shuffle_vertices",
    "bfs_order",
    "bfs_relabel",
    "degree_sort_relabel",
]


def random_permutation(n: int, seed: int = 0) -> np.ndarray:
    """A random permutation of ``range(n)`` (new id of v is perm[v])."""
    return np.random.default_rng(seed).permutation(n)


def shuffle_vertices(g: CSRGraph, seed: int = 0) -> CSRGraph:
    """Randomly permute vertex ids (destroys any ordering locality)."""
    return relabel(g, random_permutation(g.n, seed)).with_name(
        f"{g.name}-shuffled" if g.name else "shuffled"
    )


def bfs_order(g: CSRGraph, source: int = 0) -> np.ndarray:
    """Visit order of a breadth-first traversal from ``source``.

    Unreached vertices (other components) are appended in id order.
    Returns the visit sequence ``order`` such that ``order[k]`` is the
    k-th visited vertex.
    """
    if not 0 <= source < g.n:
        raise ValueError("source out of range")
    visited = np.zeros(g.n, dtype=bool)
    visited[source] = True
    order_parts = [np.array([source], dtype=np.int64)]
    frontier = order_parts[0]
    while len(frontier):
        counts = g.indptr[frontier + 1] - g.indptr[frontier]
        total = int(counts.sum())
        if total == 0:
            break
        starts = np.repeat(g.indptr[frontier], counts)
        offs = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
        nbrs = g.indices[starts + offs].astype(np.int64)
        fresh = np.unique(nbrs[~visited[nbrs]])
        visited[fresh] = True
        if len(fresh):
            order_parts.append(fresh)
        frontier = fresh
    rest = np.flatnonzero(~visited)
    if len(rest):
        order_parts.append(rest)
    return np.concatenate(order_parts)


def bfs_relabel(g: CSRGraph, source: int = 0) -> CSRGraph:
    """Relabel vertices in BFS visit order (locality-enhancing)."""
    order = bfs_order(g, source)
    perm = np.empty(g.n, dtype=np.int64)
    perm[order] = np.arange(g.n)
    return relabel(g, perm).with_name(
        f"{g.name}-bfsorder" if g.name else "bfsorder"
    )


def degree_sort_relabel(g: CSRGraph, *, descending: bool = True) -> CSRGraph:
    """Relabel vertices by degree (hubs first by default).

    Degree ordering clusters the hot vertices of skewed graphs into a
    small id range, a common preprocessing step for push/pull traversals.
    """
    key = -g.degrees if descending else g.degrees
    order = np.argsort(key, kind="stable")
    perm = np.empty(g.n, dtype=np.int64)
    perm[order] = np.arange(g.n)
    return relabel(g, perm).with_name(
        f"{g.name}-degsort" if g.name else "degsort"
    )
