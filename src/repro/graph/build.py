"""Graph construction and the paper's preprocessing pipeline.

The evaluation (section 4.1) preprocesses every input the same way:
ignore edge direction, drop self loops and parallel edges, extract the
largest connected component, and relabel vertices contiguously while
*preserving the original implied ordering* (vertex ordering matters for
locality — Figure 2 and the shuffled-sk-2005 experiment).  This module
implements that pipeline with vectorized NumPy.
"""

from __future__ import annotations

import numpy as np

from .csr import CSRGraph

__all__ = ["from_edges", "preprocess", "induced_subgraph", "relabel"]


def _dedup(
    u: np.ndarray, v: np.ndarray, w: np.ndarray | None
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Remove self loops and parallel edges from canonicalized pairs.

    Pairs must already satisfy ``u <= v``; for duplicated pairs the
    *maximum* weight survives (edge weight means similarity in HDE, so the
    strongest evidence wins).
    """
    keep = u != v
    u, v = u[keep], v[keep]
    if w is not None:
        w = w[keep]
    if len(u) == 0:
        return u, v, w
    order = np.lexsort((v, u))
    u, v = u[order], v[order]
    new = np.empty(len(u), dtype=bool)
    new[0] = True
    np.logical_or(np.diff(u) != 0, np.diff(v) != 0, out=new[1:])
    if w is None:
        return u[new], v[new], None
    w = w[order]
    group = np.cumsum(new) - 1
    wmax = np.full(int(group[-1]) + 1, -np.inf)
    np.maximum.at(wmax, group, w)
    return u[new], v[new], wmax


def from_edges(
    n: int,
    u: np.ndarray,
    v: np.ndarray,
    weights: np.ndarray | None = None,
    *,
    name: str = "",
) -> CSRGraph:
    """Build a simple undirected :class:`CSRGraph` from edge arrays.

    Direction is ignored, self loops are dropped, and parallel edges are
    merged (keeping the maximum weight).  Runs in ``O(m log m)`` via
    ``lexsort``; no Python-level per-edge loops.

    Parameters
    ----------
    n:
        Number of vertices; all endpoints must lie in ``[0, n)``.
    u, v:
        Endpoint arrays of equal length.
    weights:
        Optional positive per-edge weights aligned with ``u``/``v``.
    """
    u = np.asarray(u, dtype=np.int64).ravel()
    v = np.asarray(v, dtype=np.int64).ravel()
    if len(u) != len(v):
        raise ValueError("endpoint arrays differ in length")
    if n < 0:
        raise ValueError("n must be >= 0")
    if len(u) and (
        min(u.min(), v.min()) < 0 or max(u.max(), v.max()) >= n
    ):
        raise ValueError("edge endpoint out of range")
    if weights is not None:
        weights = np.asarray(weights, dtype=np.float64).ravel()
        if len(weights) != len(u):
            raise ValueError("weights misaligned with edges")
        if np.any(weights <= 0):
            raise ValueError("edge weights must be positive")

    lo, hi = np.minimum(u, v), np.maximum(u, v)
    lo, hi, w = _dedup(lo, hi, weights)

    # Symmetrize: store each undirected edge in both adjacency lists.
    src = np.concatenate([lo, hi])
    dst = np.concatenate([hi, lo])
    ww = None if w is None else np.concatenate([w, w])
    order = np.lexsort((dst, src))
    src, dst = src[order], dst[order]
    if ww is not None:
        ww = ww[order]

    indptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(indptr, src + 1, 1)
    np.cumsum(indptr, out=indptr)
    return CSRGraph(indptr, dst.astype(np.int32), ww, name)


def _largest_component(g: CSRGraph) -> np.ndarray:
    """Boolean mask of the largest connected component.

    Frontier-expansion flood fill, restarted per component, fully
    vectorized per level.  Kept local to avoid a dependency cycle with
    :mod:`repro.bfs` (which depends on graph types).
    """
    n = g.n
    comp = np.full(n, -1, dtype=np.int64)
    next_label = 0
    unvisited_ptr = 0
    while True:
        while unvisited_ptr < n and comp[unvisited_ptr] >= 0:
            unvisited_ptr += 1
        if unvisited_ptr >= n:
            break
        frontier = np.array([unvisited_ptr], dtype=np.int64)
        comp[unvisited_ptr] = next_label
        while len(frontier):
            counts = g.indptr[frontier + 1] - g.indptr[frontier]
            total = int(counts.sum())
            if total == 0:
                break
            starts = np.repeat(g.indptr[frontier], counts)
            offs = np.arange(total) - np.repeat(
                np.cumsum(counts) - counts, counts
            )
            nbrs = g.indices[starts + offs].astype(np.int64)
            fresh = np.unique(nbrs[comp[nbrs] < 0])
            comp[fresh] = next_label
            frontier = fresh
        next_label += 1
    if next_label == 0:
        return np.zeros(0, dtype=bool)
    sizes = np.bincount(comp, minlength=next_label)
    return comp == int(np.argmax(sizes))


def induced_subgraph(
    g: CSRGraph, keep: np.ndarray, *, name: str = ""
) -> CSRGraph:
    """Subgraph induced by ``keep`` (bool mask or vertex id array).

    Surviving vertices are renumbered contiguously in increasing original
    id order, preserving the source collection's implied ordering (paper
    section 4.1).
    """
    keep = np.asarray(keep)
    if keep.dtype == bool:
        if len(keep) != g.n:
            raise ValueError("mask length must equal n")
        ids = np.flatnonzero(keep)
        mask = keep
    else:
        ids = np.unique(keep.astype(np.int64))
        if len(ids) and (ids[0] < 0 or ids[-1] >= g.n):
            raise ValueError("vertex id out of range")
        mask = np.zeros(g.n, dtype=bool)
        mask[ids] = True
    newid = np.full(g.n, -1, dtype=np.int64)
    newid[ids] = np.arange(len(ids))

    deg = g.degrees
    src = np.repeat(np.arange(g.n), deg)
    sel = mask[src] & mask[g.indices]
    new_src = newid[src[sel]]
    new_dst = newid[g.indices[sel].astype(np.int64)]

    indptr = np.zeros(len(ids) + 1, dtype=np.int64)
    np.add.at(indptr, new_src + 1, 1)
    np.cumsum(indptr, out=indptr)
    # src was generated in row order and indices are sorted within rows,
    # so (new_src, new_dst) is already lexsorted: newid is monotone on ids.
    weights = g.weights[sel] if g.weights is not None else None
    return CSRGraph(
        indptr, new_dst.astype(np.int32), weights, name or g.name
    )


def preprocess(g: CSRGraph, *, name: str = "") -> CSRGraph:
    """Extract the largest connected component, relabeled contiguously.

    Input graphs from :func:`from_edges` are already simple and
    symmetric; this is the remaining step of the paper's pipeline.
    """
    if g.n == 0:
        return g.with_name(name or g.name)
    return induced_subgraph(g, _largest_component(g), name=name or g.name)


def relabel(g: CSRGraph, perm: np.ndarray) -> CSRGraph:
    """Renumber vertices: new id of vertex ``v`` is ``perm[v]``.

    ``perm`` must be a permutation of ``0..n-1``.  Used by the vertex
    ordering experiments (random shuffle destroys sk-2005's locality,
    section 4.4).
    """
    perm = np.asarray(perm, dtype=np.int64)
    if len(perm) != g.n or not np.array_equal(np.sort(perm), np.arange(g.n)):
        raise ValueError("perm must be a permutation of range(n)")
    deg = g.degrees
    src = perm[np.repeat(np.arange(g.n), deg)]
    dst = perm[g.indices.astype(np.int64)]
    order = np.lexsort((dst, src))
    indptr = np.zeros(g.n + 1, dtype=np.int64)
    np.add.at(indptr, src + 1, 1)
    np.cumsum(indptr, out=indptr)
    weights = g.weights[order] if g.weights is not None else None
    return CSRGraph(indptr, dst[order].astype(np.int32), weights, g.name)
