"""Landmark-based approximate distance queries.

HDE's BFS phase already computes exact distances from ``s`` pivots; the
classic landmark trick turns that same ``(n, s)`` matrix into an oracle
for *arbitrary* pairs:

    ``d(u, v) <= min_l  d(u, l) + d(l, v)``   (upper bound)
    ``d(u, v) >= max_l |d(u, l) - d(l, v)|``  (lower bound)

both by the triangle inequality, both exact whenever some landmark lies
on a shortest u-v path.  This makes the distance matrix a byproduct
worth keeping — one more reuse of the BFS phase, in the spirit of the
paper's section 4.5 extensions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..bfs.runner import MultiSourceResult
from .csr import CSRGraph

__all__ = ["LandmarkIndex", "build_landmark_index"]


@dataclass
class LandmarkIndex:
    """Distance sketch: exact distances from each vertex to ``s`` landmarks."""

    distances: np.ndarray  # float64[n, s]
    landmarks: np.ndarray  # int64[s]

    @property
    def n(self) -> int:
        return self.distances.shape[0]

    @property
    def s(self) -> int:
        return self.distances.shape[1]

    def upper_bound(self, u, v) -> np.ndarray | float:
        """Triangle upper bound(s) on ``d(u, v)``; vectorized over arrays."""
        du = self.distances[u]
        dv = self.distances[v]
        out = (du + dv).min(axis=-1)
        return float(out) if np.isscalar(u) and np.isscalar(v) else out

    def lower_bound(self, u, v) -> np.ndarray | float:
        """Triangle lower bound(s) on ``d(u, v)``."""
        du = self.distances[u]
        dv = self.distances[v]
        out = np.abs(du - dv).max(axis=-1)
        return float(out) if np.isscalar(u) and np.isscalar(v) else out

    def estimate(self, u, v) -> np.ndarray | float:
        """Midpoint of the bound interval — the usual point estimate."""
        return (self.upper_bound(u, v) + self.lower_bound(u, v)) / 2.0


def build_landmark_index(
    g: CSRGraph,
    s: int = 16,
    *,
    strategy: str = "kcenters",
    seed: int = 0,
) -> LandmarkIndex:
    """Pick ``s`` landmarks and run the BFS phase to build the sketch.

    ``strategy`` follows :func:`repro.core.select_and_traverse`
    (farthest-first landmarks give the best coverage, exactly as they
    give HDE the best axes).
    """
    from ..core.pivots import select_and_traverse

    ms: MultiSourceResult = select_and_traverse(
        g, s, strategy=strategy, seed=seed
    )
    if ms.distances.min() < 0:
        raise ValueError("graph must be connected")
    return LandmarkIndex(
        distances=ms.distances.astype(np.float64), landmarks=ms.sources
    )
