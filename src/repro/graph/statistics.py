"""Graph characterization statistics.

The evaluation reasons constantly about structural properties — degree
skew, diameter, locality — when explaining performance (sections 4.1,
4.3, 4.4).  This module packages those measurements into one summary so
dataset tables and reports can show *why* a graph behaves the way it
does, not just its size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CSRGraph
from .diameter import double_sweep_lower_bound
from .gaps import miss_rate

__all__ = [
    "GraphStats",
    "degree_statistics",
    "clustering_coefficient",
    "graph_stats",
    "format_stats_table",
]


@dataclass(frozen=True)
class GraphStats:
    """Structural summary of one graph."""

    name: str
    n: int
    m: int
    avg_degree: float
    max_degree: int
    degree_skew: float  # max / mean degree
    diameter_lb: int
    miss_rate: float
    clustering: float


def degree_statistics(g: CSRGraph) -> dict[str, float]:
    """Mean, max, and skew of the degree distribution."""
    deg = g.degrees
    if g.n == 0:
        return {"mean": 0.0, "max": 0.0, "skew": 0.0}
    mean = float(deg.mean())
    return {
        "mean": mean,
        "max": float(deg.max()),
        "skew": float(deg.max() / mean) if mean else 0.0,
    }


def clustering_coefficient(
    g: CSRGraph, *, sample: int = 300, seed: int = 0
) -> float:
    """Mean local clustering coefficient over a vertex sample.

    For vertex ``v`` with degree ``k >= 2``: closed neighbor pairs over
    ``k (k-1) / 2``.  Meshes score high, random graphs near ``d/n``.
    """
    deg = g.degrees
    eligible = np.flatnonzero(deg >= 2)
    if len(eligible) == 0:
        return 0.0
    rng = np.random.default_rng(seed)
    if len(eligible) > sample:
        eligible = rng.choice(eligible, size=sample, replace=False)
    coeffs = np.empty(len(eligible))
    for i, v in enumerate(eligible):
        nbrs = g.neighbors(int(v))
        k = len(nbrs)
        # Count edges among the neighbors via sorted-set intersections.
        closed = 0
        nbr_set = nbrs
        for u in nbrs:
            adj_u = g.neighbors(int(u))
            closed += len(np.intersect1d(adj_u, nbr_set, assume_unique=True))
        coeffs[i] = closed / (k * (k - 1))  # each pair counted once per side
    return float(coeffs.mean())


def graph_stats(g: CSRGraph, *, seed: int = 0) -> GraphStats:
    """Full structural summary (runs two BFS sweeps for the diameter)."""
    degs = degree_statistics(g)
    diam = double_sweep_lower_bound(g).lower_bound if g.n else 0
    return GraphStats(
        name=g.name or "graph",
        n=g.n,
        m=g.m,
        avg_degree=float(g.average_degree),
        max_degree=int(degs["max"]),
        degree_skew=degs["skew"],
        diameter_lb=diam,
        miss_rate=miss_rate(g),
        clustering=clustering_coefficient(g, seed=seed),
    )


def format_stats_table(stats: list[GraphStats]) -> str:
    """Render summaries as an extended Table 2."""
    lines = [
        f"{'Graph':<18} {'n':>8} {'m':>9} {'deg':>6} {'max':>6}"
        f" {'skew':>6} {'diam>=':>7} {'miss':>6} {'clust':>6}",
        "-" * 80,
    ]
    for s in stats:
        lines.append(
            f"{s.name:<18} {s.n:>8} {s.m:>9} {s.avg_degree:>6.1f}"
            f" {s.max_degree:>6} {s.degree_skew:>6.1f} {s.diameter_lb:>7}"
            f" {s.miss_rate:>6.2f} {s.clustering:>6.3f}"
        )
    return "\n".join(lines)
