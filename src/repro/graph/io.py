"""Graph serialization: edge lists, METIS, Matrix Market, NumPy archives.

The paper's inputs come from the SuiteSparse collection (Matrix Market
files) and GAP generators; this module reads those formats and round-trips
our own compact ``.npz`` archive for preprocessed graphs.
"""

from __future__ import annotations

import os

import numpy as np

from .build import from_edges
from .csr import CSRGraph

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "read_matrix_market",
    "write_matrix_market",
    "read_metis",
    "write_metis",
    "save_npz",
    "load_npz",
]


def read_edge_list(path: str | os.PathLike, *, name: str = "") -> CSRGraph:
    """Read a whitespace-separated ``u v [w]`` edge list (0-based ids).

    Lines starting with ``#`` or ``%`` are comments.  The vertex count is
    ``1 + max id``.
    """
    rows: list[tuple[float, ...]] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line or line[0] in "#%":
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"malformed edge line: {line!r}")
            rows.append(tuple(float(x) for x in parts[:3]))
    if not rows:
        return CSRGraph(np.zeros(1, dtype=np.int64), np.zeros(0, dtype=np.int32))
    data = np.array(rows, dtype=np.float64)
    u = data[:, 0].astype(np.int64)
    v = data[:, 1].astype(np.int64)
    w = data[:, 2] if data.shape[1] > 2 else None
    n = int(max(u.max(), v.max())) + 1
    return from_edges(n, u, v, w, name=name)


def write_edge_list(g: CSRGraph, path: str | os.PathLike) -> None:
    """Write each undirected edge once as ``u v [w]``."""
    u, v = g.edge_list()
    with open(path, "w") as fh:
        fh.write(f"# {g.name or 'graph'}: n={g.n} m={g.m}\n")
        if g.weights is None:
            for a, b in zip(u.tolist(), v.tolist()):
                fh.write(f"{a} {b}\n")
        else:
            deg = g.degrees
            src = np.repeat(np.arange(g.n), deg)
            keep = src < g.indices
            w = g.weights[keep]
            for a, b, ww in zip(u.tolist(), v.tolist(), w.tolist()):
                fh.write(f"{a} {b} {ww:.17g}\n")


def read_matrix_market(path: str | os.PathLike, *, name: str = "") -> CSRGraph:
    """Read a Matrix Market coordinate file as an undirected graph.

    Supports ``pattern``, ``real`` and ``integer`` fields with
    ``general`` or ``symmetric`` symmetry; entries are 1-based.  Direction
    and the strict lower/upper triangle distinction are ignored (the
    paper symmetrizes all inputs).
    """
    with open(path) as fh:
        header = fh.readline()
        if not header.startswith("%%MatrixMarket"):
            raise ValueError("not a Matrix Market file")
        tokens = header.lower().split()
        if "coordinate" not in tokens:
            raise ValueError("only coordinate format is supported")
        pattern = "pattern" in tokens
        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()
        nrows, ncols, nnz = (int(x) for x in line.split())
        n = max(nrows, ncols)
        u = np.empty(nnz, dtype=np.int64)
        v = np.empty(nnz, dtype=np.int64)
        w = None if pattern else np.empty(nnz, dtype=np.float64)
        for i in range(nnz):
            parts = fh.readline().split()
            u[i] = int(parts[0]) - 1
            v[i] = int(parts[1]) - 1
            if w is not None:
                w[i] = abs(float(parts[2]))
    if w is not None:
        # Zero/negative numeric entries carry no similarity information.
        keep = w > 0
        u, v, w = u[keep], v[keep], w[keep]
    return from_edges(n, u, v, w, name=name)


def write_matrix_market(g: CSRGraph, path: str | os.PathLike) -> None:
    """Write the adjacency structure as a symmetric coordinate MM file."""
    u, v = g.edge_list()
    field = "pattern" if g.weights is None else "real"
    with open(path, "w") as fh:
        fh.write(f"%%MatrixMarket matrix coordinate {field} symmetric\n")
        fh.write(f"% {g.name or 'graph'}\n")
        fh.write(f"{g.n} {g.n} {len(u)}\n")
        if g.weights is None:
            for a, b in zip(u.tolist(), v.tolist()):
                fh.write(f"{b + 1} {a + 1}\n")  # lower triangle: row >= col
        else:
            deg = g.degrees
            src = np.repeat(np.arange(g.n), deg)
            keep = src < g.indices
            w = g.weights[keep]
            for a, b, ww in zip(u.tolist(), v.tolist(), w.tolist()):
                fh.write(f"{b + 1} {a + 1} {ww:.17g}\n")


def read_metis(path: str | os.PathLike, *, name: str = "") -> CSRGraph:
    """Read a METIS ``.graph`` file (1-based adjacency lists per line)."""
    with open(path) as fh:
        lines = [ln for ln in fh if not ln.lstrip().startswith("%")]
    header = lines[0].split()
    n = int(header[0])
    fmt = header[2] if len(header) > 2 else "0"
    has_weights = fmt.endswith("1") and fmt != "0"
    us, vs, ws = [], [], []
    for i, ln in enumerate(lines[1 : n + 1]):
        parts = ln.split()
        if has_weights:
            nbrs = [int(x) - 1 for x in parts[0::2]]
            wts = [float(x) for x in parts[1::2]]
        else:
            nbrs = [int(x) - 1 for x in parts]
            wts = []
        us.extend([i] * len(nbrs))
        vs.extend(nbrs)
        ws.extend(wts)
    w = np.array(ws) if has_weights else None
    return from_edges(n, np.array(us, dtype=np.int64), np.array(vs, dtype=np.int64), w, name=name)


def write_metis(g: CSRGraph, path: str | os.PathLike) -> None:
    """Write a METIS ``.graph`` file."""
    fmt = "001" if g.is_weighted else "000"
    with open(path, "w") as fh:
        fh.write(f"{g.n} {g.m} {fmt}\n" if g.is_weighted else f"{g.n} {g.m}\n")
        for v in range(g.n):
            nbrs = g.neighbors(v) + 1
            if g.is_weighted:
                wts = g.edge_weights_of(v)
                fh.write(
                    " ".join(
                        f"{int(a)} {w:.17g}" for a, w in zip(nbrs, wts)
                    )
                    + "\n"
                )
            else:
                fh.write(" ".join(str(int(a)) for a in nbrs) + "\n")


def save_npz(g: CSRGraph, path: str | os.PathLike) -> None:
    """Save a graph to a compressed NumPy archive."""
    payload = {
        "indptr": g.indptr,
        "indices": g.indices,
        "name": np.array(g.name),
    }
    if g.weights is not None:
        payload["weights"] = g.weights
    np.savez_compressed(path, **payload)


def load_npz(path: str | os.PathLike) -> CSRGraph:
    """Load a graph saved by :func:`save_npz`."""
    with np.load(path, allow_pickle=False) as data:
        weights = data["weights"] if "weights" in data.files else None
        return CSRGraph(
            data["indptr"],
            data["indices"],
            weights,
            str(data["name"]),
        )
