"""Multilevel layout: coarsening + ParHDE + centroid refinement.

Two coarsening rules: heavy-edge matching (layout quality) and
spectrum-preserving matching (scale, :mod:`repro.lod`)."""

from .coarsen import (
    CoarseLevel,
    absorb_singletons,
    coarsen,
    contract,
    heavy_edge_matching,
    spectral_coarsen,
    spectral_matching,
)
from .layout import (
    MultilevelResult,
    build_hierarchy,
    multilevel_layout,
    prolong,
)

__all__ = [
    "CoarseLevel",
    "heavy_edge_matching",
    "spectral_matching",
    "absorb_singletons",
    "contract",
    "coarsen",
    "spectral_coarsen",
    "MultilevelResult",
    "build_hierarchy",
    "prolong",
    "multilevel_layout",
]
