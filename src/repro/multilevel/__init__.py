"""Multilevel layout: heavy-edge coarsening + ParHDE + centroid refinement."""

from .coarsen import CoarseLevel, coarsen, contract, heavy_edge_matching
from .layout import (
    MultilevelResult,
    build_hierarchy,
    multilevel_layout,
    prolong,
)

__all__ = [
    "CoarseLevel",
    "heavy_edge_matching",
    "contract",
    "coarsen",
    "MultilevelResult",
    "build_hierarchy",
    "prolong",
    "multilevel_layout",
]
