"""Multilevel spectral layout: coarsen, lay out, prolong, refine.

The pipeline the paper names as future work ("adapt ParHDE to be
compatible with the multilevel approach") and that the prior
Kirmani-Madduri system used:

1. **Coarsen** — heavy-edge-matching hierarchy down to a small graph.
2. **Coarse layout** — ParHDE on the coarsest level (its *structure*;
   accumulated similarity weights steer only the matching and the
   refinement operator, since BFS hop counts are what HDE consumes).
3. **Prolong** — copy each coarse vertex's coordinates to the fine
   vertices it absorbed, plus a deterministic micro-jitter so merged
   vertices can separate.
4. **Refine** — a few weighted-centroid sweeps per level (the walk
   operator with D-re-orthonormalization, :mod:`repro.core.refine`),
   which pull the prolonged layout toward the level's own spectral
   solution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.hde import parhde
from ..core.refine import centroid_sweep
from ..core.result import LayoutResult
from ..graph.csr import CSRGraph
from ..parallel.costs import Ledger
from ..parallel.primitives import F64, I64, map_cost
from .coarsen import CoarseLevel, coarsen

__all__ = ["MultilevelResult", "build_hierarchy", "multilevel_layout", "prolong"]


@dataclass
class MultilevelResult:
    """Final coordinates plus the hierarchy they were built over."""

    layout: LayoutResult
    levels: list[CoarseLevel] = field(default_factory=list)

    @property
    def coords(self) -> np.ndarray:
        return self.layout.coords

    @property
    def depth(self) -> int:
        return len(self.levels)

    def level_sizes(self) -> list[int]:
        return [lvl.graph.n for lvl in self.levels]


def build_hierarchy(
    g: CSRGraph,
    *,
    min_size: int = 64,
    max_levels: int = 30,
    shrink_floor: float = 0.9,
    seed: int = 0,
) -> list[CoarseLevel]:
    """Coarsen until ``min_size`` vertices, stalling, or ``max_levels``.

    ``shrink_floor``: stop when a step keeps more than this fraction of
    vertices (matching starved — e.g. star graphs).
    """
    levels: list[CoarseLevel] = []
    current = g
    for i in range(max_levels):
        if current.n <= min_size:
            break
        lvl = coarsen(current, seed=seed + i)
        if lvl.graph.n > shrink_floor * current.n:
            break
        levels.append(lvl)
        current = lvl.graph
    return levels


def prolong(
    coarse_coords: np.ndarray,
    level: CoarseLevel,
    *,
    jitter: float = 1e-4,
    seed: int = 0,
) -> np.ndarray:
    """Interpolate coarse coordinates onto the fine level.

    Fine vertices inherit their coarse representative's position plus a
    tiny deterministic jitter scaled by the layout spread (merged
    vertices must not coincide exactly, or the refinement operator
    cannot separate them).
    """
    fine = coarse_coords[level.mapping]
    rng = np.random.default_rng(seed)
    scale = float(np.abs(coarse_coords).max()) or 1.0
    return fine + jitter * scale * rng.standard_normal(fine.shape)


def multilevel_layout(
    g: CSRGraph,
    s: int = 10,
    *,
    dims: int = 2,
    seed: int = 0,
    min_size: int = 64,
    refine_sweeps: int = 10,
    ledger: Ledger | None = None,
    **parhde_kwargs,
) -> MultilevelResult:
    """Multilevel ParHDE layout of a connected graph.

    ``refine_sweeps`` centroid sweeps run after each prolongation (and
    on the finest level).  Extra keyword arguments flow to the coarse
    :func:`repro.core.parhde` call.
    """
    if g.n < 3:
        raise ValueError("layout needs at least 3 vertices")
    led = ledger if ledger is not None else Ledger()

    with led.phase("Coarsen"):
        levels = build_hierarchy(g, min_size=min_size, seed=seed)
        for lvl in levels:
            # Matching + contraction stream the fine adjacency once and
            # scatter into the coarse arrays.
            led.add(
                map_cost(
                    lvl.n_fine + lvl.graph.nnz,
                    flops_per_elem=4.0,
                    bytes_per_elem=I64 + F64,
                )
            )

    coarsest = levels[-1].graph if levels else g
    with led.phase("CoarseLayout"):
        s_eff = min(s, max(dims, coarsest.n - 1))
        coarse_res = parhde(
            coarsest.unweighted(),
            s_eff,
            dims=dims,
            seed=seed,
            ledger=led,
            **parhde_kwargs,
        )
    coords = coarse_res.coords

    with led.phase("Refine"):
        for depth, lvl in enumerate(reversed(levels)):
            coords = prolong(coords, lvl, seed=seed + depth)
            fine_graph = levels[len(levels) - depth - 2].graph if (
                len(levels) - depth - 2 >= 0
            ) else g
            for _ in range(refine_sweeps):
                coords = centroid_sweep(fine_graph, coords, ledger=led)

    layout = LayoutResult(
        coords=coords,
        algorithm="multilevel-parhde",
        B=coarse_res.B,
        S=coarse_res.S,
        eigenvalues=coarse_res.eigenvalues,
        pivots=coarse_res.pivots,
        bfs_stats=coarse_res.bfs_stats,
        dropped=coarse_res.dropped,
        ledger=led,
        params=dict(
            s=s,
            dims=dims,
            seed=seed,
            min_size=min_size,
            refine_sweeps=refine_sweeps,
            levels=[lvl.graph.n for lvl in levels],
        ),
    )
    return MultilevelResult(layout=layout, levels=levels)
