"""Graph coarsening: heavy-edge matching and spectrum-preserving matching.

The multilevel paradigm (paper section 2.3 and future work; the prior
Kirmani-Madduri system ran HDE "in a multilevel setup"): repeatedly
contract a matching to get a hierarchy of smaller graphs, lay out the
coarsest, and prolong + refine back up.  Two matching rules live here:

* :func:`heavy_edge_matching` — the classic sequential rule: match each
  vertex with the unmatched neighbor sharing the heaviest edge, so
  contraction absorbs as much edge weight (similarity) as possible.
* :func:`spectral_matching` — spectrum-preserving coarsening after
  Brissette, Huang & Slota ("Parallel coarsening of graph data with
  spectral guarantees"): edges are scored by an effective-resistance
  proxy ``w_uv * (1/wdeg(u) + 1/wdeg(v))`` — the leading term of the
  inverse-Laplacian diagonal estimate — and *low*-score (low-leverage,
  spectrally redundant) edges are contracted first.  The matching itself
  is a vectorized parallel handshake (each free vertex proposes its
  best free neighbor; mutual proposals match), so a round is a few
  NumPy array passes over the remaining edges rather than a Python
  loop over vertices — the property that makes million-vertex
  hierarchies buildable inside a serving request
  (:mod:`repro.lod`).

Contracting a matching with :func:`contract` produces exactly the
Galerkin coarse operator ``L_c = P^T L_f P`` for the 0/1 partition
prolongator ``P`` (parallel coarse edges sum their weights and
intra-group edges drop — self-loops do not enter a Laplacian), which is
what gives the coarse spectrum its one-sided interlacing guarantee
``mu_i >= lambda_i`` (Courant-Fischer on the range of ``P``); see
:mod:`repro.lod.hierarchy` for the measured distortion bound.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.build import from_edges
from ..graph.csr import CSRGraph

__all__ = [
    "CoarseLevel",
    "heavy_edge_matching",
    "spectral_matching",
    "absorb_singletons",
    "contract",
    "coarsen",
    "spectral_coarsen",
]


@dataclass(frozen=True)
class CoarseLevel:
    """One coarsening step: the coarse graph and the fine->coarse map."""

    graph: CSRGraph
    mapping: np.ndarray  # int64[n_fine] -> coarse vertex id
    vertex_weights: np.ndarray  # int64[n_coarse]: fine vertices absorbed

    @property
    def n_fine(self) -> int:
        return len(self.mapping)


def heavy_edge_matching(g: CSRGraph, seed: int = 0) -> np.ndarray:
    """A maximal matching preferring heavy edges.

    Returns ``match`` with ``match[v]`` the partner of ``v`` (or ``v``
    itself if unmatched).  Vertices are visited in random order; each
    unmatched vertex grabs its heaviest-edge unmatched neighbor.
    """
    rng = np.random.default_rng(seed)
    match = np.arange(g.n, dtype=np.int64)
    matched = np.zeros(g.n, dtype=bool)
    order = rng.permutation(g.n)
    indptr, indices = g.indptr, g.indices
    weights = g.weights
    for v in order:
        if matched[v]:
            continue
        lo, hi = indptr[v], indptr[v + 1]
        nbrs = indices[lo:hi]
        if len(nbrs) == 0:
            continue
        free = ~matched[nbrs]
        if not free.any():
            continue
        cand = nbrs[free]
        if weights is None:
            # Unweighted: prefer the lowest-degree free neighbor, a
            # common tie-break that avoids starving sparse regions.
            u = int(cand[np.argmin(g.degrees[cand])])
        else:
            w = weights[lo:hi][free]
            u = int(cand[np.argmax(w)])
        match[v], match[u] = u, v
        matched[v] = matched[u] = True
    return match


def spectral_matching(
    g: CSRGraph, seed: int = 0, *, rounds: int = 6
) -> np.ndarray:
    """A matching of spectrally redundant edges (Brissette et al. scheme).

    Scores every edge with the effective-resistance proxy
    ``w_uv * (1/wdeg(u) + 1/wdeg(v))`` and runs ``rounds`` of a
    vectorized handshake: each free vertex proposes its lowest-score
    free neighbor, and mutual proposals become matched pairs.  Low
    scores mark edges whose endpoints are tightly embedded in the graph
    (low leverage in the inverse Laplacian), so contracting them
    perturbs the small eigenvalues least.  Returns the same ``match``
    encoding as :func:`heavy_edge_matching` (``match[v]`` is the partner
    of ``v``, or ``v`` itself when unmatched).

    Everything is O(m) NumPy passes per round — no per-vertex Python
    loop — because :mod:`repro.lod` builds hierarchies over graphs far
    beyond what the sequential matcher can visit interactively.
    """
    n = g.n
    match = np.arange(n, dtype=np.int64)
    if n == 0 or g.nnz == 0:
        return match
    src = np.repeat(np.arange(n, dtype=np.int64), g.degrees)
    dst = g.indices.astype(np.int64)
    w = g.weights if g.weights is not None else np.ones(len(dst))
    wdeg = g.weighted_degrees
    inv = np.zeros(n)
    np.divide(1.0, wdeg, out=inv, where=wdeg > 0)
    score = w * (inv[src] + inv[dst])
    # Symmetric deterministic jitter breaks score ties (regular graphs
    # would otherwise all propose the same neighbor and starve the
    # handshake).  Keyed by the undirected edge so both directions agree.
    lo = np.minimum(src, dst).astype(np.uint64)
    hi = np.maximum(src, dst).astype(np.uint64)
    key = lo * np.uint64(2654435761) + hi * np.uint64(40503) + np.uint64(seed)
    mix = (key ^ (key >> np.uint64(15))) * np.uint64(0x9E3779B97F4A7C15)
    u01 = (mix >> np.uint64(11)).astype(np.float64) / float(1 << 53)
    score = score * (1.0 + 1e-3 * u01) + 1e-12 * u01

    free = np.ones(n, dtype=bool)

    def handshake(priorities: np.ndarray) -> int:
        live = free[src] & free[dst]
        if not live.any():
            return -1
        ls, ld, lsc = src[live], dst[live], priorities[live]
        # Lowest-score proposal per source: stable lexsort groups the
        # directed edges by source with scores ascending inside a group.
        order = np.lexsort((lsc, ls))
        ls_sorted = ls[order]
        first = np.ones(len(ls_sorted), dtype=bool)
        first[1:] = ls_sorted[1:] != ls_sorted[:-1]
        best = np.full(n, -1, dtype=np.int64)
        best[ls_sorted[first]] = ld[order][first]
        # Handshake: v and best[v] matched iff each proposed the other.
        v = np.nonzero(best >= 0)[0]
        mutual = v[(best[best[v]] == v) & (v < best[v])]
        partner = best[mutual]
        match[mutual] = partner
        match[partner] = mutual
        free[mutual] = False
        free[partner] = False
        return len(mutual)

    for _ in range(max(1, int(rounds))):
        if handshake(score) <= 0:
            break
    return match


def absorb_singletons(
    g: CSRGraph, match: np.ndarray, *, cap: int = 3
) -> np.ndarray:
    """Aggregate unmatched vertices into an adjacent matched group.

    A maximal matching on a coarse weighted graph can still cover few
    vertices: contraction concentrates weight into hubs whose light
    satellite neighbors form a large independent set, and a 1-1 matching
    can pair at most one satellite per hub — the hierarchy stalls with
    shrink factors near 1 long before its target size.  The standard
    multilevel remedy is aggregation: each unmatched vertex joins the
    group of its *lowest-score* (most spectrally redundant, same
    effective-resistance proxy as :func:`spectral_matching`) matched
    neighbor.  The result is a partition with groups of size 1..2+cap,
    still an exact Galerkin coarsening (``L_c = P^T L_f P`` for the 0/1
    partition prolongator), so the one-sided interlacing guarantee is
    untouched.

    ``cap`` bounds how many singletons one group may absorb per level
    (tightest-coupled first), preventing a hub from swallowing its whole
    neighborhood in a single step and wrecking the coarse geometry.

    Returns an idempotent representative array ``rep`` (``rep[rep[v]] ==
    rep[v]``) accepted by :func:`contract`.
    """
    n = g.n
    match = np.asarray(match, dtype=np.int64)
    rep = np.minimum(np.arange(n, dtype=np.int64), match)
    free = match == np.arange(n)
    if not free.any() or g.nnz == 0 or cap <= 0:
        return rep
    src = np.repeat(np.arange(n, dtype=np.int64), g.degrees)
    dst = g.indices.astype(np.int64)
    w = g.weights if g.weights is not None else np.ones(len(dst))
    wdeg = g.weighted_degrees
    inv = np.zeros(n)
    np.divide(1.0, wdeg, out=inv, where=wdeg > 0)
    score = w * (inv[src] + inv[dst])
    sel = free[src] & ~free[dst]  # singleton -> matched-neighbor edges
    if not sel.any():
        return rep
    fs, fd, fsc = src[sel], dst[sel], score[sel]
    # Lowest-score matched neighbor per singleton.
    order = np.lexsort((fsc, fs))
    fs_s = fs[order]
    first = np.ones(len(fs_s), dtype=bool)
    first[1:] = fs_s[1:] != fs_s[:-1]
    cand = fs_s[first]
    target = rep[fd[order][first]]
    best_score = fsc[order][first]
    # Enforce the per-group cap, admitting the tightest-coupled
    # singletons first: rank candidates within each target group by
    # score and keep the first ``cap``.
    o2 = np.lexsort((best_score, target))
    tgt_s, cand_s = target[o2], cand[o2]
    newgrp = np.ones(len(tgt_s), dtype=bool)
    newgrp[1:] = tgt_s[1:] != tgt_s[:-1]
    starts = np.nonzero(newgrp)[0]
    lengths = np.diff(np.append(starts, len(tgt_s)))
    pos = np.arange(len(tgt_s)) - np.repeat(starts, lengths)
    keep = pos < int(cap)
    rep[cand_s[keep]] = tgt_s[keep]
    return rep


def contract(g: CSRGraph, match: np.ndarray) -> CoarseLevel:
    """Contract a matching (or aggregation) into a coarse weighted graph.

    Accepts either a pairwise matching involution (``match[match[v]] ==
    v``, from :func:`heavy_edge_matching` / :func:`spectral_matching`)
    or an idempotent group-representative array (``match[match[v]] ==
    match[v]``, from :func:`absorb_singletons`).  Grouped vertices merge
    into one coarse vertex; parallel coarse edges sum their weights
    (similarity accumulates).  Coarse ids follow the order of each
    group's representative fine id.
    """
    match = np.asarray(match, dtype=np.int64)
    if len(match) != g.n:
        raise ValueError("matching length must equal n")
    if np.array_equal(match[match], match):
        group_rep = match  # already an idempotent representative map
    else:
        group_rep = np.minimum(np.arange(g.n), match)
    reps, mapping = np.unique(group_rep, return_inverse=True)
    n_coarse = len(reps)

    deg = g.degrees
    src = mapping[np.repeat(np.arange(g.n), deg)]
    dst = mapping[g.indices.astype(np.int64)]
    keep = src < dst  # one direction; drops intra-group (self) edges
    w = (
        g.weights[keep]
        if g.weights is not None
        else np.ones(int(keep.sum()), dtype=np.float64)
    )
    cu, cv = src[keep], dst[keep]
    # Sum parallel edges.
    key = cu * n_coarse + cv
    order = np.argsort(key, kind="stable")
    key_s, cu_s, cv_s, w_s = key[order], cu[order], cv[order], w[order]
    if len(key_s):
        new = np.empty(len(key_s), dtype=bool)
        new[0] = True
        new[1:] = np.diff(key_s) != 0
        group = np.cumsum(new) - 1
        wsum = np.zeros(int(group[-1]) + 1)
        np.add.at(wsum, group, w_s)
        eu, ev = cu_s[new], cv_s[new]
    else:
        wsum = np.zeros(0)
        eu = ev = np.zeros(0, dtype=np.int64)

    coarse = from_edges(n_coarse, eu, ev, wsum if len(wsum) else None)
    vweights = np.bincount(mapping, minlength=n_coarse)
    return CoarseLevel(
        graph=coarse.with_name(f"{g.name or 'g'}-c{n_coarse}"),
        mapping=mapping,
        vertex_weights=vweights,
    )


def coarsen(g: CSRGraph, seed: int = 0) -> CoarseLevel:
    """One heavy-edge-matching coarsening step."""
    return contract(g, heavy_edge_matching(g, seed))


def spectral_coarsen(
    g: CSRGraph, seed: int = 0, *, rounds: int = 6, absorb: bool = True
) -> CoarseLevel:
    """One spectrum-preserving coarsening step (see :func:`spectral_matching`).

    With ``absorb`` (the default) unmatched vertices are aggregated into
    an adjacent matched group (:func:`absorb_singletons`), which keeps
    the shrink factor bounded away from 1 on hub-dominated coarse
    graphs.
    """
    match = spectral_matching(g, seed, rounds=rounds)
    if absorb:
        match = absorb_singletons(g, match)
    return contract(g, match)
