"""Graph coarsening by heavy-edge matching.

The multilevel paradigm (paper section 2.3 and future work; the prior
Kirmani-Madduri system ran HDE "in a multilevel setup"): repeatedly
contract a matching to get a hierarchy of smaller graphs, lay out the
coarsest, and prolong + refine back up.  Heavy-edge matching is the
standard coarsening rule — match each vertex with the unmatched neighbor
sharing the heaviest edge, so contraction absorbs as much edge weight
(similarity) as possible into the coarse vertices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.build import from_edges
from ..graph.csr import CSRGraph

__all__ = ["CoarseLevel", "heavy_edge_matching", "contract", "coarsen"]


@dataclass(frozen=True)
class CoarseLevel:
    """One coarsening step: the coarse graph and the fine->coarse map."""

    graph: CSRGraph
    mapping: np.ndarray  # int64[n_fine] -> coarse vertex id
    vertex_weights: np.ndarray  # int64[n_coarse]: fine vertices absorbed

    @property
    def n_fine(self) -> int:
        return len(self.mapping)


def heavy_edge_matching(g: CSRGraph, seed: int = 0) -> np.ndarray:
    """A maximal matching preferring heavy edges.

    Returns ``match`` with ``match[v]`` the partner of ``v`` (or ``v``
    itself if unmatched).  Vertices are visited in random order; each
    unmatched vertex grabs its heaviest-edge unmatched neighbor.
    """
    rng = np.random.default_rng(seed)
    match = np.arange(g.n, dtype=np.int64)
    matched = np.zeros(g.n, dtype=bool)
    order = rng.permutation(g.n)
    indptr, indices = g.indptr, g.indices
    weights = g.weights
    for v in order:
        if matched[v]:
            continue
        lo, hi = indptr[v], indptr[v + 1]
        nbrs = indices[lo:hi]
        if len(nbrs) == 0:
            continue
        free = ~matched[nbrs]
        if not free.any():
            continue
        cand = nbrs[free]
        if weights is None:
            # Unweighted: prefer the lowest-degree free neighbor, a
            # common tie-break that avoids starving sparse regions.
            u = int(cand[np.argmin(g.degrees[cand])])
        else:
            w = weights[lo:hi][free]
            u = int(cand[np.argmax(w)])
        match[v], match[u] = u, v
        matched[v] = matched[u] = True
    return match


def contract(g: CSRGraph, match: np.ndarray) -> CoarseLevel:
    """Contract a matching into a coarse weighted graph.

    Matched pairs merge into one coarse vertex; parallel coarse edges
    sum their weights (similarity accumulates).  Coarse ids follow the
    order of each group's smallest fine id.
    """
    match = np.asarray(match, dtype=np.int64)
    if len(match) != g.n:
        raise ValueError("matching length must equal n")
    group_rep = np.minimum(np.arange(g.n), match)
    reps, mapping = np.unique(group_rep, return_inverse=True)
    n_coarse = len(reps)

    deg = g.degrees
    src = mapping[np.repeat(np.arange(g.n), deg)]
    dst = mapping[g.indices.astype(np.int64)]
    keep = src < dst  # one direction; drops intra-group (self) edges
    w = (
        g.weights[keep]
        if g.weights is not None
        else np.ones(int(keep.sum()), dtype=np.float64)
    )
    cu, cv = src[keep], dst[keep]
    # Sum parallel edges.
    key = cu * n_coarse + cv
    order = np.argsort(key, kind="stable")
    key_s, cu_s, cv_s, w_s = key[order], cu[order], cv[order], w[order]
    if len(key_s):
        new = np.empty(len(key_s), dtype=bool)
        new[0] = True
        new[1:] = np.diff(key_s) != 0
        group = np.cumsum(new) - 1
        wsum = np.zeros(int(group[-1]) + 1)
        np.add.at(wsum, group, w_s)
        eu, ev = cu_s[new], cv_s[new]
    else:
        wsum = np.zeros(0)
        eu = ev = np.zeros(0, dtype=np.int64)

    coarse = from_edges(n_coarse, eu, ev, wsum if len(wsum) else None)
    vweights = np.bincount(mapping, minlength=n_coarse)
    return CoarseLevel(
        graph=coarse.with_name(f"{g.name or 'g'}-c{n_coarse}"),
        mapping=mapping,
        vertex_weights=vweights,
    )


def coarsen(g: CSRGraph, seed: int = 0) -> CoarseLevel:
    """One heavy-edge-matching coarsening step."""
    return contract(g, heavy_edge_matching(g, seed))
