"""Counters and latency histograms for the serving layer.

Dependency-free metrics in the spirit of a Prometheus client: named
monotonic :class:`Counter`\\ s and bounded-reservoir :class:`Histogram`\\ s
collected in a :class:`Telemetry` registry.  The registry renders either
a nested dict (the ``GET /stats`` JSON body) or an aligned plain-text
page (``GET /stats?format=text``) for eyeballing with ``curl``.

Histograms keep a fixed-size reservoir of the most recent observations
(plus exact count/sum/min/max over all time), so percentiles reflect
recent behavior and memory stays bounded no matter how long the server
runs.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque

__all__ = ["Counter", "Gauge", "Histogram", "Telemetry"]


class Counter:
    """A monotonically increasing named value."""

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A named value that can go up and down (open breakers, in-flight)."""

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, amount: float) -> None:
        with self._lock:
            self._value += float(amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Streaming distribution summary with recent-window percentiles."""

    def __init__(self, name: str, reservoir: int = 4096):
        if reservoir < 1:
            raise ValueError("reservoir must be >= 1")
        self.name = name
        self._lock = threading.Lock()
        self._recent: deque[float] = deque(maxlen=reservoir)
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._recent.append(value)
            self._count += 1
            self._sum += value
            self._min = min(self._min, value)
            self._max = max(self._max, value)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def percentile(self, q: float) -> float:
        """q-th percentile (0..100) of the recent reservoir (0.0 if empty)."""
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        with self._lock:
            data = sorted(self._recent)
        if not data:
            return 0.0
        idx = min(len(data) - 1, max(0, round(q / 100 * (len(data) - 1))))
        return data[idx]

    def summary(self) -> dict[str, float]:
        with self._lock:
            count = self._count
            total = self._sum
            lo = self._min
            hi = self._max
            data = sorted(self._recent)

        def pct(q: float) -> float:
            if not data:
                return 0.0
            idx = min(len(data) - 1, max(0, round(q / 100 * (len(data) - 1))))
            return data[idx]

        if count == 0:
            return {"count": 0, "sum": 0.0, "mean": 0.0, "min": 0.0,
                    "max": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}
        return {
            "count": count,
            "sum": total,
            "mean": total / count,
            "min": lo,
            "max": hi,
            "p50": pct(50),
            "p95": pct(95),
            "p99": pct(99),
        }


class Telemetry:
    """Registry of named counters and histograms (create-on-first-use)."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: OrderedDict[str, Counter] = OrderedDict()
        self._histograms: OrderedDict[str, Histogram] = OrderedDict()
        self._gauges: OrderedDict[str, Gauge] = OrderedDict()

    def counter(self, name: str) -> Counter:
        with self._lock:
            c = self._counters.get(name)
            if c is None:
                c = self._counters[name] = Counter(name)
            return c

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            g = self._gauges.get(name)
            if g is None:
                g = self._gauges[name] = Gauge(name)
            return g

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            h = self._histograms.get(name)
            if h is None:
                h = self._histograms[name] = Histogram(name)
            return h

    def inc(self, name: str, amount: int = 1) -> None:
        self.counter(name).inc(amount)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def snapshot(self) -> dict:
        """Nested dict of every metric — the ``GET /stats`` payload."""
        with self._lock:
            counters = list(self._counters.values())
            histograms = list(self._histograms.values())
            gauges = list(self._gauges.values())
        snap = {
            "counters": {c.name: c.value for c in counters},
            "histograms": {h.name: h.summary() for h in histograms},
        }
        if gauges:
            snap["gauges"] = {g.name: g.value for g in gauges}
        return snap

    def render_text(self, extra: dict | None = None) -> str:
        """Aligned plain-text stats page (``GET /stats?format=text``)."""
        snap = self.snapshot()
        lines = ["# counters"]
        for name, value in snap["counters"].items():
            lines.append(f"{name:<32} {value}")
        lines.append("")
        lines.append("# histograms (seconds)")
        header = (
            f"{'name':<28} {'count':>7} {'mean':>9} {'p50':>9} "
            f"{'p95':>9} {'p99':>9} {'max':>9}"
        )
        lines.append(header)
        for name, s in snap["histograms"].items():
            lines.append(
                f"{name:<28} {s['count']:>7} {s['mean']:>9.4f} "
                f"{s['p50']:>9.4f} {s['p95']:>9.4f} {s['p99']:>9.4f} "
                f"{s['max']:>9.4f}"
            )
        for section, mapping in (extra or {}).items():
            lines.append("")
            lines.append(f"# {section}")
            for name, value in mapping.items():
                lines.append(f"{name:<32} {value}")
        return "\n".join(lines)
