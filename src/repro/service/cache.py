"""Two-tier content-addressed layout cache.

Tier 1 is an in-memory LRU bounded by a *byte* budget (layouts vary by
orders of magnitude in size, so an entry count is the wrong knob).
Tier 2 is an optional on-disk directory of ``<fingerprint>.npz``
archives in the :mod:`repro.core.serialize` format — the same format
``parhde layout --save-layout`` writes, so warm state survives restarts
and files are inspectable with the normal tooling.

Eviction from memory spills to disk (when a disk tier is configured);
a disk hit is promoted back into memory.  When a spill *fails* (disk
full, permissions, a path that is not a directory) the victim is kept
in memory — temporarily over budget — instead of being dropped from
both tiers at once, and the failure is counted in the ``disk_errors``
stat.  All operations are safe under concurrent access from the serving
threads; hit/miss/evict/disk-error accounting is exposed via
:meth:`LayoutCache.stats`.

Staleness: keys are full request fingerprints
(:func:`~repro.service.fingerprint.layout_fingerprint`), which fold in
the fingerprint-format version *and the graph epoch*.  Disk filenames
are the fingerprints themselves, so a graph update — which bumps the
epoch — moves every affected key and a pre-update layout can never be
served from either tier for the post-update graph.

Durability: every archive is published atomically (temp file +
``os.replace``) with a sha256 sidecar written *first*, so a crash
mid-write never leaves a payload without its sidecar.  Loads re-hash
the payload; a checksum mismatch or unreadable archive is logged once,
counted in the ``disk_corrupt`` stat and the files are moved to a
``quarantine/`` subdirectory for post-mortem instead of being re-read
(and re-failed) on every subsequent request.  A payload *without* a
sidecar is therefore a pre-warmed entry (a CLI-saved archive dropped
into the directory): it is adopted — parsed, counted as
``disk_adopted``, and given its sidecar — not quarantined.
"""

from __future__ import annotations

import hashlib
import logging
import os
import tempfile
import threading
from collections import OrderedDict
from pathlib import Path

from ..core.result import LayoutResult
from ..core.serialize import load_layout, save_layout
from ..resilience.chaos import failpoint

__all__ = ["LayoutCache", "layout_nbytes"]

logger = logging.getLogger("repro.service.cache")

_ARRAY_FIELDS = ("coords", "B", "S", "eigenvalues", "pivots")

#: Accounting overhead charged per entry (dict slots, params echo, ...).
_ENTRY_OVERHEAD = 512


def layout_nbytes(result: LayoutResult) -> int:
    """Approximate resident size of a layout result in bytes."""
    total = _ENTRY_OVERHEAD
    for name in _ARRAY_FIELDS:
        arr = getattr(result, name)
        if arr is not None:
            total += int(arr.nbytes)
    return total


class LayoutCache:
    """Thread-safe LRU layout cache with an optional disk tier.

    Parameters
    ----------
    max_bytes:
        Memory-tier budget.  Entries are evicted least-recently-used
        until the tier fits; a single entry larger than the whole budget
        is never held in memory (it goes straight to disk, if enabled).
    disk_dir:
        Directory for the persistent tier, created on demand.  ``None``
        disables the disk tier.
    """

    def __init__(
        self,
        max_bytes: int = 256 * 1024 * 1024,
        disk_dir: str | os.PathLike | None = None,
    ):
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        self.max_bytes = max_bytes
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        self._lock = threading.RLock()
        self._mem: OrderedDict[str, tuple[LayoutResult, int]] = OrderedDict()
        self._mem_bytes = 0
        self._counts = {
            "hits": 0,
            "misses": 0,
            "memory_hits": 0,
            "disk_hits": 0,
            "stores": 0,
            "evictions": 0,
            "disk_errors": 0,
            "disk_corrupt": 0,
            "disk_adopted": 0,
            "flushes": 0,
        }

    # -- introspection -----------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._mem)

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            if fingerprint in self._mem:
                return True
        path = self._disk_path(fingerprint)
        return path is not None and path.exists()

    @property
    def current_bytes(self) -> int:
        """Bytes currently charged to the memory tier."""
        with self._lock:
            return self._mem_bytes

    def stats(self) -> dict[str, int]:
        """Snapshot of the accounting counters plus occupancy."""
        with self._lock:
            out = dict(self._counts)
            out["entries"] = len(self._mem)
            out["bytes"] = self._mem_bytes
            out["max_bytes"] = self.max_bytes
        return out

    # -- core operations ---------------------------------------------------
    def get(self, fingerprint: str) -> tuple[LayoutResult, str] | None:
        """Look up a fingerprint.

        Returns ``(result, tier)`` where ``tier`` is ``"memory"`` or
        ``"disk"``, or ``None`` on a miss.  Disk hits are promoted into
        the memory tier.
        """
        with self._lock:
            entry = self._mem.get(fingerprint)
            if entry is not None:
                self._mem.move_to_end(fingerprint)
                self._counts["hits"] += 1
                self._counts["memory_hits"] += 1
                return entry[0], "memory"

        result = self._disk_load(fingerprint)
        with self._lock:
            if result is not None:
                self._counts["hits"] += 1
                self._counts["disk_hits"] += 1
                self._insert_memory(fingerprint, result, spill=False)
                return result, "disk"
            self._counts["misses"] += 1
        return None

    def put(self, fingerprint: str, result: LayoutResult) -> None:
        """Insert a computed layout into both tiers."""
        with self._lock:
            self._counts["stores"] += 1
            self._insert_memory(fingerprint, result, spill=True)
        self._disk_store(fingerprint, result)

    def clear(self) -> None:
        """Drop the memory tier (disk archives are left in place)."""
        with self._lock:
            self._mem.clear()
            self._mem_bytes = 0

    def flush(self) -> int:
        """Persist every memory-tier entry to disk; returns entries written.

        Called on graceful shutdown so warm state survives the restart.
        Entries already on disk are skipped; failures are counted in
        ``disk_errors`` and do not abort the flush.  A no-op (returning
        0) without a disk tier.
        """
        if self.disk_dir is None:
            return 0
        with self._lock:
            entries = [(fp, result) for fp, (result, _) in self._mem.items()]
        written = 0
        for fp, result in entries:
            if self._disk_store(fp, result, overwrite=False):
                written += 1
        with self._lock:
            self._counts["flushes"] += 1
        return written

    # -- memory tier (call with lock held) ---------------------------------
    def _insert_memory(
        self, fingerprint: str, result: LayoutResult, *, spill: bool
    ) -> None:
        nbytes = layout_nbytes(result)
        old = self._mem.pop(fingerprint, None)
        if old is not None:
            self._mem_bytes -= old[1]
        if nbytes > self.max_bytes:
            return  # oversize: disk tier only
        self._mem[fingerprint] = (result, nbytes)
        self._mem_bytes += nbytes
        while self._mem_bytes > self.max_bytes and self._mem:
            victim_fp, (victim, victim_bytes) = self._mem.popitem(last=False)
            if (
                spill
                and self.disk_dir is not None
                and not self._disk_store(victim_fp, victim, overwrite=False)
            ):
                # The spill failed: dropping the victim anyway would lose
                # it from both tiers at once.  Put it back at the cold end
                # and stop evicting — the tier runs over budget until a
                # later spill succeeds, which is the recoverable failure.
                self._mem[victim_fp] = (victim, victim_bytes)
                self._mem.move_to_end(victim_fp, last=False)
                break
            self._mem_bytes -= victim_bytes
            self._counts["evictions"] += 1

    # -- disk tier ---------------------------------------------------------
    def _disk_path(self, fingerprint: str) -> Path | None:
        if self.disk_dir is None:
            return None
        return self.disk_dir / f"{fingerprint}.npz"

    def _sidecar_path(self, path: Path) -> Path:
        return path.with_name(path.name + ".sha256")

    def _write_sidecar(self, path: Path, digest: str) -> bool:
        """Atomically publish ``digest`` next to ``path``; never raises
        (adopting a pre-warmed entry must not fail the load that found
        it — a False just means the next load re-adopts)."""
        try:
            sfd, stmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-")
            try:
                with os.fdopen(sfd, "w") as fh:
                    fh.write(digest)
                os.replace(stmp, self._sidecar_path(path))
            finally:
                if os.path.exists(stmp):
                    os.unlink(stmp)
        except OSError:
            return False
        return True

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a corrupt archive (and sidecar) aside; log exactly once.

        Because the files are *moved*, the fingerprint misses cleanly on
        every later request — the warning below is the single log line a
        given corrupt entry ever produces.
        """
        with self._lock:
            self._counts["disk_corrupt"] += 1
        qdir = path.parent / "quarantine"
        try:
            qdir.mkdir(parents=True, exist_ok=True)
            for victim in (path, self._sidecar_path(path)):
                if victim.exists():
                    os.replace(victim, qdir / victim.name)
            logger.warning(
                "disk cache entry %s corrupt (%s); quarantined to %s",
                path.name, reason, qdir,
            )
        except OSError:
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass
            logger.warning(
                "disk cache entry %s corrupt (%s); removed", path.name, reason
            )

    def _disk_load(self, fingerprint: str) -> LayoutResult | None:
        path = self._disk_path(fingerprint)
        if path is None or not path.exists():
            return None
        try:
            failpoint("cache.disk_load")
            data = path.read_bytes()
            sidecar = self._sidecar_path(path)
            expected = sidecar.read_text().strip() if sidecar.exists() else None
            if expected is None:
                # Our own writes publish the sidecar *before* the
                # payload, so a payload with no sidecar is a pre-warmed
                # entry (a CLI-saved archive dropped into the
                # directory), never a torn write: adopt it if it
                # parses, writing the missing sidecar for next time.
                result = load_layout(path)
                self._write_sidecar(path, hashlib.sha256(data).hexdigest())
                with self._lock:
                    self._counts["disk_adopted"] += 1
                return result
            if hashlib.sha256(data).hexdigest() != expected:
                self._quarantine(path, "checksum mismatch")
                return None
            return load_layout(path)
        except Exception as exc:
            with self._lock:
                self._counts["disk_errors"] += 1
            self._quarantine(path, f"{type(exc).__name__}: {exc}")
            return None

    def _disk_store(
        self, fingerprint: str, result: LayoutResult, *, overwrite: bool = True
    ) -> bool:
        """Persist one entry; ``True`` iff the archive is on disk after
        the call (written now or already present)."""
        path = self._disk_path(fingerprint)
        if path is None:
            return False
        if not overwrite and path.exists():
            return True
        try:
            failpoint("cache.disk_store")
            path.parent.mkdir(parents=True, exist_ok=True)
            # Write-then-rename so concurrent readers never see a torn
            # file; the checksum sidecar is published *before* the
            # payload so an interrupted write leaves at worst a sidecar
            # without its payload (a clean miss), never a trusted torn
            # archive — which is what lets a payload *without* a
            # sidecar be safely adopted as pre-warmed on load.
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=".tmp-", suffix=".npz"
            )
            os.close(fd)
            try:
                save_layout(result, tmp)
                digest = hashlib.sha256(Path(tmp).read_bytes()).hexdigest()
                if not self._write_sidecar(path, digest):
                    raise OSError(
                        f"failed to publish checksum sidecar for {path.name}"
                    )
                os.replace(tmp, path)
            finally:
                if os.path.exists(tmp):
                    os.unlink(tmp)
        except Exception:
            with self._lock:
                self._counts["disk_errors"] += 1
            return False
        return True
