"""The layout-serving engine: cache, single-flight dedup, admission control.

:class:`LayoutEngine` is the synchronous core the HTTP endpoint, the
CLI and the throughput benchmark all share.  A request travels through
three gates:

1. **Cache** — the request fingerprint is looked up in the two-tier
   :class:`~repro.service.cache.LayoutCache`; a hit returns immediately.
2. **Single-flight** — concurrent requests for the same fingerprint
   coalesce onto one computation; followers block on the leader's
   completion event instead of recomputing (the classic thundering-herd
   guard).
3. **Admission control** — leader computations run on a bounded
   :class:`~repro.parallel.pool.TaskPool`; when the backlog limit is
   reached the request fails fast with :class:`Overloaded`, and a
   request that waits longer than its deadline fails with
   :class:`RequestTimeout` (the computation itself keeps running and
   still populates the cache for the retry).

Every stage is accounted in a :class:`~repro.service.telemetry.Telemetry`
registry: request/hit/miss/coalesce/reject counters plus queue-wait,
compute-time and end-to-end latency histograms.
"""

from __future__ import annotations

import inspect
import logging
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from .. import datasets
from ..core import parhde, phde, pivotmds
from ..core.constraints import ConstraintSpec
from ..core.kernels import KernelConfig
from ..core.result import LayoutResult
from ..graph.csr import CSRGraph
from ..parallel.pool import PoolSaturated, TaskPool
from ..resilience import BreakerRegistry, Deadline, RetryPolicy
from ..resilience.breaker import OPEN
from ..resilience.ladder import baseline_layout, is_lod_tier, resilient_layout
from ..stream.delta import EdgeDelta, edge_delta
from ..stream.overlay import DynamicGraph
from ..wal import WriteAheadLog, edge_diff
from ..validate import (
    InvariantViolation,
    ValidationPolicy,
    check_cache_consistency,
)
from .cache import LayoutCache
from .fingerprint import canonical_params, graph_digest, layout_fingerprint
from .telemetry import Telemetry

logger = logging.getLogger("repro.service.engine")

__all__ = [
    "BadRequest",
    "LayoutEngine",
    "LayoutRequest",
    "LayoutResponse",
    "Overloaded",
    "RequestTimeout",
    "ResilienceConfig",
    "ServiceError",
    "UpdateRequest",
    "UpdateResponse",
    "ValidationFailed",
    "DEFAULT_ALGORITHMS",
]


class ServiceError(Exception):
    """Base class for structured serving errors."""

    #: Stable machine-readable error code (also the HTTP error `type`).
    code = "internal"
    #: HTTP status the endpoint maps this error to.
    http_status = 500


class BadRequest(ServiceError):
    """Malformed or unsatisfiable request (unknown graph, bad params)."""

    code = "bad_request"
    http_status = 400


class Overloaded(ServiceError):
    """Admission control rejected the request; retry with backoff."""

    code = "overloaded"
    http_status = 503


class RequestTimeout(ServiceError):
    """The request's deadline expired while waiting for the layout."""

    code = "timeout"
    http_status = 504


class ValidationFailed(ServiceError):
    """A layout (computed or cached) failed an invariant check.

    Raised only when the engine runs with a ``strict`` validation
    policy; a failed check means the response would have been wrong, so
    failing loudly beats serving it.
    """

    code = "invalid_layout"
    http_status = 500


@dataclass(frozen=True)
class ResilienceConfig:
    """Knobs for the engine's degradation/retry/breaker machinery.

    Passing a config (or ``resilience=True``) to :class:`LayoutEngine`
    turns the compute path into the degradation ladder
    (:func:`repro.resilience.resilient_layout`): computations run under
    a deadline derived from the request timeout, transient failures are
    retried, and a failing or stalled pipeline falls back to cheaper
    rungs instead of erroring — the response is then tagged with a
    ``quality_tier`` below ``"full"``.  Only untainted full-tier results
    are cached.

    Attributes
    ----------
    deadline_fraction:
        Share of the request's remaining time given to the compute
        ladder; the rest is slack for queue hand-off and serialization.
    retry:
        Override for the ladder's transient-retry policy.
    breaker_threshold / breaker_reset:
        Consecutive non-full outcomes per (graph, algorithm) key that
        trip its circuit breaker, and seconds before a half-open probe.
    degrade_on_open:
        When a breaker is open, serve an inline baseline layout tagged
        ``quality_tier="baseline"`` (default) instead of failing fast
        with :class:`Overloaded`.
    """

    deadline_fraction: float = 0.8
    retry: RetryPolicy | None = None
    breaker_threshold: int = 3
    breaker_reset: float = 30.0
    degrade_on_open: bool = True

    @classmethod
    def coerce(
        cls, value: "ResilienceConfig | bool | None"
    ) -> "ResilienceConfig | None":
        if value is None or value is False:
            return None
        if value is True:
            return cls()
        return value


#: Algorithm registry served by default.
DEFAULT_ALGORITHMS: dict[str, Callable[..., LayoutResult]] = {
    "parhde": parhde,
    "phde": phde,
    "pivotmds": pivotmds,
}

#: Extra keyword parameters a request may pass through to the algorithm.
_ALLOWED_PARAMS = frozenset(
    {
        "dims",
        "pivots",
        "ortho",
        "gs_method",
        "project_basis",
        "drop_tol",
        "traversal",
        "subspace",
        "rounds",
        "kernels",
        "constraints",
        "pins",
        "masses",
        "region",
    }
)

#: The kernel-selection subset of :data:`_ALLOWED_PARAMS` — canonicalized
#: through :class:`KernelConfig` before fingerprinting so every spelling
#: of the same configuration (flat legacy keys, a ``kernels`` mapping, or
#: both) hashes identically and conflicts are rejected up front.
_KERNEL_PARAMS = (
    "pivots",
    "ortho",
    "gs_method",
    "project_basis",
    "drop_tol",
    "traversal",
    "subspace",
    "rounds",
)

#: The constraint subset of :data:`_ALLOWED_PARAMS` — canonicalized
#: through :class:`ConstraintSpec` exactly like the kernel knobs, so a
#: ``constraints`` mapping and the flat ``pins``/``masses``/``region``
#: keys fingerprint identically and contradictions become 400s.
_CONSTRAINT_PARAMS = ("pins", "masses", "region")


@dataclass(frozen=True)
class LayoutRequest:
    """One layout request, as the HTTP body / CLI flags describe it.

    Attributes
    ----------
    graph:
        Collection name (served by name, e.g. ``"barth"``) or an
        in-memory :class:`CSRGraph` for library callers.
    scale / seed:
        Collection generator knobs (ignored for in-memory graphs;
        ``seed`` still feeds the algorithm).
    algorithm:
        Key into the engine's algorithm registry.
    s:
        Subspace dimension (pivot count).
    params:
        Optional algorithm pass-through parameters (whitelisted).
    timeout:
        Per-request deadline override in seconds (``None`` = engine
        default).
    lod:
        Progressive level-of-detail mode (:mod:`repro.lod`): ``None``
        (engine default), ``"off"``, ``"auto"``, or a first-paint budget
        in milliseconds.  Ignored by a plain :class:`LayoutEngine`;
        honored when the engine is wrapped in a
        :class:`~repro.lod.ProgressiveEngine`.
    """

    graph: str | CSRGraph
    scale: str = "small"
    seed: int = 0
    algorithm: str = "parhde"
    s: int = 10
    params: Mapping[str, Any] = field(default_factory=dict)
    timeout: float | None = None
    lod: str | float | None = None


@dataclass(frozen=True)
class UpdateRequest:
    """One graph-update request (the ``POST /update`` body).

    ``inserts`` rows are ``[u, v]`` or ``[u, v, w]``; ``deletes`` rows
    are ``[u, v]``.  Updates address *named* graphs only — the engine
    owns their lifecycle; in-memory graphs belong to the caller.

    ``pins`` (``{vertex: [x, y]}`` or ``[vertex, [x, y]]`` pairs) and
    ``unpins`` (vertex ids) edit the graph's server-side pin state: a
    drag is *just another delta*.  Pinning moves every subsequent layout
    fingerprint through the request parameters (state pins merge into
    each layout's constraints), so pin edits bump neither the epoch nor
    the content version — re-pinning an identical position still hits
    the cache, and warm bases survive.
    """

    graph: str
    scale: str = "small"
    seed: int = 0
    inserts: tuple = ()
    deletes: tuple = ()
    pins: Any = ()
    unpins: tuple = ()


@dataclass
class UpdateResponse:
    """Engine answer to a graph update."""

    graph_name: str
    epoch: int  # post-update epoch; fingerprints now use this
    n: int
    m: int
    inserted: int
    deleted: int
    skipped: int  # no-op edits (insert existing / delete missing)
    overlay_fraction: float
    compacted: bool
    elapsed: float
    pinned: int = 0  # pin-state edits applied by this update
    unpinned: int = 0


@dataclass
class LayoutResponse:
    """Engine answer: the layout plus serving metadata."""

    fingerprint: str
    status: str  # "memory-hit" | "disk-hit" | "computed" | "coalesced" | "degraded"
    result: LayoutResult
    graph_name: str
    n: int
    m: int
    elapsed: float  # end-to-end seconds inside the engine

    @property
    def cache_hit(self) -> bool:
        return self.status.endswith("-hit")

    @property
    def quality_tier(self) -> str:
        """Degradation tier of the served layout (``"full"`` normally)."""
        return self.result.quality_tier


class _Flight:
    """In-flight computation shared by the leader and its followers."""

    __slots__ = ("event", "result", "error")

    def __init__(self):
        self.event = threading.Event()
        self.result: LayoutResult | None = None
        self.error: BaseException | None = None


class _GraphState:
    """A named graph the engine serves, now mutable via ``/update``.

    ``digest`` is the *lineage* digest — the content digest of the graph
    as first registered.  Post-update identity is ``(digest, epoch)``:
    the epoch counts applied update batches, so every update moves all
    fingerprints derived from this graph, which is exactly the cache
    staleness guarantee (a pre-update layout can never be served for the
    post-update graph).  Rehashing the full CSR on every small delta
    would defeat the point of the overlay.

    ``content`` counts *content changes* only (update batches), while
    ``epoch`` additionally bumps on every published LOD refinement
    (:meth:`LayoutEngine.publish_layout`) — the epoch is the cache
    namespace, the content counter is the graph identity progressive
    refinement chains check before publishing against.
    """

    __slots__ = ("dyn", "digest", "epoch", "content", "pins", "lock", "wal_lsn")

    def __init__(self, g: CSRGraph):
        self.dyn = DynamicGraph(g)
        self.digest = graph_digest(g)
        self.epoch = 0
        self.content = 0
        #: Server-side pin state ({vertex: coords}), edited via /update
        #: pins/unpins and merged into every layout's constraints.  Pin
        #: edits move fingerprints through the request params, so they
        #: bump neither ``epoch`` nor ``content``.
        self.pins: dict[int, tuple[float, ...]] = {}
        self.lock = threading.Lock()
        #: LSN of the last WAL record reflected in this state.  A WAL
        #: snapshot stores it per graph; replay skips records at or
        #: below it (the per-graph floor makes snapshot + journal
        #: consistent without freezing the whole engine to checkpoint).
        self.wal_lsn = 0


class LayoutEngine:
    """Serve layout requests with caching, dedup and admission control.

    Parameters
    ----------
    cache:
        Two-tier cache (default: in-memory only, 256 MB).
    workers:
        Concurrent layout computations.
    queue_limit:
        Computations allowed to wait for a worker before requests are
        rejected with :class:`Overloaded`.
    timeout:
        Default per-request deadline in seconds.
    graph_loader:
        ``(name, scale, seed) -> CSRGraph`` resolver for by-name
        requests (default: :func:`repro.datasets.load`).  Loaded graphs
        and their digests are cached per engine.
    algorithms:
        Algorithm registry override (tests inject slow/counting stubs).
    telemetry:
        Metrics registry (default: a fresh one).
    resilience:
        ``None``/``False`` (default) keeps the classic fail-fast compute
        path.  A :class:`ResilienceConfig` (or ``True``) routes
        computations through the degradation ladder with per-request
        deadlines, retries and per-(graph, algorithm) circuit breakers;
        see :class:`ResilienceConfig`.
    validation:
        Invariant-checking policy (:mod:`repro.validate`): ``None`` /
        ``"off"`` (default), ``"warn"``, ``"strict"`` or a configured
        :class:`~repro.validate.ValidationPolicy`.  When enabled, the
        policy is threaded into every algorithm that accepts a
        ``validate`` keyword, and cache hits are cross-checked against
        the request before being served; strict violations surface as
        :class:`ValidationFailed`.
    wal_dir:
        Directory for a :class:`repro.wal.WriteAheadLog`.  When set,
        graph registration, update deltas, pin edits and epoch
        publishes are journaled *before* they are acknowledged, and the
        constructor replays the log to bitwise-identical
        ``(digest, epoch, pins)`` state — a SIGKILLed process restarted
        on the same directory resumes serving the post-update epochs
        instead of pristine epoch 0.  ``None`` (default) keeps the
        volatile behavior.  See ``docs/wal.md``.
    wal_fsync:
        Durability policy: ``"always"`` / ``"batch"`` (default) /
        ``"off"`` — see :class:`repro.wal.WriteAheadLog`.
    wal_snapshot_every:
        Journal appends between automatic snapshot + compaction passes
        (bounds replay cost).
    """

    def __init__(
        self,
        *,
        cache: LayoutCache | None = None,
        workers: int = 2,
        queue_limit: int = 8,
        timeout: float = 60.0,
        graph_loader: Callable[[str, str, int], CSRGraph] | None = None,
        algorithms: Mapping[str, Callable[..., LayoutResult]] | None = None,
        telemetry: Telemetry | None = None,
        validation: ValidationPolicy | str | None = None,
        resilience: "ResilienceConfig | bool | None" = None,
        wal_dir: str | None = None,
        wal_fsync: str = "batch",
        wal_snapshot_every: int = 256,
    ):
        if timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {timeout}")
        self.cache = cache if cache is not None else LayoutCache()
        self.timeout = timeout
        self.validation = ValidationPolicy.coerce(validation)
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.resilience = ResilienceConfig.coerce(resilience)
        self._draining = False
        self._breakers: BreakerRegistry | None = None
        if self.resilience is not None:
            self._breakers = BreakerRegistry(
                self.resilience.breaker_threshold,
                self.resilience.breaker_reset,
                on_transition=self._on_breaker_transition,
            )
        self._algorithms = dict(
            algorithms if algorithms is not None else DEFAULT_ALGORITHMS
        )
        self._graph_loader = graph_loader or (
            lambda name, scale, seed: datasets.load(name, scale=scale, seed=seed)
        )
        self._pool = TaskPool(workers, queue_limit=queue_limit)
        self._flights: dict[str, _Flight] = {}
        self._flights_lock = threading.Lock()
        self._graphs: dict[tuple[str, str, int], _GraphState] = {}
        self._graphs_lock = threading.Lock()
        # Warm bases for constrained relayouts: a cold constrained layout
        # deposits its pre-deflation basis here; a pin/drag re-request on
        # the same (graph content, algorithm, non-constraint params, mass
        # facet) skips BFS + D-orthogonalization entirely.  Keyed outside
        # the fingerprint — the warm base changes the cost, never the
        # result.
        self._warm_store: OrderedDict[str, dict] = OrderedDict()
        self._warm_lock = threading.Lock()
        self._warm_capacity = 16
        self._wal: WriteAheadLog | None = None
        self._wal_replaying = False
        self._wal_replay_lsn = 0
        self._wal_snapshot_every = max(1, int(wal_snapshot_every))
        self._wal_snap_lock = threading.Lock()
        if wal_dir is not None:
            self._wal = WriteAheadLog(
                wal_dir, fsync=wal_fsync, telemetry=self.telemetry
            )
            self._replay_wal()

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        self._pool.close()
        if self._wal is not None:
            self._wal.close()

    @property
    def draining(self) -> bool:
        return self._draining

    def drain(self, timeout: float = 10.0) -> bool:
        """Stop admitting requests and wait for in-flight work to finish.

        New :meth:`submit` calls fail with :class:`Overloaded` from the
        moment this is called (the HTTP layer maps that to 503).
        Returns ``True`` when every in-flight computation completed
        within ``timeout`` seconds; ``False`` means work was abandoned
        (the pool's daemon threads die with the process).
        """
        self._draining = True
        end = time.monotonic() + max(0.0, timeout)
        while self.inflight and time.monotonic() < end:
            time.sleep(0.02)
        return self.inflight == 0

    def __enter__(self) -> "LayoutEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- introspection -----------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return self._pool.queue_depth

    @property
    def inflight(self) -> int:
        with self._flights_lock:
            return len(self._flights)

    def stats(self) -> dict:
        """Combined telemetry + cache + pool snapshot (``GET /stats``)."""
        snap = self.telemetry.snapshot()
        snap["cache"] = self.cache.stats()
        snap["pool"] = {
            "workers": self._pool.workers,
            "queue_limit": self._pool.queue_limit,
            "outstanding": self._pool.outstanding,
            "queue_depth": self._pool.queue_depth,
        }
        snap["inflight"] = self.inflight
        snap["draining"] = self._draining
        if self._breakers is not None:
            snap["breakers"] = self._breakers.snapshot()
        if self._wal is not None:
            snap["wal"] = self._wal.stats()
        return snap

    # -- resilience plumbing -----------------------------------------------
    def _on_breaker_transition(self, key: str, old: str, new: str) -> None:
        # Fired under the breaker lock: telemetry only, no re-entry.
        self.telemetry.inc(f"breaker.to_{new.replace('-', '_')}")
        if new == OPEN:
            self.telemetry.gauge("breakers_open").add(1)
        elif old == OPEN:
            self.telemetry.gauge("breakers_open").add(-1)

    # -- request path ------------------------------------------------------
    def submit(self, request: LayoutRequest) -> LayoutResponse:
        """Serve one request synchronously (the HTTP handler's thread blocks
        here; concurrency comes from the handler threads + worker pool)."""
        t0 = time.perf_counter()
        self.telemetry.inc("requests")
        try:
            if self._draining:
                raise Overloaded(
                    "engine is draining; not accepting new requests"
                )
            response = self._serve(request, t0)
        except ServiceError as exc:
            self.telemetry.inc(f"errors.{exc.code}")
            raise
        self.telemetry.observe("latency_seconds", time.perf_counter() - t0)
        self.telemetry.inc(f"responses.{response.status}")
        return response

    # -- graph updates -----------------------------------------------------
    def update(self, request: UpdateRequest) -> UpdateResponse:
        """Apply an edge delta to a named graph and bump its epoch.

        No-op edits (inserting an existing edge, deleting a missing one)
        are skipped and counted rather than rejected — streams replayed
        with retries must be idempotent.  The epoch bumps even for an
        all-no-op batch, which costs one redundant cache namespace but
        never risks serving a stale layout.
        """
        t0 = time.perf_counter()
        if not self._wal_replaying:
            self.telemetry.inc("updates")
        if isinstance(request.graph, CSRGraph):
            raise BadRequest(
                "updates address named graphs only; in-memory graphs are"
                " owned by the caller"
            )
        try:
            pin_spec = ConstraintSpec(pins=request.pins or ())
            unpins = [int(v) for v in request.unpins or ()]
        except (TypeError, ValueError) as exc:
            raise BadRequest(f"bad pin edit: {exc}") from exc
        try:
            delta = edge_delta(
                inserts=request.inserts or (), deletes=request.deletes or ()
            )
        except (TypeError, ValueError) as exc:
            raise BadRequest(f"bad delta: {exc}") from exc
        has_pin_edits = bool(pin_spec.pins) or bool(unpins)
        if not len(delta) and not has_pin_edits:
            raise BadRequest("delta has no operations")
        state = self._graph_state(request.graph, request.scale, request.seed)
        with state.lock:
            for v, _pos in pin_spec.pins:
                if v >= state.dyn.n:
                    raise BadRequest(
                        f"pin vertex {v} out of range for n={state.dyn.n}"
                    )
            if len(delta):
                # Pre-validate everything apply() would reject so the
                # journal-before-apply write below can never record an
                # update that then fails: strict=False apply only raises
                # for these two structural errors.
                hi = delta.max_endpoint()
                if hi >= state.dyn.n:
                    raise BadRequest(
                        f"delta references vertex {hi} but the graph has"
                        f" {state.dyn.n} vertices (the vertex set is fixed)"
                    )
                if delta.is_weighted and not state.dyn.is_weighted:
                    raise BadRequest(
                        "weighted inserts require an edge-weighted base graph"
                    )
            # Journal before mutating anything: an update the WAL did
            # not durably record must not be acknowledged (a crash after
            # the ack would silently roll it back on replay).
            self._journal_update(state, request, delta, pin_spec, unpins)
            pinned = unpinned = 0
            for v, pos in pin_spec.pins:
                if state.pins.get(v) != pos:
                    pinned += 1
                state.pins[v] = pos
            for v in unpins:
                if state.pins.pop(v, None) is not None:
                    unpinned += 1
            if (pinned or unpinned) and not self._wal_replaying:
                self.telemetry.inc("constraints.pin_edits", pinned + unpinned)
            if not len(delta):
                # Pin-only batch: fingerprints move through the merged
                # constraint params, so the epoch stays put and cached
                # layouts for other pin states remain valid.
                return UpdateResponse(
                    graph_name=request.graph,
                    epoch=state.epoch,
                    n=state.dyn.n,
                    m=state.dyn.m,
                    inserted=0,
                    deleted=0,
                    skipped=0,
                    overlay_fraction=state.dyn.overlay_fraction,
                    compacted=False,
                    elapsed=time.perf_counter() - t0,
                    pinned=pinned,
                    unpinned=unpinned,
                )
            applied = state.dyn.apply(delta, strict=False)
            state.epoch += 1
            state.content += 1
            compacted = state.dyn.maybe_compact()
            response = UpdateResponse(
                graph_name=request.graph,
                epoch=state.epoch,
                n=state.dyn.n,
                m=state.dyn.m,
                inserted=len(applied.inserted),
                deleted=len(applied.deleted),
                skipped=applied.skipped,
                overlay_fraction=state.dyn.overlay_fraction,
                compacted=compacted,
                elapsed=time.perf_counter() - t0,
                pinned=pinned,
                unpinned=unpinned,
            )
        self._maybe_wal_snapshot()
        return response

    # -- write-ahead log ---------------------------------------------------
    def _journal_update(
        self,
        state: _GraphState,
        request: UpdateRequest,
        delta: EdgeDelta,
        pin_spec: ConstraintSpec,
        unpins: list[int],
    ) -> None:
        """Journal one validated update batch (called under ``state.lock``).

        During replay the batch *came from* the log; instead of
        re-appending, the state adopts the replaying record's LSN so the
        idempotency skip and future snapshots stay exact.
        """
        if self._wal is None:
            return
        if self._wal_replaying:
            state.wal_lsn = self._wal_replay_lsn
            return
        record: dict[str, Any] = {
            "type": "update" if len(delta) else "pins",
            "graph": request.graph,
            "scale": request.scale,
            "seed": int(request.seed),
        }
        if len(delta):
            record["delta"] = delta.to_json()
        if pin_spec.pins:
            record["pins"] = [
                [int(v), [float(c) for c in pos]] for v, pos in pin_spec.pins
            ]
        if unpins:
            record["unpins"] = [int(v) for v in unpins]
        try:
            state.wal_lsn = self._wal.append(record)
        except OSError as exc:
            # Journal-before-apply: nothing was mutated, so failing the
            # request keeps memory and log agreeing (an acked-but-
            # unjournaled update would silently roll back on replay).
            raise ServiceError(
                f"write-ahead log append failed: {exc}"
            ) from exc

    def _replay_wal(self) -> None:
        """Rebuild every graph's ``(digest, epoch, pins)`` from the WAL."""
        assert self._wal is not None
        replay = self._wal.replay()
        self._wal_replaying = True
        try:
            snap = replay.snapshot or {}
            for entry in (snap.get("graphs") or {}).values():
                try:
                    self._restore_graph(entry)
                except Exception as exc:  # noqa: BLE001 — keep serving
                    logger.warning(
                        "WAL snapshot entry for %r unusable (%s); the graph"
                        " restarts pristine", entry.get("graph"), exc,
                    )
            for record in replay.records:
                try:
                    self._replay_record(record)
                except Exception as exc:  # noqa: BLE001 — keep serving
                    logger.warning(
                        "WAL record %s unusable (%s); skipped",
                        record.get("lsn"), exc,
                    )
        finally:
            self._wal_replaying = False

    def _restore_graph(self, entry: Mapping[str, Any]) -> None:
        name = entry["graph"]
        scale = entry["scale"]
        seed = int(entry["seed"])
        g = self._graph_loader(name, scale, seed)
        state = _GraphState(g)
        if state.digest != entry["digest"]:
            # The generator/collection changed under us; fingerprints
            # keep the recorded lineage digest so epochs stay coherent,
            # but coordinates may differ from the pre-crash serving.
            logger.warning(
                "WAL snapshot digest mismatch for %s/%s seed=%d: base graph"
                " changed since the log was written", name, scale, seed,
            )
            state.digest = entry["digest"]
        if entry.get("inserts") or entry.get("deletes"):
            delta = edge_delta(
                inserts=entry.get("inserts") or (),
                deletes=entry.get("deletes") or (),
            )
            state.dyn.apply(delta, strict=False)
            state.dyn.maybe_compact()
        state.epoch = int(entry["epoch"])
        state.content = int(entry["content"])
        state.pins = {
            int(v): tuple(float(c) for c in pos)
            for v, pos in entry.get("pins") or []
        }
        state.wal_lsn = int(entry.get("lsn", 0))
        with self._graphs_lock:
            self._graphs[(name, scale, seed)] = state

    def _replay_record(self, record: Mapping[str, Any]) -> None:
        rtype = record.get("type")
        lsn = int(record.get("lsn", 0))
        key = (record["graph"], record["scale"], int(record["seed"]))
        if rtype == "register":
            with self._graphs_lock:
                known = key in self._graphs
            if known:
                return  # snapshot (or an earlier record) restored it
            state = self._graph_state(*key)
            if record.get("digest") not in (None, state.digest):
                logger.warning(
                    "WAL register digest mismatch for %s: base graph changed"
                    " since the log was written", key,
                )
                state.digest = record["digest"]
            if state.wal_lsn < lsn:
                state.wal_lsn = lsn
        elif rtype in ("update", "pins"):
            state = self._graph_state(*key)
            if lsn <= state.wal_lsn:
                return  # already reflected in the snapshot
            self._wal_replay_lsn = lsn
            delta_doc = record.get("delta") or {}
            self.update(
                UpdateRequest(
                    graph=key[0],
                    scale=key[1],
                    seed=key[2],
                    inserts=tuple(delta_doc.get("inserts") or ()),
                    deletes=tuple(delta_doc.get("deletes") or ()),
                    pins=record.get("pins") or (),
                    unpins=tuple(record.get("unpins") or ()),
                )
            )
        elif rtype == "publish":
            state = self._graph_state(*key)
            if lsn <= state.wal_lsn:
                return
            with state.lock:
                # The refined layout itself lived in the cache (and may
                # well have survived on the disk tier); the journal only
                # guarantees the epoch sequence so fingerprints line up.
                state.epoch += 1
                state.wal_lsn = lsn
        else:
            logger.warning("unknown WAL record type %r (lsn %d)", rtype, lsn)

    def wal_snapshot(self) -> bool:
        """Checkpoint every graph's state into the WAL and compact.

        Returns ``True`` when a snapshot was written; ``False`` when the
        engine has no WAL, another thread is mid-snapshot, or a graph's
        base could not be reloaded (compacting past an unsnapshottable
        graph would orphan its records, so the whole pass aborts).
        """
        if self._wal is None:
            return False
        if not self._wal_snap_lock.acquire(blocking=False):
            return False
        try:
            with self._graphs_lock:
                items = list(self._graphs.items())
            graphs: dict[str, dict] = {}
            floor: int | None = None
            for (name, scale, seed), state in items:
                with state.lock:
                    current = state.dyn.to_csr()
                    entry = {
                        "graph": name,
                        "scale": scale,
                        "seed": seed,
                        "digest": state.digest,
                        "epoch": state.epoch,
                        "content": state.content,
                        "pins": [
                            [v, list(pos)]
                            for v, pos in sorted(state.pins.items())
                        ],
                        "lsn": state.wal_lsn,
                    }
                try:
                    base = self._graph_loader(name, scale, seed)
                    inserts, deletes = edge_diff(base, current)
                except Exception as exc:  # noqa: BLE001 — abort, don't orphan
                    logger.warning(
                        "WAL snapshot aborted: cannot diff %s/%s seed=%d"
                        " against its base (%s)", name, scale, seed, exc,
                    )
                    return False
                entry["inserts"] = inserts
                entry["deletes"] = deletes
                graphs["\x1f".join((name, scale, str(seed)))] = entry
                floor = (
                    entry["lsn"]
                    if floor is None
                    else min(floor, entry["lsn"])
                )
            self._wal.snapshot(
                {"version": 1, "graphs": graphs},
                floor=floor if floor is not None else self._wal.last_lsn,
            )
            return True
        finally:
            self._wal_snap_lock.release()

    def _maybe_wal_snapshot(self) -> None:
        if (
            self._wal is not None
            and not self._wal_replaying
            and self._wal.appends_since_snapshot >= self._wal_snapshot_every
        ):
            self.wal_snapshot()

    # -- internals ---------------------------------------------------------
    def _graph_state(
        self, name: str, scale: str, seed: int
    ) -> _GraphState:
        """Load-or-get the mutable state of a named graph."""
        key = (name, scale, int(seed))
        with self._graphs_lock:
            state = self._graphs.get(key)
        if state is not None:
            return state
        try:
            g = self._graph_loader(name, scale, int(seed))
        except (KeyError, ValueError, OSError) as exc:
            # str(KeyError) wraps the message in quotes; unwrap args[0].
            detail = exc.args[0] if exc.args else exc
            raise BadRequest(str(detail)) from exc
        state = _GraphState(g)
        with self._graphs_lock:
            # Another thread may have raced the load; keep the first.
            winner = self._graphs.setdefault(key, state)
            if (
                winner is state
                and self._wal is not None
                and not self._wal_replaying
            ):
                # Journaled under the registry lock so the register
                # record precedes any update record for this graph
                # appended by the thread that inserted it.  (A racing
                # loser thread may still slot its update first; replay
                # tolerates that by registering lazily on update.)
                lsn = self._wal.append(
                    {
                        "type": "register",
                        "graph": name,
                        "scale": scale,
                        "seed": int(seed),
                        "digest": state.digest,
                    }
                )
                # Mark the register record as reflected so a graph that
                # never receives updates does not pin the compaction
                # floor at zero (register replay is idempotent anyway).
                if state.wal_lsn < lsn:
                    state.wal_lsn = lsn
        return winner

    def _resolve_graph(
        self, request: LayoutRequest
    ) -> tuple[CSRGraph, str, str, int]:
        """Return ``(graph, digest, display_name, epoch)`` for a request."""
        g, digest, name, epoch, _ = self.resolve_versioned(request)
        return g, digest, name, epoch

    def resolve_versioned(
        self, request: LayoutRequest
    ) -> tuple[CSRGraph, str, str, int, int]:
        """Return ``(graph, digest, display_name, epoch, content)``.

        ``content`` is the graph's content version (update batches
        applied); progressive refinement chains capture it at first
        paint and re-check it before publishing, so a refinement of a
        graph that has since been edited is discarded instead of
        published.
        """
        if isinstance(request.graph, CSRGraph):
            g = request.graph
            return g, graph_digest(g), g.name or "<in-memory>", 0, 0
        state = self._graph_state(request.graph, request.scale, request.seed)
        with state.lock:
            g = state.dyn.to_csr()
            epoch = state.epoch
            content = state.content
        return g, state.digest, g.name or request.graph, epoch, content

    def publish_layout(
        self,
        graph: str,
        scale: str,
        seed: int,
        algorithm: str,
        kwargs: Mapping[str, Any],
        result: LayoutResult,
        *,
        expect_content: int | None = None,
    ) -> str | None:
        """Publish an asynchronously refined layout for a named graph.

        Bumps the graph's epoch — every fingerprint derived from the old
        epoch now misses, memory and disk tier alike — and caches
        ``result`` under the new epoch's fingerprint, so the next
        ``GET /layout`` poll picks up the refinement.  This is the same
        invalidation path ``POST /update`` uses; refinements and edits
        share one coherent namespace.

        When ``expect_content`` is given and the graph's content version
        has moved (an update landed after the refinement started), the
        stale refinement is discarded and ``None`` is returned.
        Otherwise returns the new fingerprint.
        """
        state = self._graph_state(graph, scale, seed)
        with state.lock:
            if expect_content is not None and state.content != expect_content:
                return None
            if self._wal is not None and not self._wal_replaying:
                state.wal_lsn = self._wal.append(
                    {
                        "type": "publish",
                        "graph": graph,
                        "scale": scale,
                        "seed": int(seed),
                    }
                )
            state.epoch += 1
            fingerprint = layout_fingerprint(
                state.digest, algorithm, kwargs, epoch=state.epoch
            )
        # Cache outside the state lock: a disk-tier put does I/O, and a
        # poll racing the bump->put gap is served by the progressive
        # engine's in-memory best-result record, never a stale entry
        # (the old epoch's fingerprint is already unreachable).
        self.cache.put(fingerprint, result)
        self.telemetry.inc("lod.published")
        return fingerprint

    def _state_pins(
        self, request: LayoutRequest
    ) -> dict[int, tuple[float, ...]] | None:
        """Snapshot of the server-side pin state for a named-graph request."""
        if isinstance(request.graph, CSRGraph):
            return None
        key = (request.graph, request.scale, int(request.seed))
        with self._graphs_lock:
            state = self._graphs.get(key)
        if state is None:
            return None
        with state.lock:
            return dict(state.pins) if state.pins else None

    def _validate(
        self,
        request: LayoutRequest,
        g: CSRGraph,
        state_pins: Mapping[int, tuple[float, ...]] | None = None,
    ) -> dict[str, Any]:
        if request.algorithm not in self._algorithms:
            raise BadRequest(
                f"unknown algorithm {request.algorithm!r}; available:"
                f" {', '.join(sorted(self._algorithms))}"
            )
        try:
            s = int(request.s)
        except (TypeError, ValueError):
            raise BadRequest(f"s must be an integer, got {request.s!r}")
        if not 1 <= s <= max(1, g.n):
            raise BadRequest(f"s must be in [1, {g.n}] for this graph, got {s}")
        extra = dict(request.params or {})
        unknown = set(extra) - _ALLOWED_PARAMS
        if unknown:
            raise BadRequest(
                f"unsupported params {sorted(unknown)}; allowed:"
                f" {sorted(_ALLOWED_PARAMS)}"
            )
        # Canonicalize kernel selection: a `kernels` mapping and flat
        # legacy keys both resolve through KernelConfig, then re-emit as
        # minimal flat keys.  This makes every spelling of the same
        # configuration fingerprint identically, keeps knob-free requests
        # on their pre-KernelConfig fingerprints, and surfaces
        # legacy-vs-kernels conflicts as 400s instead of cache poison.
        kernels = extra.pop("kernels", None)
        legacy = {k: extra.pop(k) for k in _KERNEL_PARAMS if k in extra}
        r = legacy.get("rounds")
        if isinstance(r, float) and r.is_integer():
            legacy["rounds"] = int(r)  # JSON numbers may arrive as floats
        try:
            cfg = KernelConfig.resolve(kernels, **legacy)
        except (TypeError, ValueError) as exc:
            raise BadRequest(str(exc)) from exc
        kparams = cfg.to_params()
        if "traversal" in kparams:
            self.telemetry.inc(f"kernels.traversal.{cfg.traversal}")
        if cfg.rounds or "subspace" in kparams:
            self.telemetry.inc(f"kernels.subspace.{cfg.subspace}")
        extra.update(kparams)
        # Canonicalize constraints the same way: a `constraints` mapping
        # and flat pins/masses/region keys resolve through ConstraintSpec
        # (contradictions → 400), server-side pin state merges in (request
        # pins win per-vertex), and the spec re-emits as one minimal
        # nested-list form so every spelling fingerprints identically.
        constraints = extra.pop("constraints", None)
        legacy_cons = {k: extra.pop(k) for k in _CONSTRAINT_PARAMS if k in extra}
        try:
            spec = ConstraintSpec.resolve(constraints, **legacy_cons)
            if state_pins:
                spec = spec.with_base_pins(state_pins)
            spec.validate_for(g.n, int(extra.get("dims", 2)))
        except (TypeError, ValueError) as exc:
            raise BadRequest(str(exc)) from exc
        if not spec.is_trivial:
            extra["constraints"] = spec.to_params()
            self.telemetry.inc("constraints.requests")
        return {"s": s, "seed": int(request.seed), **extra}

    @staticmethod
    def _accepts_validate(algo: Callable[..., LayoutResult]) -> bool:
        try:
            return "validate" in inspect.signature(algo).parameters
        except (TypeError, ValueError):  # builtins / C callables
            return False

    @staticmethod
    def _accepts_warm(algo: Callable[..., LayoutResult]) -> bool:
        try:
            return "warm_base" in inspect.signature(algo).parameters
        except (TypeError, ValueError):
            return False

    @staticmethod
    def _warm_key(
        digest: str, content: int, algorithm: str, kwargs: Mapping[str, Any]
    ) -> str:
        """Identity of a reusable warm basis for this request.

        Everything that shapes the basis participates: graph content,
        algorithm, every non-constraint param, and the mass facet of the
        constraints (masses change the inner product; pins and region act
        on an existing basis, so any pin/drag shares the key).
        """
        base = {k: v for k, v in kwargs.items() if k != "constraints"}
        cons = kwargs.get("constraints") or {}
        if "masses" in cons:
            base["_masses"] = cons["masses"]
        return "\x1f".join(
            (digest, str(content), algorithm, canonical_params(base))
        )

    def _compute(
        self,
        algo_key: str,
        g: CSRGraph,
        kwargs: dict,
        enqueued: float,
        deadline_at: float | None = None,
        warm_key: str | None = None,
        warm: dict | None = None,
    ):
        self.telemetry.observe("queue_wait_seconds", time.perf_counter() - enqueued)
        t0 = time.perf_counter()
        algo = self._algorithms[algo_key]
        kwargs = dict(kwargs)
        s = kwargs.pop("s")
        if self.validation.enabled and self._accepts_validate(algo):
            kwargs["validate"] = self.validation
        if warm is not None:
            kwargs["warm_base"] = dict(warm)
        try:
            if self.resilience is not None:
                result = self._compute_resilient(
                    algo, g, s, kwargs, deadline_at
                )
            else:
                result = algo(g, s, **kwargs)
        except InvariantViolation as exc:
            self.telemetry.inc("validation_failures")
            raise ValidationFailed(
                f"layout failed invariant check: {exc}"
            ) from exc
        except TypeError as exc:
            # Parameter accepted by one algorithm but not this one.
            raise BadRequest(str(exc)) from exc
        self.telemetry.observe("compute_seconds", time.perf_counter() - t0)
        if warm_key is not None and getattr(result, "warm", None) is not None:
            with self._warm_lock:
                self._warm_store[warm_key] = result.warm
                self._warm_store.move_to_end(warm_key)
                while len(self._warm_store) > self._warm_capacity:
                    self._warm_store.popitem(last=False)
        return result

    def _compute_resilient(
        self,
        algo: Callable[..., LayoutResult],
        g: CSRGraph,
        s: int,
        kwargs: dict,
        deadline_at: float | None,
    ) -> LayoutResult:
        """Run the degradation ladder under the request's time budget."""
        cfg = self.resilience
        assert cfg is not None
        seed = int(kwargs.pop("seed", 0))
        dims = int(kwargs.pop("dims", 2))
        deadline = None
        if deadline_at is not None:
            # What's left of the request deadline, minus response slack.
            remaining = deadline_at - time.perf_counter()
            deadline = Deadline(
                max(0.05, remaining * cfg.deadline_fraction)
            )
        return resilient_layout(
            g,
            s,
            algorithm=algo,
            dims=dims,
            seed=seed,
            deadline=deadline,
            retry=cfg.retry,
            telemetry=self.telemetry,
            **kwargs,
        )

    def _serve(self, request: LayoutRequest, t0: float) -> LayoutResponse:
        g, digest, name, epoch, content = self.resolve_versioned(request)
        kwargs = self._validate(request, g, self._state_pins(request))
        fingerprint = layout_fingerprint(
            digest, request.algorithm, kwargs, epoch=epoch
        )

        def respond(result: LayoutResult, status: str) -> LayoutResponse:
            return LayoutResponse(
                fingerprint=fingerprint,
                status=status,
                result=result,
                graph_name=name,
                n=g.n,
                m=g.m,
                elapsed=time.perf_counter() - t0,
            )

        cached = self.cache.get(fingerprint)
        if (
            cached is not None
            and is_lod_tier(cached[0].quality_tier)
            and request.lod in (None, "off")
        ):
            # A progressive wrapper published a coarse-tier refinement at
            # this fingerprint; a caller that did not ask for LOD must
            # get the full-tier layout, so recompute (the full result
            # overwrites the coarse entry at the same fingerprint).
            self.telemetry.inc("lod.tier_misses")
            cached = None
        if cached is not None:
            result, tier = cached
            if self.validation.enabled:
                check = check_cache_consistency(
                    result, g, request.algorithm, kwargs
                )
                if not check.ok:
                    self.telemetry.inc("validation_failures")
                try:
                    self.validation.handle(check)
                except InvariantViolation as exc:
                    # Don't serve a provably-wrong entry; fall through to
                    # recompute would mask the fingerprint bug, so fail.
                    raise ValidationFailed(
                        f"cache hit failed consistency check: {exc}"
                    ) from exc
            self.telemetry.inc("cache_hits")
            return respond(result, f"{tier}-hit")
        self.telemetry.inc("cache_misses")

        timeout = request.timeout if request.timeout is not None else self.timeout

        # Circuit breaker: a (graph, algorithm) key that keeps failing is
        # served a baseline inline (or refused) without burning a worker.
        breaker_key = None
        if self._breakers is not None:
            breaker_key = f"{digest[:16]}@{epoch}:{request.algorithm}"
            if not self._breakers.allow(breaker_key):
                self.telemetry.inc("breaker.short_circuits")
                if self.resilience is not None and self.resilience.degrade_on_open:
                    self.telemetry.inc("resilience.degraded.baseline")
                    result = baseline_layout(
                        g, dims=int(kwargs.get("dims", 2)), seed=kwargs["seed"]
                    )
                    result.params["degraded_reason"] = "circuit_open"
                    return respond(result, "degraded")
                raise Overloaded(
                    f"circuit breaker open for {request.algorithm!r} on this"
                    " graph; retry later"
                )

        # Warm-base restart: a constrained request may reuse the basis a
        # prior layout of the same graph content deposited (drags hit it).
        # Skipped under resilience — the ladder's reduced rungs do not
        # accept warm bases.
        warm_key = warm = None
        if "constraints" in kwargs and self.resilience is None:
            algo = self._algorithms[request.algorithm]
            if self._accepts_warm(algo):
                warm_key = self._warm_key(
                    digest, content, request.algorithm, kwargs
                )
                with self._warm_lock:
                    warm = self._warm_store.get(warm_key)
                    if warm is not None:
                        self._warm_store.move_to_end(warm_key)
                self.telemetry.inc(
                    "constraints.warm_hits"
                    if warm is not None
                    else "constraints.warm_misses"
                )

        # Single-flight: first thread in becomes the leader.
        with self._flights_lock:
            flight = self._flights.get(fingerprint)
            leader = flight is None
            if leader:
                flight = self._flights[fingerprint] = _Flight()
        assert flight is not None

        if leader:
            try:
                deadline_at = (
                    t0 + timeout if self.resilience is not None else None
                )
                future = self._pool.submit(
                    self._compute,
                    request.algorithm,
                    g,
                    kwargs,
                    time.perf_counter(),
                    deadline_at,
                    warm_key,
                    warm,
                )
            except PoolSaturated as exc:
                with self._flights_lock:
                    self._flights.pop(fingerprint, None)
                flight.error = Overloaded(str(exc))
                flight.event.set()
                self.telemetry.inc("rejected")
                raise Overloaded(
                    f"engine overloaded ({self._pool.outstanding} computations"
                    f" outstanding, queue limit {self._pool.queue_limit});"
                    " retry later"
                ) from exc
            future.add_done_callback(
                lambda fut: self._finish_flight(
                    fingerprint, flight, fut, breaker_key
                )
            )
        else:
            self.telemetry.inc("coalesced")

        remaining = timeout - (time.perf_counter() - t0)
        if remaining <= 0 or not flight.event.wait(remaining):
            self.telemetry.inc("timeouts")
            raise RequestTimeout(
                f"layout not ready within {timeout:.3f}s"
                " (computation continues; an identical retry may hit the cache)"
            )
        if flight.error is not None:
            err = flight.error
            if isinstance(err, ServiceError):
                raise err
            raise ServiceError(f"layout computation failed: {err}") from err
        assert flight.result is not None
        return respond(flight.result, "computed" if leader else "coalesced")

    def _finish_flight(
        self,
        fingerprint: str,
        flight: _Flight,
        future,
        breaker_key: str | None = None,
    ) -> None:
        try:
            result = future.result()
        except BaseException as exc:  # noqa: BLE001 — reported to waiters
            self.telemetry.inc("compute_errors")
            flight.error = exc
            if breaker_key is not None and self._breakers is not None:
                self._breakers.record(breaker_key, False)
        else:
            flight.result = result
            tier = result.quality_tier
            if breaker_key is not None and self._breakers is not None:
                # A degraded answer means the full pipeline did not work
                # for this key: count it against the breaker so repeat
                # offenders get short-circuited instead of re-walked.
                self._breakers.record(breaker_key, tier == "full")
            retried = (result.params.get("resilience") or {}).get("retries", 0)
            if tier == "full" and not retried:
                # Degraded results must never poison the fingerprint
                # cache, and a retried "full" result carries an adapted
                # seed/subspace in its params echo that would fail the
                # cache-consistency check on a later hit.
                self.cache.put(fingerprint, result)
            else:
                self.telemetry.inc("uncached_degraded")
        finally:
            with self._flights_lock:
                self._flights.pop(fingerprint, None)
            flight.event.set()
