"""Stdlib JSON endpoint in front of a :class:`LayoutEngine`.

No framework, no new dependencies: ``http.server.ThreadingHTTPServer``
gives one handler thread per connection, and the engine underneath
provides the real concurrency discipline (worker pool + admission
control).  Routes:

``POST /layout``
    Body ``{"graph": "barth", "scale": "tiny", "algorithm": "parhde",
    "s": 8, "seed": 0, "params": {...}, "lod": "auto",
    "include_coords": true}``.  Only ``graph`` is required.  Answers
    with serving metadata (fingerprint, cache status, quality tier,
    elapsed seconds) and, unless ``include_coords`` is false, the
    ``n x d`` coordinate list.  ``lod`` selects progressive serving
    (engines wrapped in :class:`repro.lod.ProgressiveEngine`):
    ``"off"``, ``"auto"`` (coarsest-first) or a first-paint budget in
    milliseconds; see docs/lod.md.
``GET /layout``
    Same request via query string (``?graph=barth&scale=tiny&lod=auto``,
    plus ``seed``/``algorithm``/``s``/``timeout``/``include_coords``) —
    the polling form: a client that got a coarse ``quality_tier``
    re-issues the GET until the tier reaches ``"full"``.
``POST /update``
    Body ``{"graph": "barth", "scale": "tiny", "seed": 0,
    "inserts": [[u, v], [u, v, w], ...], "deletes": [[u, v], ...]}``.
    Applies an edge delta to the named graph and bumps its epoch, so
    every cached layout of the pre-update graph misses from then on.
    Answers with the new epoch and the effective edit counts.
``GET /healthz``
    Liveness probe; ``{"status": "ok", "workers": 1}`` while serving,
    ``{"status": "draining", "workers": 1}`` once graceful shutdown
    began (load balancers should stop routing here).  ``workers`` is the
    number of healthy serving processes — always 1 in this in-process
    mode, the live worker count behind a :mod:`repro.cluster` router —
    so probes parse one schema in both modes.
``GET /stats``
    Telemetry + cache + pool snapshot as JSON, or as an aligned
    plain-text page with ``?format=text``.

Errors come back as ``{"error": <code>, "message": <detail>}`` with the
status mapped from the :class:`~repro.service.engine.ServiceError`
hierarchy (400 bad request, 503 overloaded, 504 timeout).  Internal
failures (unexpected exceptions and bare ``ServiceError`` wrappers
around compute crashes) never echo exception text to the client: the
body carries only a generated error id, and the detail goes to the
``repro.service.http`` logger server-side.
"""

from __future__ import annotations

import json
import logging
import math
import threading
import uuid
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from .engine import (
    BadRequest,
    LayoutEngine,
    LayoutRequest,
    ServiceError,
    UpdateRequest,
)

__all__ = [
    "LayoutServer",
    "layout_doc_from_query",
    "layout_payload",
    "make_server",
    "parse_layout_doc",
    "parse_lod_value",
    "parse_update_doc",
    "update_payload",
]

_MAX_BODY = 8 * 1024 * 1024

logger = logging.getLogger("repro.service.http")


def parse_layout_doc(doc: dict) -> tuple[LayoutRequest, bool]:
    """Build a :class:`LayoutRequest` from a ``POST /layout`` body.

    Shared by the HTTP handler and the cluster worker protocol
    (:mod:`repro.cluster.worker`), so both speak exactly the same
    request dialect.  Returns ``(request, include_coords)``.
    """
    graph = doc.get("graph")
    if not isinstance(graph, str) or not graph:
        raise BadRequest("'graph' (collection name) is required")
    params = doc.get("params") or {}
    if not isinstance(params, dict):
        raise BadRequest("'params' must be an object")
    try:
        request = LayoutRequest(
            graph=graph,
            scale=str(doc.get("scale", "small")),
            seed=int(doc.get("seed", 0)),
            algorithm=str(doc.get("algorithm", "parhde")),
            s=doc.get("s", 10),
            params=params,
            timeout=(
                float(doc["timeout"]) if doc.get("timeout") is not None
                else None
            ),
            lod=parse_lod_value(doc.get("lod")),
        )
    except (TypeError, ValueError) as exc:
        raise BadRequest(f"bad request field: {exc}") from exc
    return request, bool(doc.get("include_coords", True))


def parse_lod_value(value) -> str | float | None:
    """Normalize a request's ``lod`` field.

    Accepts ``None`` (engine default), booleans (``true`` = ``"auto"``),
    the strings ``"off"``/``"auto"``, or a number / numeric string — a
    first-paint budget in milliseconds, which must be finite and > 0.
    """
    if value is None:
        return None
    if value is True:
        return "auto"
    if value is False:
        return "off"
    if isinstance(value, str):
        if value in ("off", "auto"):
            return value
        try:
            value = float(value)
        except ValueError:
            raise BadRequest(
                "'lod' must be 'off', 'auto' or a budget in milliseconds,"
                f" got {value!r}"
            ) from None
    if isinstance(value, (int, float)):
        budget = float(value)
        if not math.isfinite(budget) or budget <= 0:
            raise BadRequest(
                f"'lod' budget must be finite and > 0 ms, got {budget!r}"
            )
        return budget
    raise BadRequest(
        f"'lod' must be 'off', 'auto' or a budget in milliseconds,"
        f" got {value!r}"
    )


def layout_doc_from_query(query: str) -> dict:
    """Translate ``GET /layout`` query params into the POST body dialect.

    Scalar fields only (no nested ``params`` object — pass-through
    algorithm parameters need the POST form); unknown keys are rejected
    so typos fail loudly instead of silently using defaults.
    """
    known = {
        "graph", "scale", "seed", "algorithm", "s", "timeout", "lod",
        "include_coords",
    }
    doc: dict = {}
    for key, values in parse_qs(query, keep_blank_values=True).items():
        if key not in known:
            raise BadRequest(
                f"unknown query parameter {key!r}; allowed: {sorted(known)}"
            )
        doc[key] = values[-1]
    if "include_coords" in doc:
        doc["include_coords"] = doc["include_coords"].lower() not in (
            "0", "false", "no", "",
        )
    for key in ("seed", "s"):
        if key in doc:
            try:
                doc[key] = int(doc[key])
            except ValueError:
                raise BadRequest(
                    f"query parameter {key!r} must be an integer,"
                    f" got {doc[key]!r}"
                ) from None
    return doc


def parse_update_doc(doc: dict) -> UpdateRequest:
    """Build an :class:`UpdateRequest` from a ``POST /update`` body.

    Besides edge edits, the body may carry pin-state edits: ``pins`` is
    a ``{vertex: [x, y]}`` mapping (or ``[vertex, [x, y]]`` pair list)
    and ``unpins`` a list of vertex ids — a drag is just another delta.
    """
    graph = doc.get("graph")
    if not isinstance(graph, str) or not graph:
        raise BadRequest("'graph' (collection name) is required")
    for key in ("inserts", "deletes"):
        if key in doc and not isinstance(doc[key], list):
            raise BadRequest(f"'{key}' must be a list of [u, v] pairs")
    pins = doc.get("pins")
    if pins is not None and not isinstance(pins, (dict, list)):
        raise BadRequest(
            "'pins' must be a {vertex: coords} object or a list of"
            " [vertex, coords] pairs"
        )
    unpins = doc.get("unpins")
    if unpins is not None and not isinstance(unpins, list):
        raise BadRequest("'unpins' must be a list of vertex ids")
    try:
        return UpdateRequest(
            graph=graph,
            scale=str(doc.get("scale", "small")),
            seed=int(doc.get("seed", 0)),
            inserts=tuple(doc.get("inserts") or ()),
            deletes=tuple(doc.get("deletes") or ()),
            pins=pins if pins is not None else (),
            unpins=tuple(unpins or ()),
        )
    except (TypeError, ValueError) as exc:
        raise BadRequest(f"bad update field: {exc}") from exc


def layout_payload(response, include_coords: bool) -> dict:
    """JSON-safe body for a served layout (HTTP and cluster protocol)."""
    payload = {
        "fingerprint": response.fingerprint,
        "status": response.status,
        "cache_hit": response.cache_hit,
        "graph": response.graph_name,
        "n": response.n,
        "m": response.m,
        "algorithm": response.result.algorithm,
        "quality_tier": response.quality_tier,
        "elapsed_seconds": response.elapsed,
    }
    if include_coords:
        payload["coords"] = [
            [float(x) for x in row] for row in response.result.coords
        ]
    return payload


def update_payload(response) -> dict:
    """JSON-safe body for an applied graph update."""
    return {
        "graph": response.graph_name,
        "epoch": response.epoch,
        "n": response.n,
        "m": response.m,
        "inserted": response.inserted,
        "deleted": response.deleted,
        "skipped": response.skipped,
        "overlay_fraction": response.overlay_fraction,
        "compacted": response.compacted,
        "elapsed_seconds": response.elapsed,
        "pinned": response.pinned,
        "unpinned": response.unpinned,
    }


class _Handler(BaseHTTPRequestHandler):
    server_version = "parhde-serve/1"
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------
    @property
    def engine(self) -> LayoutEngine:
        return self.server.engine  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.verbose:  # type: ignore[attr-defined]
            super().log_message(format, *args)

    def _send(self, status: int, payload, *, text: bool = False) -> None:
        body = (
            payload.encode() if text else json.dumps(payload).encode()
        )
        self.send_response(status)
        self.send_header(
            "Content-Type",
            "text/plain; charset=utf-8" if text else "application/json",
        )
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error(self, exc: ServiceError) -> None:
        if type(exc) is ServiceError:
            # A bare ServiceError is the engine's wrapper around an
            # arbitrary compute crash — its message may carry exception
            # text, so treat it like any other internal failure.
            self._send_internal(exc)
            return
        self._send(
            exc.http_status, {"error": exc.code, "message": str(exc)}
        )

    def _send_internal(self, exc: BaseException) -> None:
        """Last-resort 500: log the traceback, return only an error id.

        Raw exception text can leak file paths, graph names or request
        internals; the client gets an opaque id to quote, and the
        operator greps the server log for it.
        """
        error_id = uuid.uuid4().hex[:12]
        logger.exception(
            "internal error %s handling %s %s: %s",
            error_id, self.command, self.path, exc,
        )
        # Operator dashboards watch the *rate* of these; the log line
        # alone is invisible to a metrics scrape.
        self.engine.telemetry.inc("http.internal_errors")
        self._send(
            500,
            {
                "error": "internal",
                "message": f"internal server error (id {error_id})",
                "error_id": error_id,
            },
        )

    # -- routes ------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 — http.server API
        url = urlparse(self.path)
        if url.path == "/healthz":
            # One schema in both serving modes: "workers" counts healthy
            # serving processes (1 here; the live worker count behind a
            # repro.cluster router), so probes need no mode switch.
            if getattr(self.server, "draining", False):
                self._send(503, {"status": "draining", "workers": 1})
            else:
                self._send(200, {"status": "ok", "workers": 1})
        elif url.path == "/stats":
            fmt = parse_qs(url.query).get("format", ["json"])[0]
            stats = self.engine.stats()
            if fmt == "text":
                extra = {
                    "cache": stats["cache"],
                    "pool": stats["pool"],
                }
                self._send(
                    200,
                    self.engine.telemetry.render_text(extra) + "\n",
                    text=True,
                )
            else:
                self._send(200, stats)
        elif url.path == "/layout":
            if getattr(self.server, "draining", False):
                self._send(
                    503,
                    {
                        "error": "overloaded",
                        "message": "server is draining; retry against"
                        " another instance",
                    },
                )
                return
            try:
                request, include_coords = parse_layout_doc(
                    layout_doc_from_query(url.query)
                )
                response = self.engine.submit(request)
            except ServiceError as exc:
                self._send_error(exc)
                return
            except Exception as exc:  # noqa: BLE001 — last-resort 500
                self._send_internal(exc)
                return
            self._send(200, layout_payload(response, include_coords))
        else:
            self._send(
                404, {"error": "not_found", "message": f"no route {url.path}"}
            )

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        url = urlparse(self.path)
        if getattr(self.server, "draining", False):
            self._send(
                503,
                {
                    "error": "overloaded",
                    "message": "server is draining; retry against another"
                    " instance",
                },
            )
            return
        if url.path == "/update":
            self._post_update()
            return
        if url.path != "/layout":
            self._send(
                404, {"error": "not_found", "message": f"no route {url.path}"}
            )
            return
        try:
            body = self._read_request()
            response = self.engine.submit(body[0])
        except ServiceError as exc:
            self._send_error(exc)
            return
        except Exception as exc:  # noqa: BLE001 — last-resort 500
            self._send_internal(exc)
            return
        self._send(200, layout_payload(response, body[1]))

    def _post_update(self) -> None:
        try:
            request = parse_update_doc(self._read_body())
            response = self.engine.update(request)
        except ServiceError as exc:
            self._send_error(exc)
            return
        except (TypeError, ValueError) as exc:
            self._send(400, {"error": "bad_request", "message": str(exc)})
            return
        except Exception as exc:  # noqa: BLE001 — last-resort 500
            self._send_internal(exc)
            return
        self._send(200, update_payload(response))

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise BadRequest("missing request body")
        if length > _MAX_BODY:
            raise BadRequest(f"request body exceeds {_MAX_BODY} bytes")
        try:
            doc = json.loads(self.rfile.read(length))
        except json.JSONDecodeError as exc:
            raise BadRequest(f"invalid JSON body: {exc}") from exc
        if not isinstance(doc, dict):
            raise BadRequest("request body must be a JSON object")
        return doc

    def _read_request(self) -> tuple[LayoutRequest, bool]:
        return parse_layout_doc(self._read_body())


class LayoutServer:
    """A :class:`ThreadingHTTPServer` bound to an engine.

    ``start()`` runs the accept loop in a daemon thread (tests, smoke
    scripts); ``serve_forever()`` blocks (the CLI).  Construct with
    ``port=0`` to bind an ephemeral port and read it back from
    :attr:`address`.
    """

    def __init__(
        self,
        engine: LayoutEngine,
        host: str = "127.0.0.1",
        port: int = 8080,
        *,
        verbose: bool = False,
    ):
        self.engine = engine
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.engine = engine  # type: ignore[attr-defined]
        self._httpd.verbose = verbose  # type: ignore[attr-defined]
        self._httpd.draining = False  # type: ignore[attr-defined]
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        """Actual ``(host, port)`` after binding."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "LayoutServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="parhde-serve", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self._httpd.serve_forever()

    @property
    def draining(self) -> bool:
        return bool(getattr(self._httpd, "draining", False))

    def drain(self, timeout: float = 10.0) -> bool:
        """Graceful shutdown, phase one: refuse new work, finish old.

        New ``POST`` requests get an immediate 503 and ``/healthz``
        flips to ``draining`` (handled connections keep being accepted
        so those answers can be sent); the engine then waits up to
        ``timeout`` seconds for in-flight computations.  Returns the
        engine's verdict (``True`` = drained clean).  Call
        :meth:`shutdown` afterwards to stop the accept loop.
        """
        self._httpd.draining = True  # type: ignore[attr-defined]
        return self.engine.drain(timeout)

    def shutdown(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "LayoutServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()


def make_server(
    engine: LayoutEngine,
    host: str = "127.0.0.1",
    port: int = 8080,
    *,
    verbose: bool = False,
) -> LayoutServer:
    """Bind (but do not start) a :class:`LayoutServer`."""
    return LayoutServer(engine, host, port, verbose=verbose)
