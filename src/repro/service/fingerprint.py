"""Content-addressed identity for layout requests.

A layout is a pure function of the graph structure and the algorithm
parameters, so a request can be identified by a digest over both.  Two
requests with the same fingerprint are *the same request* — the cache
and the engine's single-flight dedup both key on it.

The digest is deliberately computed from the canonical CSR arrays, not
from the input edge list: :func:`repro.graph.build.from_edges` sorts
adjacency lists and deduplicates edges, so any construction order of the
same graph produces byte-identical ``indptr``/``indices`` and therefore
the same digest.  Graph names and other labels are excluded — they do
not affect coordinates.

``FINGERPRINT_VERSION`` is folded into every digest; bump it whenever
the layout algorithms change in a coordinate-visible way so stale disk
caches miss instead of serving wrong answers.

Dynamic graphs additionally fold a *graph epoch* into the fingerprint
(v2): the engine bumps the epoch on every ``POST /update``, so layouts
cached for an earlier version of a graph can never be served for the
edited one — including from the disk tier, whose filenames are the
fingerprints themselves.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Mapping

import numpy as np

from ..graph.csr import CSRGraph

__all__ = [
    "FINGERPRINT_VERSION",
    "canonical_params",
    "graph_digest",
    "layout_fingerprint",
]

#: Format version folded into every digest (graph and request alike).
#: v2 added the graph-epoch component for dynamic graphs.
FINGERPRINT_VERSION = 2


def _json_safe(value: Any) -> Any:
    """Coerce numpy scalars/arrays so params hash independently of dtype."""
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, Mapping):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return value


def canonical_params(params: Mapping[str, Any]) -> str:
    """Deterministic JSON encoding of a parameter mapping.

    Keys are sorted, numpy scalars are normalized to Python numbers
    (``np.int64(10)`` and ``10`` are the same parameter), and the
    encoding is whitespace-free — equal mappings always produce equal
    strings.
    """
    return json.dumps(
        _json_safe(dict(params)),
        sort_keys=True,
        separators=(",", ":"),
        default=str,
    )


def graph_digest(g: CSRGraph) -> str:
    """Stable content digest of a graph's structure (hex sha256).

    Covers ``indptr``, ``indices`` and ``weights`` after normalizing to
    fixed dtypes, so equal graphs digest equally regardless of the dtype
    the builder happened to use.  The graph's ``name`` is ignored.
    """
    h = hashlib.sha256()
    h.update(f"repro-graph-v{FINGERPRINT_VERSION}".encode())
    h.update(np.ascontiguousarray(g.indptr, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(g.indices, dtype=np.int64).tobytes())
    if g.weights is None:
        h.update(b"|unweighted")
    else:
        h.update(b"|weights")
        h.update(np.ascontiguousarray(g.weights, dtype=np.float64).tobytes())
    return h.hexdigest()


def layout_fingerprint(
    graph: CSRGraph | str,
    algorithm: str,
    params: Mapping[str, Any] | None = None,
    *,
    epoch: int = 0,
) -> str:
    """Fingerprint of one layout request (hex sha256).

    Parameters
    ----------
    graph:
        The graph itself, or a precomputed :func:`graph_digest` (the
        engine caches digests so repeated requests do not rehash large
        arrays).
    algorithm:
        Algorithm name (``"parhde"``, ``"phde"``, ``"pivotmds"``).
    params:
        Algorithm parameters; ``None`` means ``{}``.
    epoch:
        Graph epoch — the number of update batches applied to the graph
        since it was registered (0 for static graphs).  Folded into the
        digest so every update invalidates all cached layouts of the
        pre-update graph, memory and disk tier alike.
    """
    gd = graph if isinstance(graph, str) else graph_digest(graph)
    payload = "\x1f".join(
        (
            f"repro-layout-v{FINGERPRINT_VERSION}",
            gd,
            f"epoch={int(epoch)}",
            algorithm,
            canonical_params(params or {}),
        )
    )
    return hashlib.sha256(payload.encode()).hexdigest()
