"""Production layout-serving subsystem.

The library computes layouts; this package *serves* them.  It turns the
paper's single-run speed into sustained throughput the way a production
deployment would:

* :mod:`~repro.service.fingerprint` — content-addressed request identity
  (stable digest over the CSR arrays + algorithm parameters), so two
  requests for the same graph and parameters are the same request;
* :mod:`~repro.service.cache` — a thread-safe two-tier layout cache
  (in-memory LRU with a byte budget, optional on-disk tier reusing the
  ``core.serialize`` archive format);
* :mod:`~repro.service.engine` — the :class:`LayoutEngine`: single-flight
  deduplication of concurrent identical requests, a bounded worker pool,
  and admission control (queue-depth limit + per-request timeout) that
  degrades to structured ``Overloaded``/``RequestTimeout`` errors instead
  of unbounded pile-up;
* :mod:`~repro.service.telemetry` — counters and latency histograms
  exportable as a dict or a plain-text stats page;
* :mod:`~repro.service.http` — a dependency-free JSON endpoint
  (``POST /layout``, ``POST /update``, ``GET /healthz``, ``GET /stats``)
  on the stdlib ``http.server``, wired to the CLI as ``parhde serve``.

Resilience (see :mod:`repro.resilience` and ``docs/resilience.md``):
the engine can run its computations through a deadline-aware
degradation ladder with retries and per-(graph, algorithm) circuit
breakers (``LayoutEngine(resilience=...)``); the disk cache tier is
crash-safe (atomic checksummed writes, quarantine of corrupt entries);
and ``LayoutServer.drain()`` implements graceful shutdown (503 for new
work, bounded wait for in-flight work).

Named graphs are *dynamic*: ``POST /update`` applies an
:class:`~repro.stream.EdgeDelta` through the engine and bumps the graph
epoch, which is folded into every fingerprint — cached layouts of the
pre-update graph miss from then on (memory and disk tier alike).
"""

from .cache import LayoutCache, layout_nbytes
from .engine import (
    BadRequest,
    LayoutEngine,
    LayoutRequest,
    LayoutResponse,
    Overloaded,
    RequestTimeout,
    ResilienceConfig,
    ServiceError,
    UpdateRequest,
    UpdateResponse,
    ValidationFailed,
)
from .fingerprint import (
    FINGERPRINT_VERSION,
    canonical_params,
    graph_digest,
    layout_fingerprint,
)
from .http import LayoutServer, make_server
from .telemetry import Counter, Gauge, Histogram, Telemetry

__all__ = [
    "FINGERPRINT_VERSION",
    "BadRequest",
    "Counter",
    "Gauge",
    "Histogram",
    "LayoutCache",
    "LayoutEngine",
    "LayoutRequest",
    "LayoutResponse",
    "LayoutServer",
    "Overloaded",
    "RequestTimeout",
    "ResilienceConfig",
    "ServiceError",
    "Telemetry",
    "UpdateRequest",
    "UpdateResponse",
    "ValidationFailed",
    "canonical_params",
    "graph_digest",
    "layout_fingerprint",
    "layout_nbytes",
    "make_server",
]
