"""repro.wal — durable write-ahead logging for served graph state.

Layers:

- :mod:`repro.wal.records` — on-disk framing (length + CRC32C).
- :mod:`repro.wal.log` — :class:`WriteAheadLog`: segments, fsync
  policies, torn-tail recovery with quarantine, snapshots + compaction.
- :mod:`repro.wal.diff` — edge-set diffs for engine snapshots.

Consumers: ``LayoutEngine(wal_dir=...)`` journals graph registration,
update deltas, pin edits and epoch publishes before acknowledging them
and replays to identical ``(digest, epoch, pins)`` state on
construction; cluster workers keep per-worker WAL directories so a
respawned worker replays before rejoining the ring; ``StreamSession``
uses the log for O(delta) autosave.  See ``docs/wal.md``.
"""

from .diff import edge_diff
from .log import FSYNC_POLICIES, WalReplay, WriteAheadLog
from .records import crc32c, encode_record, scan_records

__all__ = [
    "FSYNC_POLICIES",
    "WalReplay",
    "WriteAheadLog",
    "crc32c",
    "edge_diff",
    "encode_record",
    "scan_records",
]
