"""Edge-set diffs between CSR graphs, for WAL snapshots.

An engine snapshot must capture a dynamic graph's *current* edge set in
a form that replays exactly, without archiving the full graph.  Since
every served graph starts from a deterministic generator/collection
base (reloadable by name via the graph loader), the cumulative state is
just the **set difference vs. the pristine base**: edges inserted since
load (with their weights) and base edges since deleted.  That is O(m)
to compute at snapshot cadence and O(accumulated delta) to store —
applying it to a freshly loaded base reproduces the same canonical CSR
bitwise, regardless of how many updates or compactions produced it.
"""

from __future__ import annotations

import numpy as np

__all__ = ["edge_diff"]


def _edge_map(g) -> dict:
    """Upper-triangle ``(u, v) -> weight|None`` map of a CSR graph."""
    indptr = np.asarray(g.indptr)
    indices = np.asarray(g.indices)
    weights = getattr(g, "weights", None)
    edges: dict = {}
    for u in range(g.n):
        start, end = int(indptr[u]), int(indptr[u + 1])
        for k in range(start, end):
            v = int(indices[k])
            if u < v:
                w = float(weights[k]) if weights is not None else None
                edges[(u, v)] = w
    return edges


def edge_diff(base, current) -> tuple[list, list]:
    """Diff two CSR graphs over the same vertex set.

    Returns ``(inserts, deletes)`` where ``inserts`` is a list of
    ``[u, v, w]`` rows (``[u, v]`` when the graphs are unweighted)
    present in ``current`` but not ``base`` — or present with a
    different weight — and ``deletes`` is a list of ``[u, v]`` rows
    present in ``base`` only.
    Applying these to ``base`` via :func:`repro.stream.delta.edge_delta`
    reproduces ``current``'s edge set exactly.
    """
    if base.n != current.n:
        raise ValueError(
            f"vertex count mismatch: base n={base.n}, current n={current.n}"
        )
    base_edges = _edge_map(base)
    cur_edges = _edge_map(current)
    inserts = []
    deletes = []
    for edge, w in cur_edges.items():
        old = base_edges.get(edge, _MISSING)
        row = [edge[0], edge[1]] if w is None else [edge[0], edge[1], w]
        if old is _MISSING:
            inserts.append(row)
        elif old != w:
            # Weight changed in place: express as delete + reinsert so a
            # plain edge-delta replay reproduces it.
            deletes.append([edge[0], edge[1]])
            inserts.append(row)
    for edge in base_edges:
        if edge not in cur_edges:
            deletes.append([edge[0], edge[1]])
    inserts.sort()
    deletes.sort()
    return inserts, deletes


_MISSING = object()
