"""On-disk record framing for the write-ahead log.

One record on disk is::

    | u32 length | u32 crc32c(payload) | payload (length bytes) |

little-endian header, JSON payload.  The CRC is CRC32C (Castagnoli) —
the polynomial used by ext4 journals, iSCSI and every modern WAL
implementation, chosen over zlib's CRC32 for its strictly better burst
error detection.  There is no stdlib CRC32C, so a table-driven software
implementation lives here; records are small (deltas, pin edits, epoch
bumps — never bulk arrays), so throughput is irrelevant next to the
``write()`` syscall that follows.

The framing is deliberately self-synchronizing-by-prefix only: a reader
scans records from the start of a segment and stops at the first frame
whose header is truncated, whose length runs past end-of-file, or whose
payload fails the CRC.  Everything before that point is trusted;
everything after is an undifferentiated torn tail (a crashed ``write``
can tear anywhere, including inside the header of a record that never
finished).  :func:`scan_records` reports exactly where the valid prefix
ends so the log can truncate there and quarantine the rest.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

__all__ = ["HEADER", "ScanResult", "crc32c", "encode_record", "scan_records"]

#: Frame header: payload length, then CRC32C of the payload.
HEADER = struct.Struct("<II")

#: Upper bound on a single record's payload; a length field beyond this
#: is treated as corruption rather than attempted as an allocation.
MAX_RECORD = 64 * 1024 * 1024

_CASTAGNOLI = 0x82F63B78


def _make_table() -> list[int]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            crc = (crc >> 1) ^ _CASTAGNOLI if crc & 1 else crc >> 1
        table.append(crc)
    return table


_TABLE = _make_table()


def crc32c(data: bytes, crc: int = 0) -> int:
    """CRC32C (Castagnoli) of ``data``; chainable via the ``crc`` seed."""
    crc ^= 0xFFFFFFFF
    table = _TABLE
    for byte in data:
        crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF


def encode_record(payload: bytes) -> bytes:
    """Frame one payload: length + CRC32C header, then the bytes."""
    if len(payload) > MAX_RECORD:
        raise ValueError(
            f"record payload of {len(payload)} bytes exceeds the"
            f" {MAX_RECORD}-byte frame limit"
        )
    return HEADER.pack(len(payload), crc32c(payload)) + payload


@dataclass
class ScanResult:
    """Outcome of scanning one segment's bytes.

    ``valid_end`` is the offset one past the last intact record — the
    truncation point when ``corrupt`` is set.  ``payloads`` holds the
    decoded record payloads of the valid prefix, in order.
    """

    payloads: list[bytes]
    valid_end: int
    corrupt: bool


def scan_records(data: bytes) -> ScanResult:
    """Walk framed records; stop cleanly at EOF or at the first tear."""
    payloads: list[bytes] = []
    offset = 0
    size = len(data)
    while offset < size:
        if offset + HEADER.size > size:
            return ScanResult(payloads, offset, True)  # torn header
        length, crc = HEADER.unpack_from(data, offset)
        start = offset + HEADER.size
        end = start + length
        if length > MAX_RECORD or end > size:
            return ScanResult(payloads, offset, True)  # torn payload
        payload = bytes(data[start:end])
        if crc32c(payload) != crc:
            return ScanResult(payloads, offset, True)  # bit rot / tear
        payloads.append(payload)
        offset = end
    return ScanResult(payloads, offset, False)
