"""Segmented, checksummed, crash-recovering write-ahead log.

:class:`WriteAheadLog` owns one directory and journals JSON records
into it, append-only::

    wal/
      wal-0000000000000001.log     segments, named by first LSN
      wal-0000000000000137.log
      snapshot-0000000000000136.json   checkpoint at LSN 136
      quarantine/                  torn tails and corrupt snapshots

Every record gets a monotonically increasing **LSN** (log sequence
number) and is framed with a length prefix and a CRC32C
(:mod:`repro.wal.records`).  The log knows nothing about graphs or
layouts — callers journal whatever dict they like and replay it back;
the engine and the stream session supply the semantics.

Durability contract, by ``fsync`` policy:

``"always"``
    Every append is ``fsync``\\ ed before it returns — a record the
    caller acknowledged survives a machine crash.  One syscall per
    record; the right choice when each update is a distinct client ack.
``"batch"``
    Appends are written immediately (they survive *process* death, even
    SIGKILL, via the OS page cache) but ``fsync`` is coalesced: at most
    one per ``batch_interval`` seconds, amortizing group commit.  A
    machine crash can lose the final interval's records.  The default.
``"off"``
    Never ``fsync``; the OS flushes when it pleases.  For tests and
    for workloads whose source of truth can replay (e.g. a Kafka-fed
    stream).

Recovery runs in the constructor: the newest intact snapshot is loaded
(corrupt ones are quarantined, older ones tried), segments are scanned
record by record, and the first tear — a torn header, a length running
past EOF, a CRC mismatch — truncates the segment at the last valid
record.  The torn bytes and every later segment are moved into
``quarantine/`` for post-mortem rather than deleted, the event is
counted in ``corrupt_records`` and logged once.  Appends then continue
in a fresh segment with the next LSN, so a crash loop cannot re-corrupt
the quarantined evidence.

Checkpointing: :meth:`snapshot` atomically publishes a caller-provided
payload tagged with a compaction *floor* LSN; :meth:`replay` returns
that payload plus every surviving record, and the caller skips records
at or below its floor(s).  Segments wholly at or below the floor are
deleted (:meth:`snapshot` compacts eagerly), which is what keeps replay
cost bounded by *state size + recent activity* instead of history.
"""

from __future__ import annotations

import json
import logging
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from .records import HEADER, encode_record, scan_records

__all__ = ["FSYNC_POLICIES", "WalReplay", "WriteAheadLog"]

logger = logging.getLogger("repro.wal")

FSYNC_POLICIES = ("always", "batch", "off")

_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".log"
_SNAPSHOT_PREFIX = "snapshot-"
_SNAPSHOT_SUFFIX = ".json"
_LSN_DIGITS = 16


def _segment_name(first_lsn: int) -> str:
    return f"{_SEGMENT_PREFIX}{first_lsn:0{_LSN_DIGITS}d}{_SEGMENT_SUFFIX}"


def _snapshot_name(floor: int) -> str:
    return f"{_SNAPSHOT_PREFIX}{floor:0{_LSN_DIGITS}d}{_SNAPSHOT_SUFFIX}"


def _parse_lsn(name: str, prefix: str, suffix: str) -> int | None:
    if not (name.startswith(prefix) and name.endswith(suffix)):
        return None
    digits = name[len(prefix) : -len(suffix)]
    return int(digits) if digits.isdigit() else None


@dataclass
class WalReplay:
    """What recovery found: the newest intact snapshot + the records.

    ``records`` is every surviving journal record in LSN order,
    *including* any that predate the snapshot (compaction is lazy about
    segments that straddle the floor); consumers must skip records at
    or below the floor they track — :attr:`floor` for single-writer
    logs, per-entity floors inside :attr:`snapshot` for the engine.
    """

    snapshot: dict | None = None
    floor: int = 0  # compaction floor of the snapshot (0 = none)
    records: list[dict] = field(default_factory=list)


class WriteAheadLog:
    """One durable journal directory (see module docs).

    Parameters
    ----------
    directory:
        Created if missing.  One log per directory; concurrent writers
        to the same directory are not supported (per-worker WAL
        directories keep the cluster shared-nothing).
    fsync:
        ``"always"`` / ``"batch"`` / ``"off"`` — see the module docs.
    batch_interval:
        Maximum seconds between ``fsync``\\ s under the ``"batch"``
        policy (the data-loss window on a machine crash).
    segment_bytes:
        Rotation threshold; smaller segments compact sooner.
    telemetry:
        Optional :class:`repro.service.telemetry.Telemetry`; every
        internal counter is mirrored as ``wal.<name>``.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        *,
        fsync: str = "batch",
        batch_interval: float = 0.05,
        segment_bytes: int = 4 * 1024 * 1024,
        telemetry=None,
    ):
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        if segment_bytes < HEADER.size + 2:
            raise ValueError(f"segment_bytes too small: {segment_bytes}")
        self.dir = Path(directory)
        self.fsync = fsync
        self.batch_interval = float(batch_interval)
        self.segment_bytes = int(segment_bytes)
        self.telemetry = telemetry
        self._lock = threading.RLock()
        self._counters = {
            "appends": 0,
            "replays": 0,
            "replayed_records": 0,
            "corrupt_records": 0,
            "fsyncs": 0,
            "rotations": 0,
            "snapshots": 0,
            "compactions": 0,
            "append_errors": 0,
        }
        self._corruption_logged = False
        self._file = None  # active append segment, opened lazily
        self._file_size = 0
        self._dirty = False
        self._last_fsync = time.monotonic()
        self.last_lsn = 0
        self.appends_since_snapshot = 0
        self._closed = False
        self.dir.mkdir(parents=True, exist_ok=True)
        self._recovered = self._recover()

    # -- stats -------------------------------------------------------------
    def _inc(self, name: str, amount: int = 1) -> None:
        self._counters[name] += amount
        if self.telemetry is not None:
            self.telemetry.inc(f"wal.{name}", amount)

    def stats(self) -> dict:
        """Counter snapshot plus directory shape (the ``/stats`` body)."""
        with self._lock:
            snap = dict(self._counters)
            snap["last_lsn"] = self.last_lsn
            snap["segments"] = len(self._segments())
            snap["fsync_policy"] = self.fsync
        return snap

    # -- directory shape ---------------------------------------------------
    def _segments(self) -> list[tuple[int, Path]]:
        out = []
        try:
            names = os.listdir(self.dir)
        except OSError:
            return []
        for name in names:
            lsn = _parse_lsn(name, _SEGMENT_PREFIX, _SEGMENT_SUFFIX)
            if lsn is not None:
                out.append((lsn, self.dir / name))
        return sorted(out)

    def _snapshots(self) -> list[tuple[int, Path]]:
        out = []
        for name in os.listdir(self.dir):
            lsn = _parse_lsn(name, _SNAPSHOT_PREFIX, _SNAPSHOT_SUFFIX)
            if lsn is not None:
                out.append((lsn, self.dir / name))
        return sorted(out)

    def _quarantine(self, path: Path, data: bytes | None = None) -> None:
        """Move a corrupt file (or torn tail bytes) out of the live set."""
        qdir = self.dir / "quarantine"
        qdir.mkdir(exist_ok=True)
        target = qdir / path.name
        stamp = 0
        while target.exists():
            stamp += 1
            target = qdir / f"{path.name}.{stamp}"
        if data is not None:
            target.write_bytes(data)
        else:
            os.replace(path, target)

    def _log_corruption_once(self, detail: str) -> None:
        if self._corruption_logged:
            return
        self._corruption_logged = True
        logger.warning(
            "WAL corruption in %s: %s — truncated at the last valid record;"
            " torn bytes quarantined (further corruption in this log is"
            " counted in wal.corrupt_records without repeating this message)",
            self.dir, detail,
        )

    # -- recovery ----------------------------------------------------------
    def _recover(self) -> WalReplay:
        replay = WalReplay()
        # Newest intact snapshot wins; corrupt ones are quarantined and
        # older ones tried (an interrupted snapshot write must never
        # shadow the good checkpoint before it).
        for floor, path in reversed(self._snapshots()):
            try:
                scan = scan_records(path.read_bytes())
            except OSError as exc:
                self._inc("corrupt_records")
                self._log_corruption_once(f"unreadable snapshot: {exc}")
                continue
            if scan.corrupt or not scan.payloads:
                self._inc("corrupt_records")
                self._log_corruption_once(f"corrupt snapshot {path.name}")
                self._quarantine(path)
                continue
            try:
                replay.snapshot = json.loads(scan.payloads[0])
            except ValueError:
                self._inc("corrupt_records")
                self._log_corruption_once(f"undecodable snapshot {path.name}")
                self._quarantine(path)
                continue
            replay.floor = floor
            break
        self.last_lsn = replay.floor

        segments = self._segments()
        for index, (first_lsn, path) in enumerate(segments):
            try:
                data = path.read_bytes()
            except OSError as exc:
                self._inc("corrupt_records")
                self._log_corruption_once(f"unreadable segment: {exc}")
                self._quarantine_rest(segments[index:], None, b"")
                break
            scan = scan_records(data)
            for payload in scan.payloads:
                try:
                    record = json.loads(payload)
                    lsn = int(record["lsn"])
                except (ValueError, KeyError, TypeError):
                    # Framed and checksummed but not a journal record:
                    # treat like a tear at this offset.
                    scan.corrupt = True
                    break
                replay.records.append(record)
                self.last_lsn = max(self.last_lsn, lsn)
            if scan.corrupt:
                self._inc("corrupt_records")
                self._log_corruption_once(
                    f"torn record in {path.name} at offset {scan.valid_end}"
                )
                self._quarantine_rest(
                    segments[index:], path, data[scan.valid_end :]
                )
                with open(path, "r+b") as fh:
                    fh.truncate(scan.valid_end)
                if scan.valid_end == 0:
                    # Nothing valid survived in this segment; its name no
                    # longer matches any record, so retire it entirely.
                    path.unlink(missing_ok=True)
                break
        self._inc("replays")
        self._inc("replayed_records", len(replay.records))
        return replay

    def _quarantine_rest(
        self, rest: list[tuple[int, Path]], torn: Path | None, tail: bytes
    ) -> None:
        """Preserve the torn tail and every later segment for post-mortem."""
        if torn is not None and tail:
            self._quarantine(
                torn.with_name(torn.name + ".tail"), data=tail
            )
        for _lsn, path in rest[1:] if torn is not None else rest:
            self._inc("corrupt_records")
            self._quarantine(path)

    def replay(self) -> WalReplay:
        """The recovery result computed when the log was opened."""
        return self._recovered

    # -- append path -------------------------------------------------------
    def _open_segment(self, first_lsn: int) -> None:
        path = self.dir / _segment_name(first_lsn)
        self._file = open(path, "ab")
        self._file_size = self._file.tell()
        self._sync_dir()

    def _sync_dir(self) -> None:
        if self.fsync == "off":
            return
        try:
            fd = os.open(self.dir, os.O_RDONLY)
        except OSError:
            return  # platform without directory fds; best effort
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    def append(self, record: dict) -> int:
        """Journal one record durably; returns its LSN.

        The record must be JSON-serializable; ``lsn`` is assigned here.
        Raises ``OSError`` if the write fails — callers decide whether
        a journaling failure fails the operation (the engine does: an
        unjournaled update must not be acknowledged).
        """
        with self._lock:
            if self._closed:
                raise OSError("write-ahead log is closed")
            lsn = self.last_lsn + 1
            payload = json.dumps(
                {"lsn": lsn, **record}, separators=(",", ":"), sort_keys=True
            ).encode()
            frame = encode_record(payload)
            try:
                if self._file is None or self._file_size >= self.segment_bytes:
                    self._rotate(lsn)
                self._file.write(frame)
                self._file.flush()
                self._maybe_fsync()
            except OSError:
                self._inc("append_errors")
                raise
            self._file_size += len(frame)
            self.last_lsn = lsn
            self.appends_since_snapshot += 1
            self._inc("appends")
            return lsn

    def _rotate(self, first_lsn: int) -> None:
        if self._file is not None:
            self._fsync_now()
            self._file.close()
            self._file = None
            self._inc("rotations")
        self._open_segment(first_lsn)

    def _maybe_fsync(self) -> None:
        if self.fsync == "always":
            self._fsync_now()
        elif self.fsync == "batch":
            self._dirty = True
            now = time.monotonic()
            if now - self._last_fsync >= self.batch_interval:
                self._fsync_now()
        else:
            self._dirty = True

    def _fsync_now(self) -> None:
        if self._file is None:
            return
        if self.fsync != "off":
            os.fsync(self._file.fileno())
            self._inc("fsyncs")
        self._dirty = False
        self._last_fsync = time.monotonic()

    def sync(self) -> None:
        """Flush any deferred ``fsync`` (batch policy) immediately."""
        with self._lock:
            if self._dirty:
                self._fsync_now()

    # -- checkpointing -----------------------------------------------------
    def snapshot(self, payload: dict, *, floor: int | None = None) -> int:
        """Atomically publish a checkpoint and compact behind it.

        ``payload`` is the caller's full reconstructible state;
        ``floor`` is the highest LSN the payload already covers
        (default: every record journaled so far).  After the snapshot
        is durably in place, segments whose records all fall at or
        below the floor are deleted and older snapshots removed.
        Returns the floor.
        """
        with self._lock:
            if floor is None:
                floor = self.last_lsn
            frame = encode_record(
                json.dumps(payload, separators=(",", ":")).encode()
            )
            path = self.dir / _snapshot_name(floor)
            tmp = path.with_name(path.name + ".tmp")
            with open(tmp, "wb") as fh:
                fh.write(frame)
                fh.flush()
                if self.fsync != "off":
                    os.fsync(fh.fileno())
            os.replace(tmp, path)
            self._sync_dir()
            self._inc("snapshots")
            self.appends_since_snapshot = 0
            self._compact(floor)
            return floor

    def _compact(self, floor: int) -> None:
        # Close the active segment so it too can age out behind a later
        # snapshot; the next append starts a fresh one.
        if self._file is not None:
            self._fsync_now()
            self._file.close()
            self._file = None
        removed = 0
        segments = self._segments()
        for index, (first_lsn, path) in enumerate(segments):
            # A segment's records end where the next segment begins; the
            # final segment ends at last_lsn.
            last_in_segment = (
                segments[index + 1][0] - 1
                if index + 1 < len(segments)
                else self.last_lsn
            )
            if last_in_segment <= floor and first_lsn <= last_in_segment:
                path.unlink(missing_ok=True)
                removed += 1
            elif first_lsn > last_in_segment:  # empty stub segment
                path.unlink(missing_ok=True)
                removed += 1
        for floor_lsn, path in self._snapshots()[:-1]:
            path.unlink(missing_ok=True)
        if removed:
            self._inc("compactions")
            self._sync_dir()

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._file is not None:
                try:
                    self._fsync_now()
                except OSError:
                    pass
                self._file.close()
                self._file = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
