"""Cost-accounted dense vector/matrix kernels (BLAS-1/2 flavour).

The paper's DOrtho phase uses hand-written OpenMP loops instead of MKL
(section 3.1: "we found our implementations to be generally faster").
These wrappers perform the numerics with NumPy and record the memory
traffic and fork-join regions the equivalent OpenMP kernel would incur.
"""

from __future__ import annotations

import numpy as np

from ..parallel.costs import KernelCost, Ledger
from ..parallel.primitives import F64, axpy_cost, dot_cost, map_cost, reduce_cost

__all__ = [
    "dot",
    "weighted_dot",
    "axpy",
    "scale",
    "norm2",
    "weighted_norm",
    "column_means",
    "center_columns",
    "dense_matvec",
    "dense_gemm",
]


def _rec(ledger: Ledger | None, cost: KernelCost, subphase: str = "") -> None:
    if ledger is not None:
        ledger.add(cost, subphase=subphase)


def dot(x: np.ndarray, y: np.ndarray, ledger: Ledger | None = None) -> float:
    """Plain inner product ``x . y``."""
    _rec(ledger, dot_cost(len(x)))
    return float(np.dot(x, y))


def weighted_dot(
    x: np.ndarray,
    d: np.ndarray,
    y: np.ndarray,
    ledger: Ledger | None = None,
) -> float:
    """D-inner product ``x' diag(d) y`` — the DOrtho projection kernel."""
    _rec(ledger, dot_cost(len(x), vectors=3))
    return float(np.dot(x * d, y))


def axpy(
    alpha: float,
    x: np.ndarray,
    y: np.ndarray,
    ledger: Ledger | None = None,
) -> None:
    """``y += alpha * x`` in place."""
    _rec(ledger, axpy_cost(len(x)))
    y += alpha * x


def scale(alpha: float, x: np.ndarray, ledger: Ledger | None = None) -> None:
    """``x *= alpha`` in place."""
    _rec(ledger, map_cost(len(x), flops_per_elem=1.0, bytes_per_elem=2 * F64))
    x *= alpha


def norm2(x: np.ndarray, ledger: Ledger | None = None) -> float:
    """Euclidean norm."""
    _rec(ledger, dot_cost(len(x), vectors=1))
    return float(np.linalg.norm(x))


def weighted_norm(
    x: np.ndarray, d: np.ndarray, ledger: Ledger | None = None
) -> float:
    """D-norm ``sqrt(x' diag(d) x)``."""
    _rec(ledger, dot_cost(len(x), vectors=2))
    return float(np.sqrt(max(np.dot(x * d, x), 0.0)))


def column_means(B: np.ndarray, ledger: Ledger | None = None) -> np.ndarray:
    """Per-column means — phase 1 of PHDE's two-phase column centering."""
    n, k = B.shape
    _rec(ledger, reduce_cost(n * k, flops_per_elem=1.0, bytes_per_elem=F64))
    return B.mean(axis=0)


def center_columns(B: np.ndarray, ledger: Ledger | None = None) -> np.ndarray:
    """Column-centered copy of ``B`` (each column mean becomes zero).

    Implemented as the paper's two-phase scheme (section 3.2): a
    reduction pass computing the means, then a subtraction pass.
    """
    means = column_means(B, ledger)
    n, k = B.shape
    _rec(ledger, map_cost(n * k, flops_per_elem=1.0, bytes_per_elem=2 * F64))
    return B - means


def dense_matvec(
    A: np.ndarray, x: np.ndarray, ledger: Ledger | None = None
) -> np.ndarray:
    """Dense ``A @ x`` (tall-skinny blocks in CGS)."""
    n, k = A.shape if A.ndim == 2 else (len(A), 1)
    _rec(
        ledger,
        KernelCost(
            flops=2.0 * n * k,
            depth=np.log2(max(k, 2)),
            bytes_streamed=(n * k + n + k) * F64,
            regions=1,
        ),
    )
    return A @ x


def dense_gemm(
    A: np.ndarray,
    B: np.ndarray,
    ledger: Ledger | None = None,
    *,
    subphase: str = "",
) -> np.ndarray:
    """Dense ``A @ B`` — the MKL dgemm stand-in for ``S'(LS)``.

    For the ``s x n`` by ``n x s`` shape the arithmetic intensity is
    ``s`` (Table 1), so the cost is charged as a streaming pass over both
    operands with ``2 n s^2`` flops.
    """
    m, k = A.shape
    k2, n = B.shape
    if k != k2:
        raise ValueError("gemm shape mismatch")
    _rec(
        ledger,
        KernelCost(
            flops=2.0 * m * k * n,
            depth=np.log2(max(k, 2)),
            bytes_streamed=(m * k + k * n + m * n) * F64,
            regions=1,
        ),
        subphase,
    )
    return A @ B
