"""Laplacian and walk-matrix products without materializing the matrix.

ParHDE never constructs ``L`` (section 3.1): for the unweighted case the
diagonal is the degree array, so ``L X = D X - A X`` needs one SpMM plus
an elementwise combine.  The paper's section 4.4 measures this design at
an average 2.5x over MKL's ``mkl_sparse_d_mm`` — and, crucially, with no
extra matrix allocation, which is what breaks the prior implementation's
memory footprint on billion-edge graphs (Table 3 discussion).
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from ..parallel.costs import Ledger
from ..parallel.primitives import F64, map_cost
from .spmv import spmm

__all__ = ["laplacian_spmm", "walk_spmm", "laplacian_quadratic_form"]


def laplacian_spmm(
    g: CSRGraph,
    X: np.ndarray,
    *,
    ledger: Ledger | None = None,
    subphase: str = "",
) -> np.ndarray:
    """``L @ X`` with ``L = D - A`` computed from the degree array.

    Step 1 of the TripleProd phase (``P = L S``).
    """
    AX = spmm(g, X, ledger=ledger, subphase=subphase)
    d = g.weighted_degrees
    squeeze = X.ndim == 1
    k = 1 if squeeze else X.shape[1]
    if ledger is not None:
        # Elementwise combine: read X, read AX, write out, stream d once.
        ledger.add(
            map_cost(
                g.n * k, flops_per_elem=2.0, bytes_per_elem=3 * F64
            ),
            subphase=subphase,
        )
    if squeeze:
        return d * X - AX
    return d[:, None] * X - AX


def walk_spmm(
    g: CSRGraph,
    X: np.ndarray,
    *,
    ledger: Ledger | None = None,
    subphase: str = "",
) -> np.ndarray:
    """Transition-matrix product ``D^{-1} A @ X``.

    The power-iteration baseline and the centroid refinement both iterate
    this operator; its dominant eigenvectors are the degree-normalized
    eigenvectors HDE approximates (section 2.1).
    """
    AX = spmm(g, X, ledger=ledger, subphase=subphase)
    d = g.weighted_degrees
    if np.any(d == 0):
        raise ValueError("walk matrix undefined for isolated vertices")
    k = 1 if X.ndim == 1 else X.shape[1]
    if ledger is not None:
        ledger.add(
            map_cost(g.n * k, flops_per_elem=1.0, bytes_per_elem=3 * F64),
            subphase=subphase,
        )
    if X.ndim == 1:
        return AX / d
    return AX / d[:, None]


def laplacian_quadratic_form(g: CSRGraph, y: np.ndarray) -> float:
    """``y' L y = sum_{(i,j) in E} w_ij (y_i - y_j)^2`` (section 2.1).

    Computed edgewise, which doubles as an independent check of
    :func:`laplacian_spmm` in the tests.
    """
    u, v = g.edge_list()
    diff2 = (y[u] - y[v]) ** 2
    if g.weights is None:
        return float(diff2.sum())
    deg = g.degrees
    src = np.repeat(np.arange(g.n), deg)
    keep = src < g.indices
    return float((g.weights[keep] * diff2).sum())
