"""A compact LOBPCG eigensolver for the generalized problem L x = mu D x.

Section 4.5.3 proposes ParHDE "as a preprocessing step for modern
eigensolvers such as LOBPCG"; this module provides that eigensolver so
the proposal can be demonstrated end to end.  It is the textbook
locally-optimal block preconditioned conjugate gradient method
[Knyazev 2001], specialized to the graph setting:

* operator ``A = L`` applied matrix-free (:func:`laplacian_spmm`);
* metric ``B = D`` (the weighted-degree diagonal);
* Jacobi preconditioner ``M^-1 = D^-1``;
* the trivial eigenvector ``1`` handled as a deflation constraint.

Each iteration performs a Rayleigh-Ritz step on the subspace spanned by
the current block ``X``, the preconditioned residuals ``W`` and the
previous search directions ``P`` — at most ``3k`` vectors, so the dense
eigensolve stays tiny (our cyclic Jacobi handles it).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.csr import CSRGraph
from ..parallel.costs import Ledger
from .eigen import jacobi_eigh
from .laplacian import laplacian_spmm

__all__ = ["LOBPCGResult", "lobpcg"]


@dataclass
class LOBPCGResult:
    """Converged generalized eigenpairs of ``(L, D)``."""

    eigenvalues: np.ndarray  # ascending, excluding the trivial 0
    vectors: np.ndarray  # (n, k), D-orthonormal, D-orthogonal to 1
    iterations: int
    residual_norms: np.ndarray


def _d_orthonormalize(V: np.ndarray, d: np.ndarray) -> np.ndarray:
    """D-orthonormal basis of span(V) (drops near-dependent columns)."""
    cols: list[np.ndarray] = []
    for j in range(V.shape[1]):
        v = V[:, j].copy()
        for q in cols:
            v -= np.dot(q * d, v) * q
        nrm = np.sqrt(max(np.dot(v * d, v), 0.0))
        if nrm > 1e-10:
            cols.append(v / nrm)
    if not cols:
        raise np.linalg.LinAlgError("search subspace collapsed")
    return np.column_stack(cols)


def lobpcg(
    g: CSRGraph,
    k: int = 2,
    *,
    x0: np.ndarray | None = None,
    tol: float = 1e-8,
    max_iter: int = 500,
    seed: int = 0,
    ledger: Ledger | None = None,
) -> LOBPCGResult:
    """Smallest ``k`` nontrivial generalized eigenpairs of ``(L, D)``.

    Parameters
    ----------
    x0:
        Optional ``(n, k)`` initial block — pass a ParHDE layout to
        reproduce the section 4.5.3 preprocessing proposal.
    tol:
        Convergence when every column's D-norm residual
        ``||L x - mu D x||_{D^-1}`` drops below ``tol``.

    Notes
    -----
    The eigenvalues relate to the walk-matrix values HDE approximates by
    ``mu = 1 - lambda_walk``; the paper's Eq. 1 objective is their sum.
    """
    n = g.n
    d = g.weighted_degrees
    if np.any(d == 0):
        raise ValueError("graph must have no isolated vertices")
    if k < 1 or k >= n - 1:
        raise ValueError(f"need 1 <= k < n - 1, got k={k}")
    rng = np.random.default_rng(seed)
    ones = np.full(n, 1.0 / np.sqrt(float(d.sum())))

    def deflate(V: np.ndarray) -> None:
        coeff = ones * d @ V
        V -= np.outer(ones, coeff)

    X = (
        x0.astype(np.float64, copy=True)
        if x0 is not None
        else rng.standard_normal((n, k))
    )
    if X.shape != (n, k):
        raise ValueError(f"x0 must be (n, {k})")
    deflate(X)
    X = _d_orthonormalize(X, d)
    while X.shape[1] < k:  # re-seed dropped directions
        extra = rng.standard_normal((n, k - X.shape[1]))
        deflate(extra)
        X = _d_orthonormalize(np.column_stack([X, extra]), d)

    P: np.ndarray | None = None
    it = 0
    res_norms = np.full(k, np.inf)
    lam = np.zeros(k)
    while it < max_iter:
        it += 1
        LX = laplacian_spmm(g, X, ledger=ledger)
        # Rayleigh quotients and residuals under the D metric.
        lam = np.einsum("ij,ij->j", X, LX)
        R = LX - (d[:, None] * X) * lam
        res_norms = np.sqrt(
            np.maximum(np.einsum("ij,ij->j", R, R / d[:, None]), 0.0)
        )
        if np.all(res_norms < tol):
            break
        W = R / d[:, None]  # Jacobi-preconditioned residuals
        deflate(W)
        blocks = [X, W] if P is None else [X, W, P]
        S = _d_orthonormalize(np.column_stack(blocks), d)
        # Rayleigh-Ritz: S' L S y = theta y  (S' D S = I by construction).
        LS = laplacian_spmm(g, S, ledger=ledger)
        H = S.T @ LS
        theta, Y = jacobi_eigh((H + H.T) / 2.0)
        Xn = S @ Y[:, :k]
        # Implicit P: the part of the update D-orthogonal to the old X.
        Pn = Xn - X @ (X.T @ (d[:, None] * Xn))
        X = _d_orthonormalize(Xn, d)
        while X.shape[1] < k:
            extra = rng.standard_normal((n, k - X.shape[1]))
            deflate(extra)
            X = _d_orthonormalize(np.column_stack([X, extra]), d)
        P = Pn

    order = np.argsort(lam)
    return LOBPCGResult(
        eigenvalues=lam[order],
        vectors=X[:, order],
        iterations=it,
        residual_norms=res_norms[order],
    )
