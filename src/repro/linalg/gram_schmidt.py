"""D-orthogonalization of the distance vectors (the DOrtho phase).

ParHDE replaces plain Gram-Schmidt orthogonalization with
*D-orthogonalization* (Algorithm 3 lines 9-15): projections use the
D-inner product ``<x, y>_D = x' diag(d) y``, so the surviving vectors
approximate solutions of the generalized eigenproblem ``L x = mu D x``
rather than the standard one.  Setting ``d = 1`` recovers the plain
orthogonalization of Algorithm 1 (the section 4.5.1 variant).

Two procedures are provided, matching the paper's Table 7 comparison:

* **MGS** (default) — Modified Gram-Schmidt with Level-1 BLAS: each new
  column is repeatedly updated against every finished column.  Stable and
  compatible with coupling BFS and orthogonalization.
* **CGS** — Classical Gram-Schmidt with Level-2 BLAS: all projection
  coefficients of a column are computed in one ``S' (d * s_i)`` matvec
  and applied in one block update.  Fewer memory passes and barriers —
  the paper measures 2.1-2.8x on the phase — but requires all distance
  vectors to exist up front.  Classical GS is numerically fragile on
  near-dependent columns: when the projection cancels most of a column,
  the computed coefficients are contaminated by the part already
  removed.  A conditional second pass (CGS2, the "twice is enough"
  criterion: reorthogonalize when the residual D-norm fell below a
  tenth of the input's) restores orthogonality to working precision
  while keeping the Level-2 structure.

Near-dependent columns (residual norm at most ``drop_tol``) are dropped,
as in Algorithm 3 line 12-13.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..parallel.costs import Ledger
from . import blas

__all__ = ["OrthoResult", "d_orthogonalize"]

#: CGS2 trigger: reorthogonalize when one projection pass shrinks a
#: column's D-norm below this fraction of its input norm (Kahan-style
#: "twice is enough").  Loss of orthogonality after one pass is bounded
#: by roughly ``eps / ratio``, so a ratio of 0.1 still leaves ~1e-15
#: residual; distance-like columns legitimately lose about half their
#: norm to the constant-vector projection alone, so larger thresholds
#: (e.g. the classical 1/sqrt(2)) fire a wasted second pass on nearly
#: every BFS column.
_CGS2_SAFETY = 0.1


@dataclass
class OrthoResult:
    """Outcome of a D-orthogonalization pass.

    Attributes
    ----------
    S:
        ``(n, kept)`` matrix whose columns are D-orthonormal (or
        orthonormal when ``d`` is uniform) — the constant column 0 of the
        input has already been removed (Algorithm 3 line 16).
    kept:
        Indices (into the *input* column numbering, excluding column 0)
        of the surviving distance vectors.
    dropped:
        Indices of the discarded near-dependent columns.
    """

    S: np.ndarray
    kept: list[int]
    dropped: list[int]


def _cgs_project(
    Q: np.ndarray,
    d: np.ndarray,
    v: np.ndarray,
    n: int,
    ledger: Ledger | None,
) -> tuple[np.ndarray, np.ndarray]:
    """One block CGS projection pass: ``v - Q (Q' (d * v))``.

    Returns the projected vector and the coefficient vector (needed by
    the CGS2 trigger).
    """
    dv = d * v
    if ledger is not None:
        ledger.add(
            blas.map_cost(n, flops_per_elem=1.0, bytes_per_elem=3 * 8)
        )
    coeffs = blas.dense_matvec(Q.T, dv, ledger)
    v = v - blas.dense_matvec(Q, coeffs, ledger)
    if ledger is not None:
        ledger.add(
            blas.map_cost(n, flops_per_elem=1.0, bytes_per_elem=3 * 8)
        )
    return v, coeffs


def d_orthogonalize(
    B: np.ndarray,
    d: np.ndarray | None,
    *,
    method: str = "mgs",
    drop_tol: float = 1e-3,
    ledger: Ledger | None = None,
    constant: np.ndarray | str | None = "ones",
) -> OrthoResult:
    """D-orthonormalize the columns of ``[1 | B]`` and drop column 0.

    Parameters
    ----------
    B:
        ``(n, s)`` distance matrix from the BFS phase (column ``i`` holds
        hop counts from pivot ``i``).  Not modified.
    d:
        Weighted degree vector (the diagonal of ``D``), or ``None`` for
        plain orthogonalization (Algorithm 1 behaviour).  Constrained
        layouts pass the *mass-weighted* degree ``m · d`` here so the
        result satisfies ``SᵀMDS = I``.
    method:
        ``"mgs"`` or ``"cgs"``.
    drop_tol:
        Columns whose residual D-norm is at most this are discarded.
    constant:
        The deflated "column 0" of Algorithm 3.  ``"ones"`` (default)
        deflates the all-ones vector, so every surviving column is
        D-orthogonal to the constant mode.  An array deflates that
        vector instead — pin-constrained solves pass the free-vertex
        indicator (1 on free rows, 0 on pinned rows), which keeps the
        pinned rows of every output column *exactly* zero: linear
        combinations of vectors vanishing on those rows still vanish
        there.  ``None`` skips constant deflation entirely.

    Returns
    -------
    OrthoResult
        With ``S' D S = I`` over the surviving columns and every column
        D-orthogonal to the constant vector (hence the layout is centered
        in the D-weighted sense, constraint ``x' D 1 = 0`` of Eq. 1).
    """
    if method not in ("mgs", "cgs"):
        raise ValueError(f"unknown method {method!r}")
    n, s = B.shape
    if d is None:
        d = np.ones(n, dtype=np.float64)
    elif len(d) != n:
        raise ValueError("degree vector length mismatch")
    elif np.any(d <= 0):
        raise ValueError("degree vector must be positive")

    # Column 0: the constant vector, D-normalized (Algorithm 3 line 3
    # writes 1/sqrt(n); under the D-inner product the normalizing factor
    # is the total weighted degree instead).  Constrained solves swap in
    # a custom vector (e.g. the free-vertex indicator) normalized the
    # same way.
    cols: list[np.ndarray] = []
    if isinstance(constant, str):
        if constant != "ones":
            raise ValueError(f"unknown constant mode {constant!r}")
        s0 = np.full(n, 1.0 / np.sqrt(float(d.sum())), dtype=np.float64)
        cols.append(s0)
    elif constant is not None:
        c = np.asarray(constant, dtype=np.float64)
        if c.shape != (n,):
            raise ValueError("constant vector length mismatch")
        cn = float(np.sqrt((d * c * c).sum()))
        if cn <= 0:
            raise ValueError("constant vector must be nonzero")
        cols.append(c / cn)
    n_const = len(cols)

    kept: list[int] = []
    dropped: list[int] = []
    for i in range(s):
        v = B[:, i].astype(np.float64, copy=True)
        if method == "mgs":
            for q in cols:
                coeff = blas.weighted_dot(q, d, v, ledger)
                blas.axpy(-coeff, q, v, ledger)
            nrm = blas.weighted_norm(v, d, ledger)
        elif cols:  # cgs
            Q = np.column_stack(cols)
            v, coeffs = _cgs_project(Q, d, v, n, ledger)
            nrm = blas.weighted_norm(v, d, ledger)
            # The input's D-norm follows from Pythagoras (Q is
            # D-orthonormal), so the CGS2 trigger costs no extra pass
            # over the long vectors.
            norm_before = float(np.sqrt(nrm * nrm + float(coeffs @ coeffs)))
            # Conditional reorthogonalization (CGS2): heavy cancellation
            # means the one-shot coefficients were inaccurate; a second
            # identical pass restores orthogonality to working precision.
            if nrm < _CGS2_SAFETY * norm_before:
                v, _ = _cgs_project(Q, d, v, n, ledger)
                nrm = blas.weighted_norm(v, d, ledger)
        else:  # cgs with nothing to project against yet
            nrm = blas.weighted_norm(v, d, ledger)
        if nrm <= drop_tol:
            dropped.append(i)
            continue
        blas.scale(1.0 / nrm, v, ledger)
        cols.append(v)
        kept.append(i)

    S = (
        np.column_stack(cols[n_const:])
        if kept
        else np.zeros((n, 0), dtype=np.float64)
    )
    return OrthoResult(S=S, kept=kept, dropped=dropped)
