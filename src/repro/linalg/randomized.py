"""Randomized range finding (Halko/Martinsson/Tropp) on the walk operator.

The deterministic subspace refinement in
:mod:`repro.core.subspace_iteration` re-D-orthonormalizes the whole
block after *every* application of the lazy walk operator
``(I + D^-1 A) / 2`` — ``rounds`` SpMMs and ``rounds`` Gram-Schmidt
passes.  The randomized alternative implemented here observes (per the
randomized-SVD literature) that the intermediate orthonormalizations
are only numerical insurance: to capture the operator's dominant
subspace it suffices to apply the power iterations to a (sketch of a)
starting block and orthonormalize **once** at the end.  Same SpMM
volume, one Gram-Schmidt pass instead of ``rounds`` — on tall-skinny
blocks the Gram-Schmidt traffic is the part that saturates memory
bandwidth, so this is the cheaper refinement kernel.

Rank lost to the skipped re-orthonormalizations (columns collapsing
toward the dominant eigenvector) is handled the same way DOrtho handles
near-dependent distance columns: the final MGS pass drops them.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from ..parallel.costs import Ledger
from ..parallel.primitives import F64, map_cost
from .laplacian import walk_spmm

__all__ = [
    "d_orthonormalize_block",
    "randomized_range_finder",
    "randomized_subspace_refine",
]


def d_orthonormalize_block(
    S: np.ndarray, d: np.ndarray, ledger: Ledger | None = None
) -> np.ndarray:
    """MGS D-orthonormalization of a block against ``1`` and itself.

    Columns whose D-norm collapses below ``1e-10`` after projection are
    dropped, so the returned block may be narrower than the input.
    """
    from . import blas

    n = S.shape[0]
    ones = np.full(n, 1.0 / np.sqrt(float(d.sum())))
    cols: list[np.ndarray] = [ones]
    for j in range(S.shape[1]):
        v = S[:, j].copy()
        for q in cols:
            coeff = blas.weighted_dot(q, d, v, ledger)
            blas.axpy(-coeff, q, v, ledger)
        nrm = blas.weighted_norm(v, d, ledger)
        if nrm > 1e-10:
            blas.scale(1.0 / nrm, v, ledger)
            cols.append(v)
    return np.column_stack(cols[1:])


def _lazy_walk(g: CSRGraph, X: np.ndarray, ledger: Ledger | None) -> np.ndarray:
    """One application of ``(I + D^-1 A) / 2`` to every column."""
    W = walk_spmm(g, X, ledger=ledger)
    W += X
    W *= 0.5
    if ledger is not None:
        ledger.add(map_cost(X.size, flops_per_elem=2.0, bytes_per_elem=3 * F64))
    return W


def randomized_subspace_refine(
    g: CSRGraph,
    S: np.ndarray,
    rounds: int = 2,
    *,
    ledger: Ledger | None = None,
) -> np.ndarray:
    """Refine a basis by ``rounds`` walk applications, one final MGS.

    The drop-in alternative to
    :func:`repro.core.subspace_iterate`'s deterministic loop: the block
    is *not* re-orthonormalized between rounds.  Returns a D-orthonormal
    basis of the same (or smaller, if rank dropped) width.
    """
    if rounds < 0:
        raise ValueError("rounds must be >= 0")
    if S.shape[0] != g.n:
        raise ValueError("basis rows must equal n")
    X = S.astype(np.float64, copy=True)
    if rounds == 0:
        return X
    d = g.weighted_degrees
    for _ in range(rounds):
        X = _lazy_walk(g, X, ledger)
    return d_orthonormalize_block(X, d, ledger)


def randomized_range_finder(
    g: CSRGraph,
    k: int,
    *,
    power_iters: int = 2,
    oversample: int = 4,
    seed: int = 0,
    ledger: Ledger | None = None,
) -> np.ndarray:
    """D-orthonormal basis for the walk operator's dominant ``k``-space.

    The classic randomized scheme from scratch (no warm-start basis): a
    Gaussian sketch ``Omega`` of width ``k + oversample``, ``power_iters``
    applications of the lazy walk operator, then one D-orthonormalization
    truncated to ``k`` columns.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if oversample < 0:
        raise ValueError("oversample must be >= 0")
    width = min(k + oversample, g.n)
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((g.n, width))
    if ledger is not None:
        # Sketch generation: one streaming fill of the block.
        ledger.add(map_cost(X.size, flops_per_elem=1.0, bytes_per_elem=F64))
    for _ in range(max(0, power_iters)):
        X = _lazy_walk(g, X, ledger)
    Q = d_orthonormalize_block(X, g.weighted_degrees, ledger)
    return Q[:, :k]
