"""Sparse matrix kernels on the CSR graph: SpMV and multi-vector SpMM.

The TripleProd phase's dominant step views ``L S`` as ``s`` SpMVs (paper
section 3).  We implement ``A @ X`` directly on the CSR adjacency with a
vectorized segmented sum — no scipy matrix objects, no materialized
Laplacian — and charge the machine model the gather traffic predicted by
the adjacency-gap locality model, which is precisely how the paper
explains sk-2005's anomalously fast LS step.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from ..parallel.costs import KernelCost, Ledger
from ..parallel.primitives import F64, I32, LINE_BYTES

__all__ = ["spmm", "spmv", "spmm_cost"]


def spmm_cost(g: CSRGraph, k: int, miss: float) -> KernelCost:
    """Cost of one adjacency SpMM ``A @ X`` with ``k`` dense columns.

    Each stored entry gathers one *row* of ``X`` (``k`` doubles spanning
    ``ceil(8k / 64)`` cache lines when it misses) and streams its column
    index.  The output block is written once; the row pointer array is
    streamed once.  Arithmetic: one multiply-add per entry per column.
    """
    nnz, n = g.nnz, g.n
    lines_per_row = max(1, int(np.ceil(k * F64 / LINE_BYTES)))
    return KernelCost(
        work=1.0 * nnz,  # column-index decode per stored entry
        flops=2.0 * nnz * k,
        bytes_streamed=nnz * I32 + (n * k + n) * F64,
        random_lines=nnz * miss * lines_per_row,
        regions=1,
    )


def _resolve_miss(g: CSRGraph, miss: float | None) -> float:
    if miss is not None:
        return miss
    if "miss_rate" not in g._cache:
        from ..graph.gaps import miss_rate

        g._cache["miss_rate"] = miss_rate(g)
    return g._cache["miss_rate"]


def spmm(
    g: CSRGraph,
    X: np.ndarray,
    *,
    ledger: Ledger | None = None,
    subphase: str = "",
    miss: float | None = None,
) -> np.ndarray:
    """``A @ X`` where ``A`` is the (weighted) adjacency matrix.

    ``X`` is ``(n, k)`` or ``(n,)``; the result matches.  Vectorized via
    a gather of neighbor rows followed by ``np.add.reduceat`` over the
    nonempty row segments.
    """
    squeeze = X.ndim == 1
    Xm = X[:, None] if squeeze else X
    n, k = Xm.shape
    if n != g.n:
        raise ValueError(f"X has {n} rows, graph has {g.n} vertices")
    out = np.zeros((n, k), dtype=np.float64)
    if g.nnz:
        vals = Xm[g.indices]
        if g.weights is not None:
            vals = vals * g.weights[:, None]
        deg = g.degrees
        nonempty = deg > 0
        starts = g.indptr[:-1][nonempty]
        out[nonempty] = np.add.reduceat(vals, starts, axis=0)
    if ledger is not None:
        ledger.add(spmm_cost(g, k, _resolve_miss(g, miss)), subphase=subphase)
    return out[:, 0] if squeeze else out


def spmv(
    g: CSRGraph,
    x: np.ndarray,
    *,
    ledger: Ledger | None = None,
    subphase: str = "",
    miss: float | None = None,
) -> np.ndarray:
    """``A @ x`` for a single dense vector."""
    return spmm(g, x, ledger=ledger, subphase=subphase, miss=miss)
