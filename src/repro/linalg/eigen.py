"""Small dense symmetric eigensolver (cyclic Jacobi).

HDE reduces the layout problem to an eigensolve on the tiny ``s x s``
projected matrix ``Z = S' L S`` (Algorithm 3 line 19), whose cost is
negligible next to the graph-sized phases — the paper's "Other" slice.
The authors call Eigen 3.3.7 for this; we implement the classical cyclic
Jacobi rotation method from scratch (cross-checked against
``numpy.linalg.eigh`` in the tests) so the library has no black-box
numerical dependencies.
"""

from __future__ import annotations

import numpy as np

__all__ = ["jacobi_eigh", "extreme_eigenpairs"]


def jacobi_eigh(
    M: np.ndarray, *, tol: float = 1e-12, max_sweeps: int = 100
) -> tuple[np.ndarray, np.ndarray]:
    """All eigenpairs of a symmetric matrix by cyclic Jacobi rotations.

    Returns ``(eigenvalues, eigenvectors)`` with eigenvalues ascending
    and ``eigenvectors[:, k]`` the unit eigenvector of ``eigenvalues[k]``.

    Convergence: sweeps stop when the off-diagonal Frobenius norm falls
    below ``tol * ||M||_F``.  For the ``s <= 51`` matrices HDE produces
    this takes a handful of sweeps.
    """
    M = np.asarray(M, dtype=np.float64)
    if M.ndim != 2 or M.shape[0] != M.shape[1]:
        raise ValueError("matrix must be square")
    if not np.allclose(M, M.T, atol=1e-8 * (1.0 + np.abs(M).max())):
        raise ValueError("matrix must be symmetric")
    n = M.shape[0]
    A = (M + M.T) / 2.0  # exact symmetry for stability
    V = np.eye(n)
    if n == 1:
        return A.diagonal().copy(), V
    fro = np.linalg.norm(A)
    threshold = tol * (fro if fro > 0 else 1.0)

    for _ in range(max_sweeps):
        off = np.sqrt(max(np.sum(A * A) - np.sum(A.diagonal() ** 2), 0.0))
        if off <= threshold:
            break
        for p in range(n - 1):
            for q in range(p + 1, n):
                apq = A[p, q]
                if abs(apq) <= threshold / (n * n):
                    continue
                app, aqq = A[p, p], A[q, q]
                theta = (aqq - app) / (2.0 * apq)
                t = np.sign(theta) / (
                    abs(theta) + np.sqrt(theta * theta + 1.0)
                )
                if theta == 0:
                    t = 1.0
                c = 1.0 / np.sqrt(t * t + 1.0)
                s = t * c
                # Apply the rotation G(p, q, theta) on both sides.
                Ap = A[:, p].copy()
                Aq = A[:, q].copy()
                A[:, p] = c * Ap - s * Aq
                A[:, q] = s * Ap + c * Aq
                Ap = A[p, :].copy()
                Aq = A[q, :].copy()
                A[p, :] = c * Ap - s * Aq
                A[q, :] = s * Ap + c * Aq
                Vp = V[:, p].copy()
                Vq = V[:, q].copy()
                V[:, p] = c * Vp - s * Vq
                V[:, q] = s * Vp + c * Vq

    evals = A.diagonal().copy()
    order = np.argsort(evals, kind="stable")
    return evals[order], V[:, order]


def extreme_eigenpairs(
    M: np.ndarray, k: int, which: str = "smallest"
) -> tuple[np.ndarray, np.ndarray]:
    """The ``k`` smallest or largest eigenpairs of a symmetric matrix.

    HDE takes the *smallest* eigenvectors of the projected Laplacian
    ``S' L S`` (minimizing Eq. 1 in the subspace); PHDE and PivotMDS take
    the *largest* of the PCA covariance ``C' C``.  See DESIGN.md
    section 5 on the paper's "top two eigenvectors" wording.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    evals, evecs = jacobi_eigh(M)
    if k > len(evals):
        raise ValueError(f"requested {k} eigenpairs of a {len(evals)}-dim matrix")
    if which == "smallest":
        return evals[:k], evecs[:, :k]
    if which == "largest":
        return evals[::-1][:k].copy(), evecs[:, ::-1][:, :k].copy()
    raise ValueError(f"which must be 'smallest' or 'largest', got {which!r}")
