"""D-orthogonal power iteration on the walk matrix.

Computes the dominant non-trivial eigenvectors of ``D^{-1} A`` — i.e. the
degree-normalized eigenvectors that Koren identifies as the optimal
layout axes (section 2.1, Figure 1 bottom).  Each vector is obtained by
repeated application of the walk operator with D-orthogonalization
against the constant vector and the previously converged vectors
(deflation), exactly the scheme the prior spectral-drawing work of
Kirmani & Madduri uses as its exact-eigenvector reference.

The iteration count to a given tolerance is the currency of the
section 4.5.3 comparison: HDE + centroid refinement reaches the same
quality 22x-131x faster than running this from a random start.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.csr import CSRGraph
from ..parallel.costs import Ledger
from . import blas
from .laplacian import walk_spmm

__all__ = ["PowerIterationResult", "power_iteration"]


@dataclass
class PowerIterationResult:
    """Converged degree-normalized eigenvectors and iteration counts."""

    vectors: np.ndarray  # (n, k), D-orthonormal, D-orthogonal to 1
    eigenvalues: np.ndarray  # walk-matrix eigenvalue estimates
    iterations: list[int]  # per vector
    residuals: list[float]  # final |x_{t} - x_{t-1}|_D per vector

    @property
    def total_iterations(self) -> int:
        return int(sum(self.iterations))


def _project_out(
    x: np.ndarray, basis: list[np.ndarray], d: np.ndarray, ledger: Ledger | None
) -> None:
    for q in basis:
        coeff = blas.weighted_dot(q, d, x, ledger)
        blas.axpy(-coeff, q, x, ledger)


def power_iteration(
    g: CSRGraph,
    k: int = 2,
    *,
    tol: float = 1e-8,
    max_iter: int = 10_000,
    seed: int = 0,
    x0: np.ndarray | None = None,
    ledger: Ledger | None = None,
) -> PowerIterationResult:
    """Top ``k`` non-trivial degree-normalized eigenvectors.

    Parameters
    ----------
    tol:
        Convergence when the D-norm of the iterate change drops below
        ``tol``.
    x0:
        Optional ``(n, k)`` initial guess (e.g. an HDE layout, the
        section 4.5.3 preprocessing use case).  Defaults to random.

    Returns
    -------
    PowerIterationResult
        Vectors satisfy ``x' D x = 1`` and ``x' D 1 = 0``; eigenvalue
        estimates are the walk-matrix Rayleigh quotients.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    n = g.n
    d = g.weighted_degrees
    if np.any(d == 0):
        raise ValueError("graph must have no isolated vertices")
    rng = np.random.default_rng(seed)
    if x0 is not None:
        if x0.shape != (n, k):
            raise ValueError(f"x0 must be (n, {k})")
        X0 = x0.astype(np.float64, copy=True)
    else:
        X0 = rng.standard_normal((n, k))

    ones = np.full(n, 1.0 / np.sqrt(float(d.sum())))
    basis: list[np.ndarray] = [ones]
    eigenvalues: list[float] = []
    iterations: list[int] = []
    residuals: list[float] = []

    for j in range(k):
        x = X0[:, j].copy()
        _project_out(x, basis, d, ledger)
        nrm = blas.weighted_norm(x, d, ledger)
        if nrm == 0:
            x = rng.standard_normal(n)
            _project_out(x, basis, d, ledger)
            nrm = blas.weighted_norm(x, d, ledger)
        blas.scale(1.0 / nrm, x, ledger)
        it = 0
        res = np.inf
        while it < max_iter and res > tol:
            it += 1
            # Lazy walk (I + D^{-1}A)/2: shifts the spectrum into [0, 1]
            # so the iteration cannot lock onto the -1 eigenvalue of
            # bipartite graphs (Koren's recommendation for exactly this
            # reason); the walk-matrix eigenvectors are unchanged.
            y = walk_spmm(g, x, ledger=ledger)
            y += x
            y *= 0.5
            if ledger is not None:
                from ..parallel.primitives import axpy_cost

                ledger.add(axpy_cost(n))
            _project_out(y, basis, d, ledger)
            nrm = blas.weighted_norm(y, d, ledger)
            if nrm == 0:
                break
            blas.scale(1.0 / nrm, y, ledger)
            diff = y - x
            res = blas.weighted_norm(diff, d, ledger)
            # The eigenvector sign is arbitrary; track the closer phase.
            alt = blas.weighted_norm(y + x, d, ledger)
            res = min(res, alt)
            x = y
        # Rayleigh quotient under the walk operator.
        wx = walk_spmm(g, x, ledger=ledger)
        eigenvalues.append(blas.weighted_dot(x, d, wx, ledger))
        basis.append(x)
        iterations.append(it)
        residuals.append(float(res))

    return PowerIterationResult(
        vectors=np.column_stack(basis[1:]),
        eigenvalues=np.array(eigenvalues),
        iterations=iterations,
        residuals=residuals,
    )
