"""Sparse and dense linear algebra kernels with cost accounting."""

from .blas import (
    axpy,
    center_columns,
    column_means,
    dense_gemm,
    dense_matvec,
    dot,
    norm2,
    scale,
    weighted_dot,
    weighted_norm,
)
from .eigen import extreme_eigenpairs, jacobi_eigh
from .gram_schmidt import OrthoResult, d_orthogonalize
from .laplacian import laplacian_quadratic_form, laplacian_spmm, walk_spmm
from .lobpcg import LOBPCGResult, lobpcg
from .power_iteration import PowerIterationResult, power_iteration
from .randomized import (
    d_orthonormalize_block,
    randomized_range_finder,
    randomized_subspace_refine,
)
from .spmv import spmm, spmm_cost, spmv

__all__ = [
    "dot",
    "weighted_dot",
    "axpy",
    "scale",
    "norm2",
    "weighted_norm",
    "column_means",
    "center_columns",
    "dense_matvec",
    "dense_gemm",
    "jacobi_eigh",
    "extreme_eigenpairs",
    "OrthoResult",
    "d_orthogonalize",
    "laplacian_spmm",
    "walk_spmm",
    "laplacian_quadratic_form",
    "LOBPCGResult",
    "lobpcg",
    "PowerIterationResult",
    "power_iteration",
    "d_orthonormalize_block",
    "randomized_range_finder",
    "randomized_subspace_refine",
    "spmm",
    "spmv",
    "spmm_cost",
]
