"""Simulated multicore machine model and real thread-pool execution.

See DESIGN.md section 2 for why this substrate exists: it substitutes for
the 28-core Bridges node the paper measured on, converting per-kernel cost
records (work / depth / streamed bytes / random cache lines / barriers)
into simulated seconds for any thread count.
"""

from .costs import KernelCost, Ledger, PhaseTotals, ZERO_COST
from .machine import (
    BRIDGES_ESM,
    BRIDGES_RSM,
    LAPTOP,
    MachineSpec,
    phase_times,
    shard_times,
    simulate_ledger,
    subphase_times,
)
from .pool import (
    ParallelExecutor,
    PoolSaturated,
    TaskPool,
    default_threads,
    split_range,
)
from .threaded_kernels import (
    threaded_dortho_sweep,
    threaded_laplacian_spmm,
    threaded_spmm,
)
from .sensitivity import (
    SensitivityRow,
    format_sensitivity,
    sensitivity_report,
    sweep_parameter,
)
from .report import (
    Breakdown,
    breakdown,
    format_breakdown_table,
    format_scaling_table,
    scaling_table,
)

__all__ = [
    "KernelCost",
    "Ledger",
    "PhaseTotals",
    "ZERO_COST",
    "MachineSpec",
    "BRIDGES_RSM",
    "BRIDGES_ESM",
    "LAPTOP",
    "simulate_ledger",
    "phase_times",
    "shard_times",
    "subphase_times",
    "ParallelExecutor",
    "PoolSaturated",
    "TaskPool",
    "default_threads",
    "split_range",
    "threaded_spmm",
    "threaded_laplacian_spmm",
    "threaded_dortho_sweep",
    "Breakdown",
    "breakdown",
    "scaling_table",
    "format_breakdown_table",
    "format_scaling_table",
    "SensitivityRow",
    "sweep_parameter",
    "sensitivity_report",
    "format_sensitivity",
]
