"""Real thread-pool execution of chunked NumPy kernels.

The cost model in :mod:`repro.parallel.machine` answers "how fast would
this run on the paper's 28-core node"; this module is the *actual*
parallel execution path.  NumPy releases the GIL inside its C loops, so
chunking an elementwise or reduction kernel across a
:class:`~concurrent.futures.ThreadPoolExecutor` yields genuine multicore
execution on machines that have the cores.  On a single-core host it
degrades gracefully to sequential execution with identical results, which
is what the test suite verifies.

The unit of work is a *range kernel*: a callable ``fn(lo, hi)`` operating
on the half-open slice ``[lo, hi)`` of some shared arrays.  Writers must
partition their output by the same ranges (no overlapping writes), the
usual OpenMP ``parallel for`` contract.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, Sequence, TypeVar

import numpy as np

__all__ = [
    "ParallelExecutor",
    "PoolSaturated",
    "TaskPool",
    "split_range",
    "default_threads",
]

T = TypeVar("T")


def default_threads() -> int:
    """Thread count used when none is given (``REPRO_THREADS`` or cores)."""
    env = os.environ.get("REPRO_THREADS")
    if env:
        return max(1, int(env))
    return os.cpu_count() or 1


def split_range(n: int, chunks: int) -> list[tuple[int, int]]:
    """Split ``range(n)`` into at most ``chunks`` contiguous near-equal parts."""
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    chunks = max(1, min(chunks, n)) if n else 1
    bounds = np.linspace(0, n, chunks + 1).astype(np.int64)
    return [(int(bounds[i]), int(bounds[i + 1])) for i in range(chunks)]


class ParallelExecutor:
    """Fork-join executor for range kernels.

    Parameters
    ----------
    threads:
        Worker count.  ``1`` short-circuits to in-line execution (no pool
        is created), which keeps single-threaded runs deterministic and
        cheap.
    chunks_per_thread:
        Over-decomposition factor; more chunks smooth out load imbalance
        for irregular kernels (skewed degree distributions), at the cost
        of more scheduling overhead.
    """

    def __init__(self, threads: int | None = None, *, chunks_per_thread: int = 4):
        self.threads = threads if threads is not None else default_threads()
        if self.threads < 1:
            raise ValueError(f"threads must be >= 1, got {self.threads}")
        if chunks_per_thread < 1:
            raise ValueError("chunks_per_thread must be >= 1")
        self.chunks_per_thread = chunks_per_thread
        self._pool: ThreadPoolExecutor | None = None
        if self.threads > 1:
            self._pool = ThreadPoolExecutor(max_workers=self.threads)

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- execution ---------------------------------------------------------
    def parallel_for(self, n: int, fn: Callable[[int, int], None]) -> None:
        """Run ``fn(lo, hi)`` over a partition of ``range(n)``."""
        if n <= 0:
            return
        if self._pool is None:
            fn(0, n)
            return
        ranges = split_range(n, self.threads * self.chunks_per_thread)
        futures = [self._pool.submit(fn, lo, hi) for lo, hi in ranges]
        for fut in futures:
            fut.result()

    def parallel_map(
        self, n: int, fn: Callable[[int, int], T]
    ) -> list[T]:
        """Run ``fn`` per chunk and collect per-chunk results in order."""
        if n <= 0:
            return []
        if self._pool is None:
            return [fn(0, n)]
        ranges = split_range(n, self.threads * self.chunks_per_thread)
        futures = [self._pool.submit(fn, lo, hi) for lo, hi in ranges]
        return [fut.result() for fut in futures]

    def parallel_reduce(
        self,
        n: int,
        fn: Callable[[int, int], T],
        combine: Callable[[T, T], T],
    ) -> T:
        """Map chunks through ``fn`` then fold with ``combine`` (left fold)."""
        parts = self.parallel_map(n, fn)
        if not parts:
            raise ValueError("parallel_reduce over an empty range")
        acc = parts[0]
        for part in parts[1:]:
            acc = combine(acc, part)
        return acc

    # -- common numeric kernels ---------------------------------------------
    def dot(self, x: np.ndarray, y: np.ndarray) -> float:
        """Chunked dot product (deterministic chunk-wise summation order)."""
        if x.shape != y.shape:
            raise ValueError("dot: shape mismatch")
        parts = self.parallel_map(
            len(x), lambda lo, hi: float(np.dot(x[lo:hi], y[lo:hi]))
        )
        return float(sum(parts))

    def weighted_dot(self, x: np.ndarray, w: np.ndarray, y: np.ndarray) -> float:
        """Chunked D-inner product ``x' diag(w) y``."""
        parts = self.parallel_map(
            len(x),
            lambda lo, hi: float(np.dot(x[lo:hi] * w[lo:hi], y[lo:hi])),
        )
        return float(sum(parts))

    def axpy(self, alpha: float, x: np.ndarray, y: np.ndarray) -> None:
        """``y += alpha * x`` in place, chunked."""
        def kernel(lo: int, hi: int) -> None:
            y[lo:hi] += alpha * x[lo:hi]

        self.parallel_for(len(x), kernel)

    def scale(self, alpha: float, x: np.ndarray) -> None:
        """``x *= alpha`` in place, chunked."""
        def kernel(lo: int, hi: int) -> None:
            x[lo:hi] *= alpha

        self.parallel_for(len(x), kernel)

    def elementwise_min(self, dst: np.ndarray, src: np.ndarray) -> None:
        """``dst = min(dst, src)`` in place, chunked (BFS source selection)."""
        def kernel(lo: int, hi: int) -> None:
            np.minimum(dst[lo:hi], src[lo:hi], out=dst[lo:hi])

        self.parallel_for(len(dst), kernel)

    def argmax(self, x: np.ndarray) -> int:
        """Index of the maximum (lowest index on ties), chunked."""
        if len(x) == 0:
            raise ValueError("argmax of empty array")

        def chunk_best(lo: int, hi: int) -> tuple[float, int]:
            i = int(np.argmax(x[lo:hi]))
            return (float(x[lo + i]), lo + i)

        best = self.parallel_map(len(x), chunk_best)
        value = max(v for v, _ in best)
        return min(i for v, i in best if v == value)


class PoolSaturated(RuntimeError):
    """Raised by :meth:`TaskPool.submit` when the backlog limit is hit."""


class TaskPool:
    """Bounded thread pool for independent whole-task jobs.

    :class:`ParallelExecutor` is a fork-join executor for chunked
    kernels *inside* one computation; :class:`TaskPool` schedules many
    independent computations *against each other* — the serving layer's
    unit of work.  The difference that matters in production is the
    bound: an unbounded executor queue converts overload into unbounded
    memory growth and unbounded latency.  ``submit`` instead rejects
    work with :class:`PoolSaturated` once ``queue_limit`` tasks are
    already waiting for a worker, so callers can shed load explicitly.

    Parameters
    ----------
    workers:
        Worker thread count (default: :func:`default_threads`).
    queue_limit:
        Maximum tasks waiting (i.e. submitted but not yet running) before
        ``submit`` rejects.  Default ``2 * workers``.
    """

    def __init__(self, workers: int | None = None, *, queue_limit: int | None = None):
        self.workers = workers if workers is not None else default_threads()
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        self.queue_limit = (
            queue_limit if queue_limit is not None else 2 * self.workers
        )
        if self.queue_limit < 0:
            raise ValueError(f"queue_limit must be >= 0, got {self.queue_limit}")
        self._pool = ThreadPoolExecutor(max_workers=self.workers)
        self._lock = threading.Lock()
        self._outstanding = 0  # submitted, not yet finished
        self._closed = False

    # -- introspection -----------------------------------------------------
    @property
    def outstanding(self) -> int:
        """Tasks submitted and not yet finished (running + queued)."""
        with self._lock:
            return self._outstanding

    @property
    def queue_depth(self) -> int:
        """Tasks waiting for a free worker (conservative estimate)."""
        with self._lock:
            return max(0, self._outstanding - self.workers)

    # -- lifecycle ---------------------------------------------------------
    def close(self, wait: bool = True) -> None:
        with self._lock:
            self._closed = True
        self._pool.shutdown(wait=wait)

    def __enter__(self) -> "TaskPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- execution ---------------------------------------------------------
    def submit(self, fn: Callable[..., T], *args, **kwargs) -> "Future[T]":
        """Schedule ``fn(*args, **kwargs)``; reject when saturated."""
        with self._lock:
            if self._closed:
                raise RuntimeError("TaskPool is closed")
            if self._outstanding - self.workers >= self.queue_limit:
                raise PoolSaturated(
                    f"task queue full ({self._outstanding} outstanding,"
                    f" {self.workers} workers, limit {self.queue_limit})"
                )
            self._outstanding += 1
        try:
            future = self._pool.submit(fn, *args, **kwargs)
        except BaseException:
            with self._lock:
                self._outstanding -= 1
            raise
        future.add_done_callback(self._task_done)
        return future

    def _task_done(self, _future: Future) -> None:
        with self._lock:
            self._outstanding -= 1
