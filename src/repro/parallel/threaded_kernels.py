"""Genuinely threaded graph kernels built on :class:`ParallelExecutor`.

The machine model answers "what would this cost on the paper's node";
these kernels are the *actual* shared-memory parallel execution path for
hosts that have the cores.  Each one partitions its iteration space into
contiguous row ranges — the same decomposition the paper's OpenMP loops
use — and runs the NumPy slice kernels (which release the GIL) on a
thread pool.  Results are bit-identical to the sequential kernels
because every thread owns a disjoint output range.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from .pool import ParallelExecutor

__all__ = ["threaded_spmm", "threaded_laplacian_spmm", "threaded_dortho_sweep"]


def threaded_spmm(
    g: CSRGraph, X: np.ndarray, executor: ParallelExecutor
) -> np.ndarray:
    """``A @ X`` with rows distributed across the executor's threads."""
    squeeze = X.ndim == 1
    Xm = X[:, None] if squeeze else X
    n, k = Xm.shape
    if n != g.n:
        raise ValueError(f"X has {n} rows, graph has {g.n} vertices")
    out = np.zeros((n, k), dtype=np.float64)
    indptr, indices, weights = g.indptr, g.indices, g.weights

    def rows(lo: int, hi: int) -> None:
        a, b = indptr[lo], indptr[hi]
        if a == b:
            return
        vals = Xm[indices[a:b]]
        if weights is not None:
            vals = vals * weights[a:b, None]
        local_ptr = indptr[lo : hi + 1] - a
        deg = np.diff(local_ptr)
        nonempty = deg > 0
        starts = local_ptr[:-1][nonempty]
        if len(starts):
            out[lo:hi][nonempty] = np.add.reduceat(vals, starts, axis=0)

    executor.parallel_for(n, rows)
    return out[:, 0] if squeeze else out


def threaded_laplacian_spmm(
    g: CSRGraph, X: np.ndarray, executor: ParallelExecutor
) -> np.ndarray:
    """``(D - A) @ X`` threaded, Laplacian never materialized."""
    AX = threaded_spmm(g, X, executor)
    d = g.weighted_degrees
    out = np.empty_like(AX)

    if X.ndim == 1:
        def combine(lo: int, hi: int) -> None:
            out[lo:hi] = d[lo:hi] * X[lo:hi] - AX[lo:hi]
    else:
        def combine(lo: int, hi: int) -> None:
            out[lo:hi] = d[lo:hi, None] * X[lo:hi] - AX[lo:hi]

    executor.parallel_for(g.n, combine)
    return out


def threaded_dortho_sweep(
    S: np.ndarray,
    d: np.ndarray,
    v: np.ndarray,
    executor: ParallelExecutor,
) -> None:
    """One MGS sweep: D-orthogonalize ``v`` in place against ``S``'s columns.

    The vector operations of the paper's DOrtho phase (line 11 of
    Algorithm 3), with each dot product and axpy chunked across threads
    exactly like the hand-written OpenMP loops the authors describe.
    ``S`` columns are assumed D-orthonormal (coefficients skip the
    denominator).
    """
    if S.shape[0] != len(v) or len(d) != len(v):
        raise ValueError("shape mismatch")
    for j in range(S.shape[1]):
        q = S[:, j]
        coeff = executor.weighted_dot(q, d, v)
        executor.axpy(-coeff, q, v)
