"""Cost accounting for simulated shared-memory parallel kernels.

Every performance-relevant kernel in this library (BFS steps, SpMM,
Gram-Schmidt vector operations, ...) executes its numerics with NumPy and
*records* an abstract :class:`KernelCost` describing how much work it did,
how long its critical path is, and how it touched memory.  A
:class:`~repro.parallel.machine.MachineSpec` later converts accumulated
costs into simulated wall-clock seconds for any thread count ``p``.

This is the substitution layer documented in DESIGN.md section 2: the paper
ran on a 28-core Xeon node, while this reproduction runs on hosts where
genuine multicore speedups may be unobservable (single core, GIL).  The
costs recorded here are *measured* from the actual data-dependent behaviour
of each algorithm (real frontier sizes, real edges examined, real nnz), so
scaling shapes emerge from first principles.

Units
-----
``work``
    Scalar, branchy, irregular operations (BFS edge inspections, bucket
    bookkeeping) executed across all threads.  Charged at the machine's
    scalar rate.
``flops``
    Vectorizable floating-point operations (dots, axpys, SpMM
    multiply-adds).  Charged at the machine's much higher SIMD flop rate.
``depth``
    Operations on the critical path that cannot be parallelized —
    ``log2 n`` for a tree reduction, or the largest single adjacency
    list in a frontier (an indivisible unit of work that bounds load
    balance for skewed-degree graphs).
``bytes_streamed``
    Bytes moved to/from DRAM with a streaming (prefetchable) access
    pattern.  Subject to bandwidth saturation.
``random_lines``
    Cache lines fetched by data-dependent irregular accesses (gather /
    scatter).  Subject to latency, overlapped by memory-level parallelism.
``regions``
    Number of fork-join parallel regions (barriers).  Each one pays a
    synchronization overhead that grows with ``p``; this is the Amdahl term
    that caps BFS scaling on high-diameter graphs.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Iterator

__all__ = ["KernelCost", "Ledger", "PhaseTotals", "ZERO_COST"]


@dataclass(frozen=True)
class KernelCost:
    """Abstract cost of one kernel invocation (see module docstring)."""

    work: float = 0.0
    flops: float = 0.0
    depth: float = 0.0
    bytes_streamed: float = 0.0
    random_lines: float = 0.0
    regions: int = 0

    def __add__(self, other: "KernelCost") -> "KernelCost":
        if not isinstance(other, KernelCost):
            return NotImplemented
        return KernelCost(
            work=self.work + other.work,
            flops=self.flops + other.flops,
            depth=self.depth + other.depth,
            bytes_streamed=self.bytes_streamed + other.bytes_streamed,
            random_lines=self.random_lines + other.random_lines,
            regions=self.regions + other.regions,
        )

    def __radd__(self, other):
        # Support sum() with its default integer 0 start value.
        if other == 0:
            return self
        return self.__add__(other)

    def scaled(self, factor: float) -> "KernelCost":
        """Return this cost with every additive component multiplied."""
        return KernelCost(
            work=self.work * factor,
            flops=self.flops * factor,
            depth=self.depth * factor,
            bytes_streamed=self.bytes_streamed * factor,
            random_lines=self.random_lines * factor,
            regions=int(round(self.regions * factor)),
        )

    def with_regions(self, regions: int) -> "KernelCost":
        return replace(self, regions=regions)

    @property
    def is_zero(self) -> bool:
        return (
            self.work == 0
            and self.flops == 0
            and self.depth == 0
            and self.bytes_streamed == 0
            and self.random_lines == 0
            and self.regions == 0
        )


ZERO_COST = KernelCost()


@dataclass
class _Record:
    phase: str
    subphase: str
    cost: KernelCost
    sequential: bool


@dataclass
class PhaseTotals:
    """Summed cost of one phase, split into parallel and sequential parts."""

    parallel: KernelCost = field(default_factory=KernelCost)
    sequential: KernelCost = field(default_factory=KernelCost)

    @property
    def combined(self) -> KernelCost:
        return self.parallel + self.sequential


class Ledger:
    """Accumulates :class:`KernelCost` records tagged by phase/subphase.

    Algorithms open phases with :meth:`phase` (a context manager) and record
    kernel costs with :meth:`add`.  Phases nest; a record is attributed to
    the phase stack joined by ``/`` minus the outermost level, which becomes
    its *phase*, with the remainder as *subphase*.  In practice the library
    uses a single nesting level (phase) plus an optional explicit subphase
    argument, which keeps reports legible.

    Records may be flagged ``sequential=True`` for work the paper's code
    performs on one thread regardless of ``p`` (the prior implementation's
    BFS, for example).  The machine model charges such records at ``p=1``.
    """

    def __init__(self) -> None:
        self._records: list[_Record] = []
        self._stack: list[str] = []

    # -- recording ---------------------------------------------------------
    @contextmanager
    def phase(self, name: str) -> Iterator["Ledger"]:
        """Attribute costs recorded inside the ``with`` block to ``name``."""
        self._stack.append(name)
        try:
            yield self
        finally:
            self._stack.pop()

    def add(
        self,
        cost: KernelCost,
        subphase: str = "",
        *,
        sequential: bool = False,
    ) -> None:
        """Record ``cost`` under the currently open phase."""
        if cost.is_zero:
            return
        phase = self._stack[0] if self._stack else "Other"
        if len(self._stack) > 1 and not subphase:
            subphase = "/".join(self._stack[1:])
        self._records.append(_Record(phase, subphase, cost, sequential))

    @property
    def current_phase(self) -> str:
        return self._stack[0] if self._stack else "Other"

    # -- aggregation -------------------------------------------------------
    def phases(self) -> list[str]:
        """Phase names in first-recorded order."""
        seen: dict[str, None] = {}
        for rec in self._records:
            seen.setdefault(rec.phase, None)
        return list(seen)

    def phase_totals(self) -> dict[str, PhaseTotals]:
        """Summed costs per phase."""
        out: dict[str, PhaseTotals] = {}
        for rec in self._records:
            tot = out.setdefault(rec.phase, PhaseTotals())
            if rec.sequential:
                tot.sequential = tot.sequential + rec.cost
            else:
                tot.parallel = tot.parallel + rec.cost
        return out

    def subphase_totals(self, phase: str) -> dict[str, PhaseTotals]:
        """Summed costs per subphase within ``phase``."""
        out: dict[str, PhaseTotals] = {}
        for rec in self._records:
            if rec.phase != phase:
                continue
            tot = out.setdefault(rec.subphase or "(main)", PhaseTotals())
            if rec.sequential:
                tot.sequential = tot.sequential + rec.cost
            else:
                tot.parallel = tot.parallel + rec.cost
        return out

    def total(self) -> PhaseTotals:
        tot = PhaseTotals()
        for rec in self._records:
            if rec.sequential:
                tot.sequential = tot.sequential + rec.cost
            else:
                tot.parallel = tot.parallel + rec.cost
        return tot

    def merge(self, other: "Ledger") -> None:
        """Append all of ``other``'s records to this ledger."""
        self._records.extend(other._records)

    def __len__(self) -> int:
        return len(self._records)
