"""Human-readable reports from cost ledgers: breakdowns and scaling tables.

These renderers produce the same row/column layouts as the paper's
evaluation figures, so benchmark output can be compared to the published
charts cell by cell.
"""

from __future__ import annotations

from dataclasses import dataclass

from .costs import Ledger
from .machine import MachineSpec, phase_times, simulate_ledger

__all__ = [
    "Breakdown",
    "breakdown",
    "scaling_table",
    "format_breakdown_table",
    "format_scaling_table",
]


@dataclass(frozen=True)
class Breakdown:
    """Per-phase simulated time and percentage split."""

    machine: str
    threads: int
    seconds: dict[str, float]

    @property
    def total(self) -> float:
        return sum(self.seconds.values())

    @property
    def percent(self) -> dict[str, float]:
        tot = self.total
        if tot == 0:
            return {k: 0.0 for k in self.seconds}
        return {k: 100.0 * v / tot for k, v in self.seconds.items()}


def breakdown(ledger: Ledger, machine: MachineSpec, p: int) -> Breakdown:
    """Phase-time breakdown of a ledger on ``machine`` with ``p`` threads."""
    return Breakdown(machine.name, machine.clamp(p), phase_times(ledger, machine, p))


def scaling_table(
    ledger: Ledger, machine: MachineSpec, thread_counts: list[int]
) -> dict[int, float]:
    """Total simulated seconds at each thread count."""
    return {p: simulate_ledger(ledger, machine, p) for p in thread_counts}


def format_breakdown_table(
    rows: dict[str, Breakdown], phases: list[str] | None = None
) -> str:
    """Render ``graph name -> Breakdown`` as a percentage table.

    Mirrors the stacked-bar charts of Figures 3, 5 and 6: one row per
    graph, one column per phase, cells are percent of total time.
    """
    if not rows:
        return "(empty)"
    if phases is None:
        seen: dict[str, None] = {}
        for bd in rows.values():
            for ph in bd.seconds:
                seen.setdefault(ph, None)
        phases = list(seen)
    name_w = max(len("graph"), *(len(n) for n in rows))
    header = f"{'graph':<{name_w}}  " + "  ".join(f"{ph:>10}" for ph in phases)
    header += f"  {'total(s)':>10}"
    lines = [header, "-" * len(header)]
    for name, bd in rows.items():
        pct = bd.percent
        cells = "  ".join(f"{pct.get(ph, 0.0):>9.1f}%" for ph in phases)
        lines.append(f"{name:<{name_w}}  {cells}  {bd.total:>10.3f}")
    return "\n".join(lines)


def format_scaling_table(
    rows: dict[str, dict[int, float]], *, relative: bool = True
) -> str:
    """Render ``graph name -> {threads: seconds}`` as a speedup table.

    With ``relative=True`` cells show speedup over the 1-thread time
    (Figure 4 / Table 4 style); otherwise raw simulated seconds.
    """
    if not rows:
        return "(empty)"
    thread_counts = sorted({p for r in rows.values() for p in r})
    name_w = max(len("graph"), *(len(n) for n in rows))
    header = f"{'graph':<{name_w}}  " + "  ".join(
        f"{f'p={p}':>9}" for p in thread_counts
    )
    lines = [header, "-" * len(header)]
    for name, series in rows.items():
        base = series.get(1)
        cells = []
        for p in thread_counts:
            v = series.get(p)
            if v is None:
                cells.append(f"{'-':>9}")
            elif relative and base is not None and v > 0:
                cells.append(f"{base / v:>8.1f}x")
            else:
                cells.append(f"{v:>9.3f}")
        lines.append(f"{name:<{name_w}}  " + "  ".join(cells))
    return "\n".join(lines)
