"""Machine-model sensitivity analysis.

A simulation-backed reproduction owes the reader an answer to "how much
do your results depend on the calibration constants?".  This module
sweeps individual :class:`MachineSpec` parameters over multiplicative
ranges and reports how a ledger's simulated time (or speedup) responds,
so every headline number can be tagged with its sensitivity.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

from .costs import Ledger
from .machine import MachineSpec, simulate_ledger

__all__ = ["SensitivityRow", "sweep_parameter", "sensitivity_report"]

#: Parameters it makes sense to perturb multiplicatively.
TUNABLE = (
    "core_ops",
    "flop_rate",
    "stream_bw_core",
    "stream_bw_peak",
    "dram_latency",
    "mlp",
    "random_bw_factor",
    "region_overhead",
)


@dataclass(frozen=True)
class SensitivityRow:
    """Response of one output metric to one parameter sweep."""

    parameter: str
    factors: tuple[float, ...]
    values: tuple[float, ...]

    @property
    def spread(self) -> float:
        """max/min of the metric across the sweep (1.0 = insensitive)."""
        lo, hi = min(self.values), max(self.values)
        return hi / lo if lo > 0 else float("inf")


def _perturb(machine: MachineSpec, name: str, factor: float) -> MachineSpec:
    if name not in TUNABLE:
        raise ValueError(
            f"unknown tunable {name!r}; options: {', '.join(TUNABLE)}"
        )
    return replace(machine, **{name: getattr(machine, name) * factor})


def sweep_parameter(
    ledger: Ledger,
    machine: MachineSpec,
    parameter: str,
    *,
    p: int,
    factors: tuple[float, ...] = (0.5, 0.75, 1.0, 1.5, 2.0),
    metric: str = "time",
) -> SensitivityRow:
    """Sweep one machine parameter and evaluate the ledger each time.

    ``metric``: ``"time"`` (simulated seconds at ``p`` threads) or
    ``"speedup"`` (1-thread time over ``p``-thread time).
    """
    if metric not in ("time", "speedup"):
        raise ValueError("metric must be 'time' or 'speedup'")
    values = []
    for f in factors:
        m = _perturb(machine, parameter, f)
        t_p = simulate_ledger(ledger, m, p)
        if metric == "time":
            values.append(t_p)
        else:
            values.append(simulate_ledger(ledger, m, 1) / t_p)
    return SensitivityRow(parameter, tuple(factors), tuple(values))


def sensitivity_report(
    ledger: Ledger,
    machine: MachineSpec,
    *,
    p: int,
    metric: str = "speedup",
    parameters: tuple[str, ...] = TUNABLE,
    factors: tuple[float, ...] = (0.5, 1.0, 2.0),
) -> dict[str, SensitivityRow]:
    """Sweep every tunable parameter; rows keyed by parameter name."""
    return {
        name: sweep_parameter(
            ledger, machine, name, p=p, factors=factors, metric=metric
        )
        for name in parameters
    }


def format_sensitivity(rows: dict[str, SensitivityRow]) -> str:
    """Render a report as a table of metric values per factor."""
    if not rows:
        return "(empty)"
    factors = next(iter(rows.values())).factors
    header = f"{'parameter':<18} " + "  ".join(
        f"x{f:<6g}" for f in factors
    ) + f"  {'spread':>7}"
    lines = [header, "-" * len(header)]
    for name, row in rows.items():
        cells = "  ".join(f"{v:7.2f}" for v in row.values)
        lines.append(f"{name:<18} {cells}  {row.spread:>6.2f}x")
    return "\n".join(lines)
