"""Multicore machine model: converts :class:`KernelCost` into seconds.

The model is a roofline with four ceilings plus an Amdahl synchronization
term.  For a kernel cost ``c`` executed on ``p`` threads of machine ``M``:

``scalar = c.work / (p * M.core_ops)``
    Irregular/branchy throughput (BFS edge inspections, bucket updates);
    scales linearly in ``p``.  This is what dominates graph traversal.

``simd = c.flops / (p * M.flop_rate)``
    Vectorizable floating-point throughput (dots, axpys, SpMM madds).

``stream = c.bytes_streamed / min(p * M.stream_bw_core, M.stream_bw_peak)``
    Streaming memory bandwidth.  Saturates once ``p`` cores together
    reach the socket's peak — with the Bridges RSM calibration
    (112 GB/s peak, ~16 GB/s per core) saturation occurs near 7 cores,
    which reproduces the paper's observation that the DOrtho phase "does
    not show much improvement beyond 7 threads".

``latency = c.random_lines * max(M.dram_latency / (p * M.mlp),
                                 LINE / (M.random_bw_factor * peak))``
    Irregular gathers limited by DRAM latency, overlapped by ``M.mlp``
    outstanding misses per core, ultimately floored by the DRAM's
    random-read bandwidth (reads have no write-allocate overhead, so the
    floor sits slightly *above* STREAM triad).  This term scales almost
    linearly in ``p`` on Haswell-class parts — the paper's explanation
    for the uniform random graph's best-in-class 24.5x speedup.

``depth_t = c.depth / M.core_ops``
    Critical-path floor (Brent bound): reduction combine chains, and the
    largest indivisible unit (e.g. a hub vertex's adjacency list), which
    models the load imbalance that keeps kron/twitter below urand in
    Figure 4.

``body = max(scalar, simd, stream, latency, depth_t)``
    The resources overlap (hardware prefetch + OoO execution), so the
    slowest one bounds the kernel.

``sync = c.regions * M.region_overhead * (1 + log2 p)``
    Fork-join barrier cost per parallel region.  Constant in problem
    size, grows with ``p`` — the Amdahl term that caps the scaling of
    level-synchronous BFS on high-diameter graphs (road_usa: 7.1x).

Distributed-memory dimension (the :mod:`repro.cluster` serving tier):
the spec additionally carries the classic α-β communication-cost terms
of the Buluç/Madduri distributed-memory BFS analyses — ``alpha``
(per-message latency), ``beta`` (per-byte inverse bandwidth) and
``shards`` (worker-process count, the 1D partition width).  A routed
request costs ``alpha + nbytes * beta`` per message on top of its
compute time; :func:`shard_times` turns a per-shard request assignment
into per-shard seconds so routing policies (consistent-hash vs
size-balanced) can be compared analytically before being measured —
see :mod:`repro.cluster.policy`.
    NOTE on calibration: the reproduction's graphs are ~10^3-10^4 times
    smaller than the paper's, so the barrier constant is scaled down by a
    comparable factor.  The dimensionless quantity that shapes the
    results — barrier cost relative to one level's work — is preserved;
    an absolute 5-10 us OpenMP barrier against billion-edge levels
    behaves like a ~50 ns barrier against our million-edge levels.

Sequential records (see :class:`~repro.parallel.costs.Ledger`) are always
charged at ``p = 1`` with no sync overhead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from .costs import KernelCost, Ledger, PhaseTotals

__all__ = [
    "MachineSpec",
    "BRIDGES_RSM",
    "BRIDGES_ESM",
    "LAPTOP",
    "simulate_ledger",
    "phase_times",
    "shard_times",
    "subphase_times",
]

_LINE_BYTES = 64.0


@dataclass(frozen=True)
class MachineSpec:
    """Calibrated description of a shared-memory multicore node.

    Parameters
    ----------
    name:
        Human-readable identifier.
    cores:
        Physical cores available; requests for more threads are clamped.
    core_ops:
        Scalar/irregular operations per second per core.  Calibrated well
        below nominal frequency because graph kernels are dominated by
        dependent integer/branch work (GAP-style BFS sustains a few
        hundred million edge-inspections per second per core).
    flop_rate:
        Vectorizable floating-point ops per second per core (SIMD FMA
        streams; far higher than ``core_ops``).
    stream_bw_core:
        Streaming DRAM bandwidth one core can draw, bytes/s.
    stream_bw_peak:
        Socket-saturated streaming bandwidth, bytes/s (STREAM triad).
    llc_bytes:
        Last-level cache capacity; used by the locality model in
        :mod:`repro.graph.gaps` to estimate miss rates for irregular
        accesses.
    dram_latency:
        Seconds per cache-line fetch that misses all caches.
    mlp:
        Memory-level parallelism: average outstanding misses per core.
        Calibrated low (~2) because the charged gathers sit in dependent,
        branchy loops (BFS visited checks, SpMM row gathers feeding
        accumulators) where the reorder window sustains only a couple of
        overlapping misses — this also matches the ~100 ns/entry 1-core
        SpMM rate implied by the paper's TripleProd scaling data.
    random_bw_factor:
        Random-read bandwidth ceiling as a multiple of
        ``stream_bw_peak`` (pure reads avoid write-allocate, so > 1).
    region_overhead:
        Base cost of one fork-join region (OpenMP barrier), seconds.
    alpha:
        Distributed dimension: per-message latency, seconds.  For the
        serving cluster this is one framed-JSON round-trip's fixed cost
        over a loopback socket (syscalls, framing, JSON decode) — the
        "α" of the α-β model in the Buluç/Madduri BFS cost analyses.
    beta:
        Distributed dimension: seconds per payload byte ("β", inverse
        bandwidth).  Calibrated well below raw loopback bandwidth
        because cluster payloads are JSON-encoded coordinates.
    shards:
        Distributed dimension: worker-process count this spec models
        (the 1D partition width).  Policy helpers default to it.
    """

    name: str
    cores: int
    core_ops: float
    flop_rate: float
    stream_bw_core: float
    stream_bw_peak: float
    llc_bytes: float
    dram_latency: float
    mlp: float
    random_bw_factor: float
    region_overhead: float
    alpha: float = 1.5e-4
    beta: float = 2.0e-9
    shards: int = 1

    def clamp(self, p: int) -> int:
        if p < 1:
            raise ValueError(f"thread count must be >= 1, got {p}")
        return min(p, self.cores)

    def time(self, cost: KernelCost, p: int) -> float:
        """Simulated seconds to run ``cost`` on ``p`` threads."""
        p = self.clamp(p)
        scalar = cost.work / (p * self.core_ops)
        simd = cost.flops / (p * self.flop_rate)
        bw = min(p * self.stream_bw_core, self.stream_bw_peak)
        stream = cost.bytes_streamed / bw
        per_line = max(
            self.dram_latency / (p * self.mlp),
            _LINE_BYTES / (self.random_bw_factor * self.stream_bw_peak),
        )
        latency = cost.random_lines * per_line
        depth_t = cost.depth / self.core_ops
        # Scalar work and irregular-gather stalls serialize within a
        # thread (dependent loads block the branchy consumer), so they
        # add; vector flops and streaming overlap with both.  The
        # critical path (depth) is a floor (Brent bound).
        body = max(scalar + latency, simd, stream, depth_t)
        sync = cost.regions * self.region_overhead * (1.0 + math.log2(p))
        return body + sync

    def time_totals(self, totals: PhaseTotals, p: int) -> float:
        """Simulated seconds for a parallel+sequential cost pair."""
        return self.time(totals.parallel, p) + self.time(totals.sequential, 1)

    def message_time(self, nbytes: float) -> float:
        """α-β cost of moving one ``nbytes`` message between processes."""
        return self.alpha + float(nbytes) * self.beta

    def with_shards(self, shards: int) -> "MachineSpec":
        """This spec re-dimensioned to ``shards`` worker processes."""
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        return replace(self, shards=shards)


# Pittsburgh Supercomputing Center "Bridges" regular shared-memory node:
# 2 x 14-core Xeon E5-2695 v3, 35 MB LLC/socket, measured STREAM triad
# 112 GB/s (paper section 4.1).
BRIDGES_RSM = MachineSpec(
    name="bridges-rsm-28c",
    cores=28,
    core_ops=0.55e9,
    flop_rate=4.0e9,
    stream_bw_core=16e9,
    stream_bw_peak=112e9,
    llc_bytes=70e6,
    dram_latency=90e-9,
    mlp=2.0,
    random_bw_factor=1.25,
    region_overhead=1.2e-7,
)

# Bridges extreme shared-memory node: 16 x 18-core Xeon E7-8880 v3, of which
# the paper used 80 cores of a *shared, non-dedicated* allocation across
# 16 NUMA domains (the paper explicitly warns against comparing its
# numbers to the dedicated 28-core node).  Calibrated accordingly: high
# remote-socket latency, a low random-read bandwidth ceiling (directory
# coherence over 16 sockets), heavier barriers, and a conservative
# shared-bandwidth peak.
BRIDGES_ESM = MachineSpec(
    name="bridges-esm-80c",
    cores=80,
    core_ops=0.50e9,
    flop_rate=3.6e9,
    stream_bw_core=12e9,
    stream_bw_peak=200e9,
    llc_bytes=720e6,
    dram_latency=250e-9,
    mlp=2.0,
    random_bw_factor=0.10,
    region_overhead=2.5e-7,
)

# A small commodity machine, handy for examples and tests.
LAPTOP = MachineSpec(
    name="laptop-4c",
    cores=4,
    core_ops=1.0e9,
    flop_rate=8.0e9,
    stream_bw_core=12e9,
    stream_bw_peak=30e9,
    llc_bytes=8e6,
    dram_latency=80e-9,
    mlp=2.5,
    random_bw_factor=1.25,
    region_overhead=8e-8,
)


def simulate_ledger(ledger: Ledger, machine: MachineSpec, p: int) -> float:
    """Total simulated seconds for every cost recorded in ``ledger``."""
    return machine.time_totals(ledger.total(), p)


def phase_times(ledger: Ledger, machine: MachineSpec, p: int) -> dict[str, float]:
    """Simulated seconds per phase, in first-recorded order."""
    return {
        phase: machine.time_totals(tot, p)
        for phase, tot in ledger.phase_totals().items()
    }


def subphase_times(
    ledger: Ledger, machine: MachineSpec, p: int, phase: str
) -> dict[str, float]:
    """Simulated seconds per subphase of ``phase``."""
    return {
        sub: machine.time_totals(tot, p)
        for sub, tot in ledger.subphase_totals(phase).items()
    }


#: Default modeled message sizes for one routed serving request: a small
#: JSON request in, a coordinate payload (~n×d float literals) out.
REQUEST_BYTES = 512.0
REPLY_BYTES = 64.0 * 1024.0


def shard_times(
    assignment,
    machine: MachineSpec,
    p: int,
    *,
    request_bytes: float = REQUEST_BYTES,
    reply_bytes: float = REPLY_BYTES,
) -> dict:
    """Per-shard simulated seconds for a routed request workload.

    The :func:`phase_times` analogue for the distributed dimension:
    where ``phase_times`` splits one run's ledger across pipeline
    phases, ``shard_times`` splits a *request stream* across worker
    shards and prices each shard's queue — compute (each request's cost
    ledger on ``p`` threads of ``machine``) plus communication (two α-β
    messages per request: the routed request in, the coordinate payload
    back).  The slowest shard is the cluster's makespan, so comparing
    ``max(shard_times(...).values())`` across assignments is the
    analytic policy comparison (consistent-hash vs size-balanced) —
    exactly the 1D-partition communication accounting of the
    Buluç/Madduri distributed-memory BFS analyses, with requests in
    place of frontier chunks.

    Parameters
    ----------
    assignment:
        ``{shard: [cost, ...]}`` where each cost is a
        :class:`~repro.parallel.costs.Ledger`, a
        :class:`~repro.parallel.costs.PhaseTotals`, a plain number of
        already-priced compute seconds (e.g. measured service times),
        or a ``(cost, reply_nbytes)`` pair for per-request payload
        sizes.
    machine:
        Spec whose ``alpha``/``beta`` carry the communication terms.
    p:
        Threads per shard (each worker's in-process pool).
    """
    out = {}
    for shard, items in assignment.items():
        total = 0.0
        for item in items:
            nbytes = reply_bytes
            if isinstance(item, tuple):
                item, nbytes = item
            totals = item.total() if isinstance(item, Ledger) else item
            if isinstance(totals, (int, float)):
                total += float(totals)  # already seconds
            else:
                total += machine.time_totals(totals, p)
            total += machine.message_time(request_bytes)
            total += machine.message_time(nbytes)
        out[shard] = total
    return out
