"""Multicore machine model: converts :class:`KernelCost` into seconds.

The model is a roofline with four ceilings plus an Amdahl synchronization
term.  For a kernel cost ``c`` executed on ``p`` threads of machine ``M``:

``scalar = c.work / (p * M.core_ops)``
    Irregular/branchy throughput (BFS edge inspections, bucket updates);
    scales linearly in ``p``.  This is what dominates graph traversal.

``simd = c.flops / (p * M.flop_rate)``
    Vectorizable floating-point throughput (dots, axpys, SpMM madds).

``stream = c.bytes_streamed / min(p * M.stream_bw_core, M.stream_bw_peak)``
    Streaming memory bandwidth.  Saturates once ``p`` cores together
    reach the socket's peak — with the Bridges RSM calibration
    (112 GB/s peak, ~16 GB/s per core) saturation occurs near 7 cores,
    which reproduces the paper's observation that the DOrtho phase "does
    not show much improvement beyond 7 threads".

``latency = c.random_lines * max(M.dram_latency / (p * M.mlp),
                                 LINE / (M.random_bw_factor * peak))``
    Irregular gathers limited by DRAM latency, overlapped by ``M.mlp``
    outstanding misses per core, ultimately floored by the DRAM's
    random-read bandwidth (reads have no write-allocate overhead, so the
    floor sits slightly *above* STREAM triad).  This term scales almost
    linearly in ``p`` on Haswell-class parts — the paper's explanation
    for the uniform random graph's best-in-class 24.5x speedup.

``depth_t = c.depth / M.core_ops``
    Critical-path floor (Brent bound): reduction combine chains, and the
    largest indivisible unit (e.g. a hub vertex's adjacency list), which
    models the load imbalance that keeps kron/twitter below urand in
    Figure 4.

``body = max(scalar, simd, stream, latency, depth_t)``
    The resources overlap (hardware prefetch + OoO execution), so the
    slowest one bounds the kernel.

``sync = c.regions * M.region_overhead * (1 + log2 p)``
    Fork-join barrier cost per parallel region.  Constant in problem
    size, grows with ``p`` — the Amdahl term that caps the scaling of
    level-synchronous BFS on high-diameter graphs (road_usa: 7.1x).
    NOTE on calibration: the reproduction's graphs are ~10^3-10^4 times
    smaller than the paper's, so the barrier constant is scaled down by a
    comparable factor.  The dimensionless quantity that shapes the
    results — barrier cost relative to one level's work — is preserved;
    an absolute 5-10 us OpenMP barrier against billion-edge levels
    behaves like a ~50 ns barrier against our million-edge levels.

Sequential records (see :class:`~repro.parallel.costs.Ledger`) are always
charged at ``p = 1`` with no sync overhead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .costs import KernelCost, Ledger, PhaseTotals

__all__ = [
    "MachineSpec",
    "BRIDGES_RSM",
    "BRIDGES_ESM",
    "LAPTOP",
    "simulate_ledger",
    "phase_times",
    "subphase_times",
]

_LINE_BYTES = 64.0


@dataclass(frozen=True)
class MachineSpec:
    """Calibrated description of a shared-memory multicore node.

    Parameters
    ----------
    name:
        Human-readable identifier.
    cores:
        Physical cores available; requests for more threads are clamped.
    core_ops:
        Scalar/irregular operations per second per core.  Calibrated well
        below nominal frequency because graph kernels are dominated by
        dependent integer/branch work (GAP-style BFS sustains a few
        hundred million edge-inspections per second per core).
    flop_rate:
        Vectorizable floating-point ops per second per core (SIMD FMA
        streams; far higher than ``core_ops``).
    stream_bw_core:
        Streaming DRAM bandwidth one core can draw, bytes/s.
    stream_bw_peak:
        Socket-saturated streaming bandwidth, bytes/s (STREAM triad).
    llc_bytes:
        Last-level cache capacity; used by the locality model in
        :mod:`repro.graph.gaps` to estimate miss rates for irregular
        accesses.
    dram_latency:
        Seconds per cache-line fetch that misses all caches.
    mlp:
        Memory-level parallelism: average outstanding misses per core.
        Calibrated low (~2) because the charged gathers sit in dependent,
        branchy loops (BFS visited checks, SpMM row gathers feeding
        accumulators) where the reorder window sustains only a couple of
        overlapping misses — this also matches the ~100 ns/entry 1-core
        SpMM rate implied by the paper's TripleProd scaling data.
    random_bw_factor:
        Random-read bandwidth ceiling as a multiple of
        ``stream_bw_peak`` (pure reads avoid write-allocate, so > 1).
    region_overhead:
        Base cost of one fork-join region (OpenMP barrier), seconds.
    """

    name: str
    cores: int
    core_ops: float
    flop_rate: float
    stream_bw_core: float
    stream_bw_peak: float
    llc_bytes: float
    dram_latency: float
    mlp: float
    random_bw_factor: float
    region_overhead: float

    def clamp(self, p: int) -> int:
        if p < 1:
            raise ValueError(f"thread count must be >= 1, got {p}")
        return min(p, self.cores)

    def time(self, cost: KernelCost, p: int) -> float:
        """Simulated seconds to run ``cost`` on ``p`` threads."""
        p = self.clamp(p)
        scalar = cost.work / (p * self.core_ops)
        simd = cost.flops / (p * self.flop_rate)
        bw = min(p * self.stream_bw_core, self.stream_bw_peak)
        stream = cost.bytes_streamed / bw
        per_line = max(
            self.dram_latency / (p * self.mlp),
            _LINE_BYTES / (self.random_bw_factor * self.stream_bw_peak),
        )
        latency = cost.random_lines * per_line
        depth_t = cost.depth / self.core_ops
        # Scalar work and irregular-gather stalls serialize within a
        # thread (dependent loads block the branchy consumer), so they
        # add; vector flops and streaming overlap with both.  The
        # critical path (depth) is a floor (Brent bound).
        body = max(scalar + latency, simd, stream, depth_t)
        sync = cost.regions * self.region_overhead * (1.0 + math.log2(p))
        return body + sync

    def time_totals(self, totals: PhaseTotals, p: int) -> float:
        """Simulated seconds for a parallel+sequential cost pair."""
        return self.time(totals.parallel, p) + self.time(totals.sequential, 1)


# Pittsburgh Supercomputing Center "Bridges" regular shared-memory node:
# 2 x 14-core Xeon E5-2695 v3, 35 MB LLC/socket, measured STREAM triad
# 112 GB/s (paper section 4.1).
BRIDGES_RSM = MachineSpec(
    name="bridges-rsm-28c",
    cores=28,
    core_ops=0.55e9,
    flop_rate=4.0e9,
    stream_bw_core=16e9,
    stream_bw_peak=112e9,
    llc_bytes=70e6,
    dram_latency=90e-9,
    mlp=2.0,
    random_bw_factor=1.25,
    region_overhead=1.2e-7,
)

# Bridges extreme shared-memory node: 16 x 18-core Xeon E7-8880 v3, of which
# the paper used 80 cores of a *shared, non-dedicated* allocation across
# 16 NUMA domains (the paper explicitly warns against comparing its
# numbers to the dedicated 28-core node).  Calibrated accordingly: high
# remote-socket latency, a low random-read bandwidth ceiling (directory
# coherence over 16 sockets), heavier barriers, and a conservative
# shared-bandwidth peak.
BRIDGES_ESM = MachineSpec(
    name="bridges-esm-80c",
    cores=80,
    core_ops=0.50e9,
    flop_rate=3.6e9,
    stream_bw_core=12e9,
    stream_bw_peak=200e9,
    llc_bytes=720e6,
    dram_latency=250e-9,
    mlp=2.0,
    random_bw_factor=0.10,
    region_overhead=2.5e-7,
)

# A small commodity machine, handy for examples and tests.
LAPTOP = MachineSpec(
    name="laptop-4c",
    cores=4,
    core_ops=1.0e9,
    flop_rate=8.0e9,
    stream_bw_core=12e9,
    stream_bw_peak=30e9,
    llc_bytes=8e6,
    dram_latency=80e-9,
    mlp=2.5,
    random_bw_factor=1.25,
    region_overhead=8e-8,
)


def simulate_ledger(ledger: Ledger, machine: MachineSpec, p: int) -> float:
    """Total simulated seconds for every cost recorded in ``ledger``."""
    return machine.time_totals(ledger.total(), p)


def phase_times(ledger: Ledger, machine: MachineSpec, p: int) -> dict[str, float]:
    """Simulated seconds per phase, in first-recorded order."""
    return {
        phase: machine.time_totals(tot, p)
        for phase, tot in ledger.phase_totals().items()
    }


def subphase_times(
    ledger: Ledger, machine: MachineSpec, p: int, phase: str
) -> dict[str, float]:
    """Simulated seconds per subphase of ``phase``."""
    return {
        sub: machine.time_totals(tot, p)
        for sub, tot in ledger.subphase_totals(phase).items()
    }
