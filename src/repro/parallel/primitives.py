"""Cost constructors for the standard parallel patterns.

These helpers build :class:`~repro.parallel.costs.KernelCost` values for
the patterns the library's kernels are made of — parallel map over dense
arrays, tree reductions, streaming sweeps, irregular gathers — so every
kernel charges memory traffic and synchronization consistently.

Constants
---------
``LINE_BYTES``
    Cache line size assumed by the locality model (64 bytes).
``F64``/``I32``/``I64``
    Element sizes used when converting element counts to bytes.
"""

from __future__ import annotations

import math

from .costs import KernelCost

__all__ = [
    "LINE_BYTES",
    "F64",
    "F32",
    "I32",
    "I64",
    "map_cost",
    "reduce_cost",
    "dot_cost",
    "axpy_cost",
    "stream_cost",
    "gather_cost",
    "sort_cost",
    "segmented_matrix_cost",
    "random_lines_for",
]

LINE_BYTES = 64
F64 = 8
F32 = 4
I32 = 4
I64 = 8


def map_cost(
    n: float,
    *,
    flops_per_elem: float = 1.0,
    bytes_per_elem: float = F64,
    regions: int = 1,
) -> KernelCost:
    """Elementwise vectorized parallel-for over ``n`` elements."""
    return KernelCost(
        flops=n * flops_per_elem,
        depth=0.0,
        bytes_streamed=n * bytes_per_elem,
        regions=regions,
    )


def reduce_cost(
    n: float,
    *,
    flops_per_elem: float = 1.0,
    bytes_per_elem: float = F64,
    regions: int = 1,
) -> KernelCost:
    """Parallel tree reduction over ``n`` elements.

    Depth is the ``log2 n`` combine chain (paper Table 1 charges the dot
    products in DOrtho a ``log n`` depth for exactly this reason).
    """
    depth = math.log2(n) if n > 1 else 1.0
    return KernelCost(
        flops=n * flops_per_elem,
        depth=depth,
        bytes_streamed=n * bytes_per_elem,
        regions=regions,
    )


def dot_cost(n: float, *, vectors: int = 2) -> KernelCost:
    """Dot product of two length-``n`` float64 vectors.

    ``vectors`` is the number of distinct operand arrays streamed from
    memory (a D-weighted inner product ``x' D y`` streams three).
    """
    return reduce_cost(n, flops_per_elem=2.0, bytes_per_elem=vectors * F64)


def axpy_cost(n: float) -> KernelCost:
    """``y <- y + alpha * x`` on length-``n`` float64 vectors.

    Streams x (read), y (read+write): 3 * 8 bytes per element.
    """
    return map_cost(n, flops_per_elem=2.0, bytes_per_elem=3 * F64)


def stream_cost(nbytes: float, *, flops: float = 0.0, regions: int = 1) -> KernelCost:
    """Pure streaming sweep over ``nbytes`` of memory."""
    return KernelCost(flops=flops, bytes_streamed=nbytes, regions=regions)


def sort_cost(n: float, *, bytes_per_elem: float = I64, regions: int = 0) -> KernelCost:
    """Parallel comparison sort of ``n`` keys (merge/sample sort shape).

    Used by the batched frontier-matrix sweep to price its sort-based
    scatter (group the gathered edge targets by destination, then one
    segmented reduction replaces per-edge atomics).  ``O(n log n)``
    vectorizable work, ``log^2 n`` combine depth, a few streaming passes
    over the key array.  ``regions`` defaults to 0 because the sort runs
    *inside* the caller's per-level fork-join region.
    """
    if n <= 1:
        return KernelCost()
    lg = math.log2(n)
    return KernelCost(
        flops=2.0 * n * lg,
        depth=lg * lg,
        bytes_streamed=4.0 * n * bytes_per_elem,
        regions=regions,
    )


def segmented_matrix_cost(
    rows: float,
    cols: float,
    *,
    passes: float = 3.0,
    flops_per_elem: float = 1.0,
    regions: int = 0,
) -> KernelCost:
    """Dense boolean/int8 work on a ``(rows, cols)`` frontier-matrix slab.

    The batched multi-source sweep materializes per-edge-per-source value
    matrices (one byte per entry) and runs a handful of vectorized passes
    over them (build, permute, segmented reduce).  The work is SIMD
    streaming, so it is charged as flops + streamed bytes, not scalar
    ``work``; depth is the ``log`` combine chain of the segmented
    reduction.
    """
    elems = rows * cols
    if elems <= 0:
        return KernelCost()
    return KernelCost(
        flops=elems * flops_per_elem,
        depth=math.log2(rows) if rows > 1 else 1.0,
        bytes_streamed=passes * elems,  # one byte per boolean entry
        regions=regions,
    )


def random_lines_for(accesses: float, miss_rate: float) -> float:
    """Expected DRAM line fetches for ``accesses`` irregular accesses.

    ``miss_rate`` comes from the adjacency-gap locality model
    (:func:`repro.graph.gaps.miss_rate`); a locality-friendly vertex
    ordering (sk-2005 in the paper) turns most gathers into cache hits.
    """
    if not 0.0 <= miss_rate <= 1.0:
        raise ValueError(f"miss_rate must be in [0, 1], got {miss_rate}")
    return accesses * miss_rate


def gather_cost(
    accesses: float,
    miss_rate: float,
    *,
    flops_per_access: float = 1.0,
    index_bytes: float = I32,
    regions: int = 1,
) -> KernelCost:
    """Irregular gather: ``accesses`` data-dependent reads.

    The index stream itself is sequential (``index_bytes`` per access); the
    gathered values hit DRAM with probability ``miss_rate``.
    """
    return KernelCost(
        flops=accesses * flops_per_access,
        bytes_streamed=accesses * index_bytes,
        random_lines=random_lines_for(accesses, miss_rate),
        regions=regions,
    )
