"""ParHDE — fast spectral graph layout on multicore platforms.

A full reproduction of Mishra, Kirmani & Madduri, *Fast Spectral Graph
Layout on Multicore Platforms*, ICPP 2020.  See README.md for a tour and
DESIGN.md for the system inventory and the experiment index.

Quick start::

    from repro import datasets, parhde, save_drawing

    g = datasets.load("barth", scale="small")
    layout = parhde(g, s=10, seed=0)
    save_drawing(g, layout.coords, "barth.png")

Performance questions go through the machine model::

    from repro.parallel import BRIDGES_RSM

    layout.phase_seconds(BRIDGES_RSM, p=28)   # simulated phase times
    layout.speedup(BRIDGES_RSM, p=28)         # relative speedup
"""

from . import (
    baselines,
    bfs,
    datasets,
    drawing,
    graph,
    linalg,
    metrics,
    multilevel,
    parallel,
    partition,
    sssp,
    stream,
)
from .core import (
    KernelConfig,
    LayoutResult,
    laplacian_layout,
    parhde,
    parhde_coupled,
    phde,
    pivotmds,
    refine,
    stress_majorization,
    zoom_layout,
)
from .multilevel import multilevel_layout
from .drawing import save_drawing
from .graph import CSRGraph, from_edges, preprocess

__version__ = "1.0.0"

__all__ = [
    "parhde",
    "parhde_coupled",
    "phde",
    "pivotmds",
    "laplacian_layout",
    "refine",
    "zoom_layout",
    "stress_majorization",
    "multilevel_layout",
    "KernelConfig",
    "LayoutResult",
    "CSRGraph",
    "from_edges",
    "preprocess",
    "save_drawing",
    "graph",
    "bfs",
    "sssp",
    "linalg",
    "parallel",
    "partition",
    "multilevel",
    "baselines",
    "drawing",
    "metrics",
    "datasets",
    "stream",
    "__version__",
]
