"""Plain sequential FIFO-queue BFS — the prior implementation's traversal.

The Table 3 baseline charges the cost of a classical single-threaded
BFS; this module *is* that algorithm, so the cost model's assumptions
can be validated against a running implementation (and tests get a
third independent distance oracle besides Dijkstra and networkx).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..graph.csr import CSRGraph

__all__ = ["bfs_sequential"]


def bfs_sequential(g: CSRGraph, source: int) -> np.ndarray:
    """Hop counts from ``source`` by textbook FIFO BFS (``-1`` unreachable).

    Every adjacency entry of the reachable region is examined exactly
    once — the full ``2m`` entries of work the direction-optimizing traversal
    avoids.
    """
    if not 0 <= source < g.n:
        raise ValueError(f"source {source} out of range")
    dist = np.full(g.n, -1, dtype=np.int32)
    dist[source] = 0
    queue: deque[int] = deque([source])
    indptr, indices = g.indptr, g.indices
    while queue:
        u = queue.popleft()
        du = dist[u]
        for v in indices[indptr[u] : indptr[u + 1]].tolist():
            if dist[v] < 0:
                dist[v] = du + 1
                queue.append(v)
    return dist
