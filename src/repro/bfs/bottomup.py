"""Bottom-up level-synchronous BFS step.

Beamer's pull step: every *unvisited* vertex scans its own adjacency list
looking for a parent in the current frontier and stops at the first hit.
For the large frontiers of low-diameter, skewed-degree graphs this
examines far fewer edges than pushing (the ``gamma`` factor of Table 1).

Our vectorized implementation computes both the discovered set and the
*early-exit* edge count — the per-vertex scan position of the first
frontier hit — so the cost model charges exactly what the paper's C++
code would have executed, not the full adjacency volume.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from ..parallel.costs import KernelCost
from ..parallel.primitives import I32, I64
from .frontier import gather_neighbors

__all__ = ["bottomup_step", "BU_OPS"]

#: Scalar instructions per scanned edge in the pull loop: neighbor load,
#: frontier-bitmap probe, branch.  Tighter than the push loop (no queue,
#: no CAS), which is part of why bottom-up wins on large frontiers.
BU_OPS = 5.0


def bottomup_step(
    g: CSRGraph,
    in_frontier: np.ndarray,
    dist: np.ndarray,
    level: int,
    miss: float,
) -> tuple[np.ndarray, int, KernelCost]:
    """One pull level.

    Parameters
    ----------
    in_frontier:
        ``bool[n]`` bitmap of the current frontier.
    dist:
        ``int32[n]`` distances, ``-1`` unvisited; updated in place.
    level:
        Distance assigned to vertices that find a parent.
    miss:
        DRAM miss probability of the ``in_frontier[neighbor]`` gathers.

    Returns
    -------
    (next_frontier, edges_examined, cost) where ``edges_examined`` counts
    scans with early exit at the first frontier hit.
    """
    candidates = np.flatnonzero(dist < 0).astype(np.int64)
    if len(candidates) == 0:
        return np.zeros(0, dtype=np.int64), 0, KernelCost(regions=1)
    nbrs, counts, seg_starts = gather_neighbors(g, candidates)
    nonempty = counts > 0
    if not np.any(nonempty):
        return np.zeros(0, dtype=np.int64), 0, KernelCost(regions=1)

    hit = in_frontier[nbrs]
    # Segmented any() via reduceat over nonempty segments only (reduceat
    # misbehaves on zero-length segments).
    ne_starts = seg_starts[nonempty]
    found_ne = np.maximum.reduceat(hit.view(np.int8), ne_starts).astype(bool)
    found = np.zeros(len(candidates), dtype=bool)
    found[nonempty] = found_ne

    # Early-exit scan length: position of the first hit, else full degree.
    pos = np.arange(len(nbrs), dtype=np.int64) - np.repeat(seg_starts, counts)
    sentinel = np.where(hit, pos, len(nbrs))
    first_ne = np.minimum.reduceat(sentinel, ne_starts)
    scanned_ne = np.where(found_ne, first_ne + 1, counts[nonempty])
    edges = int(scanned_ne.sum())

    discovered = candidates[found]
    dist[discovered] = level
    from .topdown import chunk_depth, sched_chunk

    cost = KernelCost(
        work=BU_OPS * edges + 3.0 * len(candidates),
        # Heaviest scheduling unit over the candidate sweep.
        depth=chunk_depth(scanned_ne, sched_chunk(g.n), BU_OPS),
        # Sequential streams: the dist sweep that finds candidates plus
        # the adjacency prefixes actually scanned.
        bytes_streamed=len(dist) * I32 + edges * I32 + len(candidates) * I64,
        # Irregular traffic: one in_frontier[u] probe per scanned edge.
        random_lines=edges * miss,
        regions=1,
    )
    return discovered, edges, cost
