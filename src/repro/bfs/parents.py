"""BFS with parent output — the GAP code's native product.

The GAP direction-optimizing BFS "maintains a BFS tree by storing
parents of reachable vertices"; the paper's modification adds distances
(section 3.1).  This module provides the original parent-producing
variant on top of our distance traversal: parents are recovered with one
vectorized pass that picks, for every vertex, its smallest-id neighbor
one level closer to the source — a valid BFS tree for the same level
structure the parallel code produces.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from .direction_optimizing import BFSStats, bfs_distances
from .frontier import gather_neighbors

__all__ = ["bfs_parents", "validate_bfs_tree"]


def bfs_parents(
    g: CSRGraph, source: int, **kwargs
) -> tuple[np.ndarray, np.ndarray, BFSStats]:
    """Distances plus a BFS parent tree from ``source``.

    Returns ``(dist, parent, stats)``: ``parent[source] == source`` and
    ``parent[v] == -1`` for unreachable vertices; otherwise ``parent[v]``
    is a neighbor of ``v`` with ``dist[parent[v]] == dist[v] - 1``.
    Keyword arguments flow to :func:`bfs_distances`.
    """
    dist, stats = bfs_distances(g, source, **kwargs)
    parent = np.full(g.n, -1, dtype=np.int64)
    parent[source] = source
    reached = np.flatnonzero((dist >= 0) & (np.arange(g.n) != source))
    if len(reached):
        nbrs, counts, seg_starts = gather_neighbors(g, reached)
        nbrs64 = nbrs.astype(np.int64)
        # A neighbor qualifies as parent iff it sits one level up.
        ok = dist[nbrs64] == np.repeat(dist[reached], counts) - 1
        cand = np.where(ok, nbrs64, g.n)  # sentinel: no parent here
        first = np.minimum.reduceat(cand, seg_starts)
        # Every reached non-source vertex has a qualifying neighbor by
        # the BFS level property.
        parent[reached] = first
    return dist, parent, stats


def validate_bfs_tree(
    g: CSRGraph, source: int, dist: np.ndarray, parent: np.ndarray
) -> None:
    """Raise ``ValueError`` unless ``(dist, parent)`` is a valid BFS tree."""
    if parent[source] != source or dist[source] != 0:
        raise ValueError("source must be its own parent at distance 0")
    for v in range(g.n):
        p = int(parent[v])
        if v == source:
            continue
        if dist[v] < 0:
            if p != -1:
                raise ValueError(f"unreachable vertex {v} has a parent")
            continue
        if p < 0:
            raise ValueError(f"reached vertex {v} lacks a parent")
        if not g.has_edge(v, p):
            raise ValueError(f"parent edge ({v}, {p}) not in graph")
        if dist[p] != dist[v] - 1:
            raise ValueError(f"parent of {v} is not one level closer")
