"""Batched frontier-matrix multi-source BFS.

The per-source path (:mod:`repro.bfs.runner`) advances ``s`` pivot
traversals one after another, each paying its own Python-level sweep,
its own adjacency gathers and its own per-level fork-join regions.  The
distributed-memory BFS literature (Buluç & Madduri) observes that
multi-source traversal is naturally a frontier-*matrix* computation:
keep an ``(n, s)`` boolean frontier matrix and advance every traversal
one level per sweep with a handful of vectorized CSR operations shared
by all ``s`` columns.

This module implements that sweep with *bitwise parity* against ``s``
independent :func:`~repro.bfs.direction_optimizing.bfs_distances` runs:

* identical ``int32`` distances (``-1`` for unreachable vertices),
* per-column direction optimization from the same alpha/beta heuristic
  (each column switches top-down/bottom-up independently, driven by its
  own ``edges_unexplored`` bookkeeping),
* identical per-column :class:`~repro.bfs.direction_optimizing.BFSStats`
  (levels, direction sequence, top-down edge counts, bottom-up
  early-exit scan counts, reached counts).

The machine-model pricing is where the sweep wins: one fork-join region
per *direction group* per level instead of one per source per level, a
single shared adjacency gather over the union frontier (``TD_OPS`` per
union edge, not per column-edge), and irregular ``dist`` row accesses
that touch one cache line for *all* ``s`` columns (the ``(n, s)``
distance matrix is row-major and ``s * 4`` bytes fits a line for the
paper's ``s = 10``).  The dense per-edge-per-column value matrices the
sweep materializes are charged as SIMD streaming work
(:func:`~repro.parallel.primitives.segmented_matrix_cost`) plus one
sort-based scatter (:func:`~repro.parallel.primitives.sort_cost`), both
far cheaper than scalar traversal work.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from ..parallel.costs import KernelCost, Ledger
from ..parallel.primitives import (
    F64,
    I32,
    I64,
    map_cost,
    segmented_matrix_cost,
    sort_cost,
)
from .bottomup import BU_OPS
from .direction_optimizing import ALPHA, BETA, BFSStats, _locality
from .frontier import gather_neighbors
from .runner import MultiSourceResult, _sub
from .topdown import TD_OPS, chunk_depth, sched_chunk

__all__ = ["batched_bfs_distances", "run_sources_batched"]


def _topdown_level(
    g: CSRGraph,
    rows: np.ndarray,
    F: np.ndarray,
    td_cols: np.ndarray,
    dist: np.ndarray,
    level: int,
    miss: float,
) -> tuple[np.ndarray, np.ndarray, KernelCost]:
    """One push level for every top-down column at once.

    Returns ``(targets, discovered, cost)`` where ``targets`` is the
    sorted union of vertices discovered by *any* column this level and
    ``discovered[i, t]`` says whether ``targets[i]`` was discovered by
    column ``td_cols[t]``.  ``dist`` is updated in place.
    """
    row_mask = F[:, td_cols].any(axis=1)
    td_rows = rows[row_mask]
    Ftd = F[np.ix_(row_mask, td_cols)]
    nbrs, counts, _ = gather_neighbors(g, td_rows)
    E = len(nbrs)
    if E == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, np.zeros((0, len(td_cols)), dtype=bool), KernelCost(regions=1)

    # (E, T) membership: edge e (out of td_rows[i]) belongs to column t's
    # traversal iff td_rows[i] is in column t's frontier.
    V = Ftd[np.repeat(np.arange(len(td_rows)), counts)]
    # (E, T) unvisited: the dist *row* gather is the shared irregular
    # access — one cache line serves all columns.
    U = dist[nbrs][:, td_cols] < 0
    hit = V & U

    # Scatter: every hit writes the same value, so duplicate (target,
    # column) hits are idempotent and need no dedup before the write —
    # the race-free formulation of the level-synchronous relaxation.
    # One masked write per column avoids materializing the (edge, column)
    # hit-pair index arrays; the bitmap scatter + scan dedups targets in
    # O(E + n) with the output already sorted.
    T = len(td_cols)
    seen = np.zeros(g.n, dtype=bool)
    hits = 0
    for t in range(T):
        tgt = nbrs[hit[:, t]]
        hits += len(tgt)
        dist[tgt, td_cols[t]] = level
        seen[tgt] = True
    targets = np.flatnonzero(seen)
    # A (target, column) pair was discovered this level iff its dist
    # cell just became `level` (cells are written at most once).
    discovered = dist[targets][:, td_cols] == level

    base = sort_cost(hits) + segmented_matrix_cost(E, T, passes=3.0)
    cost = KernelCost(
        # One shared scan of the union frontier's adjacency — the edge
        # work is paid once, not once per column.
        work=TD_OPS * E + 8.0 * (len(td_rows) + len(targets)),
        flops=base.flops,
        depth=chunk_depth(counts, sched_chunk(g.n), TD_OPS) + base.depth,
        bytes_streamed=len(td_rows) * 3 * I64 + E * I32 + base.bytes_streamed,
        # dist rows probed per edge + written per discovered vertex; each
        # is one line covering all s columns (row-major (n, s) int32).
        random_lines=(E + len(targets)) * miss,
        regions=1,
    )
    return targets.astype(np.int64), discovered, cost


def _bottomup_level(
    g: CSRGraph,
    rows: np.ndarray,
    F: np.ndarray,
    bu_cols: np.ndarray,
    dist: np.ndarray,
    level: int,
    miss: float,
    stats: list[BFSStats],
) -> tuple[np.ndarray, np.ndarray, KernelCost]:
    """One pull level for every bottom-up column at once.

    Candidates are the union over bottom-up columns of unvisited
    vertices; per-column candidacy masks keep the early-exit scan counts
    bitwise-equal to independent :func:`bottomup_step` runs (segment
    positions are adjacency-local, so a vertex's first-hit position does
    not depend on which candidate set it was gathered with).  Updates
    ``dist`` and the per-column ``edges_bottomup`` stats in place.
    """
    B = len(bu_cols)
    M_full = dist[:, bu_cols] < 0  # (n, B) per-column candidacy
    cand = np.flatnonzero(M_full.any(axis=1)).astype(np.int64)
    C = len(cand)
    if C == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, np.zeros((0, B), dtype=bool), KernelCost(regions=1)
    starts = g.indptr[cand].astype(np.int64)
    counts = g.indptr[cand + 1].astype(np.int64) - starts

    # Dense frontier bitmaps for the pull probes, one column each.
    Fb = np.zeros((g.n, B), dtype=bool)
    Fb[rows] = F[:, bu_cols]

    # Position-blocked early-exit pull: iteration k probes the k-th
    # neighbor of every candidate that still has an unresolved column.
    # A (vertex, column) pair exits at its first frontier hit, so the
    # element work is the *true* early-exit volume — the same quantity
    # bottomup_step charges — rather than the full adjacency volume the
    # (E, B) segmented-reduction formulation would stream.
    alive = M_full[cand]  # (C, B); a pair dies on hit or list exhaustion
    found = np.zeros((C, B), dtype=bool)
    scanned_per_col = np.zeros(B, dtype=np.int64)
    probes = 0  # union edge probes actually issued (cost model)
    act = np.flatnonzero(counts > 0)
    act = act[alive[act].any(axis=1)]
    k = 0
    cap = 64  # switch to bulk suffix scan for the skewed-degree tail
    while len(act) and k < cap:
        act = act[counts[act] > k]
        if len(act) == 0:
            break
        probe = Fb[g.indices[starts[act] + k]]  # (A, B)
        al = alive[act]
        scanned_per_col += al.sum(axis=0)  # every alive pair scans edge k
        probes += len(act)
        found[act] |= al & probe
        still = al & ~probe
        alive[act] = still
        act = act[still.any(axis=1)]
        k += 1
    if len(act):
        act = act[counts[act] > k]  # exhausted rows contributed in full
    if len(act):
        # High-degree stragglers: finish their adjacency suffixes with
        # one fused segmented reduction (encode each edge as its reversed
        # in-suffix position, zero non-hits, segment max ⇒ found + first).
        rem = counts[act] - k
        off = np.repeat(starts[act] + k, rem)
        local = np.arange(len(off), dtype=np.int64) - np.repeat(
            np.cumsum(rem) - rem, rem
        )
        H = Fb[g.indices[off + local]]  # (E', B)
        rev = (np.repeat(rem, rem) - local).astype(np.int64)
        val = np.where(H, rev[:, None], 0)
        ne_starts = np.cumsum(rem) - rem
        maxrev = np.maximum.reduceat(val, ne_starts, axis=0)
        if maxrev.ndim == 1:
            maxrev = maxrev[:, None]
        hit_suffix = maxrev > 0
        scanned_suffix = np.where(hit_suffix, rem[:, None] - maxrev + 1, rem[:, None])
        al = alive[act]
        scanned_per_col += (al * scanned_suffix).sum(axis=0)
        probes += int(len(off))
        found[act] |= al & hit_suffix
        alive[act] = al & ~hit_suffix

    for t, c in enumerate(bu_cols):
        stats[c].edges_bottomup += int(scanned_per_col[t])

    ci, cc = np.nonzero(found)
    dist[cand[ci], bu_cols[cc]] = level

    keep = found.any(axis=1)
    base = segmented_matrix_cost(probes, B, passes=3.0, flops_per_elem=1.5)
    cost = KernelCost(
        # Union scan with per-pair early exit — the probes the idealized
        # pull kernel would actually issue.
        work=BU_OPS * probes + 3.0 * C,
        flops=base.flops,
        depth=chunk_depth(counts, sched_chunk(g.n), BU_OPS) + base.depth,
        bytes_streamed=(
            g.n * B * I32  # candidate scan over the dist columns
            + C * I64
            + probes * I32
            + base.bytes_streamed
        ),
        # One frontier-bitmap row probe per scanned edge, shared by all
        # columns (the (n, B) bitmap row is B bytes, under one line).
        random_lines=probes * miss,
        regions=1,
    )
    return cand[keep], found[keep], cost


def batched_bfs_distances(
    g: CSRGraph,
    sources: np.ndarray,
    *,
    ledger: Ledger | None = None,
    miss: float | None = None,
    alpha: float = ALPHA,
    beta: float = BETA,
) -> tuple[np.ndarray, list[BFSStats]]:
    """Distances from every source at once, one frontier-matrix sweep.

    Returns ``(dist, stats)`` with ``dist`` an ``int32[n, s]`` matrix
    (column ``i`` = hop counts from ``sources[i]``, ``-1`` unreachable)
    and one :class:`BFSStats` per column.  Both are bitwise-equal to
    ``s`` independent :func:`bfs_distances` runs; only the recorded
    :class:`KernelCost` differs (the whole point — see the module
    docstring for what the batched sweep is charged).
    """
    sources = np.asarray(sources, dtype=np.int64)
    s = len(sources)
    if s == 0:
        raise ValueError("need at least one source")
    if sources.min() < 0 or sources.max() >= g.n:
        bad = sources[(sources < 0) | (sources >= g.n)][0]
        raise ValueError(f"source {int(bad)} out of range")
    miss = _locality(g, miss)
    n = g.n
    deg = g.degrees.astype(np.int64)

    dist = np.full((n, s), -1, dtype=np.int32)
    cols = np.arange(s)
    dist[sources, cols] = 0
    stats = [BFSStats(source=int(src)) for src in sources]
    edges_unexplored = (g.nnz - deg[sources]).astype(np.float64)
    bottom_up = np.zeros(s, dtype=bool)  # per-column direction state

    rows = np.unique(sources)
    F = np.zeros((len(rows), s), dtype=bool)
    F[np.searchsorted(rows, sources), cols] = True

    level = 0
    while len(rows):
        level += 1
        degr = deg[rows]
        active = F.any(axis=0)
        frontier_edges = degr @ F  # per-column frontier edge volume
        frontier_size = F.sum(axis=0)

        # Per-column Beamer heuristic — the exact branch structure of
        # bfs_distances (td->bu and bu->td are mutually exclusive).
        if np.isfinite(alpha):
            to_bu = active & ~bottom_up & (frontier_edges > edges_unexplored / alpha)
        else:
            to_bu = np.zeros(s, dtype=bool)
        to_td = active & bottom_up & (frontier_size < n / beta)
        bottom_up[to_bu] = True
        bottom_up[to_td] = False

        td_cols = np.flatnonzero(active & ~bottom_up)
        bu_cols = np.flatnonzero(active & bottom_up)

        pieces: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        if len(td_cols):
            targets, disc, cost = _topdown_level(
                g, rows, F, td_cols, dist, level, miss
            )
            pieces.append((targets, disc, td_cols))
            if ledger is not None:
                ledger.add(cost)
        if len(bu_cols):
            targets, disc, cost = _bottomup_level(
                g, rows, F, bu_cols, dist, level, miss, stats
            )
            pieces.append((targets, disc, bu_cols))
            if ledger is not None:
                ledger.add(cost)

        for c in td_cols:
            stats[c].edges_topdown += int(frontier_edges[c])
        for c in np.flatnonzero(active):
            stats[c].directions.append("bu" if bottom_up[c] else "td")
            stats[c].levels += 1
        edges_unexplored[active] -= frontier_edges[active]

        # Rebuild the (rows, F) frontier from this level's discoveries.
        # Each piece's targets are already sorted; merging two sorted
        # lists is the only case that needs a union.
        if not pieces:
            new_rows = np.zeros(0, dtype=np.int64)
        elif len(pieces) == 1:
            new_rows = pieces[0][0]
        else:
            new_rows = np.union1d(pieces[0][0], pieces[1][0])
        F = np.zeros((len(new_rows), s), dtype=bool)
        for targets, disc, group in pieces:
            if len(targets) == 0:
                continue
            idx = np.searchsorted(new_rows, targets)
            F[idx[:, None], group[None, :]] = disc
        keep = F.any(axis=1)
        rows = new_rows[keep]
        F = F[keep]

    for c in range(s):
        stats[c].reached = int(np.count_nonzero(dist[:, c] >= 0))
    return dist, stats


def run_sources_batched(
    g: CSRGraph,
    sources: np.ndarray,
    *,
    ledger: Ledger | None = None,
    subphase: str = "traversal",
) -> MultiSourceResult:
    """Batched drop-in for :func:`~repro.bfs.runner.run_sources`.

    Same ``(n, s)`` float64 distance matrix and per-column stats, one
    frontier-matrix sweep instead of ``s`` sequential traversals.
    """
    sources = np.asarray(sources, dtype=np.int64)
    dist, stats = batched_bfs_distances(g, sources, ledger=_sub(ledger, subphase))
    B = dist.astype(np.float64)
    if ledger is not None:
        # Write-back of the whole distance matrix into B (one pass,
        # versus one per column on the per-source path).
        ledger.add(
            map_cost(g.n * len(sources), flops_per_elem=1.0, bytes_per_elem=I32 + F64),
            subphase=subphase,
        )
    return MultiSourceResult(B, sources, stats)
