"""Frontier utilities shared by the BFS kernels.

A frontier is held in two interchangeable representations, as in the GAP
direction-optimizing BFS: a *sparse queue* (sorted vertex id array) used
by top-down steps, and a *dense bitmap* used by bottom-up steps.  The
conversion costs are charged to the machine model by the callers.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph

__all__ = ["gather_neighbors", "queue_to_bitmap", "bitmap_to_queue", "UNVISITED"]

UNVISITED = np.int32(-1)


def gather_neighbors(
    g: CSRGraph, vertices: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Concatenated adjacency of ``vertices``.

    Returns ``(neighbors, counts, seg_starts)`` where ``neighbors`` is the
    concatenation of every adjacency list, ``counts[i]`` is the degree of
    ``vertices[i]`` and ``seg_starts[i]`` is the offset of its segment in
    ``neighbors``.  Fully vectorized; this is the core gather primitive
    of every level-synchronous step.
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    counts = (g.indptr[vertices + 1] - g.indptr[vertices]).astype(np.int64)
    seg_starts = np.concatenate(([0], np.cumsum(counts)[:-1])) if len(counts) else np.zeros(0, np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=g.indices.dtype), counts, seg_starts
    starts = np.repeat(g.indptr[vertices], counts)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(seg_starts, counts)
    return g.indices[starts + offsets], counts, seg_starts


def queue_to_bitmap(queue: np.ndarray, n: int) -> np.ndarray:
    """Dense boolean membership array for a sparse vertex queue."""
    bitmap = np.zeros(n, dtype=bool)
    bitmap[queue] = True
    return bitmap


def bitmap_to_queue(bitmap: np.ndarray) -> np.ndarray:
    """Sorted vertex ids set in a dense boolean frontier."""
    return np.flatnonzero(bitmap).astype(np.int64)
