"""Per-level BFS tracing — the GAP verbose mode, structured.

The direction-optimizing heuristic's behaviour (when it flips to
bottom-up, how big the frontiers get, how much work each level does) is
what Figures 4 and 5's BFS analysis hinges on.  This tracer re-runs a
traversal while recording one :class:`LevelTrace` per level, giving the
benchmarks and any curious user the same per-level view GAP prints with
``-v``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.csr import CSRGraph
from .bottomup import bottomup_step
from .direction_optimizing import ALPHA, BETA
from .frontier import queue_to_bitmap
from .topdown import topdown_step

__all__ = ["LevelTrace", "trace_bfs", "format_trace"]


@dataclass(frozen=True)
class LevelTrace:
    """One level of a traced traversal."""

    level: int
    direction: str  # "td" | "bu"
    frontier_size: int
    frontier_edges: int
    edges_examined: int
    discovered: int


def trace_bfs(
    g: CSRGraph,
    source: int,
    *,
    alpha: float = ALPHA,
    beta: float = BETA,
) -> tuple[np.ndarray, list[LevelTrace]]:
    """Run a direction-optimizing BFS and record one trace per level.

    Returns ``(dist, traces)``; the distances are identical to
    :func:`repro.bfs.bfs_distances` with the same parameters.
    """
    if not 0 <= source < g.n:
        raise ValueError("source out of range")
    from ..graph.gaps import miss_rate

    miss = g._cache.setdefault("miss_rate", miss_rate(g))
    dist = np.full(g.n, -1, dtype=np.int32)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    direction = "td"
    edges_unexplored = g.nnz - g.degree(source)
    traces: list[LevelTrace] = []
    level = 0
    while len(frontier):
        level += 1
        frontier_edges = int((g.indptr[frontier + 1] - g.indptr[frontier]).sum())
        if (
            direction == "td"
            and np.isfinite(alpha)
            and frontier_edges > edges_unexplored / alpha
        ):
            direction = "bu"
        elif direction == "bu" and len(frontier) < g.n / beta:
            direction = "td"
        size = len(frontier)
        if direction == "td":
            nxt, edges, _ = topdown_step(g, frontier, dist, level, miss)
        else:
            bitmap = queue_to_bitmap(frontier, g.n)
            nxt, edges, _ = bottomup_step(g, bitmap, dist, level, miss)
        traces.append(
            LevelTrace(
                level=level,
                direction=direction,
                frontier_size=size,
                frontier_edges=frontier_edges,
                edges_examined=edges,
                discovered=len(nxt),
            )
        )
        edges_unexplored -= frontier_edges
        frontier = nxt
    return dist, traces


def format_trace(traces: list[LevelTrace]) -> str:
    """Render a trace as the familiar per-level table."""
    lines = [
        f"{'lvl':>4} {'dir':>4} {'frontier':>9} {'f-edges':>9}"
        f" {'examined':>9} {'found':>7}",
        "-" * 48,
    ]
    for t in traces:
        lines.append(
            f"{t.level:>4} {t.direction:>4} {t.frontier_size:>9}"
            f" {t.frontier_edges:>9} {t.edges_examined:>9} {t.discovered:>7}"
        )
    total = sum(t.edges_examined for t in traces)
    lines.append(f"{'':>23} total examined: {total}")
    return "\n".join(lines)
