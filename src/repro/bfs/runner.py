"""Multi-source BFS orchestration for the HDE BFS phase.

Two strategies from the paper:

* **Default (k-centers)** — traversals run one after another, each BFS
  internally parallel (per-level fork-join regions).  Between traversals
  the farthest-vertex reduction ("BFS: Other" in Table 1) selects the
  next source.
* **Random pivots (Table 6)** — sources are chosen up front uniformly at
  random and the ``s`` traversals run *concurrently*, one per thread,
  each traversal sequential inside.  No per-level barriers, so
  high-diameter and small graphs speed up dramatically (the paper
  measures 1.4x to 10.1x on the BFS phase with 30 sources).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graph.csr import CSRGraph
from ..parallel.costs import KernelCost, Ledger
from ..parallel.primitives import F64, I32, map_cost, reduce_cost
from .direction_optimizing import BFSStats, bfs_distances

__all__ = ["MultiSourceResult", "run_sources", "run_sources_concurrent", "farthest_update_cost"]


@dataclass
class MultiSourceResult:
    """Distance matrix and per-traversal statistics."""

    distances: np.ndarray  # float64[n, s], column i = BFS from sources[i]
    sources: np.ndarray
    stats: list[BFSStats] = field(default_factory=list)

    @property
    def n(self) -> int:
        return self.distances.shape[0]

    @property
    def s(self) -> int:
        return self.distances.shape[1]


def farthest_update_cost(n: int) -> KernelCost:
    """Cost of one min-update plus argmax sweep over the distance vector.

    This is the "BFS: Other" row of Table 1: ``O(n)`` work, ``log n``
    depth for the max-reduction, one pass streaming the running-minimum
    array and the fresh distance column.
    """
    return map_cost(n, flops_per_elem=1.0, bytes_per_elem=3 * I32) + reduce_cost(
        n, flops_per_elem=1.0, bytes_per_elem=I32
    )


def run_sources(
    g: CSRGraph,
    sources: np.ndarray,
    *,
    ledger: Ledger | None = None,
    subphase_traversal: str = "traversal",
    sequential: bool = False,
) -> MultiSourceResult:
    """Run one parallel BFS per source, sequentially over sources.

    Distances are stored column-major conceptually (each traversal fills
    one column, paper Algorithm 3 line 2); we keep a C-contiguous
    ``(n, s)`` float64 matrix, whose columns are the ``b_i`` vectors.
    """
    sources = np.asarray(sources, dtype=np.int64)
    B = np.empty((g.n, len(sources)), dtype=np.float64)
    stats: list[BFSStats] = []
    for i, src in enumerate(sources):
        dist, st = bfs_distances(
            g, int(src), ledger=_sub(ledger, subphase_traversal), miss=None,
            sequential=sequential,
        )
        B[:, i] = dist
        stats.append(st)
        if ledger is not None:
            # Write-back of the distance column into B.
            ledger.add(
                map_cost(g.n, flops_per_elem=1.0, bytes_per_elem=I32 + F64),
                subphase=subphase_traversal,
                sequential=sequential,
            )
    return MultiSourceResult(B, sources, stats)


class _SubLedger:
    """Ledger proxy that forces a fixed subphase tag on every record."""

    def __init__(self, ledger: Ledger, subphase: str):
        self._ledger = ledger
        self._subphase = subphase

    def add(self, cost: KernelCost, subphase: str = "", *, sequential: bool = False) -> None:
        self._ledger.add(cost, subphase=self._subphase, sequential=sequential)

    @property
    def current_phase(self) -> str:
        return self._ledger.current_phase

    def phase(self, name: str):
        return self._ledger.phase(name)


def _sub(ledger: Ledger | None, subphase: str):
    if ledger is None:
        return None
    return _SubLedger(ledger, subphase)


def run_sources_concurrent(
    g: CSRGraph,
    sources: np.ndarray,
    *,
    ledger: Ledger | None = None,
    subphase: str = "traversal",
) -> MultiSourceResult:
    """Run all traversals concurrently, one sequential BFS per thread.

    Cost model: the batch is one parallel region whose *work* is the sum
    over traversals and whose *depth* is the largest single traversal
    (parallelism cannot exceed the number of sources).  No per-level
    barriers are paid — the entire advantage of this strategy.
    """
    sources = np.asarray(sources, dtype=np.int64)
    B = np.empty((g.n, len(sources)), dtype=np.float64)
    stats: list[BFSStats] = []
    batch = KernelCost()
    deepest = KernelCost()
    for i, src in enumerate(sources):
        probe = Ledger()
        with probe.phase("bfs"):
            dist, st = bfs_distances(
                g, int(src), ledger=probe, miss=None, sequential=False
            )
        B[:, i] = dist
        stats.append(st)
        one = probe.total().parallel
        one = KernelCost(  # strip the per-level barriers: sequential inside
            work=one.work + g.n,  # + column write-back
            depth=one.depth,
            bytes_streamed=one.bytes_streamed + g.n * (I32 + F64),
            random_lines=one.random_lines,
            regions=0,
        )
        batch = batch + one
        if one.work > deepest.work:
            deepest = one
    if ledger is not None:
        ledger.add(
            KernelCost(
                work=batch.work,
                # Critical path: one full traversal's work is serial.
                depth=deepest.work,
                bytes_streamed=batch.bytes_streamed,
                random_lines=batch.random_lines,
                regions=1,
            ),
            subphase=subphase,
        )
    return MultiSourceResult(B, sources, stats)
