"""Direction-optimizing BFS (Beamer et al.), GAP-style, with distances.

Heuristic (GAP defaults ``alpha = 15``, ``beta = 18``):

* switch top-down -> bottom-up when the edges to scout from the frontier
  exceed ``edges_unexplored / alpha``;
* switch bottom-up -> top-down when the frontier shrinks below
  ``n / beta``.

The traversal records a :class:`KernelCost` per level (one fork-join
region each — the depth bound of Table 1 carries the level count) plus
the representation conversions, and reports per-level statistics so the
benchmarks can show the measured work-reduction factor ``gamma``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from ..graph.csr import CSRGraph
from ..parallel.costs import KernelCost, Ledger
from ..parallel.primitives import I64, stream_cost
from .bottomup import bottomup_step
from .frontier import bitmap_to_queue, queue_to_bitmap
from .topdown import topdown_step

__all__ = [
    "BFSStats",
    "bfs_distances",
    "bfs_topdown_only",
    "bfs_sequential_cost",
    "graph_miss_rate",
]

ALPHA = 15.0
BETA = 18.0

#: Guards the per-graph miss-rate memo: concurrent traversals sharing one
#: CSRGraph (random-concurrent pivots, the serving engine's thread pool)
#: must not each recompute the gap analysis, and a racy double-write of
#: ``g._cache["miss_rate"]`` would make concurrently recorded costs
#: disagree about locality mid-run.  One process-wide lock is enough: the
#: computation is rare (once per graph) and cheap relative to a traversal.
_MISS_LOCK = threading.Lock()


@dataclass
class BFSStats:
    """Per-traversal measurements."""

    source: int
    levels: int = 0
    edges_topdown: int = 0
    edges_bottomup: int = 0
    reached: int = 0
    directions: list[str] = field(default_factory=list)

    @property
    def edges_examined(self) -> int:
        return self.edges_topdown + self.edges_bottomup

    def gamma(self, m: int) -> float:
        """Measured work-reduction factor vs. examining all 2m entries."""
        return self.edges_examined / (2 * m) if m else 0.0


def graph_miss_rate(g: CSRGraph) -> float:
    """Memoized DRAM miss-rate estimate of ``g`` (thread-safe).

    Computed once per graph under a lock and shared by every traversal —
    the ``s`` columns of a batched sweep, concurrent per-source runs on
    the engine's pool — so all of them price irregular accesses with the
    same locality number.
    """
    cached = g._cache.get("miss_rate")
    if cached is not None:
        return cached
    with _MISS_LOCK:
        cached = g._cache.get("miss_rate")
        if cached is None:
            from ..graph.gaps import miss_rate

            cached = g._cache["miss_rate"] = miss_rate(g)
    return cached


def _locality(g: CSRGraph, miss: float | None) -> float:
    if miss is not None:
        return miss
    return graph_miss_rate(g)


def bfs_distances(
    g: CSRGraph,
    source: int,
    *,
    ledger: Ledger | None = None,
    miss: float | None = None,
    alpha: float = ALPHA,
    beta: float = BETA,
    sequential: bool = False,
) -> tuple[np.ndarray, BFSStats]:
    """Distances from ``source`` by direction-optimizing BFS.

    Returns ``(dist, stats)`` with ``dist`` an ``int32[n]`` array holding
    hop counts and ``-1`` for unreachable vertices.  Costs are recorded
    into ``ledger`` (if given) under the caller's open phase; pass
    ``sequential=True`` to flag them as single-thread work (used by the
    prior-implementation baseline, which does not parallelize BFS).
    """
    if not 0 <= source < g.n:
        raise ValueError(f"source {source} out of range")
    miss = _locality(g, miss)
    dist = np.full(g.n, -1, dtype=np.int32)
    dist[source] = 0
    stats = BFSStats(source=source)
    frontier = np.array([source], dtype=np.int64)
    direction = "td"
    edges_unexplored = g.nnz - g.degree(source)
    level = 0
    while len(frontier):
        level += 1
        frontier_edges = int(
            (g.indptr[frontier + 1] - g.indptr[frontier]).sum()
        )
        if (
            direction == "td"
            and np.isfinite(alpha)
            and frontier_edges > edges_unexplored / alpha
        ):
            direction = "bu"
        elif direction == "bu" and len(frontier) < g.n / beta:
            direction = "td"
        if direction == "td":
            frontier, edges, cost = topdown_step(g, frontier, dist, level, miss)
            stats.edges_topdown += edges
        else:
            bitmap = queue_to_bitmap(frontier, g.n)
            if ledger is not None:
                # Queue -> bitmap conversion streams the frontier + bitmap.
                ledger.add(
                    stream_cost(
                        len(frontier) * I64 + g.n,
                        regions=0 if sequential else 1,
                    ),
                    sequential=sequential,
                )
            frontier, edges, cost = bottomup_step(g, bitmap, dist, level, miss)
            stats.edges_bottomup += edges
        stats.directions.append(direction)
        stats.levels += 1
        edges_unexplored -= frontier_edges
        if ledger is not None:
            if sequential:
                # A single-threaded traversal pays no barriers; its cost
                # is pure work/latency charged at p = 1.
                cost = KernelCost(
                    work=cost.work,
                    depth=cost.depth,
                    bytes_streamed=cost.bytes_streamed,
                    random_lines=cost.random_lines,
                    regions=0,
                )
            ledger.add(cost, sequential=sequential)
    stats.reached = int(np.count_nonzero(dist >= 0))
    return dist, stats


def bfs_topdown_only(
    g: CSRGraph,
    source: int,
    *,
    ledger: Ledger | None = None,
    miss: float | None = None,
    sequential: bool = False,
) -> tuple[np.ndarray, BFSStats]:
    """Classical level-synchronous BFS (no direction optimization).

    Used as the ablation baseline showing what direction optimization
    buys on low-diameter skewed graphs.
    """
    return bfs_distances(
        g,
        source,
        ledger=ledger,
        miss=miss,
        alpha=np.inf,  # never switch to bottom-up
        sequential=sequential,
    )


#: Per-edge instruction cost of a *plain* sequential queue BFS: no
#: compare-and-swap, no shared frontier queues, no direction heuristics.
SEQ_BFS_OPS = 4.0
#: A simple sequential BFS overlaps its misses better than the charged
#: parallel kernels (its loop is a tight scan the prefetcher and reorder
#: buffer handle well); the paper-scale evidence — a plain sequential BFS
#: at ~31 ns/edge versus GAP's ~95 ns/examined-edge at one thread —
#: implies roughly 3x more memory-level parallelism.
SEQ_BFS_MISS_OVERLAP = 0.35


def bfs_sequential_cost(stats: BFSStats, g: CSRGraph) -> KernelCost:
    """Cost of one *plain sequential* traversal covering all 2m edges.

    Used by the prior-implementation baseline (Table 3), which performs
    classical FIFO-queue BFS with no parallelism and no direction
    optimization: every adjacency entry is examined exactly once.
    """
    miss = _locality(g, None)
    edges = g.nnz  # no direction optimization: the full 2m entries
    return KernelCost(
        work=SEQ_BFS_OPS * edges + 8.0 * stats.reached,
        bytes_streamed=edges * 4,
        random_lines=(edges + stats.reached) * miss * SEQ_BFS_MISS_OVERLAP,
        regions=0,
    )
