"""Top-down level-synchronous BFS step.

The classical push step: every vertex in the current frontier scans its
adjacency list and claims unvisited neighbors for the next level.  The
GAP implementation resolves races with compare-and-swap on the parent
array; our vectorized equivalent computes the same set (``np.unique`` of
unvisited neighbors) and, like the paper's modification, writes the
*distance* array without extra atomics (every writer writes the same
level value, so the race is benign).
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from ..parallel.costs import KernelCost
from ..parallel.primitives import F64, I32, I64, LINE_BYTES
from .frontier import gather_neighbors

__all__ = ["topdown_step", "TD_OPS", "sched_chunk", "chunk_depth"]

#: Scalar instructions per inspected edge in an OpenMP top-down step:
#: index load, visited check, compare-and-swap, queue push amortized.
#: The *instruction* cost is modest (~15 ns/edge); on low-locality graphs
#: the per-edge price is dominated by the additive DRAM-stall term, which
#: is what makes urand traversals slow at 1 core and near-linearly
#: scalable at 28 (paper Figure 4), while locality-friendly graphs
#: (sk-2005) traverse cheaply and shift the profile toward DOrtho.
TD_OPS = 8.0


def sched_chunk(n: int) -> int:
    """Dynamic-scheduling chunk size, scaled to the graph size.

    GAP's parallel loops use ``schedule(dynamic, 64)``.  A 64-vertex
    chunk against a 24M-vertex road network leaves thousands of chunks
    per frontier; against our ~10^3-10^4x smaller reproduction graphs it
    would serialize every level.  We preserve the dimensionless quantity
    that matters — chunks per frontier — by shrinking the chunk size
    proportionally, clamped to [4, 64].
    """
    return max(4, min(64, n // 5000))


#: Ceiling on the fraction of a level's work one scheduling unit may
#: contribute to the critical path.  Work stealing and chunk splitting on
#: a real runtime bound the damage a single hub's chunk can do; the value
#: is calibrated so R-MAT-family graphs reproduce the paper's measured
#: ~11-15x BFS scaling on 28 cores (Figure 4) instead of collapsing to
#: the raw hub/level ratio, which is a down-scaling artifact (R-MAT max
#: degree shrinks much more slowly than m).
HUB_IMBALANCE_CAP = 0.12


def chunk_depth(counts: np.ndarray, chunk: int, ops_per_edge: float) -> float:
    """Critical-path work under dynamic chunked scheduling.

    Two effects bound a level's parallelism:

    * **few chunks** — the frontier is dealt out in ``chunk``-vertex
      units, so at most ``ceil(k / chunk)`` threads can be busy; the
      critical path is at least the mean chunk load.  This is what
      flattens road_usa (tiny frontiers) together with the per-level
      barrier.
    * **heavy chunks** — a hub's chunk is an indivisible unit; the
      critical path is at least its load, capped at
      ``HUB_IMBALANCE_CAP`` of the level (see above).  This is the load
      imbalance that keeps skewed (kron/twitter) and bursty-degree (web)
      graphs below urand's near-linear scaling in Figure 4.
    """
    k = len(counts)
    if k == 0:
        return 0.0
    # Dynamic runtimes shrink the chunk when the iteration space is small
    # (OpenMP guided/dynamic degenerate to one-vertex units); never let
    # granularity alone serialize a frontier that has >= 64 vertices.
    chunk = max(1, min(chunk, k // 64)) if k >= 64 else 1
    pad = (-k) % chunk
    if pad:
        counts = np.concatenate([counts, np.zeros(pad, dtype=counts.dtype)])
    per_chunk = counts.reshape(-1, chunk).sum(axis=1)
    total = float(per_chunk.sum())
    mean_chunk = total / len(per_chunk)
    hub_bound = min(float(per_chunk.max()), HUB_IMBALANCE_CAP * total)
    return max(mean_chunk, hub_bound) * ops_per_edge


def topdown_step(
    g: CSRGraph,
    frontier: np.ndarray,
    dist: np.ndarray,
    level: int,
    miss: float,
) -> tuple[np.ndarray, int, KernelCost]:
    """One push level.

    Parameters
    ----------
    frontier:
        Current-level vertex ids (sorted ``int64`` array).
    dist:
        ``int32[n]`` distances, ``-1`` for unvisited; updated in place.
    level:
        Distance value assigned to newly discovered vertices.
    miss:
        DRAM miss probability for the irregular ``dist[neighbor]``
        gathers (from :func:`repro.graph.gaps.miss_rate`).

    Returns
    -------
    (next_frontier, edges_examined, cost)
    """
    nbrs, counts, _ = gather_neighbors(g, frontier)
    edges = int(counts.sum())
    if edges == 0:
        return np.zeros(0, dtype=np.int64), 0, KernelCost(regions=1)
    unvisited = dist[nbrs] < 0
    nxt = np.unique(nbrs[unvisited]).astype(np.int64)
    dist[nxt] = level
    cost = KernelCost(
        # Inspect each edge once; claimed vertices pay a queue push.
        work=TD_OPS * edges + 8.0 * (len(frontier) + len(nxt)),
        # Heaviest scheduling unit = critical path (load imbalance from
        # hub vertices and from frontiers smaller than one chunk).
        depth=chunk_depth(counts, sched_chunk(g.n), TD_OPS),
        # Sequential streams: frontier ids, indptr pairs, adjacency lists.
        bytes_streamed=len(frontier) * (I64 + 2 * I64) + edges * I32,
        # Irregular traffic: read dist[nbr] per edge, write dist for the
        # claimed set (each a cache-line touch with probability ``miss``).
        random_lines=(edges + len(nxt)) * miss,
        regions=1,
    )
    return nxt, edges, cost
