"""Level-synchronous parallel BFS with direction optimization (GAP-style)."""

from .batched import batched_bfs_distances, run_sources_batched
from .bottomup import bottomup_step
from .direction_optimizing import (
    ALPHA,
    BETA,
    BFSStats,
    bfs_distances,
    bfs_topdown_only,
    graph_miss_rate,
)
from .frontier import UNVISITED, bitmap_to_queue, gather_neighbors, queue_to_bitmap
from .parents import bfs_parents, validate_bfs_tree
from .trace import LevelTrace, format_trace, trace_bfs
from .sequential import bfs_sequential
from .runner import (
    MultiSourceResult,
    farthest_update_cost,
    run_sources,
    run_sources_concurrent,
)
from .topdown import topdown_step

__all__ = [
    "ALPHA",
    "BETA",
    "BFSStats",
    "bfs_distances",
    "bfs_topdown_only",
    "batched_bfs_distances",
    "run_sources_batched",
    "graph_miss_rate",
    "bfs_parents",
    "validate_bfs_tree",
    "LevelTrace",
    "trace_bfs",
    "format_trace",
    "bfs_sequential",
    "topdown_step",
    "bottomup_step",
    "gather_neighbors",
    "queue_to_bitmap",
    "bitmap_to_queue",
    "UNVISITED",
    "MultiSourceResult",
    "run_sources",
    "run_sources_concurrent",
    "farthest_update_cost",
]
