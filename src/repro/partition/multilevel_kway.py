"""Multilevel k-way partitioning — the ScalaPart-style pipeline.

ScalaPart (the section 4.5.4 reference) partitions with a multilevel
scheme whose coarse layout comes from a force-directed method; the paper
proposes ParHDE as the drop-in replacement.  This module assembles that
partitioner from the pieces the repository already has:

1. coarsen with heavy-edge matching (:mod:`repro.multilevel`),
2. lay out the coarsest graph with ParHDE and split it geometrically,
3. project labels back up the hierarchy,
4. FM-refine the bipartition boundary at every level (recursing for
   k > 2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.hde import parhde
from ..graph.build import induced_subgraph
from ..graph.csr import CSRGraph
from ..multilevel.coarsen import CoarseLevel
from ..multilevel.layout import build_hierarchy
from .fm import fm_refine
from .geometric import axis_split, coordinate_bisection
from .metrics import edge_cut

__all__ = ["MultilevelPartition", "multilevel_bisection", "multilevel_kway"]


@dataclass
class MultilevelPartition:
    """K-way labels plus bookkeeping from the multilevel pipeline."""

    parts: np.ndarray
    cut: float
    levels_used: int


def multilevel_bisection(
    g: CSRGraph,
    *,
    s: int = 10,
    min_size: int = 64,
    fm_passes: int = 3,
    seed: int = 0,
    target_fraction: float = 0.5,
) -> MultilevelPartition:
    """Bipartition via coarsen -> ParHDE split -> project + FM refine.

    ``target_fraction`` sets side 0's share (recursive k-way splits pass
    uneven fractions for odd part counts).
    """
    if g.n < 2:
        raise ValueError("cannot bisect fewer than 2 vertices")
    if not 0 < target_fraction < 1:
        raise ValueError("target_fraction must be in (0, 1)")
    levels: list[CoarseLevel] = build_hierarchy(
        g, min_size=min_size, seed=seed
    )
    coarsest = levels[-1].graph if levels else g
    left = min(
        max(int(round(target_fraction * coarsest.n)), 1), coarsest.n - 1
    )
    parts: np.ndarray | None = None
    if coarsest.n >= 4:
        try:
            layout = parhde(
                coarsest.unweighted(),
                min(s, coarsest.n - 1),
                seed=seed,
            )
            ids = np.arange(coarsest.n, dtype=np.int64)
            left_ids, _ = axis_split(layout.coords, ids, left)
            parts = np.ones(coarsest.n, dtype=np.int64)
            parts[left_ids] = 0
        except ValueError:
            # Disconnected coarse graphs arise inside k-way recursion;
            # fall back to an index split and let FM clean it up.
            parts = None
    if parts is None:
        parts = (np.arange(coarsest.n, dtype=np.int64) >= left).astype(
            np.int64
        )
    parts, _ = fm_refine(
        coarsest, parts, max_passes=fm_passes,
        target_fraction=target_fraction,
    )
    # Project back up, refining at each level.  (Iterate by index:
    # CoarseLevel holds arrays, so equality-based list lookups are out.)
    for idx in range(len(levels) - 1, -1, -1):
        parts = parts[levels[idx].mapping]
        fine = levels[idx - 1].graph if idx > 0 else g
        parts, _ = fm_refine(
            fine, parts, max_passes=fm_passes,
            target_fraction=target_fraction,
        )
    return MultilevelPartition(
        parts=parts, cut=edge_cut(g, parts), levels_used=len(levels)
    )


def multilevel_kway(
    g: CSRGraph,
    k: int,
    *,
    s: int = 10,
    min_size: int = 64,
    fm_passes: int = 3,
    seed: int = 0,
) -> MultilevelPartition:
    """Recursive multilevel bisection into ``k`` near-equal parts."""
    if k < 1:
        raise ValueError("k must be >= 1")
    if k > g.n:
        raise ValueError(f"cannot cut {g.n} vertices into {k} parts")
    parts = np.zeros(g.n, dtype=np.int64)
    levels_used = 0

    def recurse(ids: np.ndarray, label: int, nparts: int, depth: int) -> None:
        nonlocal levels_used
        if nparts == 1 or len(ids) <= 1:
            parts[ids] = label
            return
        sub = induced_subgraph(g, ids)
        left_parts = nparts // 2
        # Disconnected pieces are legal inside a recursion; FM and the
        # geometric splitter both tolerate them.
        bi = multilevel_bisection(
            sub,
            s=s,
            min_size=min_size,
            fm_passes=fm_passes,
            seed=seed + depth,
            target_fraction=left_parts / nparts,
        )
        levels_used = max(levels_used, bi.levels_used)
        side0 = ids[bi.parts == 0]
        side1 = ids[bi.parts == 1]
        recurse(side0, label, left_parts, depth + 1)
        recurse(side1, label + left_parts, nparts - left_parts, depth + 1)

    recurse(np.arange(g.n, dtype=np.int64), 0, k, 0)
    return MultilevelPartition(
        parts=parts, cut=edge_cut(g, parts), levels_used=levels_used
    )
