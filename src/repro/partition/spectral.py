"""Spectral bisection driven by ParHDE coordinates.

Classical spectral partitioning splits on the sign (or median) of the
Fiedler vector; ParHDE's first axis is a fast approximation of the
degree-normalized equivalent, so a median split of it is a one-liner
away from the layout — the "use ParHDE instead" suggestion of
section 4.5.4 made concrete.
"""

from __future__ import annotations

import numpy as np

from ..core.hde import parhde
from ..graph.csr import CSRGraph

__all__ = ["spectral_bisection", "median_split"]


def median_split(values: np.ndarray) -> np.ndarray:
    """0/1 labels splitting at the median (exactly balanced; ties by id)."""
    n = len(values)
    order = np.lexsort((np.arange(n), values))
    parts = np.zeros(n, dtype=np.int64)
    parts[order[n // 2 :]] = 1
    return parts


def spectral_bisection(
    g: CSRGraph,
    *,
    coords: np.ndarray | None = None,
    s: int = 10,
    seed: int = 0,
) -> np.ndarray:
    """Balanced bipartition on the first ParHDE axis.

    Pass precomputed ``coords`` to reuse an existing layout; otherwise a
    ParHDE run with ``s`` pivots supplies the axis.
    """
    if coords is None:
        coords = parhde(g, s=max(s, 2), seed=seed).coords
    if coords.shape[0] != g.n:
        raise ValueError("coords rows must equal n")
    return median_split(coords[:, 0])
