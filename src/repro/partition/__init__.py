"""Graph partitioning on ParHDE coordinates (section 4.5.4).

Pipeline: layout -> geometric or spectral split -> coordinate-guided
Fiduccia-Mattheyses refinement -> quality metrics and colored
visualizations (see :func:`repro.drawing.partition_edge_colors`).
"""

from .fm import FMStats, boundary_vertices, coordinate_band, fm_refine
from .kmeans import KMeansResult, kmeans, spectral_clustering
from .label_propagation import LabelPropagationResult, label_propagation
from .multilevel_kway import (
    MultilevelPartition,
    multilevel_bisection,
    multilevel_kway,
)
from .geometric import axis_split, coordinate_bisection
from .metrics import balance, conductance, cut_fraction, edge_cut, part_sizes
from .spectral import median_split, spectral_bisection

__all__ = [
    "edge_cut",
    "cut_fraction",
    "balance",
    "part_sizes",
    "conductance",
    "coordinate_bisection",
    "axis_split",
    "spectral_bisection",
    "median_split",
    "fm_refine",
    "FMStats",
    "boundary_vertices",
    "coordinate_band",
    "LabelPropagationResult",
    "label_propagation",
    "KMeansResult",
    "kmeans",
    "spectral_clustering",
    "MultilevelPartition",
    "multilevel_bisection",
    "multilevel_kway",
]
