"""Label-propagation community detection.

Section 4.5.4: "We have used the layouts to visualize output of graph
partitioning and clustering algorithms".  This is the clustering
algorithm for that pipeline — Raghavan et al.'s label propagation: every
vertex repeatedly adopts the most frequent label among its (weighted)
neighbors until labels stabilize.  Near-linear per sweep, embarrassingly
parallel in its synchronous form (which we implement, with a
deterministic lowest-label tie-break so results are reproducible).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.csr import CSRGraph

__all__ = ["LabelPropagationResult", "label_propagation"]


@dataclass
class LabelPropagationResult:
    """Community labels (dense ids) and convergence info."""

    labels: np.ndarray  # int64[n], dense 0..k-1
    sweeps: int
    converged: bool

    @property
    def communities(self) -> int:
        return int(self.labels.max()) + 1 if len(self.labels) else 0


def _densify(labels: np.ndarray) -> np.ndarray:
    _, dense = np.unique(labels, return_inverse=True)
    return dense.astype(np.int64)


def label_propagation(
    g: CSRGraph,
    *,
    max_sweeps: int = 50,
    seed: int = 0,
) -> LabelPropagationResult:
    """Synchronous weighted label propagation.

    Each sweep processes vertices in a random (per-sweep) order against
    the *current* label array; a vertex adopts the label with the
    largest total incident edge weight, breaking ties toward the
    smallest label id.  Stops when a sweep changes nothing.
    """
    if max_sweeps < 1:
        raise ValueError("max_sweeps must be >= 1")
    n = g.n
    labels = np.arange(n, dtype=np.int64)
    if n == 0:
        return LabelPropagationResult(labels, 0, True)
    rng = np.random.default_rng(seed)
    indptr, indices = g.indptr, g.indices
    weights = g.weights
    converged = False
    sweeps = 0
    for _ in range(max_sweeps):
        sweeps += 1
        changed = 0
        for v in rng.permutation(n):
            lo, hi = indptr[v], indptr[v + 1]
            if lo == hi:
                continue
            nbr_labels = labels[indices[lo:hi]]
            w = (
                weights[lo:hi]
                if weights is not None
                else np.ones(hi - lo)
            )
            uniq, inv = np.unique(nbr_labels, return_inverse=True)
            totals = np.zeros(len(uniq))
            np.add.at(totals, inv, w)
            best = uniq[totals == totals.max()].min()
            if best != labels[v]:
                labels[v] = best
                changed += 1
        if changed == 0:
            converged = True
            break
    return LabelPropagationResult(_densify(labels), sweeps, converged)
