"""K-means and spectral clustering on layout coordinates.

Spectral clustering is the classical companion of the eigenvectors HDE
approximates: embed on the first ``k`` degree-normalized eigenvectors
and run k-means.  With ParHDE supplying the embedding this becomes a
fast, fully self-contained clustering pipeline — the second half of the
section 4.5.4 story (label propagation being the first).

The k-means itself is a from-scratch vectorized Lloyd's algorithm with
k-means++ seeding and empty-cluster re-seeding.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.csr import CSRGraph

__all__ = ["KMeansResult", "kmeans", "spectral_clustering"]


@dataclass
class KMeansResult:
    """Cluster labels, centers, and convergence information."""

    labels: np.ndarray  # int64[n]
    centers: np.ndarray  # (k, d)
    inertia: float  # sum of squared distances to assigned centers
    iterations: int
    converged: bool


def _plusplus_init(
    X: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread the initial centers out."""
    n = X.shape[0]
    centers = np.empty((k, X.shape[1]))
    centers[0] = X[rng.integers(n)]
    d2 = ((X - centers[0]) ** 2).sum(axis=1)
    for j in range(1, k):
        total = d2.sum()
        if total <= 0:
            centers[j] = X[rng.integers(n)]
            continue
        probs = d2 / total
        centers[j] = X[rng.choice(n, p=probs)]
        d2 = np.minimum(d2, ((X - centers[j]) ** 2).sum(axis=1))
    return centers


def kmeans(
    X: np.ndarray,
    k: int,
    *,
    max_iter: int = 100,
    tol: float = 1e-7,
    seed: int = 0,
) -> KMeansResult:
    """Lloyd's algorithm with k-means++ seeding.

    Empty clusters are re-seeded at the point farthest from its current
    center, so exactly ``k`` clusters always come back.
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ValueError("X must be 2-D")
    n = X.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"need 1 <= k <= {n}, got {k}")
    rng = np.random.default_rng(seed)
    centers = _plusplus_init(X, k, rng)
    labels = np.zeros(n, dtype=np.int64)
    inertia = np.inf
    converged = False
    it = 0
    for it in range(1, max_iter + 1):
        # Assign: squared distances to every center.
        d2 = ((X[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        labels = d2.argmin(axis=1)
        new_inertia = float(d2[np.arange(n), labels].sum())
        # Update.
        for j in range(k):
            mask = labels == j
            if mask.any():
                centers[j] = X[mask].mean(axis=0)
            else:
                # Re-seed an empty cluster at the worst-served point.
                worst = int(d2[np.arange(n), labels].argmax())
                centers[j] = X[worst]
                labels[worst] = j
        if abs(inertia - new_inertia) <= tol * max(inertia, 1.0):
            inertia = new_inertia
            converged = True
            break
        inertia = new_inertia
    return KMeansResult(
        labels=labels,
        centers=centers,
        inertia=inertia,
        iterations=it,
        converged=converged,
    )


def spectral_clustering(
    g: CSRGraph,
    k: int,
    *,
    s: int | None = None,
    seed: int = 0,
    kmeans_seed: int = 0,
) -> KMeansResult:
    """Cluster a graph via k-means on a ParHDE embedding.

    Embeds on ``max(2, k - 1)`` approximate degree-normalized
    eigenvectors (the classical spectral-clustering dimension), each
    D-normalized by construction, then runs k-means.

    Parameters
    ----------
    s:
        Subspace dimension for ParHDE; defaults to ``max(10, 2k)``.
    """
    from ..core.hde import parhde

    if k < 1:
        raise ValueError("k must be >= 1")
    dims = max(2, k - 1)
    s_eff = s if s is not None else max(10, 2 * k)
    s_eff = min(s_eff, g.n - 1)
    res = parhde(g, s_eff, dims=dims, seed=seed)
    return kmeans(res.coords, k, seed=kmeans_seed)
