"""Partition quality metrics: cut, balance, conductance.

Section 4.5.4 positions ParHDE coordinates as input to geometric graph
partitioners (ScalaPart-style) and as a work-reduction hint for
Kernighan-Lin refinement; this package implements that pipeline, and
these metrics quantify it.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph

__all__ = ["edge_cut", "cut_fraction", "balance", "part_sizes", "conductance"]


def _check(g: CSRGraph, parts: np.ndarray) -> np.ndarray:
    parts = np.asarray(parts, dtype=np.int64)
    if len(parts) != g.n:
        raise ValueError("partition vector length must equal n")
    if len(parts) and parts.min() < 0:
        raise ValueError("partition labels must be nonnegative")
    return parts


def edge_cut(g: CSRGraph, parts: np.ndarray) -> float:
    """Total weight of edges whose endpoints lie in different parts."""
    parts = _check(g, parts)
    u, v = g.edge_list()
    cut = parts[u] != parts[v]
    if g.weights is None:
        return float(np.count_nonzero(cut))
    deg = g.degrees
    src = np.repeat(np.arange(g.n), deg)
    keep = src < g.indices
    return float(g.weights[keep][cut].sum())


def cut_fraction(g: CSRGraph, parts: np.ndarray) -> float:
    """Cut edges as a fraction of all edges (unweighted count)."""
    parts = _check(g, parts)
    if g.m == 0:
        return 0.0
    u, v = g.edge_list()
    return float(np.count_nonzero(parts[u] != parts[v])) / g.m


def part_sizes(parts: np.ndarray, k: int | None = None) -> np.ndarray:
    """Vertex count of each part ``0..k-1``."""
    parts = np.asarray(parts, dtype=np.int64)
    k = k if k is not None else (int(parts.max()) + 1 if len(parts) else 0)
    return np.bincount(parts, minlength=k)


def balance(parts: np.ndarray, k: int | None = None) -> float:
    """Load imbalance: ``max part size / ideal size`` (1.0 = perfect)."""
    sizes = part_sizes(parts, k)
    if len(sizes) == 0 or sizes.sum() == 0:
        return 1.0
    ideal = sizes.sum() / len(sizes)
    return float(sizes.max() / ideal)


def conductance(g: CSRGraph, parts: np.ndarray, part: int = 0) -> float:
    """Conductance of one part: cut weight over the smaller side's volume."""
    parts = _check(g, parts)
    mask = parts == part
    wdeg = g.weighted_degrees
    vol_in = float(wdeg[mask].sum())
    vol_out = float(wdeg[~mask].sum())
    denom = min(vol_in, vol_out)
    if denom == 0:
        return 1.0
    # Cut incident to this part.
    u, v = g.edge_list()
    crossing = mask[u] != mask[v]
    if g.weights is None:
        cut = float(np.count_nonzero(crossing))
    else:
        deg = g.degrees
        src = np.repeat(np.arange(g.n), deg)
        keep = src < g.indices
        cut = float(g.weights[keep][crossing].sum())
    return cut / denom
