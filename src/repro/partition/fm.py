"""Fiduccia-Mattheyses refinement of a bipartition, coordinate-guided.

The classical KL/FM local search: repeatedly move the vertex with the
best cut-gain to the other side (respecting a balance tolerance), lock
it, update its neighbors' gains, and finally keep the best prefix of the
move sequence.  Section 4.5.4 suggests layout coordinates "can be used
to reduce the work performed in the Kernighan-Lin based refinement
stages": vertices far from the separating plane almost never move, so
restricting the candidate set to a geometric band around the cut keeps
the cut quality while skipping most of the gain maintenance.  That
candidate filter is :func:`coordinate_band`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from ..graph.csr import CSRGraph
from .metrics import edge_cut

__all__ = ["FMStats", "fm_refine", "boundary_vertices", "coordinate_band"]


@dataclass
class FMStats:
    """Work and quality accounting for one refinement run."""

    passes: int = 0
    moves_applied: int = 0
    gain_updates: int = 0
    cut_before: float = 0.0
    cut_after: float = 0.0

    @property
    def improvement(self) -> float:
        return self.cut_before - self.cut_after


def boundary_vertices(g: CSRGraph, parts: np.ndarray) -> np.ndarray:
    """Vertices with at least one neighbor on the other side."""
    parts = np.asarray(parts, dtype=np.int64)
    deg = g.degrees
    src = np.repeat(np.arange(g.n), deg)
    crossing = parts[src] != parts[g.indices]
    out = np.zeros(g.n, dtype=bool)
    out[src[crossing]] = True
    return np.flatnonzero(out)


def coordinate_band(
    coords: np.ndarray, parts: np.ndarray, frac: float = 0.2
) -> np.ndarray:
    """Vertices within a band around the geometric cut plane.

    The plane is estimated from the axis that best separates the two
    sides (largest mean gap); the band keeps the ``frac`` of vertices
    closest to the midpoint between the sides' means.
    """
    parts = np.asarray(parts, dtype=np.int64)
    if not 0 < frac <= 1:
        raise ValueError("frac must be in (0, 1]")
    m0 = coords[parts == 0].mean(axis=0)
    m1 = coords[parts == 1].mean(axis=0)
    axis = int(np.argmax(np.abs(m1 - m0)))
    cutpos = (m0[axis] + m1[axis]) / 2.0
    dist = np.abs(coords[:, axis] - cutpos)
    keep = max(1, int(round(frac * len(dist))))
    return np.argsort(dist, kind="stable")[:keep].astype(np.int64)


def _gains(g: CSRGraph, parts: np.ndarray, vertices: np.ndarray) -> np.ndarray:
    """FM gain of moving each vertex: external minus internal weight."""
    out = np.empty(len(vertices))
    for i, v in enumerate(vertices):
        nbrs = g.neighbors(int(v))
        w = g.edge_weights_of(int(v))
        ext = w[parts[nbrs] != parts[v]].sum()
        out[i] = 2 * ext - w.sum()  # ext - int = ext - (total - ext)
    return out


def fm_refine(
    g: CSRGraph,
    parts: np.ndarray,
    *,
    candidates: np.ndarray | None = None,
    max_passes: int = 8,
    balance_tol: float = 0.02,
    target_fraction: float = 0.5,
) -> tuple[np.ndarray, FMStats]:
    """Refine a bipartition in place-semantics (returns a new array).

    Parameters
    ----------
    candidates:
        Optional subset of movable vertices (e.g. from
        :func:`coordinate_band` or :func:`boundary_vertices`); ``None``
        makes every vertex movable.
    max_passes:
        Outer passes; stops early when a pass yields no improvement.
    balance_tol:
        Each side must keep at least ``(fraction - balance_tol) * n``
        vertices, where ``fraction`` is its share of the target split.
    target_fraction:
        Desired share of side 0 (0.5 = balanced bisection; recursive
        k-way partitioning passes e.g. 1/3 for an odd split).

    Returns
    -------
    (parts, stats)
    """
    parts = np.asarray(parts, dtype=np.int64).copy()
    if len(parts) != g.n:
        raise ValueError("partition vector length must equal n")
    if set(np.unique(parts)) - {0, 1}:
        raise ValueError("fm_refine handles bipartitions (labels 0/1)")
    movable = (
        np.arange(g.n, dtype=np.int64)
        if candidates is None
        else np.unique(np.asarray(candidates, dtype=np.int64))
    )
    if not 0 < target_fraction < 1:
        raise ValueError("target_fraction must be in (0, 1)")
    stats = FMStats(cut_before=edge_cut(g, parts))
    min_side = (
        int((target_fraction - balance_tol) * g.n),
        int((1.0 - target_fraction - balance_tol) * g.n),
    )

    for _ in range(max_passes):
        stats.passes += 1
        side_count = np.bincount(parts, minlength=2)
        gains = dict(zip(movable.tolist(), _gains(g, parts, movable)))
        stats.gain_updates += len(movable)
        heap = [(-gain, v) for v, gain in gains.items()]
        heapq.heapify(heap)
        locked: set[int] = set()
        trail: list[tuple[int, float]] = []  # (vertex, cumulative gain)
        cum = 0.0
        best_cum, best_len = 0.0, 0

        while heap:
            neg_gain, v = heapq.heappop(heap)
            if v in locked or gains.get(v) is None:
                continue
            if -neg_gain != gains[v]:
                continue  # stale heap entry
            side = parts[v]
            if side_count[side] - 1 < min_side[side]:
                # Temporarily skip; it may become legal after opposite
                # moves. Re-push with a slight penalty to avoid spinning.
                locked.add(int(v))
                continue
            # Apply the move.
            cum += gains[v]
            parts[v] = 1 - side
            side_count[side] -= 1
            side_count[1 - side] += 1
            locked.add(int(v))
            trail.append((int(v), cum))
            stats.moves_applied += 1
            if cum > best_cum + 1e-12:
                best_cum, best_len = cum, len(trail)
            # Update unlocked neighbors' gains.
            for u, w in zip(
                g.neighbors(int(v)).tolist(),
                g.edge_weights_of(int(v)).tolist(),
            ):
                if u in locked or u not in gains:
                    continue
                # v now sits on the other side: an edge to a neighbor u
                # still on v's old side turned external (u's gain +2w);
                # an edge to a neighbor on v's new side turned internal
                # (gain -2w).  parts[v] has already been flipped here.
                delta = 2 * w if parts[u] != parts[v] else -2 * w
                gains[u] += delta
                stats.gain_updates += 1
                heapq.heappush(heap, (-gains[u], u))

        # Roll back past the best prefix.
        for v, _ in trail[best_len:]:
            parts[v] = 1 - parts[v]
        if best_cum <= 1e-12:
            break

    stats.cut_after = edge_cut(g, parts)
    return parts, stats
