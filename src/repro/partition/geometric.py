"""Geometric partitioning from layout coordinates.

The ScalaPart partitioner (section 4.5.4) computes coordinates with a
force-directed layout and partitions geometrically; the paper proposes
using ParHDE coordinates instead.  This module implements recursive
coordinate bisection (RCB): split along the widest axis at the weighted
median, recurse until ``k`` parts exist.  ``k`` need not be a power of
two — each recursion splits its capacity proportionally.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph

__all__ = ["coordinate_bisection", "axis_split"]


def axis_split(
    coords: np.ndarray, ids: np.ndarray, left_count: int
) -> tuple[np.ndarray, np.ndarray]:
    """Split ``ids`` into (left, right) of sizes (left_count, rest).

    Chooses the coordinate axis with the largest spread among ``ids``
    and cuts at the ``left_count``-th order statistic (ties broken by
    vertex id for determinism).
    """
    if not 0 < left_count < len(ids):
        raise ValueError("left_count must split the set nontrivially")
    sub = coords[ids]
    spans = sub.max(axis=0) - sub.min(axis=0)
    axis = int(np.argmax(spans))
    order = np.lexsort((ids, sub[:, axis]))
    return ids[order[:left_count]], ids[order[left_count:]]


def coordinate_bisection(
    g: CSRGraph, coords: np.ndarray, k: int
) -> np.ndarray:
    """Partition into ``k`` near-equal parts by recursive bisection.

    Returns an ``int64[n]`` label vector.  Balance is exact up to
    integer rounding (each split apportions vertices proportionally to
    the number of parts on each side).
    """
    if coords.shape[0] != g.n:
        raise ValueError("coords rows must equal n")
    if k < 1:
        raise ValueError("k must be >= 1")
    if k > g.n:
        raise ValueError(f"cannot cut {g.n} vertices into {k} parts")
    parts = np.zeros(g.n, dtype=np.int64)
    # Work list of (vertex ids, first part label, part count).
    stack: list[tuple[np.ndarray, int, int]] = [
        (np.arange(g.n, dtype=np.int64), 0, k)
    ]
    while stack:
        ids, label, nparts = stack.pop()
        if nparts == 1:
            parts[ids] = label
            continue
        left_parts = nparts // 2
        left_count = int(round(len(ids) * left_parts / nparts))
        left_count = min(max(left_count, left_parts), len(ids) - (nparts - left_parts))
        left, right = axis_split(coords, ids, left_count)
        stack.append((left, label, left_parts))
        stack.append((right, label + left_parts, nparts - left_parts))
    return parts
