"""Command-line interface: ``parhde`` (or ``python -m repro``).

Subcommands
-----------
``layout``
    Lay out a graph (collection name or edge-list file) and write
    coordinates and/or a PNG drawing.
``gaps``
    Print the Fibonacci-binned adjacency-gap histogram (Figure 2).
``bench``
    Simulated phase breakdown and scaling table for one graph.
``collection``
    Print the preprocessed collection statistics (Table 2).
``partition``
    Layout-driven k-way partitioning with optional FM refinement and a
    colored drawing (section 4.5.4).
``zoom``
    Layout of the k-hop neighborhood of a vertex (section 4.5.2).
``cluster``
    Spectral clustering (k-means on the ParHDE embedding) or label
    propagation, with an optional colored drawing.
``export-html``
    Self-contained interactive HTML viewer for a layout.
``serve``
    Long-running layout server: content-addressed caching, request
    coalescing, admission control, and a JSON HTTP endpoint
    (see :mod:`repro.service`).  ``--workers N`` shards the engine over
    N spawned worker processes behind a consistent-hash router
    (:mod:`repro.cluster`); ``--workers 0`` (the default) keeps the
    single-process path.
``stream``
    Replay an edge-event file through a dynamic layout session
    (:mod:`repro.stream`), printing per-update mode, drift, modeled BFS
    work and latency.
``reproduce``
    Run the paper-reproduction benchmarks (all of them, or by table /
    figure id) via pytest-benchmark.
``check``
    Run the pipeline invariant suite (:mod:`repro.validate`) on a graph
    and print the per-phase residual report; ``--inject`` corrupts one
    pipeline intermediate and verifies the checkers catch it.

Commands that *consume* a layout (``zoom``, ``partition``,
``export-html``) accept ``--layout FILE.npz`` to reuse one saved with
``layout --save-layout`` instead of recomputing — the same archive
format the serve cache's disk tier uses.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from . import datasets
from .core import parhde, phde, pivotmds
from .drawing import save_drawing
from .graph import fibonacci_histogram, read_edge_list
from .parallel import BRIDGES_ESM, BRIDGES_RSM, LAPTOP, format_breakdown_table, format_scaling_table
from .parallel.report import breakdown

_MACHINES = {
    "bridges-rsm": BRIDGES_RSM,
    "bridges-esm": BRIDGES_ESM,
    "laptop": LAPTOP,
}
_ALGOS = {"parhde": parhde, "phde": phde, "pivotmds": pivotmds}


def _load_graph(spec: str, scale: str, seed: int):
    if spec in datasets.available() or spec in datasets.PAPER_NAMES.values():
        return datasets.load(spec, scale=scale, seed=seed)
    from .graph import preprocess

    return preprocess(read_edge_list(spec, name=spec))


def _add_graph_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "graph",
        help="collection name (e.g. 'barth', 'road') or edge-list file path",
    )
    p.add_argument("--scale", default="small", choices=datasets.SCALES)
    p.add_argument("--seed", type=int, default=0)


def _add_layout_input(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--layout",
        metavar="FILE.npz",
        help="reuse a layout saved with 'layout --save-layout' instead of"
        " recomputing",
    )


def _load_saved_coords(path: str, g, parser: argparse.ArgumentParser):
    from .core import load_layout

    try:
        saved = load_layout(path)
    except (OSError, ValueError, KeyError) as exc:
        parser.error(f"cannot load layout {path!r}: {exc}")
    if saved.coords.shape[0] != g.n:
        parser.error(
            f"layout {path!r} has {saved.coords.shape[0]} vertices but the"
            f" graph has {g.n}; was it computed for a different"
            " graph/scale/seed?"
        )
    print(
        f"layout <- {path} ({saved.algorithm},"
        f" s={saved.params.get('s', '?')})",
        file=sys.stderr,
    )
    return saved.coords


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="parhde", description="Fast spectral graph layout (ICPP'20 reproduction)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_layout = sub.add_parser("layout", help="compute a layout")
    _add_graph_args(p_layout)
    p_layout.add_argument("--algo", default="parhde", choices=sorted(_ALGOS))
    p_layout.add_argument("-s", "--subspace", type=int, default=10)
    p_layout.add_argument("--pivots", default="kcenters")
    p_layout.add_argument(
        "--traversal",
        default="per-source",
        choices=("per-source", "batched"),
        help="BFS backend: per-source (seed behaviour) or the batched"
        " frontier-matrix multi-source sweep (unweighted only)",
    )
    p_layout.add_argument(
        "--subspace-method",
        default="deterministic",
        choices=("deterministic", "randomized"),
        help="subspace-refinement kernel used when --rounds > 0"
        " (parhde only)",
    )
    p_layout.add_argument(
        "--rounds",
        type=int,
        default=0,
        help="subspace-refinement rounds between DOrtho and TripleProd"
        " (parhde only; 0 = skip)",
    )
    p_layout.add_argument(
        "--pin",
        action="append",
        default=[],
        metavar="V:X,Y",
        help="pin vertex V at coordinates X,Y (repeatable); pinned"
        " coordinates are held bitwise-fixed while free vertices relax",
    )
    p_layout.add_argument(
        "--mass",
        action="append",
        default=[],
        metavar="V:M",
        help="give vertex V mass M > 0 (repeatable); the"
        " orthogonalization weight becomes M*D",
    )
    p_layout.add_argument(
        "--region",
        metavar="LO:HI,LO:HI",
        help="bounding box per axis, e.g. '-1:1,-1:1'; free coordinates"
        " are clamped into it",
    )
    p_layout.add_argument("--coords-out", help="write x y per line")
    p_layout.add_argument(
        "--save-layout",
        metavar="FILE.npz",
        help="persist the full layout archive (reloadable by zoom,"
        " partition, export-html and the serve disk cache)",
    )
    p_layout.add_argument("--png", help="write a drawing")
    p_layout.add_argument("--width", type=int, default=800)
    p_layout.add_argument(
        "--checkpoint",
        metavar="DIR",
        help="crash-safe phase checkpoints: persist B after the BFS phase"
        " and S after DOrtho under DIR, and resume an interrupted"
        " identical run from them (parhde only)",
    )
    p_layout.add_argument(
        "--lod",
        action="store_true",
        help="progressive level-of-detail: build a spectral coarsening"
        " hierarchy and print each refinement tier's timing to stderr;"
        " outputs (coords/png/archive) come from the final full-quality"
        " frame (see docs/lod.md)",
    )

    p_gaps = sub.add_parser("gaps", help="adjacency-gap histogram (Fig 2)")
    _add_graph_args(p_gaps)

    p_bench = sub.add_parser("bench", help="simulated breakdown + scaling")
    _add_graph_args(p_bench)
    p_bench.add_argument("-s", "--subspace", type=int, default=10)
    p_bench.add_argument("--machine", default="bridges-rsm", choices=sorted(_MACHINES))
    p_bench.add_argument(
        "--threads", type=int, nargs="+", default=[1, 4, 7, 14, 28]
    )

    p_coll = sub.add_parser("collection", help="collection stats (Table 2)")
    p_coll.add_argument("--scale", default="small", choices=datasets.SCALES)
    p_coll.add_argument("--seed", type=int, default=0)

    p_part = sub.add_parser("partition", help="layout-driven partitioning")
    _add_graph_args(p_part)
    p_part.add_argument("-k", "--parts", type=int, default=2)
    p_part.add_argument("-s", "--subspace", type=int, default=10)
    p_part.add_argument("--refine", action="store_true",
                        help="FM-refine a bipartition (k=2 only)")
    p_part.add_argument("--out", help="write one part label per line")
    p_part.add_argument("--png", help="write a colored drawing")
    _add_layout_input(p_part)

    p_zoom = sub.add_parser("zoom", help="k-hop neighborhood layout")
    _add_graph_args(p_zoom)
    p_zoom.add_argument("--center", type=int, default=0)
    p_zoom.add_argument("--hops", type=int, default=10)
    p_zoom.add_argument("-s", "--subspace", type=int, default=10)
    p_zoom.add_argument("--png", help="write the zoomed drawing")
    _add_layout_input(p_zoom)

    p_clu = sub.add_parser("cluster", help="spectral / label-prop clustering")
    _add_graph_args(p_clu)
    p_clu.add_argument("--method", default="spectral",
                       choices=("spectral", "labelprop"))
    p_clu.add_argument("-k", "--clusters", type=int, default=4,
                       help="cluster count (spectral only)")
    p_clu.add_argument("--out", help="write one label per line")
    p_clu.add_argument("--png", help="write a colored drawing")

    p_html = sub.add_parser(
        "export-html", help="interactive pan/zoom HTML viewer"
    )
    _add_graph_args(p_html)
    p_html.add_argument("-s", "--subspace", type=int, default=10)
    p_html.add_argument("output", help="HTML file to write")
    _add_layout_input(p_html)

    p_serve = sub.add_parser(
        "serve", help="HTTP layout server (cache + admission control)"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8080,
                         help="TCP port (0 = ephemeral)")
    p_serve.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker *processes* behind a consistent-hash router"
        " (0 = single-process, engine in this process; see"
        " docs/cluster.md)",
    )
    p_serve.add_argument(
        "--threads",
        type=int,
        default=2,
        help="concurrent layout computations per engine (each worker"
        " process gets its own pool of this size)",
    )
    p_serve.add_argument("--queue-depth", type=int, default=8,
                         help="queued computations before 503 Overloaded")
    p_serve.add_argument("--timeout", type=float, default=60.0,
                         help="per-request deadline in seconds")
    p_serve.add_argument("--cache-mb", type=float, default=256.0,
                         help="in-memory cache budget (MiB)")
    p_serve.add_argument("--cache-dir",
                         help="directory for the persistent disk cache tier")
    p_serve.add_argument(
        "--wal",
        metavar="DIR",
        help="write-ahead-log directory: journal graph updates durably and"
        " replay them on (re)start, so restarts — including respawned"
        " cluster workers — resume at the post-update epochs instead of"
        " pristine state (per-worker subdirs in cluster mode; see"
        " docs/wal.md)",
    )
    p_serve.add_argument(
        "--wal-fsync",
        default="batch",
        choices=("always", "batch", "off"),
        help="WAL durability policy: fsync per update, coalesced, or never",
    )
    p_serve.add_argument("--verbose", action="store_true",
                         help="log every HTTP request")
    p_serve.add_argument(
        "--resilience",
        action="store_true",
        help="serve degraded (never erroring) layouts under failures and"
        " deadline pressure: degradation ladder + retries + per-graph"
        " circuit breakers (see docs/resilience.md)",
    )
    p_serve.add_argument(
        "--lod",
        metavar="MODE",
        default=None,
        help="default progressive-LOD mode for requests that do not set"
        " one: 'auto', 'off', or a first-paint budget in ms (per-request"
        " 'lod' always works regardless; see docs/lod.md)",
    )
    p_serve.add_argument(
        "--placement",
        default="hash",
        choices=("hash", "lpt"),
        help="cluster routing policy (--workers N only): consistent"
        " hashing, or sticky size-balanced LPT placement fed by observed"
        " request latencies (see docs/cluster.md)",
    )
    p_serve.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        help="graceful-shutdown budget: seconds to wait for in-flight"
        " requests after SIGTERM/SIGINT before exiting",
    )

    p_stream = sub.add_parser(
        "stream",
        help="replay an edge-event file through a dynamic layout session",
    )
    _add_graph_args(p_stream)
    p_stream.add_argument(
        "events",
        help="edge-event file: '+ u v [w]' inserts, '- u v' deletes,"
        " '---' batch boundaries, '#' comments",
    )
    p_stream.add_argument("-s", "--subspace", type=int, default=10)
    p_stream.add_argument(
        "--traversal",
        default="per-source",
        choices=("per-source", "batched"),
        help="BFS backend for the initial layout and every full"
        " relayout (batched = frontier-matrix multi-source sweep)",
    )
    p_stream.add_argument(
        "--batch",
        type=int,
        default=1,
        help="events per update when the file has no '---' boundaries",
    )
    p_stream.add_argument(
        "--drift-threshold",
        type=float,
        default=0.10,
        help="B-entry change fraction that escalates to a full relayout",
    )
    p_stream.add_argument(
        "--staleness-limit",
        type=int,
        default=64,
        help="consecutive repairs before a warm full relayout",
    )
    p_stream.add_argument(
        "--layout",
        metavar="FILE.npz",
        help="warm-start from a saved layout archive (include_subspace)",
    )
    p_stream.add_argument(
        "--save-layout",
        metavar="FILE.npz",
        help="save the final frame (warm-startable archive)",
    )
    p_stream.add_argument(
        "--autosave",
        metavar="FILE.npz",
        help="crash-safe persistence: atomically save the frame after"
        " every update, and resume from FILE when it already exists",
    )
    p_stream.add_argument(
        "--wal",
        metavar="DIR",
        help="write-ahead-log directory: O(delta) journaling + periodic"
        " checkpoints instead of --autosave's full archive per update;"
        " resumes from DIR when it already holds a journal (docs/wal.md)",
    )
    p_stream.add_argument(
        "--strict",
        action="store_true",
        help="error on no-op edits instead of skipping them",
    )

    p_check = sub.add_parser(
        "check", help="run the pipeline invariant suite (repro.validate)"
    )
    _add_graph_args(p_check)
    p_check.add_argument("-s", "--subspace", type=int, default=8)
    p_check.add_argument(
        "--strict",
        action="store_true",
        help="also run the deep checks (stream repair equivalence, cache"
        " round-trip); exit 1 on any violation either way",
    )
    p_check.add_argument(
        "--weighted",
        action="store_true",
        help="apply deterministic integer weights and check the SSSP path",
    )
    p_check.add_argument(
        "--inject",
        metavar="FAULT",
        help="corrupt one pipeline intermediate and report whether its"
        " checker catches it ('all' = every registered fault, 'list' ="
        " print the registry)",
    )

    p_rep = sub.add_parser(
        "reproduce", help="run the paper-reproduction benchmarks"
    )
    p_rep.add_argument(
        "ids",
        nargs="*",
        help="experiment ids, e.g. table3 fig4 sssp (default: all)",
    )
    p_rep.add_argument("--list", action="store_true", dest="list_only")
    p_rep.add_argument(
        "--scale",
        default=None,
        choices=datasets.SCALES,
        help="dataset scale override (sets REPRO_BENCH_SCALE)",
    )

    args = parser.parse_args(argv)

    if args.command == "reproduce":
        return _reproduce(args, parser)

    if args.command == "collection":
        rows = datasets.collection_table(args.scale, args.seed)
        print(datasets.format_table2(rows))
        return 0

    if args.command == "serve":
        return _serve(args)

    g = _load_graph(args.graph, args.scale, args.seed)
    print(f"loaded {g!r}", file=sys.stderr)

    if args.command == "gaps":
        print(fibonacci_histogram(g).format())
        return 0

    if args.command == "stream":
        return _stream(g, args, parser)

    if args.command == "check":
        return _check(g, args, parser)

    if args.command == "layout":
        algo = _ALGOS[args.algo]
        kwargs = {}
        if args.algo == "parhde":
            kwargs["pivots"] = args.pivots
        if args.traversal != "per-source":
            kwargs["traversal"] = args.traversal
        if args.rounds or args.subspace_method != "deterministic":
            if args.algo != "parhde":
                parser.error(
                    "--rounds/--subspace-method require --algo parhde"
                )
            kwargs["rounds"] = args.rounds
            kwargs["subspace"] = args.subspace_method
        try:
            constraints = _parse_constraint_flags(args)
        except ValueError as exc:
            parser.error(str(exc))
        if constraints is not None:
            if args.rounds:
                parser.error("--pin/--mass/--region require --rounds 0")
            kwargs["constraints"] = constraints
        ckpt = None
        if getattr(args, "checkpoint", None):
            if args.algo != "parhde":
                parser.error("--checkpoint requires --algo parhde")
            if args.lod:
                parser.error(
                    "--lod and --checkpoint are mutually exclusive (the"
                    " progressive chain runs many layouts, not one)"
                )
            from .resilience import CheckpointStore

            ckpt = CheckpointStore(args.checkpoint).bind(
                g,
                dict(
                    algo=args.algo,
                    s=args.subspace,
                    seed=args.seed,
                    pivots=args.pivots,
                    # Only non-default kernel knobs enter the identity so
                    # pre-existing checkpoints keep their keys.
                    **{
                        k: v
                        for k, v in dict(
                            traversal=args.traversal,
                            subspace=args.subspace_method,
                            rounds=args.rounds,
                        ).items()
                        if v not in ("per-source", "deterministic", 0)
                    },
                ),
            )
            kwargs["checkpoint"] = ckpt
        if args.lod:
            import time as _time

            from .lod import progressive_layout

            t0 = _time.perf_counter()
            res = None
            for frame in progressive_layout(
                g,
                args.subspace,
                seed=args.seed,
                algorithm=algo,
                algorithm_name=args.algo,
                **kwargs,
            ):
                print(
                    f"lod: tier={frame.tier} depth={frame.depth}"
                    f" t={_time.perf_counter() - t0:.3f}s",
                    file=sys.stderr,
                )
                res = frame.result
            assert res is not None
        else:
            res = algo(g, args.subspace, seed=args.seed, **kwargs)
        if ckpt is not None:
            print(
                f"checkpoint {ckpt.dir}: restored={ckpt.stats['restores']}"
                f" saved={ckpt.stats['saves']}",
                file=sys.stderr,
            )
        print(
            f"{args.algo}: s={args.subspace} pivots={list(map(int, res.pivots))} "
            f"dropped={res.dropped}",
            file=sys.stderr,
        )
        if args.coords_out:
            np.savetxt(args.coords_out, res.coords, fmt="%.10g")
            print(f"coordinates -> {args.coords_out}", file=sys.stderr)
        if args.save_layout:
            from .core import save_layout

            save_layout(res, args.save_layout)
            print(f"layout archive -> {args.save_layout}", file=sys.stderr)
        if args.png:
            save_drawing(
                g, res.coords, args.png, width=args.width, height=args.width
            )
            print(f"drawing -> {args.png}", file=sys.stderr)
        if not args.coords_out and not args.png and not args.save_layout:
            np.savetxt(sys.stdout, res.coords, fmt="%.10g")
        return 0

    if args.command == "partition":
        from .partition import (
            balance,
            coordinate_bisection,
            cut_fraction,
            fm_refine,
        )

        if args.layout:
            coords = _load_saved_coords(args.layout, g, parser)
        else:
            coords = parhde(g, args.subspace, seed=args.seed).coords
        parts = coordinate_bisection(g, coords, args.parts)
        if args.refine:
            if args.parts != 2:
                parser.error("--refine supports bipartitions (k=2)")
            parts, stats = fm_refine(g, parts)
            print(
                f"FM: cut {stats.cut_before:.0f} -> {stats.cut_after:.0f}",
                file=sys.stderr,
            )
        print(
            f"k={args.parts}: cut fraction {cut_fraction(g, parts):.4f},"
            f" balance {balance(parts, args.parts):.3f}",
            file=sys.stderr,
        )
        if args.out:
            np.savetxt(args.out, parts, fmt="%d")
            print(f"labels -> {args.out}", file=sys.stderr)
        if args.png:
            from .drawing import partition_edge_colors, render_layout, write_png

            u, v = g.edge_list()
            canvas = render_layout(
                g,
                coords,
                width=args.width if hasattr(args, "width") else 800,
                height=800,
                edge_colors=partition_edge_colors(u, v, parts),
            )
            write_png(args.png, canvas.pixels)
            print(f"drawing -> {args.png}", file=sys.stderr)
        if not args.out and not args.png:
            np.savetxt(sys.stdout, parts, fmt="%d")
        return 0

    if args.command == "zoom":
        if args.layout:
            # Reuse the saved full-graph layout: restrict its coordinates
            # to the k-hop ball instead of re-running ParHDE on it.
            from .core import khop_subgraph

            full_coords = _load_saved_coords(args.layout, g, parser)
            sub, ids = khop_subgraph(g, args.center, args.hops)
            coords = full_coords[ids]
        else:
            from .core import zoom_layout

            z = zoom_layout(
                g, center=args.center, hops=args.hops, s=args.subspace,
                seed=args.seed,
            )
            sub, coords = z.subgraph, z.layout.coords
        print(
            f"zoom: {sub.n} vertices / {sub.m} edges within"
            f" {args.hops} hops of {args.center}",
            file=sys.stderr,
        )
        if args.png:
            save_drawing(sub, coords, args.png)
            print(f"drawing -> {args.png}", file=sys.stderr)
        else:
            np.savetxt(sys.stdout, coords, fmt="%.10g")
        return 0

    if args.command == "cluster":
        if args.method == "spectral":
            from .partition import spectral_clustering

            km = spectral_clustering(g, args.clusters, seed=args.seed)
            labels = km.labels
            print(
                f"spectral clustering: k={args.clusters},"
                f" inertia {km.inertia:.4g}",
                file=sys.stderr,
            )
        else:
            from .partition import label_propagation

            lp = label_propagation(g, seed=args.seed)
            labels = lp.labels
            print(
                f"label propagation: {lp.communities} communities in"
                f" {lp.sweeps} sweeps",
                file=sys.stderr,
            )
        if args.out:
            np.savetxt(args.out, labels, fmt="%d")
            print(f"labels -> {args.out}", file=sys.stderr)
        if args.png:
            from .drawing import partition_edge_colors, render_layout, write_png

            res = parhde(g, 10, seed=args.seed)
            u, v = g.edge_list()
            canvas = render_layout(
                g, res.coords, width=800, height=800,
                edge_colors=partition_edge_colors(u, v, labels),
            )
            write_png(args.png, canvas.pixels)
            print(f"drawing -> {args.png}", file=sys.stderr)
        if not args.out and not args.png:
            np.savetxt(sys.stdout, labels, fmt="%d")
        return 0

    if args.command == "export-html":
        from .drawing import write_interactive_html

        if args.layout:
            coords = _load_saved_coords(args.layout, g, parser)
        else:
            coords = parhde(g, args.subspace, seed=args.seed).coords
        write_interactive_html(
            g, coords, args.output, title=f"ParHDE: {g.name or args.graph}"
        )
        print(f"interactive viewer -> {args.output}", file=sys.stderr)
        return 0

    if args.command == "bench":
        machine = _MACHINES[args.machine]
        res = parhde(g, args.subspace, seed=args.seed)
        rows = {g.name or args.graph: res.breakdown(machine, max(args.threads))}
        print(format_breakdown_table(rows))
        series = {
            g.name
            or args.graph: {
                p: res.simulated_seconds(machine, p) for p in args.threads
            }
        }
        print()
        print(format_scaling_table(series))
        return 0

    return 1


def _serve(args) -> int:
    import signal
    import threading

    if args.workers < 0:
        print("--workers must be >= 0", file=sys.stderr)
        return 2

    cache = None
    engine = None
    router = None
    if args.workers == 0:
        from .lod import ProgressiveEngine
        from .service import LayoutCache, LayoutEngine, make_server

        cache = LayoutCache(
            max_bytes=int(args.cache_mb * 1024 * 1024),
            disk_dir=args.cache_dir,
        )
        engine = ProgressiveEngine(
            LayoutEngine(
                cache=cache,
                workers=args.threads,
                queue_limit=args.queue_depth,
                timeout=args.timeout,
                resilience=True if args.resilience else None,
                wal_dir=args.wal,
                wal_fsync=args.wal_fsync,
            ),
            lod=args.lod,
        )
        server = make_server(
            engine, host=args.host, port=args.port, verbose=args.verbose
        )
        mode = f"single-process, threads={args.threads}"
    else:
        from .cluster import ClusterRouter, make_cluster_server

        router = ClusterRouter(
            args.workers,
            compute_threads=args.threads,
            queue_limit=args.queue_depth,
            timeout=args.timeout,
            cache_mb=args.cache_mb,
            cache_dir=args.cache_dir,
            resilience=args.resilience,
            placement=args.placement,
            lod=args.lod,
            wal_dir=args.wal,
            wal_fsync=args.wal_fsync,
        )
        print(
            f"parhde serve: spawning {args.workers} worker"
            f" process{'es' if args.workers != 1 else ''}...",
            file=sys.stderr,
        )
        router.start()
        server = make_cluster_server(
            router, host=args.host, port=args.port, verbose=args.verbose
        )
        mode = (
            f"{args.workers} worker processes, threads={args.threads}/worker"
            + (f", placement={args.placement}" if args.placement != "hash" else "")
        )
    host, port = server.address
    print(
        f"parhde serve: listening on http://{host}:{port}"
        f" ({mode}, queue={args.queue_depth},"
        f" cache={args.cache_mb:g} MiB"
        + (f", disk={args.cache_dir}" if args.cache_dir else "")
        + (f", wal={args.wal}" if args.wal else "")
        + (", resilience=on" if args.resilience else "")
        + (f", lod={args.lod}" if args.lod else "")
        + ")",
        file=sys.stderr,
    )
    print(
        "routes: POST /layout  GET /layout  POST /update  GET /healthz"
        "  GET /stats[?format=text]",
        file=sys.stderr,
    )

    stop = threading.Event()

    def _signalled(signum, frame):  # noqa: ARG001 — signal API
        stop.set()

    try:
        signal.signal(signal.SIGTERM, _signalled)
        signal.signal(signal.SIGINT, _signalled)
    except ValueError:
        pass  # not the main thread (embedded use) — Ctrl-C still works

    server.start()
    try:
        while not stop.is_set():
            stop.wait(0.5)
    except KeyboardInterrupt:
        pass
    # Graceful shutdown: flip to draining (new POSTs get 503, /healthz
    # reports "draining"), wait out in-flight work, persist caches,
    # then stop the accept loop.  In cluster mode the drain fans out to
    # every worker engine and close() tears the processes down.
    print("draining: refusing new work", file=sys.stderr)
    clean = server.drain(args.drain_timeout)
    flushed = cache.flush() if cache is not None else None
    server.shutdown()
    if engine is not None:
        engine.close()
    if router is not None:
        router.close()
    print(
        f"shutdown: drained={'clean' if clean else 'timed out'}"
        + (f" cache_flushed={flushed}" if flushed is not None else ""),
        file=sys.stderr,
    )
    return 0


def _parse_constraint_flags(args):
    """Translate --pin/--mass/--region flags into a ConstraintSpec dict.

    Returns ``None`` when no constraint flag was given.  Spellings:
    ``--pin 5:0.5,0.5``, ``--mass 3:10``, ``--region='-1:1,-1:1'``.
    """
    pins = {}
    for spec in args.pin:
        vertex, sep, coords = spec.partition(":")
        if not sep:
            raise ValueError(f"--pin needs V:X,Y, got {spec!r}")
        try:
            pins[int(vertex)] = tuple(float(c) for c in coords.split(","))
        except ValueError:
            raise ValueError(f"--pin needs V:X,Y, got {spec!r}") from None
    masses = {}
    for spec in args.mass:
        vertex, sep, mass = spec.partition(":")
        if not sep:
            raise ValueError(f"--mass needs V:M, got {spec!r}")
        try:
            masses[int(vertex)] = float(mass)
        except ValueError:
            raise ValueError(f"--mass needs V:M, got {spec!r}") from None
    region = None
    if args.region:
        region = []
        for axis in args.region.split(","):
            lo, sep, hi = axis.partition(":")
            if not sep:
                raise ValueError(
                    f"--region needs LO:HI per axis, got {args.region!r}"
                )
            try:
                region.append((float(lo), float(hi)))
            except ValueError:
                raise ValueError(
                    f"--region needs LO:HI per axis, got {args.region!r}"
                ) from None
    if not pins and not masses and region is None:
        return None
    out = {}
    if pins:
        out["pins"] = pins
    if masses:
        out["masses"] = masses
    if region is not None:
        out["region"] = region
    return out


def _stream(g, args, parser) -> int:
    import statistics
    import time

    from .stream import (
        EdgeDelta,
        StreamPolicy,
        StreamSession,
        bfs_work_units,
        read_events,
    )

    try:
        events = read_events(args.events)
    except (OSError, ValueError) as exc:
        parser.error(f"cannot read events {args.events!r}: {exc}")
    # Batches: explicit '---' boundaries win; otherwise chunk by --batch.
    batches: list[list[tuple]] = [[]]
    if any(ev == ("|",) for ev in events):
        for ev in events:
            if ev == ("|",):
                batches.append([])
            else:
                batches[-1].append(ev)
    else:
        if args.batch < 1:
            parser.error("--batch must be >= 1")
        for i in range(0, len(events), args.batch):
            if batches == [[]]:
                batches = []
            batches.append(events[i : i + args.batch])
    batches = [b for b in batches if b]
    if not batches:
        parser.error(f"no events in {args.events!r}")

    policy = StreamPolicy(
        drift_threshold=args.drift_threshold,
        staleness_limit=args.staleness_limit,
    )
    t0 = time.perf_counter()
    autosave = getattr(args, "autosave", None)
    wal = getattr(args, "wal", None)
    if args.layout:
        try:
            session = StreamSession.from_layout(
                g, args.layout, policy=policy, autosave=autosave
            )
        except (OSError, ValueError, KeyError) as exc:
            parser.error(f"cannot warm-start from {args.layout!r}: {exc}")
    elif wal:
        session = StreamSession.resume_wal(
            g,
            wal,
            s=args.subspace,
            seed=args.seed,
            policy=policy,
            traversal=args.traversal,
        )
        if session.epoch:
            print(
                f"resumed from WAL {wal} (epoch {session.epoch})",
                file=sys.stderr,
            )
    elif autosave:
        session = StreamSession.resume(
            g,
            autosave,
            s=args.subspace,
            seed=args.seed,
            policy=policy,
            traversal=args.traversal,
        )
        if session.epoch:
            print(
                f"resumed from {autosave} (epoch {session.epoch})",
                file=sys.stderr,
            )
    else:
        session = StreamSession(
            g,
            args.subspace,
            seed=args.seed,
            policy=policy,
            traversal=args.traversal,
        )
    print(
        f"initial layout: {time.perf_counter() - t0:.3f}s"
        f" (s={session.s}, n={session.n})",
        file=sys.stderr,
    )

    latencies: list[float] = []
    rejected = 0
    for i, batch in enumerate(batches):
        try:
            delta = EdgeDelta.from_events(batch)
        except ValueError as exc:
            parser.error(f"bad batch {i}: {exc}")
        try:
            up = session.update(delta, strict=args.strict)
        except ValueError as exc:
            rejected += 1
            print(f"update {i}: rejected ({exc})", file=sys.stderr)
            continue
        latencies.append(up.elapsed)
        print(
            f"update {i}: mode={up.mode} reason={up.reason}"
            f" edits={up.applied_edits} drift={up.drift:.4f}"
            f" bfs_work={bfs_work_units(up.ledger):.0f}"
            f" latency_ms={up.elapsed * 1e3:.1f}"
        )
    st = session.stats
    total = st["repairs"] + st["relayouts"]
    if total:
        print(
            f"updates={total} repairs={st['repairs']}"
            f" relayouts={st['relayouts']} rejected={rejected}"
            f" repair_rate={st['repairs'] / total:.2f}"
        )
    else:
        print(f"updates=0 rejected={rejected}")
    if latencies:
        print(
            f"latency_ms: median={statistics.median(latencies) * 1e3:.1f}"
            f" max={max(latencies) * 1e3:.1f}"
        )
    if args.save_layout:
        from .core import save_layout

        save_layout(session.snapshot_result(), args.save_layout)
        print(f"layout archive -> {args.save_layout}", file=sys.stderr)
    session.close()
    return 0


def _check(g, args, parser) -> int:
    from .validate import FAULTS, run_injection, run_suite

    if args.weighted:
        from .graph.weights import random_integer_weights

        g = random_integer_weights(g, seed=args.seed)

    if args.inject:
        if args.inject == "list":
            for name, (description, _) in FAULTS.items():
                print(f"{name:<24} {description}")
            return 0
        names = None if args.inject == "all" else [args.inject]
        try:
            outcomes = run_injection(
                g, names, s=args.subspace, seed=args.seed
            )
        except KeyError as exc:
            parser.error(str(exc.args[0]))
        for outcome in outcomes:
            print(outcome.format())
        if args.inject == "all":
            # Harness self-test: success means every corruption was caught.
            caught = sum(o.caught for o in outcomes)
            print(f"harness: {caught}/{len(outcomes)} faults caught")
            return 0 if caught == len(outcomes) else 1
        # Single fault: the exit code mirrors a real corrupted run —
        # nonzero when the checkers flag the pipeline as broken.
        return 1 if outcomes[0].caught else 0

    report = run_suite(
        g,
        args.subspace,
        seed=args.seed,
        policy="strict" if args.strict else "warn",
        weighted=args.weighted,
    )
    print(report.format())
    return 0 if report.ok else 1


def _reproduce(args, parser) -> int:
    import os
    from pathlib import Path

    bench_dir = Path(__file__).resolve().parent.parent.parent / "benchmarks"
    if not bench_dir.is_dir():
        print(
            "benchmarks/ not found next to the package; run from a source"
            " checkout",
            file=sys.stderr,
        )
        return 1
    files = sorted(bench_dir.glob("bench_*.py"))
    if args.list_only:
        for f in files:
            print(f.stem.removeprefix("bench_"))
        return 0
    if args.ids:
        chosen = [
            f
            for f in files
            if any(ident in f.stem for ident in args.ids)
        ]
        if not chosen:
            parser.error(
                f"no benchmark matches {args.ids}; try 'reproduce --list'"
            )
    else:
        chosen = files
    if args.scale:
        os.environ["REPRO_BENCH_SCALE"] = args.scale
    import pytest

    return pytest.main(
        [str(f) for f in chosen] + ["--benchmark-only", "-q"]
    )


if __name__ == "__main__":
    raise SystemExit(main())
