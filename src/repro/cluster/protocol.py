"""Length-prefixed JSON framing for router <-> worker sockets.

The cluster tier speaks the simplest wire protocol that can carry the
serving API faithfully: each message is a 4-byte big-endian length
followed by that many bytes of UTF-8 JSON.  JSON (rather than pickle)
keeps workers safe to restart across versions and makes the frames
inspectable with ``tcpdump``; the length prefix makes message boundaries
explicit so one connection can carry many sequential requests.

Requests are envelopes ``{"op": <name>, ...}``; responses are
``{"ok": true, ...payload}`` or ``{"ok": false, "error": <code>,
"message": <detail>, "status": <http status>}`` — the same structured
error contract the HTTP layer speaks, so the router can relay worker
errors to clients without translation.

A peer that closes mid-frame raises :class:`ProtocolError` (a
``ConnectionError`` subclass), which the router treats exactly like a
dead worker: mark it down, reshard, retry on the successor.
"""

from __future__ import annotations

import json
import socket
import struct

__all__ = ["MAX_FRAME", "ProtocolError", "recv_msg", "send_msg"]

#: Upper bound on one frame.  Coordinate payloads for the collection's
#: largest served graphs are a few MB; 64 MB leaves generous headroom
#: while still catching a corrupt/hostile length prefix immediately.
MAX_FRAME = 64 * 1024 * 1024

_HEADER = struct.Struct("!I")


class ProtocolError(ConnectionError):
    """Framing violation: truncated frame, oversized length, bad JSON."""


def send_msg(sock: socket.socket, obj: dict) -> None:
    """Serialize ``obj`` and write one length-prefixed frame."""
    body = json.dumps(obj, separators=(",", ":")).encode()
    if len(body) > MAX_FRAME:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds MAX_FRAME ({MAX_FRAME})"
        )
    sock.sendall(_HEADER.pack(len(body)) + body)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ProtocolError(
                f"connection closed mid-frame ({n - remaining}/{n} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_msg(sock: socket.socket) -> dict:
    """Read one frame and deserialize it (blocking)."""
    (length,) = _HEADER.unpack(_recv_exact(sock, _HEADER.size))
    if length > MAX_FRAME:
        raise ProtocolError(
            f"peer announced a {length}-byte frame (> MAX_FRAME {MAX_FRAME})"
        )
    body = _recv_exact(sock, length)
    try:
        doc = json.loads(body)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise ProtocolError("frame must be a JSON object")
    return doc
