"""HTTP frontend for the cluster router (``parhde serve --workers N``).

Same wire contract as the in-process endpoint
(:mod:`repro.service.http`): ``POST /layout``, ``POST /update``,
``GET /layout`` (the progressive-LOD polling form), ``GET /healthz``,
``GET /stats`` — clients and probes cannot tell which mode they are
talking to, except that ``/stats`` answers the aggregated cluster shape
(``router`` / ``ring`` / ``placement`` / ``workers`` / ``aggregate``
sections) and ``/healthz`` reports the live worker count.

The handler threads block inside :class:`~repro.cluster.router
.ClusterRouter` — coalescing, sharding and retry all happen there; this
module only translates HTTP bodies to router calls and structured
errors to status codes, reusing the service layer's body-size limits
and error discipline (internal errors return an opaque id and bump the
``http.internal_errors`` counter on the router's telemetry).
"""

from __future__ import annotations

import json
import logging
import threading
import uuid
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from ..service.engine import BadRequest, ServiceError
from ..service.http import layout_doc_from_query
from .router import ClusterRouter

__all__ = ["ClusterServer", "make_cluster_server"]

_MAX_BODY = 8 * 1024 * 1024

logger = logging.getLogger("repro.cluster.frontend")


class _ClusterHandler(BaseHTTPRequestHandler):
    server_version = "parhde-cluster/1"
    protocol_version = "HTTP/1.1"

    @property
    def router(self) -> ClusterRouter:
        return self.server.router  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.verbose:  # type: ignore[attr-defined]
            super().log_message(format, *args)

    def _send(self, status: int, payload, *, text: bool = False) -> None:
        body = payload.encode() if text else json.dumps(payload).encode()
        self.send_response(status)
        self.send_header(
            "Content-Type",
            "text/plain; charset=utf-8" if text else "application/json",
        )
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error(self, exc: ServiceError) -> None:
        if type(exc) is ServiceError:
            self._send_internal(exc)
            return
        self._send(
            exc.http_status, {"error": exc.code, "message": str(exc)}
        )

    def _send_internal(self, exc: BaseException) -> None:
        error_id = uuid.uuid4().hex[:12]
        logger.exception(
            "internal error %s handling %s %s: %s",
            error_id, self.command, self.path, exc,
        )
        self.router.telemetry.inc("http.internal_errors")
        self._send(
            500,
            {
                "error": "internal",
                "message": f"internal server error (id {error_id})",
                "error_id": error_id,
            },
        )

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise BadRequest("missing request body")
        if length > _MAX_BODY:
            raise BadRequest(f"request body exceeds {_MAX_BODY} bytes")
        try:
            doc = json.loads(self.rfile.read(length))
        except json.JSONDecodeError as exc:
            raise BadRequest(f"invalid JSON body: {exc}") from exc
        if not isinstance(doc, dict):
            raise BadRequest("request body must be a JSON object")
        return doc

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        url = urlparse(self.path)
        if url.path == "/healthz":
            health = self.router.healthz()
            self._send(200 if health["status"] == "ok" else 503, health)
        elif url.path == "/stats":
            fmt = parse_qs(url.query).get("format", ["json"])[0]
            try:
                stats = self.router.stats()
            except Exception as exc:  # noqa: BLE001 — last-resort 500
                self._send_internal(exc)
                return
            if fmt == "text":
                extra = {
                    "ring": stats["ring"],
                    "aggregate counters": stats["aggregate"]["counters"],
                    "aggregate cache": stats["aggregate"]["cache"],
                }
                self._send(
                    200,
                    self.router.telemetry.render_text(extra) + "\n",
                    text=True,
                )
            else:
                self._send(200, stats)
        elif url.path == "/layout":
            # Polling form for progressive LOD: same doc dialect as the
            # POST body, built from the query string, routed identically.
            try:
                payload = self.router.layout(layout_doc_from_query(url.query))
            except ServiceError as exc:
                self._send_error(exc)
                return
            except Exception as exc:  # noqa: BLE001 — last-resort 500
                self._send_internal(exc)
                return
            self._send(200, payload)
        else:
            self._send(
                404, {"error": "not_found", "message": f"no route {url.path}"}
            )

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        url = urlparse(self.path)
        if url.path not in ("/layout", "/update"):
            self._send(
                404, {"error": "not_found", "message": f"no route {url.path}"}
            )
            return
        try:
            doc = self._read_body()
            if url.path == "/layout":
                payload = self.router.layout(doc)
            else:
                payload = self.router.update(doc)
        except ServiceError as exc:
            self._send_error(exc)
            return
        except (TypeError, ValueError) as exc:
            self._send(400, {"error": "bad_request", "message": str(exc)})
            return
        except Exception as exc:  # noqa: BLE001 — last-resort 500
            self._send_internal(exc)
            return
        self._send(200, payload)


class ClusterServer:
    """A :class:`ThreadingHTTPServer` bound to a cluster router.

    Mirrors :class:`~repro.service.http.LayoutServer`'s lifecycle
    (``start`` / ``serve_forever`` / ``drain`` / ``shutdown``) so the
    CLI and smoke harnesses treat both modes uniformly.
    """

    def __init__(
        self,
        router: ClusterRouter,
        host: str = "127.0.0.1",
        port: int = 8080,
        *,
        verbose: bool = False,
    ):
        self.router = router
        self._httpd = ThreadingHTTPServer((host, port), _ClusterHandler)
        self._httpd.router = router  # type: ignore[attr-defined]
        self._httpd.verbose = verbose  # type: ignore[attr-defined]
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ClusterServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="parhde-cluster-serve",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self._httpd.serve_forever()

    def drain(self, timeout: float = 10.0) -> bool:
        """Cluster-wide graceful drain (see :meth:`ClusterRouter.drain`)."""
        return self.router.drain(timeout)

    def shutdown(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "ClusterServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()


def make_cluster_server(
    router: ClusterRouter,
    host: str = "127.0.0.1",
    port: int = 8080,
    *,
    verbose: bool = False,
) -> ClusterServer:
    """Bind (but do not start) a :class:`ClusterServer`."""
    return ClusterServer(router, host, port, verbose=verbose)
