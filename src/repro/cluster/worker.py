"""The cluster worker: one process, one engine, one socket listener.

Each worker is a full single-process serving stack — its own
:class:`~repro.service.engine.LayoutEngine` with a shared-nothing
:class:`~repro.service.cache.LayoutCache` — behind a length-prefixed
JSON protocol (:mod:`repro.cluster.protocol`) on a loopback TCP socket.
Shared-nothing is the point: workers never coordinate through shared
memory, so the GIL stops being a cluster-wide lock and a worker crash
cannot corrupt a sibling.  Graph mutation state is *worker-local*;
without a WAL a worker death loses its applied deltas — together with
the cache entries keyed by their epochs, so coherence holds (the
restarted worker serves the pristine collection graph at epoch 0 and
nothing stale can be served).  With ``wal_dir`` set, each worker
journals its mutations to its own :mod:`repro.wal` directory and
**replays them before reporting ready** — the respawned process rejoins
the ring already at the post-update epochs (see ``docs/wal.md``).

Workers are started with the ``spawn`` multiprocessing context: the
router process is multi-threaded (HTTP handlers, heartbeat monitor),
and forking a threaded parent can deadlock the child on locks held by
unforked threads.  ``spawn`` costs ~1 s of interpreter+numpy startup per
worker, paid once per worker lifetime.

Protocol operations (request ``{"op": ...}`` -> response
``{"ok": true, ...}`` or the structured error envelope):

``ping``
    Liveness heartbeat; echoes pid, inflight count and draining flag.
``layout`` / ``update``
    The serving API, same body dialect as ``POST /layout`` /
    ``POST /update`` (parsed by the shared
    :func:`repro.service.http.parse_layout_doc` /
    :func:`~repro.service.http.parse_update_doc`).
``stats``
    The engine's ``stats()`` snapshot plus worker identity.
``drain``
    Engine drain: refuse new work, wait out in-flight computations.
``chaos``
    Arm a :mod:`repro.resilience.chaos` failpoint *inside this worker
    process* (tests and the chaos smoke harness cannot reach the
    worker's globals from the router process).  ``exit_code`` arms a
    failpoint whose firing kills the process — the "worker dies
    mid-request" scenario.
``shutdown``
    Acknowledge, then exit the process.
"""

from __future__ import annotations

import contextlib
import logging
import os
import signal
import socket
import threading
import time
import uuid
from dataclasses import dataclass, field
from multiprocessing.connection import Connection

from ..resilience import chaos
from ..service import LayoutCache, LayoutEngine, ServiceError
from ..service.http import (
    layout_payload,
    parse_layout_doc,
    parse_update_doc,
    update_payload,
)
from .protocol import ProtocolError, recv_msg, send_msg

__all__ = ["WorkerConfig", "worker_main"]

logger = logging.getLogger("repro.cluster.worker")


@dataclass(frozen=True)
class WorkerConfig:
    """Picklable recipe for building one worker's engine.

    Everything the child process needs travels in here (the ``spawn``
    context cannot inherit live objects).  ``cache_dir`` is the
    *worker's own* directory — the router derives per-worker subdirs so
    disk tiers stay shared-nothing too.
    """

    worker_id: int = 0
    compute_threads: int = 2
    queue_limit: int = 8
    timeout: float = 60.0
    cache_mb: float = 64.0
    cache_dir: str | None = None
    resilience: bool = False
    validation: str | None = None
    host: str = "127.0.0.1"
    #: Per-worker write-ahead-log directory (``None`` = volatile).  Like
    #: ``cache_dir`` this is the worker's *own* subdir; records inside
    #: are keyed by graph identity, not worker id, so resharding after a
    #: death replays cleanly wherever the keys land.
    wal_dir: str | None = None
    wal_fsync: str = "batch"
    #: Default progressive-LOD mode (``None``/``"off"``/``"auto"``/budget
    #: ms as a float) — the engine is always wrapped in a
    #: :class:`repro.lod.ProgressiveEngine` so per-request ``lod``
    #: works; this sets the default for requests that don't specify it.
    lod: str | float | None = None
    #: LodConfig knob overrides as a sorted ``((key, value), ...)`` tuple
    #: (must stay hashable for this frozen dataclass to pickle cheaply).
    lod_opts: tuple = field(default_factory=tuple)
    #: Failpoints to arm at startup: ``[{"site": ..., "sleep": ...}]``.
    chaos_sites: tuple = field(default_factory=tuple)


def _build_engine(config: WorkerConfig):
    from ..lod import LodConfig, ProgressiveEngine

    cache = LayoutCache(
        max_bytes=int(config.cache_mb * 1024 * 1024),
        disk_dir=config.cache_dir,
    )
    engine = LayoutEngine(
        cache=cache,
        workers=config.compute_threads,
        queue_limit=config.queue_limit,
        timeout=config.timeout,
        resilience=True if config.resilience else None,
        validation=config.validation,
        wal_dir=config.wal_dir,
        wal_fsync=config.wal_fsync,
    )
    # Always wrap: the wrapper is pass-through when neither the worker
    # default nor the request asks for LOD, and wrapping unconditionally
    # means a request-level "lod": "auto" works on any cluster.
    opts = dict(config.lod_opts)
    return ProgressiveEngine(
        engine,
        lod=config.lod,
        config=LodConfig(**opts) if opts else None,
    )


class _WorkerServer:
    """Accept loop + per-connection request threads inside the worker."""

    def __init__(self, config: WorkerConfig):
        self.config = config
        self.engine = _build_engine(config)
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((config.host, 0))
        self._listener.listen(64)
        self._stop = threading.Event()
        # Keeps chaos arming alive for the worker's lifetime; ops can
        # arm more sites later (tests drive fault scenarios remotely).
        self._chaos_stack = contextlib.ExitStack()
        for spec in config.chaos_sites:
            self._arm_chaos(dict(spec))

    @property
    def port(self) -> int:
        return self._listener.getsockname()[1]

    def _arm_chaos(self, spec: dict) -> None:
        site = spec.pop("site")
        exit_code = spec.pop("exit_code", None)
        if exit_code is not None:
            # A failpoint that kills the process mid-request: the chaos
            # harness's way of simulating a worker crash at a precise
            # moment (os._exit skips atexit — a real SIGKILL-like death).
            spec["callback"] = lambda code=int(exit_code): os._exit(code)
        self._chaos_stack.enter_context(chaos.inject(site, **spec))

    # -- operations --------------------------------------------------------
    def _handle(self, req: dict) -> dict:
        op = req.get("op")
        if op == "ping":
            return {
                "ok": True,
                "pid": os.getpid(),
                "worker_id": self.config.worker_id,
                "inflight": self.engine.inflight,
                "draining": self.engine.draining,
            }
        if op == "layout":
            chaos.failpoint("cluster.worker.request")
            request, include_coords = parse_layout_doc(req.get("body") or {})
            response = self.engine.submit(request)
            return {"ok": True, **layout_payload(response, include_coords)}
        if op == "update":
            chaos.failpoint("cluster.worker.request")
            request = parse_update_doc(req.get("body") or {})
            response = self.engine.update(request)
            return {"ok": True, **update_payload(response)}
        if op == "stats":
            snap = self.engine.stats()
            snap["worker_id"] = self.config.worker_id
            snap["pid"] = os.getpid()
            return {"ok": True, "stats": snap}
        if op == "drain":
            clean = self.engine.drain(float(req.get("timeout", 10.0)))
            return {"ok": True, "drained": clean}
        if op == "chaos":
            spec = dict(req.get("spec") or {})
            if "site" not in spec:
                raise ValueError("chaos op requires a 'site'")
            self._arm_chaos(spec)
            return {"ok": True, "armed": chaos.active()}
        if op == "shutdown":
            self._stop.set()
            # Closing the listener pops the accept loop out of accept().
            with contextlib.suppress(OSError):
                self._listener.close()
            return {"ok": True}
        raise ValueError(f"unknown op {op!r}")

    def _error_envelope(self, exc: BaseException) -> dict:
        if isinstance(exc, ServiceError) and type(exc) is not ServiceError:
            return {
                "ok": False,
                "error": exc.code,
                "message": str(exc),
                "status": exc.http_status,
            }
        # Bare ServiceError wrappers and unexpected exceptions may carry
        # internals in their text: same discipline as the HTTP layer —
        # log the detail, return an opaque id.
        error_id = uuid.uuid4().hex[:12]
        logger.exception("worker internal error %s: %s", error_id, exc)
        self.engine.telemetry.inc("http.internal_errors")
        return {
            "ok": False,
            "error": "internal",
            "message": f"internal worker error (id {error_id})",
            "status": 500,
            "error_id": error_id,
        }

    def _serve_connection(self, conn: socket.socket) -> None:
        with conn:
            while not self._stop.is_set():
                try:
                    req = recv_msg(conn)
                except (ProtocolError, OSError):
                    return  # router hung up / died; just drop the line
                try:
                    reply = self._handle(req)
                except (TypeError, ValueError) as exc:
                    reply = {
                        "ok": False,
                        "error": "bad_request",
                        "message": str(exc),
                        "status": 400,
                    }
                except ServiceError as exc:
                    reply = self._error_envelope(exc)
                except Exception as exc:  # noqa: BLE001 — keep serving
                    reply = self._error_envelope(exc)
                try:
                    send_msg(conn, reply)
                except OSError:
                    return
                if req.get("op") == "shutdown":
                    return

    def serve(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                break  # listener closed by shutdown
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name=f"worker-{self.config.worker_id}-conn",
                daemon=True,
            ).start()
        self.engine.close()


def worker_main(config: WorkerConfig, ready: Connection) -> None:
    """Child-process entry point (must stay importable for ``spawn``).

    Builds the engine, binds an ephemeral loopback port and reports it
    back through ``ready`` before entering the accept loop; a startup
    crash reports the error instead so the router fails fast rather
    than timing out.

    Workers ignore SIGINT/SIGTERM: a Ctrl-C (or a group-wide SIGTERM)
    hits every process in the foreground process group, and if workers
    died on it the router's graceful drain would have nobody left to
    drain.  Lifecycle is router-driven — the ``shutdown`` op, or
    SIGKILL from :meth:`ClusterRouter._kill_process` as the last
    resort.  An orphan watchdog exits the process if the router dies
    without saying goodbye, so ignored signals cannot leak workers.
    """
    with contextlib.suppress(ValueError, OSError):
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        signal.signal(signal.SIGTERM, signal.SIG_IGN)

    parent = os.getppid()

    def _watch_parent() -> None:
        while True:
            if os.getppid() != parent:
                os._exit(0)  # orphaned: the router is gone
            time.sleep(1.0)

    threading.Thread(
        target=_watch_parent, name="parent-watchdog", daemon=True
    ).start()
    try:
        server = _WorkerServer(config)
    except Exception as exc:  # noqa: BLE001 — reported to the router
        with contextlib.suppress(OSError):
            ready.send(("error", f"{type(exc).__name__}: {exc}"))
            ready.close()
        raise
    ready.send(("ready", server.port))
    ready.close()
    server.serve()
    # Give in-flight responses a beat to flush, then leave quietly.
    time.sleep(0.05)
