"""Analytic routing-policy comparison for the sharded serving tier.

The router ships with consistent-hash routing because it needs *graph
affinity* (updates and layouts must share a shard) and *minimal
movement* on worker death.  But hash placement ignores request cost: a
handful of expensive graphs can pile onto one shard.  Before changing a
production routing policy you want to know how much that costs — and
the machine model can answer analytically, the same way it answers
thread-scaling questions for the kernels.

Given a workload (request key → cost ledger), this module builds the
per-shard assignment each policy would produce and prices it with
:func:`repro.parallel.machine.shard_times` (compute on ``p`` threads
per worker + α-β communication per request, the Buluç/Madduri
1D-partition accounting).  The makespan — the slowest shard — is the
cluster's modeled completion time; the makespan ratio between policies
is the analytic answer to "is size-balanced routing worth losing cheap
resharding for?".

``compare_policies`` is exercised by ``benchmarks/
bench_cluster_scaling.py`` and the examples in ``docs/cluster.md``.
"""

from __future__ import annotations

from typing import Any, Mapping

from ..parallel.costs import Ledger
from ..parallel.machine import MachineSpec, shard_times
from .ring import HashRing

__all__ = [
    "balanced_assignment",
    "compare_policies",
    "hash_assignment",
]


def _cost_time(machine: MachineSpec, p: int, cost) -> float:
    nbytes = 0.0
    if isinstance(cost, tuple):
        cost, nbytes = cost
    totals = cost.total() if isinstance(cost, Ledger) else cost
    if isinstance(totals, (int, float)):
        compute = float(totals)  # already seconds
    else:
        compute = machine.time_totals(totals, p)
    return compute + machine.message_time(nbytes)


def hash_assignment(
    costs: Mapping[str, Any], shards: int, *, vnodes: int = 64
) -> dict[int, list]:
    """The consistent-hash ring's placement of ``costs`` over ``shards``.

    Uses the same :class:`~repro.cluster.ring.HashRing` the live router
    uses, so the modeled placement is the deployed placement.
    """
    ring = HashRing(vnodes)
    for shard in range(shards):
        ring.add(shard)
    assignment: dict[int, list] = {shard: [] for shard in range(shards)}
    for key, cost in costs.items():
        assignment[ring.owner(str(key))].append(cost)
    return assignment


def balanced_assignment(
    costs: Mapping[str, Any],
    shards: int,
    machine: MachineSpec,
    p: int,
) -> dict[int, list]:
    """Size-balanced (LPT greedy) placement: heaviest request first onto
    the currently lightest shard.

    The classic longest-processing-time heuristic — within 4/3 of the
    optimal makespan — standing in for an omniscient cost-aware router.
    It ignores graph affinity, which is why the live router does not use
    it; the point is to price what affinity costs.
    """
    order = sorted(
        costs.items(),
        key=lambda kv: _cost_time(machine, p, kv[1]),
        reverse=True,
    )
    assignment: dict[int, list] = {shard: [] for shard in range(shards)}
    loads = dict.fromkeys(range(shards), 0.0)
    for _key, cost in order:
        shard = min(loads, key=loads.get)
        assignment[shard].append(cost)
        loads[shard] += _cost_time(machine, p, cost)
    return assignment


def compare_policies(
    costs: Mapping[str, Any],
    machine: MachineSpec,
    p: int = 1,
    shards: int | None = None,
) -> dict:
    """Model both routing policies over one workload.

    Returns makespan (slowest shard), mean shard time and imbalance
    (makespan / mean — 1.0 is perfect) per policy, plus the makespan
    ratio ``hash / balanced`` (how much the hash policy's affinity
    guarantee costs on this workload).
    """
    shards = shards if shards is not None else machine.shards
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")

    def _summary(assignment: dict[int, list]) -> dict:
        times = shard_times(assignment, machine, p)
        makespan = max(times.values())
        mean = sum(times.values()) / len(times)
        return {
            "per_shard": times,
            "makespan": makespan,
            "mean": mean,
            "imbalance": makespan / mean if mean > 0 else 1.0,
        }

    hashed = _summary(hash_assignment(costs, shards))
    balanced = _summary(balanced_assignment(costs, shards, machine, p))
    return {
        "shards": shards,
        "requests": len(costs),
        "hash": hashed,
        "balanced": balanced,
        "hash_over_balanced": (
            hashed["makespan"] / balanced["makespan"]
            if balanced["makespan"] > 0
            else 1.0
        ),
    }
