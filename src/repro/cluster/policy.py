"""Analytic routing-policy comparison for the sharded serving tier.

The router ships with consistent-hash routing because it needs *graph
affinity* (updates and layouts must share a shard) and *minimal
movement* on worker death.  But hash placement ignores request cost: a
handful of expensive graphs can pile onto one shard.  Before changing a
production routing policy you want to know how much that costs — and
the machine model can answer analytically, the same way it answers
thread-scaling questions for the kernels.

Given a workload (request key → cost ledger), this module builds the
per-shard assignment each policy would produce and prices it with
:func:`repro.parallel.machine.shard_times` (compute on ``p`` threads
per worker + α-β communication per request, the Buluç/Madduri
1D-partition accounting).  The makespan — the slowest shard — is the
cluster's modeled completion time; the makespan ratio between policies
is the analytic answer to "is size-balanced routing worth losing cheap
resharding for?".

``compare_policies`` is exercised by ``benchmarks/
bench_cluster_scaling.py`` and the examples in ``docs/cluster.md``.

:class:`LivePlacement` closes the loop: the LPT heuristic the analytic
comparison priced, running *inside* the live router
(``ClusterRouter(placement="lpt")`` / ``parhde serve --placement lpt``).
It keeps the property routing must never lose — **sticky affinity**, a
key stays on its assigned worker so epoch invalidation remains correct —
and applies LPT only where it is free: when a key is seen for the first
time, and when a worker death forces reassignment anyway.  Per-key costs
are EWMA-estimated from observed response latencies, so the placement
gets better as the workload reveals itself.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable, Mapping

from ..parallel.costs import Ledger
from ..parallel.machine import MachineSpec, shard_times
from .ring import HashRing

__all__ = [
    "LivePlacement",
    "balanced_assignment",
    "compare_policies",
    "hash_assignment",
]


def _cost_time(machine: MachineSpec, p: int, cost) -> float:
    nbytes = 0.0
    if isinstance(cost, tuple):
        cost, nbytes = cost
    totals = cost.total() if isinstance(cost, Ledger) else cost
    if isinstance(totals, (int, float)):
        compute = float(totals)  # already seconds
    else:
        compute = machine.time_totals(totals, p)
    return compute + machine.message_time(nbytes)


def hash_assignment(
    costs: Mapping[str, Any], shards: int, *, vnodes: int = 64
) -> dict[int, list]:
    """The consistent-hash ring's placement of ``costs`` over ``shards``.

    Uses the same :class:`~repro.cluster.ring.HashRing` the live router
    uses, so the modeled placement is the deployed placement.
    """
    ring = HashRing(vnodes)
    for shard in range(shards):
        ring.add(shard)
    assignment: dict[int, list] = {shard: [] for shard in range(shards)}
    for key, cost in costs.items():
        assignment[ring.owner(str(key))].append(cost)
    return assignment


def balanced_assignment(
    costs: Mapping[str, Any],
    shards: int,
    machine: MachineSpec,
    p: int,
) -> dict[int, list]:
    """Size-balanced (LPT greedy) placement: heaviest request first onto
    the currently lightest shard.

    The classic longest-processing-time heuristic — within 4/3 of the
    optimal makespan — standing in for an omniscient cost-aware router.
    It ignores graph affinity, which is why the live router does not use
    it; the point is to price what affinity costs.
    """
    order = sorted(
        costs.items(),
        key=lambda kv: _cost_time(machine, p, kv[1]),
        reverse=True,
    )
    assignment: dict[int, list] = {shard: [] for shard in range(shards)}
    loads = dict.fromkeys(range(shards), 0.0)
    for _key, cost in order:
        shard = min(loads, key=loads.get)
        assignment[shard].append(cost)
        loads[shard] += _cost_time(machine, p, cost)
    return assignment


def compare_policies(
    costs: Mapping[str, Any],
    machine: MachineSpec,
    p: int = 1,
    shards: int | None = None,
) -> dict:
    """Model both routing policies over one workload.

    Returns makespan (slowest shard), mean shard time and imbalance
    (makespan / mean — 1.0 is perfect) per policy, plus the makespan
    ratio ``hash / balanced`` (how much the hash policy's affinity
    guarantee costs on this workload).
    """
    shards = shards if shards is not None else machine.shards
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")

    def _summary(assignment: dict[int, list]) -> dict:
        times = shard_times(assignment, machine, p)
        makespan = max(times.values())
        mean = sum(times.values()) / len(times)
        return {
            "per_shard": times,
            "makespan": makespan,
            "mean": mean,
            "imbalance": makespan / mean if mean > 0 else 1.0,
        }

    hashed = _summary(hash_assignment(costs, shards))
    balanced = _summary(balanced_assignment(costs, shards, machine, p))
    return {
        "shards": shards,
        "requests": len(costs),
        "hash": hashed,
        "balanced": balanced,
        "hash_over_balanced": (
            hashed["makespan"] / balanced["makespan"]
            if balanced["makespan"] > 0
            else 1.0
        ),
    }


class LivePlacement:
    """Sticky size-balanced (LPT) placement for the live router.

    A routing table ``key -> worker`` built greedily: a key seen for the
    first time goes to the least-loaded live worker; after that it
    *stays* there (graph affinity — the worker holding a graph's epoch
    state must keep receiving its updates and layouts).  When a worker
    dies, only its keys move: they are reassigned heaviest-first onto
    the least-loaded survivors — the LPT heuristic
    (:func:`balanced_assignment`) applied at exactly the moments
    reassignment is forced anyway.

    Load is the sum of per-key cost estimates, EWMA-updated from the
    observed ``elapsed_seconds`` of real responses via :meth:`observe`.
    Before a key's first observation it costs ``default_cost``, so a
    cold table degenerates to round-robin-by-count — already better
    balanced than hashing.

    Thread-safe; the router calls into it under load from handler
    threads and the heartbeat monitor.
    """

    def __init__(self, *, default_cost: float = 1.0, ewma: float = 0.3):
        if not 0.0 < ewma <= 1.0:
            raise ValueError(f"ewma must be in (0, 1], got {ewma}")
        self._default = float(default_cost)
        self._ewma = float(ewma)
        self._lock = threading.Lock()
        self._table: dict[str, int] = {}  # key -> worker id
        self._cost: dict[str, float] = {}  # key -> EWMA seconds
        self._load: dict[int, float] = {}  # worker id -> summed cost

    # -- membership ---------------------------------------------------------
    def add_worker(self, worker_id: int) -> None:
        with self._lock:
            self._load.setdefault(int(worker_id), 0.0)

    def evict_worker(self, worker_id: int, live: Iterable[int]) -> dict[str, int]:
        """Remove a dead worker and LPT-reassign its keys to survivors.

        Returns the moved ``key -> new worker`` mapping (empty when the
        worker held nothing or no survivor exists — then the keys are
        simply dropped from the table and will be re-placed on next
        sight).
        """
        worker_id = int(worker_id)
        live_ids = [int(w) for w in live if int(w) != worker_id]
        with self._lock:
            self._load.pop(worker_id, None)
            orphans = [k for k, w in self._table.items() if w == worker_id]
            for key in orphans:
                del self._table[key]
            if not live_ids:
                return {}
            for w in live_ids:
                self._load.setdefault(w, 0.0)
            moved: dict[str, int] = {}
            # Heaviest-first onto the lightest survivor: classic LPT.
            orphans.sort(key=lambda k: self._cost.get(k, self._default), reverse=True)
            for key in orphans:
                target = min(live_ids, key=lambda w: self._load.get(w, 0.0))
                self._table[key] = target
                self._load[target] = self._load.get(target, 0.0) + self._cost.get(
                    key, self._default
                )
                moved[key] = target
            return moved

    # -- routing ------------------------------------------------------------
    def assign(self, key: str, live: Iterable[int]) -> int:
        """Worker for ``key``: the sticky assignment, or a fresh LPT pick.

        ``live`` is the current set of healthy workers; a sticky
        assignment pointing at a worker no longer in it is re-placed
        (covers races where eviction has not run yet).  Raises
        ``LookupError`` when no live worker exists.
        """
        live_ids = [int(w) for w in live]
        if not live_ids:
            raise LookupError("no live workers to place onto")
        with self._lock:
            worker = self._table.get(key)
            if worker is not None and worker in live_ids:
                return worker
            for w in live_ids:
                self._load.setdefault(w, 0.0)
            target = min(live_ids, key=lambda w: self._load.get(w, 0.0))
            self._table[key] = target
            self._load[target] = self._load.get(target, 0.0) + self._cost.get(
                key, self._default
            )
            return target

    def peek(self, key: str) -> int | None:
        """Current assignment without placing (ops/tests)."""
        with self._lock:
            return self._table.get(key)

    # -- cost feedback ------------------------------------------------------
    def observe(self, key: str, seconds: float) -> None:
        """Fold one observed request latency into the key's cost estimate."""
        seconds = float(seconds)
        if seconds <= 0:
            return
        with self._lock:
            worker = self._table.get(key)
            old = self._cost.get(key, self._default)
            new = (1.0 - self._ewma) * old + self._ewma * seconds
            self._cost[key] = new
            if worker is not None and worker in self._load:
                self._load[worker] += new - old

    def snapshot(self) -> dict:
        """Stats payload: per-worker load and key counts."""
        with self._lock:
            keys_per_worker: dict[str, int] = {}
            for worker in self._table.values():
                keys_per_worker[str(worker)] = (
                    keys_per_worker.get(str(worker), 0) + 1
                )
            return {
                "policy": "lpt",
                "keys": len(self._table),
                "load": {str(w): round(l, 6) for w, l in self._load.items()},
                "keys_per_worker": keys_per_worker,
            }
