"""Multi-process sharded serving tier (``parhde serve --workers N``).

Everything below :mod:`repro.service` runs in one Python process, so
real request throughput is GIL-bound no matter how many threads the
engine's pool holds.  This package is the horizontal layer above it:

* :mod:`~repro.cluster.protocol` — length-prefixed JSON frames over
  loopback sockets (inspectable, restart-safe, no pickle);
* :mod:`~repro.cluster.ring` — a consistent-hash ring mapping graph
  identities to worker shards: updates and layouts for one graph share
  a shard (epoch invalidation stays correct) and worker death moves
  only the dead shard's keys;
* :mod:`~repro.cluster.worker` — spawned worker processes, each a full
  shared-nothing :class:`~repro.service.engine.LayoutEngine` +
  :class:`~repro.service.cache.LayoutCache` behind the socket protocol;
* :mod:`~repro.cluster.router` — the frontend brain: cluster-wide
  coalescing of identical in-flight requests, heartbeat health checks
  feeding :class:`~repro.resilience.breaker.BreakerRegistry` circuit
  breakers, automatic worker restart with live resharding (in-flight
  requests retry on the ring successor), aggregated ``/stats``, and
  whole-cluster graceful drain fanning out the per-engine drain;
* :mod:`~repro.cluster.frontend` — the HTTP face, wire-compatible with
  the in-process endpoint;
* :mod:`~repro.cluster.policy` — analytic routing-policy comparison
  (consistent-hash vs size-balanced) priced by the machine model's new
  distributed dimension (:func:`repro.parallel.machine.shard_times`).

See ``docs/cluster.md`` for the architecture diagram, ring semantics,
failure modes and tuning guidance.
"""

from .frontend import ClusterServer, make_cluster_server
from .policy import balanced_assignment, compare_policies, hash_assignment
from .protocol import MAX_FRAME, ProtocolError, recv_msg, send_msg
from .ring import HashRing, graph_key
from .router import ClusterRouter, RemoteError, WorkerUnavailable
from .worker import WorkerConfig, worker_main

__all__ = [
    "MAX_FRAME",
    "ClusterRouter",
    "ClusterServer",
    "HashRing",
    "ProtocolError",
    "RemoteError",
    "WorkerConfig",
    "WorkerUnavailable",
    "balanced_assignment",
    "compare_policies",
    "graph_key",
    "hash_assignment",
    "make_cluster_server",
    "recv_msg",
    "send_msg",
    "worker_main",
]
