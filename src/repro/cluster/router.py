"""The cluster router: shard, coalesce, heartbeat, reshard, drain.

:class:`ClusterRouter` owns a pool of spawned worker processes (each a
shared-nothing :class:`~repro.service.engine.LayoutEngine`, see
:mod:`repro.cluster.worker`) and fronts them with the same serving API
the in-process engine exposes.  A request travels:

1. **Coalesce** — identical in-flight request shapes collapse onto one
   forwarded computation *across the whole cluster*: the router keys
   in-flight requests by their canonical body, so ten clients asking
   for the same cold layout cost one worker computation plus one socket
   round-trip, not ten (the worker's own single-flight only protects a
   single process; this extends the guard cluster-wide).
2. **Route** — the graph's identity key (name, scale, seed) is looked
   up on a consistent-hash ring (:mod:`repro.cluster.ring`).  Updates
   and layouts for one graph therefore share a shard, which is what
   keeps epoch-based fingerprint invalidation correct: the worker that
   bumps an epoch is the worker whose cache held the stale entries.
3. **Retry** — a transport failure (dead worker, torn connection) marks
   the worker down, removes it from the ring and retries the request on
   the new owner — the ring successor — transparently to the client.
   Application errors (400/503/504 from the worker engine) are relayed,
   never retried.

A heartbeat monitor pings every worker each ``heartbeat_interval``
seconds and records the outcome in a
:class:`~repro.resilience.breaker.BreakerRegistry` keyed per worker —
the same circuit-breaker machinery the engine uses per graph.  A worker
whose breaker trips (consecutive missed heartbeats) or whose process
died is declared dead, removed from the ring, and respawned under
capped exponential backoff; the restarted worker rejoins the ring with
a cold cache and — when the cluster runs without a ``wal_dir`` —
pristine graph state (see ``docs/cluster.md`` for why that is
coherent).  With ``wal_dir`` set, each worker replays its own
write-ahead log before reporting ready, so the respawned worker rejoins
at the post-update epochs (``docs/wal.md``).

Graceful drain fans out the per-engine drain: the router refuses new
work, then every worker finishes its in-flight computations.
"""

from __future__ import annotations

import logging
import multiprocessing as mp
import socket
import threading
import time
from typing import Iterable

from ..resilience import BreakerRegistry
from ..resilience.breaker import OPEN
from ..service import Telemetry
from ..service.engine import (
    BadRequest,
    Overloaded,
    RequestTimeout,
    ServiceError,
    ValidationFailed,
)
from ..service.fingerprint import canonical_params
from .policy import LivePlacement
from .protocol import ProtocolError, recv_msg, send_msg
from .ring import HashRing, graph_key
from .worker import WorkerConfig, worker_main

__all__ = ["ClusterRouter", "RemoteError", "WorkerUnavailable"]

logger = logging.getLogger("repro.cluster.router")

_ERROR_TYPES: dict[str, type[ServiceError]] = {
    "bad_request": BadRequest,
    "overloaded": Overloaded,
    "timeout": RequestTimeout,
    "invalid_layout": ValidationFailed,
}


class WorkerUnavailable(ServiceError):
    """No live worker could take the request (all shards down/unreachable)."""

    code = "unavailable"
    http_status = 503


class RemoteError(ServiceError):
    """A worker-side error relayed verbatim (already sanitized there)."""

    def __init__(self, code: str, message: str, status: int):
        super().__init__(message)
        self.code = code
        self.http_status = int(status)


def _remote_error(reply: dict) -> ServiceError:
    code = str(reply.get("error", "internal"))
    message = str(reply.get("message", "worker error"))
    cls = _ERROR_TYPES.get(code)
    if cls is not None:
        return cls(message)
    return RemoteError(code, message, int(reply.get("status", 500)))


class _Flight:
    """One in-flight forwarded request; followers wait on the leader."""

    __slots__ = ("event", "result", "error")

    def __init__(self):
        self.event = threading.Event()
        self.result: dict | None = None
        self.error: BaseException | None = None


class _Worker:
    """Router-side handle: process, address, and a connection pool."""

    def __init__(self, worker_id: int, config: WorkerConfig):
        self.id = worker_id
        self.config = config
        self.process: mp.process.BaseProcess | None = None
        self.address: tuple[str, int] | None = None
        self.generation = 0
        self.state = "starting"  # starting | up | dead | stopped
        #: Consecutive failed respawns; drives the monitor's capped
        #: exponential backoff (reset to 0 by a successful restart).
        self.restart_failures = 0
        #: Monotonic time before which the monitor must not retry a
        #: respawn of this worker.
        self.next_restart_at = 0.0
        self._lock = threading.Lock()
        self._idle: list[socket.socket] = []

    @property
    def alive(self) -> bool:
        return (
            self.state == "up"
            and self.process is not None
            and self.process.is_alive()
        )

    # -- connection pool ---------------------------------------------------
    def _connect(self, timeout: float) -> socket.socket:
        if self.address is None:
            raise ConnectionError(f"worker {self.id} has no address")
        conn = socket.create_connection(self.address, timeout=timeout)
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return conn

    def _checkout(self) -> socket.socket | None:
        with self._lock:
            return self._idle.pop() if self._idle else None

    def _checkin(self, conn: socket.socket) -> None:
        with self._lock:
            if self.state == "up" and len(self._idle) < 8:
                self._idle.append(conn)
                return
        _close_quietly(conn)

    def close_idle(self) -> None:
        with self._lock:
            idle, self._idle = self._idle, []
        for conn in idle:
            _close_quietly(conn)

    def request(self, msg: dict, timeout: float) -> dict:
        """One framed round-trip; transport failures raise ConnectionError.

        A pooled socket may be stale (worker restarted between uses), so
        a failure on a pooled connection is retried once on a fresh one
        — if the worker is genuinely dead, the fresh connect fails and
        the caller reshards.
        """
        conn = self._checkout()
        pooled = conn is not None
        if conn is None:
            conn = self._connect(timeout)
        try:
            conn.settimeout(timeout)
            send_msg(conn, msg)
            reply = recv_msg(conn)
        except (OSError, ProtocolError):
            _close_quietly(conn)
            if not pooled:
                raise
            conn = self._connect(timeout)
            try:
                conn.settimeout(timeout)
                send_msg(conn, msg)
                reply = recv_msg(conn)
            except (OSError, ProtocolError):
                _close_quietly(conn)
                raise
        self._checkin(conn)
        return reply


def _close_quietly(conn: socket.socket) -> None:
    try:
        conn.close()
    except OSError:
        pass


class ClusterRouter:
    """Shard layout serving across worker processes (see module docs).

    Parameters
    ----------
    workers:
        Worker process count (>= 1; ``parhde serve --workers 0`` keeps
        the in-process engine and never builds a router).
    compute_threads / queue_limit / timeout / cache_mb / cache_dir /
    resilience / validation:
        Per-worker engine knobs (each worker gets its own engine; the
        disk cache directory is split into per-worker subdirs so tiers
        stay shared-nothing).
    vnodes:
        Virtual nodes per worker on the hash ring.
    heartbeat_interval:
        Seconds between monitor heartbeat sweeps.
    breaker_threshold / breaker_reset:
        Consecutive missed heartbeats that trip a worker's breaker (the
        worker is then declared dead and restarted), and the breaker's
        reset window.
    restart:
        Respawn dead workers (the live-resharding loop).  Tests disable
        it to observe the degraded ring.
    restart_backoff / restart_backoff_cap:
        A respawn that *fails* (the replacement process never reports
        ready) is retried with capped exponential backoff —
        ``restart_backoff * 2**(failures - 1)`` seconds, at most
        ``restart_backoff_cap`` — instead of on every monitor tick, so
        a persistently broken worker config cannot hot-loop process
        spawns.  A successful restart resets the backoff.
    wal_dir / wal_fsync:
        Per-worker write-ahead-log root (split into ``worker-<i>/``
        subdirs like ``cache_dir``) and its fsync policy; ``None``
        keeps workers volatile.  See ``docs/wal.md``.
    start_timeout:
        Seconds to wait for a spawned worker to report ready.
    placement:
        ``"hash"`` (default) routes on the consistent-hash ring;
        ``"lpt"`` routes through :class:`~repro.cluster.policy.
        LivePlacement` — sticky size-balanced placement with LPT
        reassignment on worker death (the ring stays maintained as the
        fallback when the placement has no live worker to offer).
    lod / lod_opts:
        Per-worker progressive-LOD default mode and
        :class:`~repro.lod.LodConfig` knob overrides (dict); forwarded
        into every :class:`~repro.cluster.worker.WorkerConfig` so
        sharded workers serve coarse-first exactly like the in-process
        engine.
    """

    def __init__(
        self,
        workers: int = 2,
        *,
        compute_threads: int = 2,
        queue_limit: int = 8,
        timeout: float = 60.0,
        cache_mb: float = 64.0,
        cache_dir: str | None = None,
        resilience: bool = False,
        validation: str | None = None,
        vnodes: int = 64,
        heartbeat_interval: float = 0.5,
        breaker_threshold: int = 3,
        breaker_reset: float = 10.0,
        restart: bool = True,
        restart_backoff: float = 0.5,
        restart_backoff_cap: float = 30.0,
        start_timeout: float = 60.0,
        telemetry: Telemetry | None = None,
        chaos_sites: Iterable[dict] = (),
        placement: str = "hash",
        lod: str | float | None = None,
        lod_opts: dict | None = None,
        wal_dir: str | None = None,
        wal_fsync: str = "batch",
    ):
        if workers < 1:
            raise ValueError(f"cluster needs >= 1 worker, got {workers}")
        if placement not in ("hash", "lpt"):
            raise ValueError(
                f"placement must be 'hash' or 'lpt', got {placement!r}"
            )
        self.timeout = timeout
        self.restart = restart
        self.restart_backoff = max(0.0, float(restart_backoff))
        self.restart_backoff_cap = max(
            self.restart_backoff, float(restart_backoff_cap)
        )
        self.heartbeat_interval = heartbeat_interval
        self.start_timeout = start_timeout
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self._breakers = BreakerRegistry(
            breaker_threshold,
            breaker_reset,
            on_transition=self._on_breaker_transition,
        )
        self._ctx = mp.get_context("spawn")
        self._ring = HashRing(vnodes)
        self._placement = LivePlacement() if placement == "lpt" else None
        self._lock = threading.Lock()  # guards ring + worker state flips
        self._flights: dict[str, _Flight] = {}
        self._flights_lock = threading.Lock()
        self._draining = False
        self._closed = False
        self._wake = threading.Event()
        self._stop = threading.Event()
        self._monitor: threading.Thread | None = None
        self._workers: dict[int, _Worker] = {}
        for i in range(workers):
            config = WorkerConfig(
                worker_id=i,
                compute_threads=compute_threads,
                queue_limit=queue_limit,
                timeout=timeout,
                cache_mb=cache_mb,
                cache_dir=(f"{cache_dir}/worker-{i}" if cache_dir else None),
                resilience=resilience,
                validation=validation,
                wal_dir=(f"{wal_dir}/worker-{i}" if wal_dir else None),
                wal_fsync=wal_fsync,
                lod=lod,
                lod_opts=tuple(sorted((lod_opts or {}).items())),
                chaos_sites=tuple(dict(s) for s in chaos_sites),
            )
            self._workers[i] = _Worker(i, config)

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "ClusterRouter":
        """Spawn every worker, seed the ring, start the heartbeat monitor."""
        pending = []
        for worker in self._workers.values():
            pending.append((worker, self._spawn(worker)))
        for worker, ready in pending:
            self._await_ready(worker, ready)
        if not any(w.state == "up" for w in self._workers.values()):
            raise RuntimeError("no cluster worker came up")
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="cluster-monitor", daemon=True
        )
        self._monitor.start()
        return self

    def _spawn(self, worker: _Worker):
        parent, child = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=worker_main,
            args=(worker.config, child),
            name=f"parhde-worker-{worker.id}",
            daemon=True,
        )
        process.start()
        child.close()
        worker.process = process
        return parent

    def _await_ready(self, worker: _Worker, ready) -> None:
        try:
            if not ready.poll(self.start_timeout):
                raise TimeoutError(
                    f"worker {worker.id} not ready within {self.start_timeout}s"
                )
            kind, value = ready.recv()
        except (EOFError, OSError, TimeoutError) as exc:
            logger.error("worker %d failed to start: %s", worker.id, exc)
            self._kill_process(worker)
            worker.state = "dead"
            return
        finally:
            ready.close()
        if kind != "ready":
            logger.error("worker %d startup error: %s", worker.id, value)
            self._kill_process(worker)
            worker.state = "dead"
            return
        worker.address = (worker.config.host, int(value))
        with self._lock:
            worker.state = "up"
            self._ring.add(worker.id)
            if self._placement is not None:
                self._placement.add_worker(worker.id)

    def close(self) -> None:
        """Stop the monitor and shut every worker down (best effort)."""
        if self._closed:
            return
        self._closed = True
        self._stop.set()
        self._wake.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5)
        for worker in self._workers.values():
            if worker.alive:
                try:
                    worker.request({"op": "shutdown"}, timeout=2.0)
                except (OSError, ProtocolError):
                    pass
            self._kill_process(worker)
            worker.close_idle()
            worker.state = "stopped"

    def __enter__(self) -> "ClusterRouter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @staticmethod
    def _kill_process(worker: _Worker) -> None:
        # Workers ignore SIGTERM (see worker_main), so terminate() only
        # catches a process that is already on its way out; escalate to
        # SIGKILL quickly rather than waiting on a hung worker.
        process = worker.process
        if process is None:
            return
        if process.is_alive():
            process.terminate()
            process.join(timeout=0.5)
            if process.is_alive():
                process.kill()
                process.join(timeout=2)

    # -- health ------------------------------------------------------------
    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def alive_workers(self) -> int:
        with self._lock:
            return len(self._ring)

    def healthz(self) -> dict:
        """Probe body — same schema as the in-process ``GET /healthz``."""
        alive = self.alive_workers
        if self._draining:
            status = "draining"
        elif alive == 0:
            status = "down"
        else:
            status = "ok"
        return {"status": status, "workers": alive}

    def _on_breaker_transition(self, key: str, old: str, new: str) -> None:
        self.telemetry.inc(f"router.breaker.to_{new.replace('-', '_')}")
        if new == OPEN:
            self.telemetry.gauge("breakers_open").add(1)
        elif old == OPEN:
            self.telemetry.gauge("breakers_open").add(-1)

    def _note_failure(self, worker: _Worker) -> None:
        """Declare a worker dead: off the ring, breaker fed, monitor woken."""
        with self._lock:
            if worker.state != "up":
                return
            worker.state = "dead"
            self._ring.remove(worker.id)
            if self._placement is not None:
                # Eager LPT reassignment: the dead worker's keys move
                # heaviest-first onto the least-loaded survivors now,
                # instead of one by one as requests trickle in.
                live = [
                    w.id for w in self._workers.values() if w.state == "up"
                ]
                self._placement.evict_worker(worker.id, live)
        self.telemetry.inc("router.worker_deaths")
        self._breakers.record(f"worker:{worker.id}", False)
        worker.close_idle()
        logger.warning("worker %d declared dead; resharding", worker.id)
        self._wake.set()

    def _monitor_loop(self) -> None:
        while not self._stop.is_set():
            self._wake.wait(self.heartbeat_interval)
            self._wake.clear()
            if self._stop.is_set():
                return
            for worker in self._workers.values():
                if self._stop.is_set():
                    return
                if worker.state == "up":
                    self._heartbeat(worker)
                if (
                    worker.state == "dead"
                    and self.restart
                    and not self._draining
                    and time.monotonic() >= worker.next_restart_at
                ):
                    self._respawn(worker)

    def _heartbeat(self, worker: _Worker) -> None:
        key = f"worker:{worker.id}"
        if worker.process is not None and not worker.process.is_alive():
            self._note_failure(worker)
            return
        try:
            reply = worker.request(
                {"op": "ping"}, timeout=max(2.0, self.heartbeat_interval * 4)
            )
            ok = bool(reply.get("ok"))
        except (OSError, ProtocolError):
            ok = False
        self._breakers.record(key, ok)
        if not ok and self._breakers.breaker(key).state == OPEN:
            self._note_failure(worker)

    def _respawn(self, worker: _Worker) -> None:
        """Replace a dead worker's process and re-add it to the ring."""
        self._kill_process(worker)
        worker.close_idle()
        worker.generation += 1
        logger.info(
            "restarting worker %d (generation %d)", worker.id, worker.generation
        )
        ready = self._spawn(worker)
        self._await_ready(worker, ready)
        if worker.state == "up":
            self.telemetry.inc("router.restarts")
            worker.restart_failures = 0
            worker.next_restart_at = 0.0
            # A fresh process answered ready: clear the heartbeat breaker
            # so the new generation starts with a clean failure budget.
            self._breakers.record(f"worker:{worker.id}", True)
        else:
            self.telemetry.inc("router.restart_failures")
            worker.restart_failures += 1
            delay = min(
                self.restart_backoff_cap,
                self.restart_backoff * (2 ** (worker.restart_failures - 1)),
            )
            worker.next_restart_at = time.monotonic() + delay
            logger.warning(
                "worker %d restart failed (%d consecutive); next attempt"
                " in %.1fs", worker.id, worker.restart_failures, delay,
            )

    # -- request path ------------------------------------------------------
    @staticmethod
    def _route_key(doc: dict) -> str:
        return graph_key(
            str(doc.get("graph", "")),
            str(doc.get("scale", "small")),
            int(doc.get("seed", 0) or 0),
        )

    @staticmethod
    def _coalesce_key(doc: dict) -> str:
        # Everything that shapes the layout identity; include_coords is
        # presentation (the router always fetches coords and strips) and
        # timeout is a client-side budget, so neither splits a flight.
        # "lod" IS identity: an lod=auto request may legitimately be
        # answered at a coarse tier, an lod=off request must not be.
        return canonical_params(
            {
                "graph": doc.get("graph"),
                "scale": doc.get("scale", "small"),
                "seed": doc.get("seed", 0),
                "algorithm": doc.get("algorithm", "parhde"),
                "s": doc.get("s", 10),
                "params": doc.get("params") or {},
                "lod": doc.get("lod"),
            }
        )

    def _owner_locked(self, route_key: str) -> int:
        """Owning worker id for a route key (caller holds ``self._lock``).

        LPT placement when enabled, consistent hashing otherwise; falls
        back to the ring if the placement table has no live worker to
        offer (races around membership changes).
        """
        if self._placement is not None:
            live = [w.id for w in self._workers.values() if w.state == "up"]
            try:
                return self._placement.assign(route_key, live)
            except LookupError:
                pass
        return self._ring.owner(route_key)

    def _check_open(self, counter: str) -> None:
        self.telemetry.inc(counter)
        if self._draining:
            raise Overloaded("cluster is draining; not accepting new requests")
        if self.alive_workers == 0:
            raise WorkerUnavailable("no live workers in the ring")

    def layout(self, doc: dict) -> dict:
        """Serve one ``POST /layout`` body through the cluster."""
        t0 = time.perf_counter()
        self._check_open("router.requests")
        include_coords = bool(doc.get("include_coords", True))
        key = self._coalesce_key(doc)

        with self._flights_lock:
            flight = self._flights.get(key)
            leader = flight is None
            if leader:
                flight = self._flights[key] = _Flight()
        assert flight is not None

        if leader:
            try:
                body = dict(doc)
                body["include_coords"] = True
                flight.result = self._forward(
                    "layout", body, self._route_key(doc)
                )
            except BaseException as exc:
                flight.error = exc
                raise
            finally:
                with self._flights_lock:
                    self._flights.pop(key, None)
                flight.event.set()
            payload = dict(flight.result)
            if self._placement is not None:
                self._placement.observe(
                    self._route_key(doc),
                    float(payload.get("elapsed_seconds") or 0.0),
                )
        else:
            self.telemetry.inc("router.coalesced")
            budget = float(doc.get("timeout") or self.timeout) + 5.0
            if not flight.event.wait(budget):
                raise RequestTimeout(
                    f"coalesced layout not ready within {budget:.1f}s"
                )
            if flight.error is not None:
                err = flight.error
                raise err if isinstance(err, ServiceError) else ServiceError(
                    f"coalesced layout failed: {err}"
                )
            assert flight.result is not None
            payload = dict(flight.result)
            payload["status"] = "coalesced"
        if not include_coords:
            payload.pop("coords", None)
        self.telemetry.observe(
            "router.latency_seconds", time.perf_counter() - t0
        )
        return payload

    def update(self, doc: dict) -> dict:
        """Apply one ``POST /update`` body on the graph's owning shard."""
        self._check_open("router.updates")
        return self._forward("update", dict(doc), self._route_key(doc))

    def _forward(self, op: str, body: dict, route_key: str) -> dict:
        """Send to the owning shard; reshard + retry on transport death."""
        attempts = len(self._workers) + 1
        budget = float(body.get("timeout") or self.timeout) + 10.0
        last_exc: BaseException | None = None
        for attempt in range(attempts):
            with self._lock:
                if not len(self._ring):
                    break
                worker = self._workers[self._owner_locked(route_key)]
            try:
                reply = worker.request({"op": op, "body": body}, budget)
            except (OSError, ProtocolError) as exc:
                # Transport failure: the worker is gone (or unreachable,
                # which we treat the same).  Mark it dead — the ring now
                # maps this key to its successor — and retry there.
                last_exc = exc
                self._note_failure(worker)
                self.telemetry.inc("router.retries")
                continue
            if reply.get("ok"):
                reply.pop("ok", None)
                if attempt:
                    reply["resharded"] = True
                return reply
            raise _remote_error(reply)
        raise WorkerUnavailable(
            f"no live worker could serve the request"
            f" (last transport error: {last_exc})"
        )

    # -- aggregation -------------------------------------------------------
    def worker_stats(self) -> dict[str, dict]:
        """Per-worker engine stats (``{"error": ...}`` for dead shards)."""
        out: dict[str, dict] = {}
        for worker in self._workers.values():
            if worker.state != "up":
                out[str(worker.id)] = {"state": worker.state}
                continue
            try:
                reply = worker.request({"op": "stats"}, timeout=10.0)
                snap = reply.get("stats") or {}
                snap["state"] = "up"
                snap["generation"] = worker.generation
                out[str(worker.id)] = snap
            except (OSError, ProtocolError) as exc:
                out[str(worker.id)] = {"state": "unreachable", "error": str(exc)}
        return out

    def stats(self) -> dict:
        """Router telemetry + per-worker snapshots + cluster aggregate."""
        snap = self.telemetry.snapshot()
        snap["breakers"] = self._breakers.snapshot()
        with self._lock:
            ring = {
                "workers": len(self._ring),
                "total": len(self._workers),
                "vnodes": self._ring.vnodes,
            }
        workers = self.worker_stats()
        placement = (
            self._placement.snapshot()
            if self._placement is not None
            else {"policy": "hash"}
        )
        return {
            "mode": "cluster",
            "router": snap,
            "ring": ring,
            "placement": placement,
            "workers": workers,
            "aggregate": _aggregate(workers, snap),
            "draining": self._draining,
        }

    # -- drain -------------------------------------------------------------
    def drain(self, timeout: float = 10.0) -> bool:
        """Whole-cluster graceful drain: fan out the per-engine drain.

        New requests are refused with 503 from the moment this is
        called; each live worker then finishes its in-flight
        computations.  Returns ``True`` when every worker drained clean
        within ``timeout``.
        """
        self._draining = True
        results: dict[int, bool] = {}

        def _drain_one(worker: _Worker) -> None:
            try:
                reply = worker.request(
                    {"op": "drain", "timeout": timeout}, timeout + 10.0
                )
                results[worker.id] = bool(reply.get("drained"))
            except (OSError, ProtocolError):
                results[worker.id] = False

        threads = [
            threading.Thread(target=_drain_one, args=(w,), daemon=True)
            for w in self._workers.values()
            if w.state == "up"
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout + 15.0)
        return bool(results) and all(results.values())

    # -- test/ops instrumentation -----------------------------------------
    def owner_of(self, name: str, scale: str = "small", seed: int = 0) -> int:
        """Worker id currently owning a named graph (tests, ops tooling)."""
        key = graph_key(name, scale, seed)
        with self._lock:
            if self._placement is not None:
                sticky = self._placement.peek(key)
                if sticky is not None:
                    return sticky
            return self._ring.owner(key)

    def arm_chaos(self, worker_id: int, site: str, **spec) -> dict:
        """Arm a chaos failpoint inside one worker process."""
        worker = self._workers[worker_id]
        reply = worker.request(
            {"op": "chaos", "spec": {"site": site, **spec}}, timeout=10.0
        )
        if not reply.get("ok"):
            raise RuntimeError(f"chaos arming failed: {reply}")
        return reply


def _aggregate(workers: dict[str, dict], router_snap: dict) -> dict:
    """Cluster-wide rollup: summed counters, cache totals, open breakers."""
    counters: dict[str, float] = {}
    cache: dict[str, float] = {}
    breakers_open = router_snap.get("breakers", {}).get("open", 0)
    for snap in workers.values():
        for name, value in (snap.get("counters") or {}).items():
            if isinstance(value, (int, float)):
                counters[name] = counters.get(name, 0) + value
        for name, value in (snap.get("cache") or {}).items():
            if isinstance(value, (int, float)):
                cache[name] = cache.get(name, 0) + value
        # The engine's breakers_open gauge mirrors breakers["open"], so
        # summing the snapshot counts alone avoids double counting.
        breakers_open += (snap.get("breakers") or {}).get("open", 0)
    return {
        "counters": counters,
        "cache": cache,
        "breakers_open": breakers_open,
        "workers_up": sum(
            1 for snap in workers.values() if snap.get("state") == "up"
        ),
    }
