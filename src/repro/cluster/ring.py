"""Consistent-hash ring mapping graph keys to worker shards.

The router must send every request about one graph to the same worker:
the worker holds that graph's mutable state (the delta overlay and its
epoch), so ``POST /update`` and subsequent ``POST /layout`` requests
only stay coherent if they share a shard.  A consistent-hash ring gives
that affinity *and* minimal movement — when a worker dies, only the keys
it owned move (to their ring successors); every other graph keeps its
shard, its warm cache and its epoch state.

Each node is planted at ``vnodes`` pseudo-random points (sha256 of
``"node#i"``), which smooths the load imbalance a handful of physical
nodes would otherwise suffer.  Lookup is a binary search over the sorted
point list; mutation rebuilds the list (node churn is rare — worker
death — while lookups are per-request).

Keys are *graph identities*: :func:`graph_key` digests the
``(name, scale, seed)`` triple that determines a named graph's content
digest.  Hashing the identity rather than the CSR bytes means the
router never has to load a graph to route it.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterator

__all__ = ["HashRing", "graph_key"]


def graph_key(name: str, scale: str = "small", seed: int = 0) -> str:
    """Stable routing key for a named graph.

    Every request that addresses the same collection graph — layouts
    with any algorithm/params, and the updates that mutate it — maps to
    the same key, so they all land on the owning shard.
    """
    return f"{name}\x1f{scale}\x1f{int(seed)}"


def _point(label: str) -> int:
    return int.from_bytes(
        hashlib.sha256(label.encode()).digest()[:8], "big"
    )


class HashRing:
    """Consistent-hash ring over hashable node ids (not thread-safe).

    The router guards its ring with its own lock; the ring itself stays
    a plain data structure so it can also serve the analytic policy
    comparison in :mod:`repro.cluster.policy`.
    """

    def __init__(self, vnodes: int = 64):
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self._nodes: set = set()
        self._points: list[int] = []
        self._owners: list = []

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node) -> bool:
        return node in self._nodes

    @property
    def nodes(self) -> set:
        return set(self._nodes)

    def _rebuild(self) -> None:
        pairs = sorted(
            (_point(f"{node}#{i}"), node)
            for node in self._nodes
            for i in range(self.vnodes)
        )
        self._points = [p for p, _ in pairs]
        self._owners = [n for _, n in pairs]

    def add(self, node) -> None:
        if node in self._nodes:
            return
        self._nodes.add(node)
        self._rebuild()

    def remove(self, node) -> None:
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        self._rebuild()

    def owner(self, key: str):
        """The node owning ``key`` (the first point at or after its hash)."""
        if not self._points:
            raise LookupError("hash ring is empty")
        i = bisect.bisect_left(self._points, _point(key)) % len(self._points)
        return self._owners[i]

    def preference(self, key: str) -> Iterator:
        """Distinct nodes in ring order starting at ``key``'s owner.

        The retry order for a request: the owner first, then each
        successor shard exactly once.  Consuming this after removing a
        dead node from the ring yields the live successor next.
        """
        if not self._points:
            return
        start = bisect.bisect_left(self._points, _point(key))
        seen = set()
        n = len(self._points)
        for step in range(n):
            node = self._owners[(start + step) % n]
            if node not in seen:
                seen.add(node)
                yield node
