"""Layout quality metrics: stress, subspace angles, edge statistics."""

from .neighborhood import neighborhood_preservation
from .procrustes import ProcrustesResult, layout_disparity, procrustes_align
from .quality import (
    edge_length_stats,
    principal_angles,
    rayleigh_quotients,
    spread,
)
from .stress import optimal_scale, sampled_stress, stress_from_distances

__all__ = [
    "edge_length_stats",
    "principal_angles",
    "rayleigh_quotients",
    "spread",
    "neighborhood_preservation",
    "ProcrustesResult",
    "procrustes_align",
    "layout_disparity",
    "sampled_stress",
    "stress_from_distances",
    "optimal_scale",
]
