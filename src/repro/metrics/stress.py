"""Stress: the classical distance-faithfulness measure for layouts.

``stress(X) = sum_{i<j} w_ij (||X_i - X_j|| - d_ij)^2`` with
``w_ij = d_ij^{-2}`` (normalized stress).  Computing all-pairs graph
distances is quadratic, so for anything beyond toy graphs we evaluate a
*pivot-sampled* stress over BFS rows from a handful of sources — the
same trick HDE itself is built on.
"""

from __future__ import annotations

import numpy as np

from ..bfs.direction_optimizing import bfs_distances
from ..graph.csr import CSRGraph

__all__ = ["sampled_stress", "stress_from_distances", "optimal_scale"]


def optimal_scale(euclid: np.ndarray, graphd: np.ndarray) -> float:
    """The scale ``alpha`` minimizing ``sum w (alpha*e - d)^2``.

    Stress is scale-sensitive but layouts are scale-free, so comparisons
    use the optimally rescaled layout.
    """
    w = 1.0 / np.maximum(graphd, 1e-12) ** 2
    num = float((w * euclid * graphd).sum())
    den = float((w * euclid * euclid).sum())
    return num / den if den > 0 else 1.0


def stress_from_distances(
    coords: np.ndarray, sources: np.ndarray, D: np.ndarray
) -> float:
    """Normalized stress over the pairs ``(source_i, v)``.

    ``D[k, v]`` is the graph distance from ``sources[k]`` to ``v``.
    Self-pairs (distance 0) are excluded; the layout is optimally
    rescaled first.
    """
    diffs = coords[sources][:, None, :] - coords[None, :, :]
    euclid = np.sqrt((diffs**2).sum(axis=2))
    mask = D > 0
    e, d = euclid[mask], D[mask]
    alpha = optimal_scale(e, d)
    w = 1.0 / d**2
    return float((w * (alpha * e - d) ** 2).sum() / mask.sum())


def sampled_stress(
    g: CSRGraph, coords: np.ndarray, *, samples: int = 8, seed: int = 0
) -> float:
    """Pivot-sampled normalized stress (lower is better).

    Runs ``samples`` BFS traversals from random sources and evaluates
    the stress restricted to those rows of the distance matrix.
    """
    if coords.shape[0] != g.n:
        raise ValueError("coords rows must equal n")
    samples = min(samples, g.n)
    rng = np.random.default_rng(seed)
    sources = rng.choice(g.n, size=samples, replace=False)
    D = np.empty((samples, g.n), dtype=np.float64)
    for k, src in enumerate(sources):
        dist, _ = bfs_distances(g, int(src))
        if dist.min() < 0:
            raise ValueError("graph must be connected")
        D[k] = dist
    return stress_from_distances(coords, sources, D)
