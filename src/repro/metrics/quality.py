"""Layout quality diagnostics.

Used by the tests and benchmarks to verify that ParHDE's output is a
*good approximation* of the exact spectral layout — the paper's Figure 1
claim ("captures the global structure") made quantitative:

* :func:`principal_angles` — angles between the D-weighted subspaces
  spanned by two layouts; small angles mean the HDE axes nearly span the
  true eigenvector plane.
* :func:`edge_length_stats` — the numerator intuition of Eq. 1: a good
  layout keeps adjacent vertices close relative to the layout's spread.
* :func:`rayleigh_quotients` — the Eq. 1 objective value of each axis.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph

__all__ = [
    "principal_angles",
    "edge_length_stats",
    "rayleigh_quotients",
    "spread",
]


def _d_orthonormal_basis(X: np.ndarray, d: np.ndarray) -> np.ndarray:
    """D-orthonormal basis of the column span of ``X`` (drops rank loss)."""
    cols: list[np.ndarray] = []
    for j in range(X.shape[1]):
        v = X[:, j].astype(np.float64, copy=True)
        for q in cols:
            v -= np.dot(q * d, v) * q
        nrm = np.sqrt(max(np.dot(v * d, v), 0.0))
        if nrm > 1e-10 * max(1.0, np.abs(X[:, j]).max()):
            cols.append(v / nrm)
    if not cols:
        raise ValueError("zero-rank layout")
    return np.column_stack(cols)


def principal_angles(
    X: np.ndarray, Y: np.ndarray, d: np.ndarray | None = None
) -> np.ndarray:
    """Principal angles (radians, ascending) between two column spans.

    Computed under the D-inner product when ``d`` is given.  An angle of
    0 means the corresponding directions coincide; pi/2 means they are
    D-orthogonal.
    """
    if X.shape[0] != Y.shape[0]:
        raise ValueError("layouts must have the same number of rows")
    if d is None:
        d = np.ones(X.shape[0])
    Qx = _d_orthonormal_basis(X, d)
    Qy = _d_orthonormal_basis(Y, d)
    M = Qx.T @ (d[:, None] * Qy)
    sigma = np.linalg.svd(M, compute_uv=False)
    return np.arccos(np.clip(np.sort(sigma)[::-1], -1.0, 1.0))


def spread(coords: np.ndarray) -> float:
    """RMS distance of vertices from the layout centroid."""
    c = coords - coords.mean(axis=0)
    return float(np.sqrt((c**2).sum(axis=1).mean()))


def edge_length_stats(g: CSRGraph, coords: np.ndarray) -> dict[str, float]:
    """Edge length summary, normalized by the layout spread.

    Returns mean/median/max relative edge length; small values mean
    adjacent vertices are drawn close (the Eq. 1 numerator objective).
    """
    if coords.shape[0] != g.n:
        raise ValueError("coords rows must equal n")
    u, v = g.edge_list()
    if len(u) == 0:
        return {"mean": 0.0, "median": 0.0, "max": 0.0}
    lengths = np.sqrt(((coords[u] - coords[v]) ** 2).sum(axis=1))
    scale = spread(coords) or 1.0
    rel = lengths / scale
    return {
        "mean": float(rel.mean()),
        "median": float(np.median(rel)),
        "max": float(rel.max()),
    }


def rayleigh_quotients(g: CSRGraph, coords: np.ndarray) -> np.ndarray:
    """Per-axis value of the Eq. 1 objective ``x'Lx / x'Dx``.

    For the exact degree-normalized eigenvectors these equal the
    generalized eigenvalues ``mu_2, mu_3, ...``; HDE's axes should come
    close from above.
    """
    from ..linalg.laplacian import laplacian_spmm

    d = g.weighted_degrees
    out = np.empty(coords.shape[1])
    for j in range(coords.shape[1]):
        x = coords[:, j] - (
            np.dot(d, coords[:, j]) / d.sum()
        )  # remove the trivial component
        lx = laplacian_spmm(g, x)
        denom = float(np.dot(x * d, x))
        out[j] = float(np.dot(x, lx)) / denom if denom > 0 else np.inf
    return out
