"""Orthogonal Procrustes alignment between two layouts.

Spectral layouts are defined up to rotation, reflection and scale —
comparing two coordinate sets pointwise is meaningless until one is
optimally aligned onto the other.  This module solves the classical
orthogonal Procrustes problem (rotation/reflection + uniform scale +
translation minimizing the Frobenius mismatch) and reports the residual
*disparity*, the standard similarity score between drawings.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ProcrustesResult", "procrustes_align", "layout_disparity"]


@dataclass(frozen=True)
class ProcrustesResult:
    """Aligned copy of the source layout plus the transform and score."""

    aligned: np.ndarray  # X mapped onto Y's frame
    rotation: np.ndarray  # (d, d) orthogonal matrix
    scale: float
    disparity: float  # normalized residual in [0, 1]


def procrustes_align(X: np.ndarray, Y: np.ndarray) -> ProcrustesResult:
    """Optimally map ``X`` onto ``Y``.

    Both layouts are centered and unit-normalized; the optimal rotation
    comes from the SVD of ``Xc' Yc``.  The returned ``disparity`` is the
    residual sum of squares after alignment, normalized so that 0 means
    identical shapes and values near 1 mean unrelated ones.
    """
    X = np.asarray(X, dtype=np.float64)
    Y = np.asarray(Y, dtype=np.float64)
    if X.shape != Y.shape:
        raise ValueError("layouts must have identical shapes")
    if X.ndim != 2 or X.shape[0] < 2:
        raise ValueError("layouts must be (n >= 2, d)")
    Xc = X - X.mean(axis=0)
    Yc = Y - Y.mean(axis=0)
    nx = np.linalg.norm(Xc)
    ny = np.linalg.norm(Yc)
    if nx == 0 or ny == 0:
        raise ValueError("degenerate (all-equal) layout")
    Xc /= nx
    Yc /= ny
    U, sigma, Vt = np.linalg.svd(Xc.T @ Yc)
    R = U @ Vt
    scale = float(sigma.sum())
    aligned_unit = scale * (Xc @ R)
    disparity = float(((aligned_unit - Yc) ** 2).sum())
    # Express the aligned copy back in Y's original frame.
    aligned = aligned_unit * ny + Y.mean(axis=0)
    return ProcrustesResult(
        aligned=aligned,
        rotation=R,
        scale=scale * ny / nx,
        disparity=disparity,
    )


def layout_disparity(X: np.ndarray, Y: np.ndarray) -> float:
    """Shorthand: the Procrustes disparity between two layouts."""
    return procrustes_align(X, Y).disparity
