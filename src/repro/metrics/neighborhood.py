"""Neighborhood preservation: do layout neighbors match graph neighbors?

The distance-based drawing study the paper leans on for quality claims
(Brandes & Pich 2009, cited in §4.5.1) evaluates layouts by how well
*local* structure survives the projection, complementing stress (a
global measure).  For each vertex we take its ``k`` nearest neighbors
in the layout and ask what fraction are adjacent in the graph, where
``k`` is the vertex's own degree — 1.0 means the drawing's local
clusters are exactly the graph's.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph

__all__ = ["neighborhood_preservation"]


def neighborhood_preservation(
    g: CSRGraph,
    coords: np.ndarray,
    *,
    sample: int | None = 512,
    seed: int = 0,
) -> float:
    """Mean fraction of layout-nearest neighbors that are graph neighbors.

    Parameters
    ----------
    sample:
        Evaluate on at most this many random vertices (the metric is
        O(n) per vertex); ``None`` evaluates every vertex.

    Returns
    -------
    float in [0, 1]; higher is better.  Isolated vertices are skipped.
    """
    if coords.shape[0] != g.n:
        raise ValueError("coords rows must equal n")
    from scipy.spatial import cKDTree

    deg = g.degrees
    vertices = np.flatnonzero(deg > 0)
    if len(vertices) == 0:
        return 0.0
    if sample is not None and len(vertices) > sample:
        rng = np.random.default_rng(seed)
        vertices = rng.choice(vertices, size=sample, replace=False)
    tree = cKDTree(coords)
    scores = np.empty(len(vertices))
    for idx, v in enumerate(vertices):
        k = int(deg[v])
        # k+1 nearest including the vertex itself.
        _, near = tree.query(coords[v], k=min(k + 1, g.n))
        near = np.atleast_1d(near)
        near = near[near != v][:k]
        adj = g.neighbors(int(v))
        scores[idx] = (
            np.isin(near, adj).sum() / k if k else 0.0
        )
    return float(scores.mean())
