"""Quickstart: lay out a graph with ParHDE and render it.

Run:  python examples/quickstart.py [output.png]
"""

import sys

from repro import datasets, parhde, save_drawing
from repro.metrics import sampled_stress
from repro.parallel import BRIDGES_RSM


def main() -> None:
    out = sys.argv[1] if len(sys.argv) > 1 else "quickstart.png"

    # 1. Get a connected graph.  Collection graphs are preprocessed the
    #    way the paper prescribes (simple, largest component); for your
    #    own data use repro.graph.read_edge_list + repro.graph.preprocess.
    g = datasets.load("barth", scale="small")
    print(f"graph: {g!r}")

    # 2. Compute the layout.  s is the subspace dimension (pivot count);
    #    the paper uses 10 for timing and notes 50 as a quality choice.
    layout = parhde(g, s=20, seed=0)
    print(f"layout: {layout.coords.shape}, pivots={layout.pivots.tolist()}")
    print(f"stress (lower is better): {sampled_stress(g, layout.coords):.4f}")

    # 3. Ask the machine model what this run would cost on the paper's
    #    28-core node.
    print("\nsimulated phase times on", BRIDGES_RSM.name)
    for p in (1, 7, 28):
        phases = layout.phase_seconds(BRIDGES_RSM, p)
        total = sum(phases.values())
        detail = ", ".join(f"{k} {v * 1e3:.2f}ms" for k, v in phases.items())
        print(f"  p={p:>2}: total {total * 1e3:8.2f}ms  ({detail})")
    print(f"  relative speedup at 28 cores: {layout.speedup(BRIDGES_RSM, 28):.1f}x")

    # 4. Draw it.
    save_drawing(g, layout.coords, out, width=700, height=700)
    print(f"\ndrawing written to {out}")


if __name__ == "__main__":
    main()
