"""A Figure 3/4-style performance study on any collection graph.

Runs ParHDE, records the cost ledger, and interrogates the machine model
for the phase breakdown and scaling curve the paper plots — plus the
prior-implementation comparison of Table 3.

Run:  python examples/scaling_study.py [graph] [scale]
      e.g.  python examples/scaling_study.py kron medium
"""

import sys

from repro import datasets, parhde
from repro.baselines import prior_hde
from repro.parallel import BRIDGES_ESM, BRIDGES_RSM
from repro.parallel.report import (
    breakdown,
    format_breakdown_table,
    format_scaling_table,
)


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "kron"
    scale = sys.argv[2] if len(sys.argv) > 2 else "medium"
    g = datasets.load(name, scale=scale)
    print(f"graph: {g!r}\n")

    res = parhde(g, s=10, seed=0)

    print("=== Phase breakdown (Figure 3 style) ===")
    rows = {
        f"{g.name} @ 1 core": breakdown(res.ledger, BRIDGES_RSM, 1),
        f"{g.name} @ 28 cores": breakdown(res.ledger, BRIDGES_RSM, 28),
    }
    print(format_breakdown_table(rows))

    print("\n=== Scaling (Figure 4 style) ===")
    threads = [1, 4, 7, 14, 28]
    series = {
        g.name: {p: res.simulated_seconds(BRIDGES_RSM, p) for p in threads}
    }
    from repro.parallel.machine import phase_times

    for phase in ("BFS", "TripleProd", "DOrtho"):
        series[f"  {phase}"] = {
            p: phase_times(res.ledger, BRIDGES_RSM, p)[phase] for p in threads
        }
    print(format_scaling_table(series))

    print("\n=== vs prior implementation (Table 3 style, 80-core node) ===")
    prior = prior_hde(g, s=10, seed=0)
    t_ours = res.simulated_seconds(BRIDGES_ESM, 80)
    t_prior = prior.simulated_seconds(BRIDGES_ESM, 80)
    print(f"ParHDE: {t_ours:.5f}s   prior: {t_prior:.5f}s"
          f"   speedup {t_prior / t_ours:.1f}x")

    print("\n=== BFS statistics ===")
    for st in res.bfs_stats[:3]:
        print(
            f"  source {st.source:>7}: {st.levels} levels,"
            f" {st.edges_examined} edges examined"
            f" (gamma = {st.gamma(g.m):.3f}), directions {st.directions}"
        )


if __name__ == "__main__":
    main()
