"""The future-work pipeline: multilevel layout feeding a partitioner.

Builds a heavy-edge-matching hierarchy, lays out the coarsest graph with
ParHDE, prolongs and refines back to the full graph, then uses the
coordinates for geometric bisection + coordinate-band FM refinement and
renders the colored result (sections 2.3, 4.5.4 and the paper's stated
future work, end to end).

Run:  python examples/multilevel_and_partition.py [output.png]
"""

import sys

from repro import datasets, multilevel_layout, parhde
from repro.drawing import partition_edge_colors, render_layout, write_png
from repro.metrics import principal_angles, sampled_stress
from repro.partition import (
    balance,
    coordinate_band,
    coordinate_bisection,
    cut_fraction,
    fm_refine,
)


def main() -> None:
    out = sys.argv[1] if len(sys.argv) > 1 else "multilevel_partition.png"

    g = datasets.load("barth", scale="small")
    print(f"graph: {g!r}")

    # Multilevel layout.
    ml = multilevel_layout(g, s=10, seed=0, refine_sweeps=25)
    sizes = " -> ".join(str(n) for n in [g.n] + ml.level_sizes())
    print(f"hierarchy: {sizes}")
    direct = parhde(g, s=10, seed=0)
    ang = principal_angles(ml.coords, direct.coords, g.weighted_degrees)
    print(
        f"stress: multilevel {sampled_stress(g, ml.coords):.4f}"
        f" vs direct {sampled_stress(g, direct.coords):.4f};"
        f" subspace angle {ang[0]:.3f} rad"
    )

    # Partition on the multilevel coordinates.
    parts = coordinate_bisection(g, ml.coords, 4)
    print(
        f"\n4-way geometric partition: cut fraction"
        f" {cut_fraction(g, parts):.3f}, balance {balance(parts, 4):.3f}"
    )

    # Bipartition + coordinate-band FM refinement.
    bi = coordinate_bisection(g, ml.coords, 2)
    band = coordinate_band(ml.coords, bi, frac=0.25)
    refined, stats = fm_refine(g, bi, candidates=band, max_passes=4)
    print(
        f"band-restricted FM: cut {stats.cut_before:.0f} ->"
        f" {stats.cut_after:.0f} with {stats.gain_updates} gain updates"
        f" over {len(band)} candidates"
    )

    u, v = g.edge_list()
    colors = partition_edge_colors(u, v, parts)
    canvas = render_layout(
        g, ml.coords, width=700, height=700, edge_colors=colors
    )
    write_png(out, canvas.pixels)
    print(f"\ncolored drawing written to {out}")


if __name__ == "__main__":
    main()
