"""Section 4.5.3: ParHDE as a preprocessing step for eigensolvers.

Runs the weighted-centroid refinement from an HDE warm start and from a
random start, and reports the sweep counts — the mechanism behind the
22x-131x advantage reported by Kirmani et al. and cited by the paper.

Run:  python examples/eigensolver_preprocessing.py [graph]
"""

import sys

import numpy as np

from repro import datasets, parhde
from repro.core.refine import refine, residual


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "ecology"
    g = datasets.load(name, scale="small")
    print(f"graph: {g!r}")

    hde = parhde(g, s=10, seed=0)
    print(f"raw HDE eigen-residual:      {residual(g, hde.coords):.2e}")

    warm = refine(g, hde.coords, tol=1e-5, max_sweeps=50_000)
    print(
        f"HDE + centroid refinement:   {warm.residual:.2e}"
        f" after {warm.sweeps} sweeps"
    )

    rng = np.random.default_rng(1)
    cold = refine(
        g, rng.standard_normal((g.n, 2)), tol=1e-5, max_sweeps=50_000
    )
    print(
        f"random start refinement:     {cold.residual:.2e}"
        f" after {cold.sweeps} sweeps"
    )
    print(
        f"\nwarm-start advantage: {cold.sweeps / max(warm.sweeps, 1):.1f}x"
        " fewer sweeps (paper band: 22x-131x across graphs)"
    )


if __name__ == "__main__":
    main()
