"""Interactive and 3D exploration of a layout.

Produces the section 4.5.2 "browser-based interactive graph
visualization": a self-contained pan/zoom HTML page for the global
layout and for a 10-hop zoom, plus a 3D ParHDE layout rendered as a
turntable sequence of PNG views.

Run:  python examples/interactive_explorer.py [output_dir]
"""

import sys
from pathlib import Path

from repro import datasets, parhde, zoom_layout
from repro.drawing import (
    save_drawing,
    turntable_views,
    write_interactive_html,
)


def main() -> None:
    outdir = Path(sys.argv[1] if len(sys.argv) > 1 else "explorer")
    outdir.mkdir(exist_ok=True)

    g = datasets.load("barth", scale="small")
    print(f"graph: {g!r}")

    # Global interactive view.
    layout = parhde(g, s=20, seed=0)
    global_html = outdir / "global.html"
    write_interactive_html(
        g, layout.coords, global_html, title=f"ParHDE: {g.name}"
    )
    print(f"interactive global view -> {global_html}")

    # Zoomed interactive view (Figure 8's use case).
    z = zoom_layout(g, center=g.n // 2, hops=10, s=10, seed=0)
    zoom_html = outdir / "zoom.html"
    write_interactive_html(
        z.subgraph,
        z.layout.coords,
        zoom_html,
        title=f"10-hop zoom around vertex {z.center}",
    )
    print(
        f"interactive zoom ({z.subgraph.n} vertices) -> {zoom_html}"
    )

    # 3D layout, rendered as a turntable.
    res3d = parhde(g, s=20, dims=3, seed=0)
    for k, view in enumerate(turntable_views(res3d.coords, frames=6)):
        path = outdir / f"turntable_{k}.png"
        save_drawing(g, view, path, width=400, height=400)
    print(f"6 turntable views of the 3D layout -> {outdir}/turntable_*.png")


if __name__ == "__main__":
    main()
