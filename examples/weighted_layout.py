"""Section 3.3: layout of weighted graphs via Delta-stepping SSSP.

Attaches random integer weights to the road network, lays it out with
the SSSP-based ParHDE pipeline, and sweeps the Delta parameter to show
its performance sensitivity (the section 4.4 experiment).

Run:  python examples/weighted_layout.py [output.png]
"""

import sys

from repro import datasets, parhde, save_drawing
from repro.graph import random_integer_weights
from repro.parallel import BRIDGES_RSM, Ledger, simulate_ledger
from repro.sssp import delta_stepping, suggest_delta


def main() -> None:
    out = sys.argv[1] if len(sys.argv) > 1 else "weighted_road.png"

    g = datasets.load("road", scale="small")
    gw = random_integer_weights(g, 1, 256, seed=0)
    print(f"graph: {gw!r}, weights in [1, 256)")

    # Delta sensitivity sweep (single source).
    print(f"\nsuggested delta: {suggest_delta(gw):.1f}")
    print(f"{'delta':>8} {'buckets':>8} {'relax':>9} {'sim 28-core (s)':>16}")
    for delta in (4.0, 16.0, 64.0, 256.0):
        led = Ledger()
        with led.phase("SSSP"):
            _, st = delta_stepping(gw, 0, delta, ledger=led)
        t = simulate_ledger(led, BRIDGES_RSM, 28)
        print(
            f"{delta:>8.0f} {st.buckets_processed:>8} {st.relaxations:>9}"
            f" {t:>16.6f}"
        )

    # Full weighted layout.
    layout = parhde(gw, s=10, seed=0, weighted=True, delta=64.0)
    print(f"\nweighted layout done; SSSP distance range"
          f" [0, {layout.B.max():.0f}]")
    save_drawing(gw, layout.coords, out, width=700, height=700)
    print(f"drawing written to {out}")


if __name__ == "__main__":
    main()
