"""Section 4.5.4: visualize a partition on top of a ParHDE layout.

The paper colors intra- and inter-partition edges differently to inspect
partitioning/clustering output.  We compute a simple geometric
bipartition *from the spectral layout itself* (the classical spectral
partitioning recipe: split on the Fiedler-like first axis), then render
internal edges in partition colors and cut edges in vermillion.

Run:  python examples/partition_visualization.py [output.png]
"""

import sys

import numpy as np

from repro import datasets, parhde
from repro.drawing import partition_edge_colors, render_layout, write_png


def main() -> None:
    out = sys.argv[1] if len(sys.argv) > 1 else "partition.png"

    g = datasets.load("barth", scale="small")
    layout = parhde(g, s=20, seed=0)

    # Spectral bipartition: split on the first layout axis' median.
    # (The coordinates approximate the degree-normalized eigenvectors,
    # so this is spectral partitioning for free — the paper's point
    # about feeding geometric partitioners.)
    axis = layout.coords[:, 0]
    parts = (axis > np.median(axis)).astype(np.int64)

    u, v = g.edge_list()
    cut = int(np.count_nonzero(parts[u] != parts[v]))
    balance = parts.mean()
    print(f"graph: {g!r}")
    print(f"bipartition: balance {balance:.3f}, cut edges {cut} / {g.m}"
          f" ({100 * cut / g.m:.2f}%)")

    colors = partition_edge_colors(u, v, parts)
    canvas = render_layout(
        g, layout.coords, width=700, height=700, edge_colors=colors
    )
    write_png(out, canvas.pixels)
    print(f"visualization written to {out}")

    # Sanity: a spectral split should cut only a small fraction of edges.
    assert cut / g.m < 0.2


if __name__ == "__main__":
    main()
