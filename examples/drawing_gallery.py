"""Reproduce the paper's drawings (Figures 1, 7 and 8).

Renders the barth5 stand-in (triangulated plate with four holes) with
every algorithm Figure 7 compares — ParHDE (k-centers pivots), ParHDE
with random pivots, PHDE, PivotMDS — plus the exact spectral reference
of Figure 1 (bottom) and the Figure 8 ten-hop zoom.

Run:  python examples/drawing_gallery.py [output_dir]
"""

import sys
from pathlib import Path

from repro import datasets, parhde, phde, pivotmds, zoom_layout
from repro.baselines import spectral_layout
from repro.drawing import save_drawing
from repro.metrics import principal_angles, sampled_stress


def main() -> None:
    outdir = Path(sys.argv[1] if len(sys.argv) > 1 else "gallery")
    outdir.mkdir(exist_ok=True)

    g = datasets.load("barth", scale="small")
    print(f"graph: {g!r}")

    recipes = {
        "fig1_top_parhde": lambda: parhde(g, s=20, seed=0).coords,
        "fig7_parhde_random_pivots": lambda: parhde(
            g, s=20, seed=0, pivots="random-concurrent"
        ).coords,
        "fig7_phde": lambda: phde(g, s=20, seed=0).coords,
        "fig7_pivotmds": lambda: pivotmds(g, s=20, seed=0).coords,
        "fig1_bottom_exact_spectral": lambda: spectral_layout(
            g, 2, tol=1e-8, seed=0
        ).coords,
    }

    layouts = {}
    for name, make in recipes.items():
        coords = make()
        layouts[name] = coords
        path = outdir / f"{name}.png"
        save_drawing(g, coords, path, width=600, height=600)
        print(
            f"{name:<28} stress={sampled_stress(g, coords):7.4f} -> {path}"
        )

    ang = principal_angles(
        layouts["fig1_top_parhde"],
        layouts["fig1_bottom_exact_spectral"],
        g.weighted_degrees,
    )
    print(f"\nParHDE vs exact spectral, principal angles: {ang.round(3)}")
    print("(small angles = the fast drawing captures the global structure)")

    # Figure 8: zoomed neighborhood of a vertex in the global layout.
    zoom = zoom_layout(g, center=g.n // 2, hops=10, s=10, seed=0)
    zpath = outdir / "fig8_zoom_10hop.png"
    save_drawing(zoom.subgraph, zoom.layout.coords, zpath, width=500, height=500)
    print(
        f"\nzoom: {zoom.subgraph.n} vertices within 10 hops of"
        f" vertex {zoom.center} -> {zpath}"
    )


if __name__ == "__main__":
    main()
