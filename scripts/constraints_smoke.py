#!/usr/bin/env python
"""Smoke test for constrained serving (the ``make constraints-smoke`` target).

Exercises the interactive pin/drag contract end to end over actual HTTP,
then gates the warm-restart economics on modeled work:

1. boot a real layout server on an ephemeral port and serve a cold
   layout of ``barth``;
2. ``POST /update`` with a pin — the layout served next MUST hold that
   vertex bitwise at the pinned position;
3. ``POST /update`` with a *drag* (the same vertex re-pinned elsewhere:
   a drag is just another delta) — the next layout must hold the new
   position bitwise, and ``/stats`` must show the solve was a warm
   restart (``constraints.warm_hits``), not a from-scratch pipeline;
4. ``POST /update`` unpin — the vertex relaxes again;
5. modeled-work gate: replaying the same cold-vs-drag pair through the
   instrumented solver, the warm constrained relayout must cost at
   least ``MIN_RATIO``x less modeled BFS+solve work than the cold one
   (the warm path reuses the traversal and orthogonalization wholesale
   and re-solves only the deflated subspace problem).

Exits nonzero with a diagnostic on any violation, so CI can gate on it.
"""

from __future__ import annotations

import json
import sys
import urllib.request

from repro import datasets
from repro.core import parhde
from repro.parallel import Ledger
from repro.service import LayoutEngine, make_server

GRAPH = {"graph": "barth", "scale": "small", "s": 10, "seed": 0}
PIN_VERTEX = 42
PIN_POS = [0.25, 0.25]
DRAG_POS = [0.5, -0.5]
MIN_RATIO = 3.0


def _post(url: str, body: dict, route: str) -> dict:
    req = urllib.request.Request(
        url + route,
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=120) as resp:
        return json.loads(resp.read())


def _get(url: str, route: str) -> bytes:
    with urllib.request.urlopen(url + route, timeout=30) as resp:
        return resp.read()


def _update(url: str, **fields) -> dict:
    body = {
        "graph": GRAPH["graph"],
        "scale": GRAPH["scale"],
        "seed": GRAPH["seed"],
    }
    body.update(fields)
    return _post(url, body, "/update")


def main() -> int:
    failures: list[str] = []
    engine = LayoutEngine(workers=2, queue_limit=8, timeout=120)
    server = make_server(engine, port=0).start()
    url = server.url
    try:
        cold = _post(url, GRAPH, "/layout")
        if cold.get("status") != "computed":
            failures.append(f"cold layout status {cold.get('status')!r}")

        pinned = _update(url, pins={str(PIN_VERTEX): PIN_POS})
        if pinned.get("pinned") != 1:
            failures.append(f"pin update answered {pinned}")
        held = _post(url, GRAPH, "/layout")
        if held["coords"][PIN_VERTEX] != PIN_POS:
            failures.append(
                f"pin not held bitwise: {held['coords'][PIN_VERTEX]}"
                f" != {PIN_POS}"
            )

        # The drag: re-pin the same vertex elsewhere, just another delta.
        _update(url, pins={str(PIN_VERTEX): DRAG_POS})
        dragged = _post(url, GRAPH, "/layout")
        if dragged["coords"][PIN_VERTEX] != DRAG_POS:
            failures.append(
                f"drag not held bitwise: {dragged['coords'][PIN_VERTEX]}"
                f" != {DRAG_POS}"
            )
        if dragged.get("cache_hit"):
            failures.append("drag was a cache hit: pin state did not move"
                            " the fingerprint")
        stats = json.loads(_get(url, "/stats"))
        counters = stats.get("counters", {})
        if not counters.get("constraints.warm_hits"):
            failures.append(
                "drag relayout was not a warm restart"
                f" (counters: { {k: v for k, v in counters.items() if k.startswith('constraints')} })"
            )
        if counters.get("constraints.pin_edits", 0) < 2:
            failures.append("pin edits not accounted in telemetry")

        unpinned = _update(url, unpins=[PIN_VERTEX])
        if unpinned.get("unpinned") != 1:
            failures.append(f"unpin update answered {unpinned}")
        free = _post(url, GRAPH, "/layout")
        if free["coords"][PIN_VERTEX] == DRAG_POS:
            failures.append("vertex still at drag position after unpin")
    finally:
        server.shutdown()
        engine.close()

    # Modeled-work gate: same graph and parameters as the server path,
    # instrumented with the cost ledger.  The cold solve pays BFS +
    # D-ortho + TripleProd; the warm drag reuses the deposited basis and
    # re-solves only the deflated subspace problem.
    g = datasets.load(GRAPH["graph"], scale=GRAPH["scale"])
    cold_led, warm_led = Ledger(), Ledger()
    cold_res = parhde(
        g,
        GRAPH["s"],
        seed=GRAPH["seed"],
        constraints={"pins": {PIN_VERTEX: PIN_POS}},
        ledger=cold_led,
    )
    warm_res = parhde(
        g,
        GRAPH["s"],
        seed=GRAPH["seed"],
        constraints={"pins": {PIN_VERTEX: DRAG_POS}},
        warm_base=cold_res.warm,
        ledger=warm_led,
    )
    if tuple(warm_res.coords[PIN_VERTEX]) != tuple(DRAG_POS):
        failures.append("warm solver drag not bitwise")
    cold_work = cold_led.total().combined.work
    warm_work = warm_led.total().combined.work
    ratio = cold_work / max(warm_work, 1)
    line = (
        f"modeled work: cold={cold_work:,} warm={warm_work:,}"
        f" ratio={ratio:.1f}x (gate {MIN_RATIO}x)"
    )
    print(line)
    if ratio < MIN_RATIO:
        failures.append(
            f"warm drag saved only {ratio:.1f}x modeled work"
            f" (< {MIN_RATIO}x)"
        )

    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print("constraints-smoke: all checks passed"
          " (pin/drag/unpin bitwise over HTTP, warm restart observed)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
