#!/usr/bin/env python
"""Smoke test for progressive LOD serving (the ``make lod-smoke`` target).

Boots a real HTTP server over a :class:`~repro.lod.ProgressiveEngine`
serving a large synthetic graph (a ~150k-vertex grid — big enough that
a full layout visibly lags), then proves the progressive contract end
to end over actual HTTP:

1. a cold ``POST /layout`` with ``"lod": "auto"`` answers *fast* at a
   coarse ``quality_tier`` (``lod-k``) with finest-vertex coordinates;
2. ``GET /layout`` polling sees a monotonically improving tier sequence
   that converges to ``"full"`` — no stale epoch is ever served;
3. once converged, the same request is an ordinary cache hit at full
   tier;
4. the ``lod.*`` counters account for the run and the
   ``lod.refine_backlog`` gauge returns to zero.

Exits nonzero with a diagnostic on any violation, so CI can gate on it.
"""

from __future__ import annotations

import json
import sys
import time
import urllib.request

from repro.graph import grid2d, preprocess
from repro.lod import ProgressiveEngine
from repro.resilience import is_lod_tier, tier_rank
from repro.service import LayoutEngine, make_server

ROWS, COLS = 400, 375  # 150k vertices
BODY = {"graph": "biggrid", "s": 8, "seed": 0, "lod": "auto",
        "include_coords": False}
QUERY = "/layout?graph=biggrid&s=8&seed=0&lod=auto&include_coords=false"
FIRST_PAINT_BUDGET = 30.0  # generous wall cap; the bench gates the ratio
CONVERGE_BUDGET = 600.0


def _loader(name, scale, seed):
    if name != "biggrid":
        raise KeyError(name)
    return preprocess(grid2d(ROWS, COLS), name="biggrid")


def _post(url: str, body: dict) -> dict:
    req = urllib.request.Request(
        url + "/layout",
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=300) as resp:
        return json.loads(resp.read())


def _get(url: str, route: str) -> dict:
    with urllib.request.urlopen(url + route, timeout=300) as resp:
        return json.loads(resp.read())


def main() -> int:
    engine = ProgressiveEngine(
        LayoutEngine(graph_loader=_loader, workers=2, timeout=600),
    )
    server = make_server(engine, port=0).start()
    url = server.url
    failures: list[str] = []
    try:
        t0 = time.perf_counter()
        first = _post(url, BODY)
        first_paint = time.perf_counter() - t0
        tier0 = first.get("quality_tier")
        print(
            f"first paint: {first_paint:.2f}s status={first.get('status')}"
            f" tier={tier0} n={first.get('n')}"
        )
        if first.get("status") != "computed":
            failures.append(f"first status {first.get('status')!r}")
        if not is_lod_tier(tier0):
            failures.append(f"first tier {tier0!r} is not coarse")
        if first.get("n") != ROWS * COLS:
            failures.append(
                f"coords not prolonged to finest ids (n={first.get('n')})"
            )
        if first_paint > FIRST_PAINT_BUDGET:
            failures.append(
                f"first paint {first_paint:.1f}s > {FIRST_PAINT_BUDGET}s"
            )

        tiers = [tier0]
        deadline = time.monotonic() + CONVERGE_BUDGET
        while time.monotonic() < deadline:
            poll = _get(url, QUERY)
            tier = poll.get("quality_tier")
            if tier != tiers[-1]:
                tiers.append(tier)
                print(
                    f"poll: tier={tier} status={poll.get('status')}"
                    f" epoch={poll.get('epoch')}"
                )
            if tier == "full":
                break
            time.sleep(0.5)
        else:
            failures.append(f"never converged to full; saw {tiers}")
        ranks = [tier_rank(t) for t in tiers]
        if ranks != sorted(ranks, reverse=True):
            failures.append(f"tier sequence not monotone: {tiers}")

        warm = _post(url, BODY)
        if warm.get("quality_tier") != "full" or not warm.get("cache_hit"):
            failures.append(
                f"post-convergence request not a full-tier cache hit:"
                f" {warm.get('status')} {warm.get('quality_tier')}"
            )

        stats = _get(url, "/stats")
        counters = stats.get("counters", {})
        for key in ("lod.first_paint", "lod.refinements", "lod.converged",
                    "lod.published", "lod.hierarchy_builds"):
            if not counters.get(key):
                failures.append(f"counter {key} missing or zero")
        backlog = stats.get("gauges", {}).get("lod.refine_backlog")
        if backlog != 0.0:
            failures.append(f"refine backlog {backlog!r} != 0 after converge")
        print(
            "counters:",
            {k: v for k, v in sorted(counters.items())
             if k.startswith("lod.")},
        )
    finally:
        server.shutdown()
        engine.close()

    if failures:
        print("\nLOD SMOKE FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print(f"\nlod smoke ok: {' -> '.join(tiers)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
