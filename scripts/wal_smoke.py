#!/usr/bin/env python
"""Chaos gate for WAL durability (``make wal-smoke``).

Two independent proofs, both exiting nonzero with a diagnostic on any
violation so CI can gate on them:

**Crash-replay equivalence.**  Boots the real CLI — ``parhde serve
--workers 2 --wal DIR`` — as a subprocess, streams update batches at
one graph over HTTP, then **SIGKILLs the worker that owns it** (pid
from ``GET /stats``).  The monitor respawns the worker, whose engine
replays its per-worker WAL *before* reporting ready; the test then
demands the respawned cluster serve ``POST /layout`` with the
fingerprint and bitwise-identical coordinates of an **uninterrupted
control engine** given the same updates in-process — zero stale
responses, and ``wal.replays``/``wal.replayed_records`` visible in the
worker's ``/stats`` snapshot.

**Torn-tail recovery.**  Builds an in-process engine on a WAL
directory, applies updates, closes it, then flips the final bytes of
the active segment — a torn/corrupt tail record.  Reopening must
truncate at the last valid record (state equals the control at the
prefix epoch, bitwise), count the damage in ``wal.corrupt_records``,
and quarantine the torn bytes rather than deleting them.
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.request

UPDATES = 4
GRAPH = {"graph": "barth", "scale": "tiny", "seed": 0}
LAYOUT_BODY = {**GRAPH, "s": 6, "include_coords": True}


def _post(url: str, body: dict, route: str) -> dict:
    req = urllib.request.Request(
        url + route,
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=120) as resp:
        return json.loads(resp.read())


def _get(url: str, route: str) -> dict:
    with urllib.request.urlopen(url + route, timeout=30) as resp:
        return json.loads(resp.read())


def _update_body(i: int) -> dict:
    # Deterministic insert-only batches: the same sequence feeds both the
    # cluster (over HTTP) and the in-process control engine.
    return {**GRAPH, "inserts": [[0, 10 + 2 * i], [1, 11 + 2 * i]]}


def _boot(wal_dir: str) -> tuple[subprocess.Popen, str]:
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--workers",
            "2",
            "--threads",
            "1",
            "--port",
            "0",
            "--cache-mb",
            "32",
            "--timeout",
            "120",
            "--wal",
            wal_dir,
        ],
        stderr=subprocess.PIPE,
        text=True,
    )
    deadline = time.monotonic() + 120
    for line in proc.stderr:  # type: ignore[union-attr]
        sys.stderr.write(f"  serve: {line}")
        if "listening on http://" in line:
            url = line.split("listening on ")[1].split(" ")[0].strip()
            threading.Thread(
                target=lambda: [
                    sys.stderr.write(f"  serve: {ln}") for ln in proc.stderr
                ],
                daemon=True,
            ).start()
            return proc, url
        if time.monotonic() > deadline or proc.poll() is not None:
            break
    raise RuntimeError("parhde serve did not report a listening address")


def _control_layout(updates: int) -> dict:
    """The uninterrupted reference: same updates, no crash, no WAL."""
    from repro.service import LayoutEngine
    from repro.service.http import (
        layout_payload,
        parse_layout_doc,
        parse_update_doc,
    )

    engine = LayoutEngine(workers=1)
    try:
        for i in range(updates):
            engine.update(parse_update_doc(_update_body(i)))
        request, include_coords = parse_layout_doc(dict(LAYOUT_BODY))
        return layout_payload(engine.submit(request), include_coords)
    finally:
        engine.close()


def _crash_replay(failures: list[str]) -> None:
    wal_root = tempfile.mkdtemp(prefix="wal-smoke-")
    proc, url = _boot(wal_root)
    try:
        health = _get(url, "/healthz")
        if health != {"status": "ok", "workers": 2}:
            failures.append(f"healthz answered {health}")

        for i in range(UPDATES):
            resp = _post(url, _update_body(i), "/update")
            if resp.get("epoch") != i + 1:
                failures.append(
                    f"update {i} answered epoch {resp.get('epoch')},"
                    f" expected {i + 1}"
                )

        # The graph hashes onto exactly one worker; its engine counters
        # finger the owner — that is the process we murder.
        stats = _get(url, "/stats")
        victim_pid = victim_id = None
        for wid, snap in stats["workers"].items():
            if snap.get("counters", {}).get("updates", 0) >= UPDATES:
                victim_pid, victim_id = int(snap["pid"]), wid
                break
        if victim_pid is None:
            failures.append("no worker owned the updated graph in /stats")
            return
        generation = stats["workers"][victim_id].get("generation", 0)

        os.kill(victim_pid, signal.SIGKILL)
        print(f"wal-smoke: killed owner worker {victim_id} (pid {victim_pid})")

        deadline = time.monotonic() + 60
        respawned = False
        while time.monotonic() < deadline:
            if _get(url, "/healthz") == {"status": "ok", "workers": 2}:
                snap = _get(url, "/stats")["workers"].get(victim_id, {})
                if snap.get("generation", 0) > generation:
                    respawned = True
                    break
            time.sleep(0.25)
        if not respawned:
            failures.append("killed worker was never respawned")
            return

        expected = _control_layout(UPDATES)
        stale = 0
        for attempt in range(4):
            resp = _post(url, LAYOUT_BODY, "/layout")
            if resp.get("fingerprint") != expected["fingerprint"]:
                stale += 1
                failures.append(
                    f"layout attempt {attempt}: fingerprint"
                    f" {resp.get('fingerprint')} != control"
                    f" {expected['fingerprint']} (stale epoch)"
                )
            elif resp.get("coords") != expected["coords"]:
                failures.append(
                    f"layout attempt {attempt}: fingerprint matches but"
                    " coordinates differ from the uninterrupted engine"
                )
        snap = _get(url, "/stats")["workers"].get(victim_id, {})
        wal = snap.get("wal") or {}
        if wal.get("replays", 0) < 1:
            failures.append(
                f"respawned worker reported wal.replays={wal.get('replays')}"
            )
        if wal.get("replayed_records", 0) < UPDATES:
            failures.append(
                "respawned worker replayed"
                f" {wal.get('replayed_records')} records, expected >="
                f" {UPDATES}"
            )
        if not failures:
            print(
                "wal-smoke: respawned worker replayed"
                f" {wal['replayed_records']} records and served epoch"
                f" {UPDATES} bitwise-identically ({4 - stale}/4 responses,"
                " 0 stale)"
            )
    finally:
        proc.send_signal(signal.SIGTERM)
        try:
            code = proc.wait(timeout=60)
            if code != 0:
                failures.append(f"serve exited {code} after SIGTERM")
        except subprocess.TimeoutExpired:
            proc.kill()
            failures.append("serve did not drain within 60s of SIGTERM")
        shutil.rmtree(wal_root, ignore_errors=True)


def _torn_tail(failures: list[str]) -> None:
    from repro.service import LayoutEngine
    from repro.service.http import (
        layout_payload,
        parse_layout_doc,
        parse_update_doc,
    )

    wal_dir = tempfile.mkdtemp(prefix="wal-torn-")
    try:
        engine = LayoutEngine(workers=1, wal_dir=wal_dir)
        for i in range(UPDATES):
            engine.update(parse_update_doc(_update_body(i)))
        engine.close()

        # Flip the final bytes of the active segment: the last record's
        # CRC no longer matches — a torn tail, as a crash mid-append (or
        # bit rot) would leave it.
        segments = sorted(
            f for f in os.listdir(wal_dir) if f.endswith(".log")
        )
        path = os.path.join(wal_dir, segments[-1])
        with open(path, "r+b") as fh:
            fh.seek(-4, os.SEEK_END)
            tail = fh.read(4)
            fh.seek(-4, os.SEEK_END)
            fh.write(bytes(b ^ 0xFF for b in tail))

        reopened = LayoutEngine(workers=1, wal_dir=wal_dir)
        try:
            wal = reopened.stats()["wal"]
            if wal["corrupt_records"] < 1:
                failures.append(
                    "torn tail not counted: wal.corrupt_records"
                    f" = {wal['corrupt_records']}"
                )
            quarantine = os.path.join(wal_dir, "quarantine")
            if not (
                os.path.isdir(quarantine) and os.listdir(quarantine)
            ):
                failures.append("torn tail bytes were not quarantined")
            # The corrupt record was the last update: the valid prefix is
            # everything before it, and replay must land exactly there.
            request, include_coords = parse_layout_doc(dict(LAYOUT_BODY))
            got = layout_payload(reopened.submit(request), include_coords)
            expected = _control_layout(UPDATES - 1)
            if got["fingerprint"] != expected["fingerprint"]:
                failures.append(
                    "prefix replay diverged: fingerprint"
                    f" {got['fingerprint']} != control at epoch"
                    f" {UPDATES - 1} ({expected['fingerprint']})"
                )
            elif got["coords"] != expected["coords"]:
                failures.append(
                    "prefix replay fingerprint matches but coordinates"
                    " differ from the control engine"
                )
            if not failures:
                print(
                    "wal-smoke: torn tail quarantined"
                    f" (corrupt_records={wal['corrupt_records']}), valid"
                    f" prefix replayed bitwise to epoch {UPDATES - 1}"
                )
        finally:
            reopened.close()
    finally:
        shutil.rmtree(wal_dir, ignore_errors=True)


def main() -> int:
    failures: list[str] = []
    _crash_replay(failures)
    before = len(failures)
    _torn_tail(failures)
    if len(failures) == before and before == 0:
        print("wal-smoke: ok — crash replay and torn-tail recovery hold")
    for failure in failures:
        print(f"wal-smoke: FAIL — {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
