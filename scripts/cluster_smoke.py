#!/usr/bin/env python
"""Smoke test for the sharded serving tier (``make cluster-smoke``).

Boots the real CLI — ``parhde serve --workers 2`` — as a subprocess,
then proves the cluster's availability contract end to end:

1. ``GET /healthz`` reports 2 live workers;
2. concurrent clients issue a mixed layout + update workload over HTTP;
3. mid-workload, one worker **process is SIGKILLed** (pid taken from
   ``GET /stats``) while the clients keep going;
4. every single request must still succeed — the router reshards the
   dead worker's graphs onto the survivor and retries transparently, so
   availability through the crash is 100%;
5. the monitor restarts the dead worker: ``/healthz`` returns to 2
   workers and ``/stats`` shows the death and the restart;
6. SIGTERM then drains the whole cluster gracefully (exit code 0).

Exits nonzero with a diagnostic on any violation, so CI can gate on it.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.request

WORKERS = 2
CLIENTS = 3
REQUESTS_PER_CLIENT = 12
KILL_AFTER = 6  # requests per client before the kill fires
GRAPHS = ("barth", "pa", "ecology")


def _post(url: str, body: dict, route: str) -> dict:
    req = urllib.request.Request(
        url + route,
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=120) as resp:
        return json.loads(resp.read())


def _get(url: str, route: str) -> dict:
    with urllib.request.urlopen(url + route, timeout=30) as resp:
        return json.loads(resp.read())


def _boot() -> tuple[subprocess.Popen, str]:
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--workers",
            str(WORKERS),
            "--threads",
            "1",
            "--port",
            "0",
            "--cache-mb",
            "32",
            "--timeout",
            "120",
        ],
        stderr=subprocess.PIPE,
        text=True,
    )
    deadline = time.monotonic() + 120
    for line in proc.stderr:  # type: ignore[union-attr]
        sys.stderr.write(f"  serve: {line}")
        if "listening on http://" in line:
            url = line.split("listening on ")[1].split(" ")[0].strip()
            # Keep draining stderr so the server never blocks on a full
            # pipe; echo it for post-mortem debugging.
            threading.Thread(
                target=lambda: [
                    sys.stderr.write(f"  serve: {ln}") for ln in proc.stderr
                ],
                daemon=True,
            ).start()
            return proc, url
        if time.monotonic() > deadline or proc.poll() is not None:
            break
    raise RuntimeError("parhde serve did not report a listening address")


def main() -> int:
    proc, url = _boot()
    failures: list[str] = []
    outcomes: list[tuple[str, bool, str]] = []
    lock = threading.Lock()
    kill_gate = threading.Barrier(CLIENTS + 1)

    def _client(cid: int) -> None:
        for i in range(REQUESTS_PER_CLIENT):
            if i == KILL_AFTER:
                kill_gate.wait(timeout=120)  # line up with the killer
            graph = GRAPHS[(cid + i) % len(GRAPHS)]
            try:
                if i % 4 == 3:
                    body = {
                        "graph": graph,
                        "scale": "tiny",
                        "seed": 0,
                        "inserts": [[0, 3 + cid + i]],
                    }
                    resp = _post(url, body, "/update")
                    ok = "epoch" in resp
                else:
                    body = {
                        "graph": graph,
                        "scale": "tiny",
                        "s": 6,
                        # A few unique seeds keep cold misses in the mix.
                        "seed": cid if i % 2 else 0,
                        "include_coords": False,
                    }
                    resp = _post(url, body, "/layout")
                    ok = "fingerprint" in resp
                note = resp.get("status", "update")
            except Exception as exc:  # noqa: BLE001 — tallied below
                ok, note = False, f"{type(exc).__name__}: {exc}"
            with lock:
                outcomes.append((f"c{cid}r{i}", ok, note))

    try:
        health = _get(url, "/healthz")
        if health != {"status": "ok", "workers": WORKERS}:
            failures.append(f"healthz answered {health}")

        # Warm one layout so the kill interrupts a live, serving cluster.
        _post(
            url,
            {"graph": "barth", "scale": "tiny", "s": 6,
             "include_coords": False},
            "/layout",
        )

        stats = _get(url, "/stats")
        victim_pid = None
        victim_id = None
        for wid, snap in stats["workers"].items():
            if snap.get("state") == "up":
                victim_pid, victim_id = int(snap["pid"]), wid
                break
        if victim_pid is None:
            failures.append("no live worker found in /stats")
            raise RuntimeError("cannot continue without a victim worker")

        clients = [
            threading.Thread(target=_client, args=(cid,))
            for cid in range(CLIENTS)
        ]
        for t in clients:
            t.start()
        # Wait until every client is mid-workload, then murder a worker.
        kill_gate.wait(timeout=120)
        os.kill(victim_pid, signal.SIGKILL)
        print(f"cluster-smoke: killed worker {victim_id} (pid {victim_pid})")
        for t in clients:
            t.join(timeout=300)

        failed = [o for o in outcomes if not o[1]]
        total = CLIENTS * REQUESTS_PER_CLIENT
        if len(outcomes) != total:
            failures.append(
                f"only {len(outcomes)}/{total} requests completed"
            )
        for name, _ok, note in failed:
            failures.append(f"request {name} failed: {note}")
        availability = (
            100.0 * (len(outcomes) - len(failed)) / max(len(outcomes), 1)
        )

        # The monitor must restart the dead worker and re-add its shard.
        deadline = time.monotonic() + 60
        workers_back = False
        while time.monotonic() < deadline:
            if _get(url, "/healthz") == {"status": "ok", "workers": WORKERS}:
                workers_back = True
                break
            time.sleep(0.5)
        if not workers_back:
            failures.append("cluster never returned to full worker count")

        stats = _get(url, "/stats")
        counters = stats["router"]["counters"]
        if counters.get("router.worker_deaths", 0) < 1:
            failures.append("stats recorded no worker death")
        if counters.get("router.restarts", 0) < 1:
            failures.append("stats recorded no worker restart")
        generation = stats["workers"].get(victim_id, {}).get("generation", 0)
        if workers_back and generation < 1:
            failures.append(
                f"restarted worker {victim_id} still at generation"
                f" {generation}"
            )

        print(
            f"cluster-smoke: {len(outcomes)} requests,"
            f" availability {availability:.1f}% through worker kill,"
            f" deaths={counters.get('router.worker_deaths', 0)}"
            f" restarts={counters.get('router.restarts', 0)}"
            f" retries={counters.get('router.retries', 0)}"
            f" coalesced={counters.get('router.coalesced', 0)}"
        )
    finally:
        proc.send_signal(signal.SIGTERM)
        try:
            code = proc.wait(timeout=60)
            if code != 0:
                failures.append(f"serve exited {code} after SIGTERM")
        except subprocess.TimeoutExpired:
            proc.kill()
            failures.append("serve did not drain within 60s of SIGTERM")

    for failure in failures:
        print(f"cluster-smoke: FAIL — {failure}", file=sys.stderr)
    if not failures:
        print("cluster-smoke: ok — 100% availability through a worker crash")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
