#!/usr/bin/env python
"""Smoke test for the dynamic-layout subsystem (``make stream-smoke``).

Checks the ISSUE acceptance criterion end to end on a 10k-vertex
generator graph: a 32-edge delta handled by a
:class:`~repro.stream.StreamSession` must

1. take the incremental *repair* path (not escalate to a relayout);
2. perform at least ``MIN_WORK_RATIO``x fewer modeled BFS work units
   (per the :class:`~repro.parallel.costs.Ledger`) than a from-scratch
   ``parhde`` run on the edited graph;
3. land within ``MAX_STRESS_RATIO`` of the from-scratch layout's
   sampled stress;
4. keep the repaired distance matrix *exactly* equal to fresh
   traversals from the session's pivots on the edited graph.

Exits nonzero with a diagnostic on any violation, so CI can gate on it.
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro.bfs.runner import run_sources
from repro.core.hde import parhde
from repro.graph import preprocess
from repro.graph.generators import watts_strogatz
from repro.metrics.stress import sampled_stress
from repro.stream import StreamSession, bfs_work_units, edge_delta

N = 10_000
S = 10
DELTA_EDGES = 32  # 16 deletes + 16 inserts
MIN_WORK_RATIO = 5.0
MAX_STRESS_RATIO = 1.05
SEED = 5


def build_delta(g, rng):
    """16 random edge deletions + 16 two-hop shortcut insertions.

    Two-hop inserts keep each repair region small — the realistic
    dynamic-graph regime (triadic closure), as opposed to random
    long-range shortcuts which perturb O(n) distances each.
    """
    eu, ev = g.edge_list()
    idx = rng.choice(len(eu), size=DELTA_EDGES // 2, replace=False)
    deletes = [(int(eu[i]), int(ev[i])) for i in idx]
    banned = set(deletes)
    inserts = []
    while len(inserts) < DELTA_EDGES // 2:
        u = int(rng.integers(g.n))
        nbrs = g.neighbors(u)
        mid = int(nbrs[rng.integers(len(nbrs))])
        nbrs2 = g.neighbors(mid)
        v = int(nbrs2[rng.integers(len(nbrs2))])
        a, b = min(u, v), max(u, v)
        if a == b or g.has_edge(a, b) or (a, b) in banned:
            continue
        banned.add((a, b))
        inserts.append((a, b))
    return edge_delta(inserts=inserts, deletes=deletes)


def main() -> int:
    failures: list[str] = []
    rng = np.random.default_rng(SEED)
    g = preprocess(watts_strogatz(N, k=8, p=0.03, seed=SEED))
    print(f"stream-smoke: graph n={g.n} m={g.m}")

    t0 = time.perf_counter()
    session = StreamSession(g, S, seed=0)
    print(f"stream-smoke: initial layout {time.perf_counter() - t0:.2f}s")

    delta = build_delta(g, rng)
    update = session.update(delta)
    work_update = bfs_work_units(update.ledger)
    print(
        f"stream-smoke: update mode={update.mode} drift={update.drift:.4f}"
        f" edges_examined={update.edges_examined}"
        f" latency={update.elapsed * 1e3:.1f}ms"
    )
    if update.mode != "repair":
        failures.append(
            f"32-edge delta escalated to {update.mode} ({update.reason});"
            " expected incremental repair"
        )

    edited = session.graph
    fresh = parhde(edited, S, seed=0)
    work_full = bfs_work_units(fresh.ledger)
    ratio = work_full / max(work_update, 1e-12)
    print(
        f"stream-smoke: BFS work units — update {work_update:.0f},"
        f" full relayout {work_full:.0f} ({ratio:.1f}x)"
    )
    if ratio < MIN_WORK_RATIO:
        failures.append(
            f"modeled BFS work ratio {ratio:.1f}x < required"
            f" {MIN_WORK_RATIO}x"
        )

    ms = run_sources(edited, session.pivots)
    if not np.array_equal(ms.distances, session.B):
        bad = int(np.count_nonzero(ms.distances != session.B))
        failures.append(
            f"repaired B deviates from fresh traversals in {bad} entries"
        )

    stress_session = sampled_stress(edited, session.coords, samples=8, seed=0)
    stress_fresh = sampled_stress(edited, fresh.coords, samples=8, seed=0)
    sratio = stress_session / stress_fresh
    print(
        f"stream-smoke: stress — session {stress_session:.4f},"
        f" from-scratch {stress_fresh:.4f} (ratio {sratio:.3f})"
    )
    if sratio > MAX_STRESS_RATIO:
        failures.append(
            f"stress ratio {sratio:.3f} > allowed {MAX_STRESS_RATIO}"
        )

    for failure in failures:
        print(f"stream-smoke: FAIL — {failure}", file=sys.stderr)
    if not failures:
        print("stream-smoke: ok")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
