#!/usr/bin/env python
"""Smoke test for ``parhde serve`` (the ``make serve-smoke`` target).

Boots a real :class:`~repro.service.http.LayoutServer` on an ephemeral
port, then exercises the serving contract end to end over actual HTTP:

1. ``GET /healthz`` answers ok;
2. a cold ``POST /layout`` computes a layout;
3. an identical second request is served from cache — verified both via
   the ``GET /stats`` hit counter and by requiring a large cold/warm
   speedup;
4. ``POST /update`` bumps the graph epoch, after which the same layout
   request MUST miss the cache (fresh fingerprint, recomputed layout) —
   the dynamic-graph staleness guarantee;
5. ``GET /stats?format=text`` renders the plain-text page.

Exits nonzero with a diagnostic on any violation, so CI can gate on it.
"""

from __future__ import annotations

import json
import sys
import urllib.request

from repro.service import LayoutEngine, make_server

GRAPH = {"graph": "barth", "scale": "small", "s": 10, "seed": 0}
MIN_SPEEDUP = 10.0


def _post(url: str, body: dict, route: str = "/layout") -> dict:
    req = urllib.request.Request(
        url + route,
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=120) as resp:
        return json.loads(resp.read())


def _get(url: str, route: str) -> bytes:
    with urllib.request.urlopen(url + route, timeout=30) as resp:
        return resp.read()


def main() -> int:
    engine = LayoutEngine(workers=2, queue_limit=8, timeout=120)
    server = make_server(engine, port=0).start()
    url = server.url
    failures: list[str] = []
    try:
        health = json.loads(_get(url, "/healthz"))
        if health != {"status": "ok", "workers": 1}:
            failures.append(f"healthz answered {health}")

        cold = _post(url, GRAPH)
        if cold.get("status") != "computed":
            failures.append(f"cold request status {cold.get('status')!r}")
        warm = _post(url, GRAPH)
        if not warm.get("cache_hit"):
            failures.append(f"warm request status {warm.get('status')!r}")
        if warm.get("fingerprint") != cold.get("fingerprint"):
            failures.append("fingerprints differ between identical requests")

        speedup = cold["elapsed_seconds"] / max(warm["elapsed_seconds"], 1e-9)
        if speedup < MIN_SPEEDUP:
            failures.append(
                f"cache speedup {speedup:.1f}x < required {MIN_SPEEDUP}x"
            )

        # Dynamic-graph round trip: update the graph, then require the
        # previously cached layout to miss (epoch moved the fingerprint).
        n = int(cold["n"])
        update = _post(
            url,
            {
                "graph": GRAPH["graph"],
                "scale": GRAPH["scale"],
                "seed": GRAPH["seed"],
                "inserts": [[0, n // 2]],
            },
            route="/update",
        )
        if update.get("epoch") != 1:
            failures.append(f"update epoch {update.get('epoch')!r}, expected 1")
        after = _post(url, GRAPH)
        if after.get("status") != "computed":
            failures.append(
                "post-update layout served stale"
                f" (status {after.get('status')!r}, expected 'computed')"
            )
        if after.get("fingerprint") == cold.get("fingerprint"):
            failures.append("fingerprint did not change after graph update")
        if after.get("m") != update.get("m"):
            failures.append(
                f"post-update layout m={after.get('m')} but update"
                f" reported m={update.get('m')}"
            )

        stats = json.loads(_get(url, "/stats"))
        hits = stats["counters"].get("cache_hits", 0)
        if hits < 1:
            failures.append(f"stats hit counter is {hits}, expected >= 1")
        if stats["cache"]["hits"] < 1:
            failures.append("cache tier reported no hits")

        text = _get(url, "/stats?format=text").decode()
        if "# counters" not in text:
            failures.append("text stats page missing '# counters' section")

        print(
            f"serve-smoke: ok — cold {cold['elapsed_seconds']:.3f}s,"
            f" warm {warm['elapsed_seconds'] * 1000:.2f}ms"
            f" ({speedup:.0f}x), {hits} cache hit(s)"
        )
    finally:
        server.shutdown()
        engine.close()
    for failure in failures:
        print(f"serve-smoke: FAIL — {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
