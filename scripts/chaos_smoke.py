#!/usr/bin/env python
"""Chaos smoke test for the resilient serving stack (``make chaos-smoke``).

Boots a real :class:`~repro.service.http.LayoutServer` with resilience
enabled and a disk cache tier, then walks the failpoint matrix from
:data:`repro.resilience.chaos.SITES` over live HTTP:

1. a clean baseline request answers with ``quality_tier == "full"``;
2. every transient kernel fault (each ``parhde.*`` site, one firing)
   still gets an HTTP 200 layout — retried or degraded, never a 500;
3. a stalled BFS under a tight request timeout answers *within* the
   timeout with a degraded tier;
4. a corrupted disk-cache archive is quarantined and the layout is
   recomputed (no error to the client, ``disk_corrupt`` counted);
5. a failing disk write is absorbed (the answer still arrives);
6. a persistently failing pipeline trips the circuit breaker, after
   which requests are short-circuited to an inline baseline;
7. checkpoint save faults are absorbed without affecting the result;
8. ``/stats`` exposes the retry/degradation/breaker counters and the
   drained server answers 503.

Exits nonzero with a diagnostic on any violation, so CI can gate on it.
"""

from __future__ import annotations

import json
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np

from repro.core import parhde
from repro.graph import grid2d
from repro.resilience import CheckpointStore, RetryPolicy, chaos
from repro.service import (
    LayoutCache,
    LayoutEngine,
    ResilienceConfig,
    make_server,
)

GRAPH = {"graph": "barth", "scale": "tiny", "s": 8}
KERNEL_SITES = [name for name in chaos.SITES if name.startswith("parhde.")]


def _post(url: str, body: dict, route: str = "/layout") -> tuple[int, dict]:
    req = urllib.request.Request(
        url + route,
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=120) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _get(url: str, route: str) -> tuple[int, bytes]:
    try:
        with urllib.request.urlopen(url + route, timeout=30) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


def main() -> int:
    failures: list[str] = []

    def check(ok: bool, what: str) -> None:
        mark = "ok" if ok else "FAIL"
        print(f"chaos-smoke: [{mark}] {what}")
        if not ok:
            failures.append(what)

    tmp = tempfile.TemporaryDirectory(prefix="chaos-smoke-")
    cache_dir = Path(tmp.name) / "cache"
    cache = LayoutCache(disk_dir=cache_dir)
    engine = LayoutEngine(
        cache=cache,
        workers=2,
        queue_limit=8,
        timeout=120,
        resilience=ResilienceConfig(
            retry=RetryPolicy(base_delay=0.01, jitter=0.0),
            breaker_threshold=3,
            breaker_reset=60.0,
        ),
    )
    server = make_server(engine, port=0).start()
    url = server.url
    try:
        # 1. Clean baseline.
        status, clean = _post(url, {**GRAPH, "include_coords": False})
        check(
            status == 200 and clean.get("quality_tier") == "full",
            f"clean request is full tier (status={status},"
            f" tier={clean.get('quality_tier')!r})",
        )
        fingerprint = clean.get("fingerprint", "")

        # 2. Every kernel failpoint, one transient firing each: the
        #    answer must arrive (retried full or degraded), never a 500.
        for i, site in enumerate(KERNEL_SITES):
            with chaos.inject(site, error=True, times=1):
                status, body = _post(
                    url,
                    {**GRAPH, "seed": 100 + i, "include_coords": False},
                )
            check(
                status == 200 and body.get("quality_tier") in
                ("full", "reduced", "coarse", "baseline"),
                f"fault at {site} answered (status={status},"
                f" tier={body.get('quality_tier')!r})",
            )

        # 3. Stalled BFS under a tight timeout: degraded, on time.
        timeout = 3.0
        with chaos.inject("parhde.bfs", sleep=0.8, times=2):
            t0 = time.perf_counter()
            status, body = _post(
                url,
                {
                    **GRAPH,
                    "seed": 200,
                    "timeout": timeout,
                    "include_coords": False,
                },
            )
            elapsed = time.perf_counter() - t0
        check(
            status == 200
            and body.get("quality_tier") != "full"
            and elapsed < timeout,
            f"stalled BFS degraded within deadline (status={status},"
            f" tier={body.get('quality_tier')!r}, {elapsed:.2f}s"
            f" < {timeout}s)",
        )

        # 4. Corrupt the cached archive: quarantined + recomputed.
        cache.clear()
        payload = cache_dir / f"{fingerprint}.npz"
        chaos.corrupt_file(payload, seed=7)
        status, body = _post(url, {**GRAPH, "include_coords": False})
        stats = cache.stats()
        check(
            status == 200
            and body.get("status") == "computed"
            and stats["disk_corrupt"] >= 1
            and (cache_dir / "quarantine" / payload.name).exists(),
            "corrupt cache entry quarantined and recomputed"
            f" (status={body.get('status')!r},"
            f" disk_corrupt={stats['disk_corrupt']})",
        )

        # 5. Disk writes failing must not fail the request.
        with chaos.inject("cache.disk_store", error=True):
            status, body = _post(
                url, {**GRAPH, "seed": 300, "include_coords": False}
            )
        check(
            status == 200 and body.get("quality_tier") == "full",
            f"failed disk write absorbed (status={status})",
        )

        # 6. A persistently failing pipeline trips the breaker; the next
        #    request is short-circuited to an inline baseline.
        with chaos.inject("parhde.bfs", error=True):
            for i in range(3):
                status, body = _post(
                    url,
                    {**GRAPH, "seed": 400 + i, "include_coords": False},
                )
                check(
                    status == 200 and body.get("quality_tier") == "baseline",
                    f"breaker warm-up {i} degraded to baseline"
                    f" (status={status}, tier={body.get('quality_tier')!r})",
                )
            status, body = _post(
                url, {**GRAPH, "seed": 450, "include_coords": False}
            )
        check(
            status == 200 and body.get("status") == "degraded",
            "open breaker short-circuits to inline baseline"
            f" (status={body.get('status')!r})",
        )

        # 7. Checkpoint saves failing must not affect the run.
        g = grid2d(12, 17)
        ck = CheckpointStore(Path(tmp.name) / "ckpt").bind(
            g, dict(algo="parhde", s=8, seed=0)
        )
        with chaos.inject("checkpoint.save", error=True):
            res = parhde(g, 8, seed=0, checkpoint=ck)
        ref = parhde(g, 8, seed=0)
        check(
            ck.stats["errors"] == 2 and np.array_equal(res.coords, ref.coords),
            "checkpoint save faults absorbed, result unchanged"
            f" (errors={ck.stats['errors']})",
        )

        # 8. Telemetry shows the machinery working; drain answers 503.
        status, raw = _get(url, "/stats")
        snap = json.loads(raw)
        counters = snap.get("counters", {})
        check(
            counters.get("resilience.retries", 0) >= 1,
            f"retries counted ({counters.get('resilience.retries', 0)})",
        )
        check(
            any(k.startswith("resilience.degraded.") for k in counters),
            "degradations counted",
        )
        check(
            counters.get("breaker.to_open", 0) >= 1
            and snap.get("breakers", {}).get("open", 0) >= 1,
            "breaker trip visible in /stats",
        )
        server.drain(2.0)
        status, raw = _get(url, "/healthz")
        check(
            status == 503 and json.loads(raw).get("status") == "draining",
            f"draining server answers 503 on /healthz (status={status})",
        )
        status, _body = _post(url, {**GRAPH, "include_coords": False})
        check(status == 503, f"draining server refuses POSTs ({status})")
    finally:
        chaos.reset()
        server.shutdown()
        engine.close()
        tmp.cleanup()
    if failures:
        for failure in failures:
            print(f"chaos-smoke: FAIL — {failure}", file=sys.stderr)
        return 1
    print(f"chaos-smoke: ok — {len(KERNEL_SITES)} kernel sites +"
          " cache/breaker/checkpoint/drain scenarios survived")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
