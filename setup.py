"""Legacy setup shim.

The execution environment has setuptools but no ``wheel`` package and no
network, so PEP 660 editable installs (which build a wheel) fail.  With
this shim and no ``[build-system]`` table in pyproject.toml, pip falls
back to the legacy ``setup.py develop`` path, which works offline.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
