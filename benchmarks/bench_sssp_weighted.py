"""Section 4.4's SSSP experiment: the weighted extension on road_usa.

Paper: with unit weights the Delta-stepping traversal phase is only 18%
slower than plain BFS; with real or random integer weights performance
depends on delta, and the slowdown over unweighted BFS is 3.66x or more.
"""

import numpy as np

from repro.bfs import bfs_distances
from repro.graph import random_integer_weights, unit_weights
from repro.parallel import BRIDGES_RSM, Ledger, simulate_ledger
from repro.sssp import delta_stepping, dijkstra

from conftest import load_cached

SOURCES = (0, 7, 23, 101)
DELTAS = (8.0, 32.0, 128.0, 256.0)


def _run():
    g = load_cached("road")
    led_bfs = Ledger()
    with led_bfs.phase("BFS"):
        for src in SOURCES:
            bfs_distances(g, src, ledger=led_bfs)

    gu = unit_weights(g)
    led_unit = Ledger()
    with led_unit.phase("SSSP"):
        for src in SOURCES:
            delta_stepping(gu, src, 1.0, ledger=led_unit)

    gw = random_integer_weights(g, 1, 256, seed=2)
    weighted = {}
    for delta in DELTAS:
        led = Ledger()
        stats = []
        with led.phase("SSSP"):
            for src in SOURCES:
                _, st = delta_stepping(gw, src, delta, ledger=led)
                stats.append(st)
        weighted[delta] = (led, stats)
    return g, gw, led_bfs, led_unit, weighted


def test_sssp_weighted_extension(benchmark, report):
    g, gw, led_bfs, led_unit, weighted = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )
    t_bfs = simulate_ledger(led_bfs, BRIDGES_RSM, 28)
    t_unit = simulate_ledger(led_unit, BRIDGES_RSM, 28)

    lines = [
        f"plain BFS phase:            {t_bfs:.6f} s",
        f"unit-weight delta-stepping: {t_unit:.6f} s"
        f"  ({t_unit / t_bfs:.2f}x vs BFS; paper 1.18x)",
    ]
    slowdowns = {}
    for delta, (led, stats) in weighted.items():
        t = simulate_ledger(led, BRIDGES_RSM, 28)
        slowdowns[delta] = t / t_bfs
        relax = sum(s.relaxations for s in stats)
        lines.append(
            f"random weights, delta={delta:>6}: {t:.6f} s"
            f"  ({t / t_bfs:.2f}x vs BFS; {relax} relaxations;"
            f" paper >= 3.66x)"
        )
    report("sssp_weighted", "\n".join(lines))

    # Correctness anchor: delta-stepping equals Dijkstra.
    ref = dijkstra(gw, SOURCES[0])
    got, _ = delta_stepping(gw, SOURCES[0], DELTAS[1])
    np.testing.assert_allclose(got, ref)

    # Unit weights: modest overhead over plain BFS (same asymptotics).
    assert t_unit / t_bfs < 5.0
    # Random weights: markedly slower than unweighted BFS...
    assert max(slowdowns.values()) > 3.66
    # ...and clearly sensitive to the delta setting.
    assert max(slowdowns.values()) / min(slowdowns.values()) > 1.5
