"""Layout-quality battery across every algorithm in the repository.

The paper skips drawings "because they have been comprehensively
evaluated in prior work" (§4.5.1, citing Brandes & Pich's experimental
study) and claims "we get similar drawings with our code".  This
benchmark is that evaluation for our implementations: pivot-sampled
stress (global faithfulness) and neighborhood preservation (local
faithfulness) for ParHDE, its variants, PHDE, PivotMDS, the multilevel
pipeline, subspace iteration, force-directed, and the exact spectral
reference — on a mesh and a planar geometric graph.
"""

import numpy as np

from repro import multilevel_layout, parhde, phde, pivotmds
from repro.baselines import fruchterman_reingold, spectral_layout
from repro.core import parhde_refined_subspace, stress_majorization
from repro.metrics import neighborhood_preservation, sampled_stress

from conftest import load_cached

GRAPHS = ("barth", "pa")


def _layouts(g):
    return {
        "parhde": parhde(g, s=15, seed=0).coords,
        "parhde+subspace": parhde_refined_subspace(
            g, s=15, rounds=4, seed=0
        ).coords,
        "parhde-random-piv": parhde(
            g, s=15, seed=0, pivots="random-concurrent"
        ).coords,
        "phde": phde(g, s=15, seed=0).coords,
        "pivotmds": pivotmds(g, s=15, seed=0).coords,
        "multilevel": multilevel_layout(g, s=15, seed=0).coords,
        "parhde+majorize": stress_majorization(
            g, parhde(g, s=15, seed=0).coords, max_iter=200, seed=0
        ).coords,
        "force-directed": fruchterman_reingold(
            g, iterations=200, seed=0
        ).coords,
        "spectral-exact": spectral_layout(g, 2, tol=1e-8, seed=0).coords,
    }


def _run():
    out = {}
    for key in GRAPHS:
        g = load_cached(key, scale="small")
        rng = np.random.default_rng(0)
        layouts = _layouts(g)
        layouts["random (floor)"] = rng.standard_normal((g.n, 2))
        out[g.name] = (g, layouts)
    return out


def test_quality_comparison(benchmark, report):
    runs = benchmark.pedantic(_run, rounds=1, iterations=1)

    lines = []
    for name, (g, layouts) in runs.items():
        lines.append(f"--- {name} (n={g.n}, m={g.m}) ---")
        lines.append(f"{'algorithm':<20} {'stress':>9} {'nbr-pres':>9}")
        scores = {}
        for algo, coords in layouts.items():
            stress = sampled_stress(g, coords, seed=1)
            npres = neighborhood_preservation(g, coords, seed=1)
            scores[algo] = (stress, npres)
            lines.append(f"{algo:<20} {stress:>9.4f} {npres:>9.3f}")
        lines.append("")

        floor = scores["random (floor)"]
        for algo, (stress, npres) in scores.items():
            if algo == "random (floor)":
                continue
            # Every real algorithm clears the random floor decisively.
            assert stress < 0.6 * floor[0], algo
            assert npres > 1.5 * floor[1], algo
        # Majorization polishing lands at or near the best global stress
        # (stress is exactly its objective).
        best_stress = min(v[0] for k, v in scores.items() if k != "random (floor)")
        assert scores["parhde+majorize"][0] <= best_stress * 1.4
        # Subspace iteration moves ParHDE toward the exact spectral
        # quality profile.
        d_plain = abs(
            scores["parhde"][0] - scores["spectral-exact"][0]
        )
        d_ref = abs(
            scores["parhde+subspace"][0] - scores["spectral-exact"][0]
        )
        assert d_ref <= d_plain + 0.05
    report("quality_comparison", "\n".join(lines))
