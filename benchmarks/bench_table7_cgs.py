"""Table 7: Classical vs Modified Gram-Schmidt for the DOrtho phase.

The paper measures CGS consistently 2.1x-2.8x faster on 28 cores: the
Level-2 formulation makes fewer passes over memory and far fewer
barriers.  The trade-off (noted in the text): CGS needs all distance
vectors up front, so the coupled BFS+DOrtho execution is MGS-only.
"""

import numpy as np

from repro import datasets
from repro.core.pivots import select_and_traverse
from repro.linalg import d_orthogonalize
from repro.parallel import BRIDGES_RSM, Ledger, simulate_ledger

from conftest import load_cached

S = 10
PAPER = {
    "urand27": 2.2, "kron27": 2.8, "sk-2005": 2.5,
    "twitter7": 2.5, "road_usa": 2.1,
}


def _run():
    out = {}
    for key in datasets.LARGE_FIVE:
        g = load_cached(key)
        B = select_and_traverse(g, S, seed=0).distances
        d = g.weighted_degrees
        lm, lc = Ledger(), Ledger()
        with lm.phase("DOrtho"):
            rm = d_orthogonalize(B, d, method="mgs", ledger=lm)
        with lc.phase("DOrtho"):
            rc = d_orthogonalize(B, d, method="cgs", ledger=lc)
        out[g.name] = (lm, lc, rm, rc, d)
    return out


def test_table7_cgs_vs_mgs(benchmark, report):
    runs = benchmark.pedantic(_run, rounds=1, iterations=1)

    lines = [
        f"{'Graph':<18} {'MGS(s)':>10} {'CGS(s)':>10} {'Rel.Spd':>8} {'paper':>7}",
        "-" * 58,
    ]
    ratios = {}
    for name, (lm, lc, rm, rc, d) in runs.items():
        tm = simulate_ledger(lm, BRIDGES_RSM, 28)
        tc = simulate_ledger(lc, BRIDGES_RSM, 28)
        paper_name = name.split("[")[0]
        ratios[paper_name] = tm / tc
        lines.append(
            f"{name:<18} {tm:>10.6f} {tc:>10.6f} {tm / tc:>7.1f}x"
            f" {PAPER[paper_name]:>6.1f}x"
        )
    report("table7_cgs", "\n".join(lines))

    # CGS is consistently faster, by a factor in the paper's band.
    assert all(1.3 < r < 4.0 for r in ratios.values())
    # "no significant change in drawing quality": the two procedures
    # produce the same D-orthonormal subspace.
    for name, (lm, lc, rm, rc, d) in runs.items():
        M = rm.S.T @ (d[:, None] * rc.S)
        sigma = np.linalg.svd(M, compute_uv=False)
        np.testing.assert_allclose(sigma, 1.0, atol=1e-5)
