"""Section 4.4's vertex-ordering experiment on the web graph.

The paper randomly permutes sk-2005's vertex ids and measures the LS
step 6.8x slower and the whole pipeline 3.5x slower — the punchline of
the Figure 2 locality analysis.  We run the same A/B on our web stand-in
and additionally show that a BFS reordering recovers the lost locality.
"""

from repro import parhde
from repro.graph import bfs_relabel, miss_rate, shuffle_vertices
from repro.parallel import BRIDGES_RSM

from conftest import load_cached

S = 10


def _run():
    g = load_cached("web")
    shuffled = shuffle_vertices(g, seed=3)
    # Recovery demo on the road network: BFS reordering restores the
    # lost grid locality there (a web crawl's host structure cannot be
    # recovered by BFS order alone, so the A/B stays on the web graph).
    road = load_cached("road")
    road_shuffled = shuffle_vertices(road, seed=3)
    road_recovered = bfs_relabel(road_shuffled, 0)
    return {
        "original": (g, parhde(g, S, seed=0)),
        "shuffled": (shuffled, parhde(shuffled, S, seed=0)),
    }, {
        "road original": road,
        "road shuffled": road_shuffled,
        "road bfs-reordered": road_recovered,
    }


def test_ordering_locality(benchmark, report):
    runs, road = benchmark.pedantic(_run, rounds=1, iterations=1)

    lines = [
        f"{'ordering':<15} {'miss-rate':>10} {'LS(s)':>12} {'overall(s)':>12}",
        "-" * 55,
    ]
    ls = {}
    overall = {}
    for label, (g, res) in runs.items():
        ls[label] = res.subphase_seconds(BRIDGES_RSM, 28, "TripleProd")["LS"]
        overall[label] = res.simulated_seconds(BRIDGES_RSM, 28)
        lines.append(
            f"{label:<15} {miss_rate(g):>10.3f} {ls[label]:>12.6f}"
            f" {overall[label]:>12.6f}"
        )
    lines.append("")
    lines.append(
        f"shuffle slowdown: LS {ls['shuffled'] / ls['original']:.1f}x"
        f" (paper 6.8x), overall"
        f" {overall['shuffled'] / overall['original']:.1f}x (paper 3.5x)"
    )
    lines.append("")
    for label, gg in road.items():
        lines.append(f"{label:<20} miss-rate {miss_rate(gg):.3f}")
    report("ordering_locality", "\n".join(lines))

    # The headline effect: shuffling slows LS by a large factor and the
    # whole pipeline by a meaningful one.
    assert ls["shuffled"] / ls["original"] > 2.5
    assert overall["shuffled"] / overall["original"] > 1.8
    # The mechanism is the miss rate, as the gap analysis predicts.
    g0, gs = runs["original"][0], runs["shuffled"][0]
    assert miss_rate(gs) > 2.5 * miss_rate(g0)
    # Locality-enhancing reordering recovers the road network's layout
    # locality that shuffling destroyed.
    assert miss_rate(road["road bfs-reordered"]) < 0.5 * miss_rate(
        road["road shuffled"]
    )
