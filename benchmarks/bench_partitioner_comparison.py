"""Partitioner shoot-out: every cutter in the repository, head to head.

Extends the section 4.5.4 experiments with the full comparison a
partitioning paper would run: random assignment (floor), spectral
bisection on the ParHDE axis, geometric recursive bisection, the
multilevel partitioner (coarsen + ParHDE + FM), and spectral clustering
(unbalanced, for reference) — cut fraction and balance on three graph
families.
"""

import numpy as np

from repro import parhde
from repro.partition import (
    balance,
    coordinate_bisection,
    cut_fraction,
    multilevel_kway,
    spectral_bisection,
    spectral_clustering,
)

from conftest import load_cached

GRAPHS = ("barth", "ecology", "road")
K = 4


def _run():
    out = {}
    for key in GRAPHS:
        g = load_cached(key, scale="small")
        layout = parhde(g, s=10, seed=0)
        rng = np.random.default_rng(0)
        methods = {
            "random": rng.integers(0, K, size=g.n),
            "geometric-rcb": coordinate_bisection(g, layout.coords, K),
            "multilevel-kway": multilevel_kway(g, K, seed=0).parts,
            "spectral-cluster": spectral_clustering(g, K, seed=0).labels,
        }
        bi = {
            "spectral-bisect": spectral_bisection(g, coords=layout.coords),
        }
        out[g.name] = (g, methods, bi)
    return out


def test_partitioner_comparison(benchmark, report):
    runs = benchmark.pedantic(_run, rounds=1, iterations=1)

    lines = []
    for name, (g, methods, bi) in runs.items():
        lines.append(f"--- {name} (n={g.n}, m={g.m}, k={K}) ---")
        lines.append(f"{'method':<18} {'cut frac':>9} {'balance':>8}")
        cuts = {}
        for method, parts in methods.items():
            cf = cut_fraction(g, parts)
            bal = balance(parts, K)
            cuts[method] = cf
            lines.append(f"{method:<18} {cf:>9.4f} {bal:>8.3f}")
        for method, parts in bi.items():
            cf = cut_fraction(g, parts)
            lines.append(
                f"{method:<18} {cf:>9.4f} {balance(parts, 2):>8.3f} (k=2)"
            )
        lines.append("")

        # Every layout-driven method beats random by a wide margin.
        for method in ("geometric-rcb", "multilevel-kway"):
            assert cuts[method] < 0.35 * cuts["random"], (name, method)
        # Balanced methods stay balanced.
        assert balance(methods["geometric-rcb"], K) < 1.1
        assert balance(methods["multilevel-kway"], K) < 1.4
        # FM-refined multilevel never loses badly to the plain
        # geometric split it starts near.
        assert cuts["multilevel-kway"] < 2.0 * cuts["geometric-rcb"]
    report("partitioner_comparison", "\n".join(lines))
