"""Section 4.5.4: ParHDE as initialization for stress majorization.

"It is known that PHDE's layout serves as a good initialization for
layout using stress majorization.  We could consider replacing PHDE by
ParHDE to see if this speeds up this optimization problem."  We run the
sparse majorizer from three starts — random, PHDE, ParHDE — and compare
iterations-to-convergence and final stress.
"""

import numpy as np

from repro import parhde, phde
from repro.core.stress_majorization import stress_majorization

from conftest import load_cached

GRAPHS = ("barth", "ecology", "pa")
KW = dict(pivots=8, max_iter=400, tol=1e-4, seed=0)


def _run():
    out = {}
    for key in GRAPHS:
        g = load_cached(key, scale="small")
        rng = np.random.default_rng(7)
        starts = {
            "random": rng.standard_normal((g.n, 2)),
            "phde": phde(g, s=10, seed=0).coords,
            "parhde": parhde(g, s=10, seed=0).coords,
        }
        out[g.name] = (
            g,
            {k: stress_majorization(g, c, **KW) for k, c in starts.items()},
        )
    return out


def test_stress_majorization_init(benchmark, report):
    runs = benchmark.pedantic(_run, rounds=1, iterations=1)

    lines = [
        f"{'Graph':<16} {'start':>8} {'init stress':>12} {'iters':>6}"
        f" {'final stress':>13}",
        "-" * 62,
    ]
    for name, (g, results) in runs.items():
        for start, res in results.items():
            lines.append(
                f"{name:<16} {start:>8} {res.initial_stress:>12.1f}"
                f" {res.iterations:>6} {res.final_stress:>13.2f}"
            )
        # Both HDE-family starts beat random on initial stress and
        # iteration count, and land at least as good a final stress.
        for start in ("phde", "parhde"):
            assert (
                results[start].initial_stress
                < results["random"].initial_stress
            )
            assert results[start].iterations <= results["random"].iterations
            assert (
                results[start].final_stress
                <= results["random"].final_stress * 1.05
            )
    report("stress_majorization_init", "\n".join(lines))
