"""Figure 3: phase breakdown — ParHDE 28-core, ParHDE 1-core, prior.

Checks the chart's reading: BFS and TripleProd dominate DOrtho
everywhere, the eigensolve ("Other") is negligible, TripleProd scales
better than BFS (its share shrinks less going 1 -> 28 cores), and the
prior implementation is utterly BFS-dominated (sequential traversals).
"""

from repro import datasets, parhde
from repro.baselines import prior_hde
from repro.parallel import BRIDGES_ESM, BRIDGES_RSM
from repro.parallel.report import Breakdown, format_breakdown_table

from conftest import load_cached

S = 10
PHASES = ["BFS", "TripleProd", "DOrtho", "Other"]


def _run():
    out = {}
    for key in datasets.LARGE_FIVE:
        g = load_cached(key)
        ours = parhde(g, S, seed=0)
        prior = prior_hde(g, S, seed=0)
        out[g.name] = (ours, prior)
    return out


def test_fig3_phase_breakdown(benchmark, report):
    runs = benchmark.pedantic(_run, rounds=1, iterations=1)

    par28 = {n: r.breakdown(BRIDGES_RSM, 28) for n, (r, _) in runs.items()}
    par1 = {n: r.breakdown(BRIDGES_RSM, 1) for n, (r, _) in runs.items()}
    prior80 = {n: p.breakdown(BRIDGES_ESM, 80) for n, (_, p) in runs.items()}

    text = "\n\n".join(
        f"--- {title} ---\n{format_breakdown_table(rows, PHASES)}"
        for title, rows in [
            ("ParHDE, 28 cores (Fig 3 left)", par28),
            ("ParHDE, 1 core (Fig 3 middle)", par1),
            ("Prior impl., 80-core node (Fig 3 right)", prior80),
        ]
    )
    report("fig3_breakdown", text)

    for name in par28:
        p28, p1, pr = par28[name].percent, par1[name].percent, prior80[name].percent
        # "BFS and the triple product dominate the D-orthogonalization."
        assert p28["BFS"] + p28["TripleProd"] > p28["DOrtho"]
        assert p1["BFS"] + p1["TripleProd"] > p1["DOrtho"]
        # "the remainder (small eigensolve) is negligible."
        assert p28["Other"] < 10 and p1["Other"] < 10
        # "TripleProd scales better than BFS": its share shrinks more
        # from 1 core to 28 cores (or equivalently BFS share grows).
        tp_shrink = p1["TripleProd"] / max(p28["TripleProd"], 1e-9)
        bfs_shrink = p1["BFS"] / max(p28["BFS"], 1e-9)
        assert tp_shrink >= bfs_shrink * 0.9
        # Prior implementation: sequential BFS overwhelms everything.
        assert pr["BFS"] > 80
