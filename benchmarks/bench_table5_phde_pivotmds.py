"""Table 5: PHDE and PivotMDS times and relative speedups, 28 cores.

The paper's reading (with Figure 6): both algorithms are dominated by
the parallel BFS phase, run faster than full ParHDE (no LS product),
and scale comparably to it.
"""

from repro import datasets, parhde, phde, pivotmds
from repro.parallel import BRIDGES_RSM

from conftest import load_cached

S = 10
PAPER = {  # graph -> (phde_s, phde_spd, pivotmds_s, pivotmds_spd)
    "urand27": (12.5, 23.7, 13.9, 23.4),
    "kron27": (4.8, 12.4, 4.6, 20.1),
    "sk-2005": (4.6, 9.2, 4.9, 11.6),
    "twitter7": (5.7, 6.5, 5.8, 9.1),
    "road_usa": (3.1, 6.1, 3.1, 7.9),
}


def _run():
    out = {}
    for key in datasets.LARGE_FIVE:
        g = load_cached(key)
        out[g.name] = (
            phde(g, S, seed=0),
            pivotmds(g, S, seed=0),
            parhde(g, S, seed=0),
        )
    return out


def test_table5_phde_pivotmds(benchmark, report):
    runs = benchmark.pedantic(_run, rounds=1, iterations=1)

    lines = [
        f"{'Graph':<18} {'PHDE(s)':>10} {'spd':>6} {'PivotMDS(s)':>12} {'spd':>6}"
        f" {'paper spd':>16}",
        "-" * 76,
    ]
    for name, (rp, rm, rh) in runs.items():
        paper_name = name.split("[")[0]
        tp = rp.simulated_seconds(BRIDGES_RSM, 28)
        tm = rm.simulated_seconds(BRIDGES_RSM, 28)
        sp = rp.speedup(BRIDGES_RSM, 28)
        sm = rm.speedup(BRIDGES_RSM, 28)
        pp = PAPER[paper_name]
        lines.append(
            f"{name:<18} {tp:>10.5f} {sp:>5.1f}x {tm:>12.5f} {sm:>5.1f}x"
            f" {pp[1]:>6.1f}x/{pp[3]:>5.1f}x"
        )
    report("table5_phde_pivotmds", "\n".join(lines))

    for name, (rp, rm, rh) in runs.items():
        # Both are cheaper than full ParHDE (no Laplacian product).
        assert rp.simulated_seconds(BRIDGES_RSM, 28) <= rh.simulated_seconds(
            BRIDGES_RSM, 28
        ) * 1.05
        assert rm.simulated_seconds(BRIDGES_RSM, 28) <= rh.simulated_seconds(
            BRIDGES_RSM, 28
        ) * 1.1
        # "overall performance is dominated by the time taken for BFS".
        for res in (rp, rm):
            ph = res.phase_seconds(BRIDGES_RSM, 28)
            assert ph["BFS"] == max(ph.values())
        # Real speedups.
        assert rp.speedup(BRIDGES_RSM, 28) > 3
        assert rm.speedup(BRIDGES_RSM, 28) > 3
