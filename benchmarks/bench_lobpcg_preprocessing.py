"""Section 4.5.3 end-to-end: ParHDE as LOBPCG preprocessing.

The paper proposes using ParHDE output to warm-start "modern
eigensolvers such as LOBPCG".  We run our LOBPCG on the generalized
problem L x = mu D x from a random block and from the ParHDE layout and
compare iterations (each iteration costs two block SpMMs, so the ratio
is the speedup).
"""

from repro import parhde
from repro.linalg import lobpcg

from conftest import load_cached

GRAPHS = ("barth", "ecology", "road")
TOL = 1e-7


def _run():
    out = {}
    for key in GRAPHS:
        g = load_cached(key, scale="small")
        hde = parhde(g, s=10, seed=0)
        warm = lobpcg(g, 2, x0=hde.coords, tol=TOL, max_iter=400, seed=0)
        cold = lobpcg(g, 2, tol=TOL, max_iter=400, seed=0)
        out[g.name] = (g, warm, cold)
    return out


def test_lobpcg_preprocessing(benchmark, report):
    runs = benchmark.pedantic(_run, rounds=1, iterations=1)

    lines = [
        f"{'Graph':<16} {'warm iters':>11} {'cold iters':>11} {'save':>6}"
        f" {'mu_2, mu_3 (warm)':>24}",
        "-" * 72,
    ]
    import numpy as np

    for name, (g, warm, cold) in runs.items():
        lines.append(
            f"{name:<16} {warm.iterations:>11} {cold.iterations:>11}"
            f" {cold.iterations / max(warm.iterations, 1):>5.1f}x"
            f" {np.array2string(warm.eigenvalues, precision=5):>24}"
        )
        # Same eigenvalues from both starts.
        np.testing.assert_allclose(
            warm.eigenvalues, cold.eigenvalues, atol=1e-5
        )
        # The warm start converges in no more iterations...
        assert warm.iterations <= cold.iterations
    # ...and strictly fewer on at least one mesh-like instance.
    assert any(
        warm.iterations < cold.iterations
        for _, warm, cold in runs.values()
    )
    report("lobpcg_preprocessing", "\n".join(lines))
