"""Table 2: the evaluation graph collection after preprocessing.

Regenerates the (graph, m, n) rows for the scaled collection, timing the
full generate-and-preprocess pipeline.  The qualitative checks assert
the structural invariants the rest of the evaluation relies on.
"""

from repro import datasets
from repro.graph import format_stats_table, graph_stats, is_connected

from conftest import BENCH_SCALE, load_cached


def test_table2_collection(benchmark, report):
    def build():
        return datasets.collection_table(BENCH_SCALE)

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    text = datasets.format_table2(rows)
    # Extended characterization (degree skew, diameter bound, locality,
    # clustering) — the structural properties sections 4.1-4.4 reason
    # about when explaining each graph's behaviour.
    stats = [graph_stats(load_cached(k)) for k in datasets.available()]
    text += "\n\nextended characterization:\n" + format_stats_table(stats)
    report("table2_collection", text)

    by_key = {s.name.split("[")[0]: s for s in stats}
    # road: the high-diameter low-degree outlier.
    assert by_key["road_usa"].diameter_lb > 4 * by_key["kron27"].diameter_lb
    # kron/twitter: the degree-skew outliers.
    assert by_key["kron27"].degree_skew > 5
    # web/road locality-friendly vs shuffled urand/kron.
    assert by_key["sk-2005"].miss_rate < 0.5 * by_key["urand27"].miss_rate
    # barth: the triangulated mesh (clustering) used for the drawings.
    assert by_key["barth5"].clustering > 0.3

    by_name = {name: (m, n) for name, m, n in rows}
    # Connected simple graphs (the paper's preprocessing contract).
    for key in datasets.available():
        g = load_cached(key)
        assert is_connected(g)
    # Edge-count ordering mirrors the paper's Table 2.
    assert by_name["urand27"][0] > by_name["kron27"][0]
    assert by_name["kron27"][0] > by_name["road_usa"][0]
    assert by_name["sk-2005"][0] > by_name["road_usa"][0]
    # road is the sparse outlier.
    m_road, n_road = by_name["road_usa"]
    assert 2 * m_road / n_road < 3.5
