"""Table 6: random pivots with concurrent traversals vs the default.

BFS-phase time with 30 sources on the five small graphs, 28 cores.  The
paper measures 1.4x-10.1x in favor of random pivots, with the largest
wins on high-diameter (ecology1, pa2010) and small graphs — exactly the
cases where per-level barriers dominate a parallelized traversal.
"""

from repro import datasets
from repro.core.pivots import select_and_traverse
from repro.parallel import BRIDGES_RSM, Ledger, simulate_ledger

from conftest import BENCH_SCALE, load_cached

SOURCES = 30
PAPER = {
    "CurlCurl_4": 2.8, "kkt_power": 1.7, "cage14": 1.4,
    "ecology1": 10.1, "pa2010": 9.1,
}


def _run():
    out = {}
    for key in datasets.SMALL_FIVE:
        g = load_cached(key)
        default, rand = Ledger(), Ledger()
        with default.phase("BFS"):
            select_and_traverse(
                g, SOURCES, strategy="kcenters", seed=1, ledger=default
            )
        with rand.phase("BFS"):
            select_and_traverse(
                g, SOURCES, strategy="random-concurrent", seed=1, ledger=rand
            )
        out[g.name] = (default, rand)
    return out


def test_table6_random_pivots(benchmark, report):
    runs = benchmark.pedantic(_run, rounds=1, iterations=1)

    lines = [
        f"{'Graph':<20} {'Default(s)':>12} {'Rand.Pivots(s)':>15}"
        f" {'Rel.Spd':>8} {'paper':>7}",
        "-" * 68,
    ]
    speedups = {}
    for name, (default, rand) in runs.items():
        td = simulate_ledger(default, BRIDGES_RSM, 28)
        tr = simulate_ledger(rand, BRIDGES_RSM, 28)
        paper_name = name.split("[")[0]
        speedups[paper_name] = td / tr
        lines.append(
            f"{name:<20} {td:>12.6f} {tr:>15.6f} {td / tr:>7.1f}x"
            f" {PAPER[paper_name]:>6.1f}x"
        )
    report("table6_random_pivots", "\n".join(lines))

    # Random pivots win on every instance.
    assert all(v > 1.0 for v in speedups.values())
    # Largest wins on the high-diameter graphs, smallest on the
    # low-diameter direction-optimizing-friendly ones, as in the paper.
    assert speedups["ecology1"] > speedups["cage14"]
    assert speedups["pa2010"] > speedups["cage14"]
    if BENCH_SCALE == "medium":
        assert speedups["cage14"] == min(speedups.values())
