"""Robustness: how sensitive are the headline results to the calibration?

A simulation-backed reproduction must show its conclusions are not
artifacts of one lucky constant.  We sweep every machine-model parameter
by 2x in both directions and check that the qualitative headlines
survive at the extremes: urand still out-scales road, and the DOrtho
phase still saturates early.
"""

from repro import datasets, parhde
from repro.parallel import BRIDGES_RSM, format_sensitivity, sensitivity_report
from repro.parallel.machine import phase_times
from repro.parallel.sensitivity import TUNABLE, _perturb

from conftest import load_cached


def _run():
    urand = parhde(load_cached("urand"), 10, seed=0)
    road = parhde(load_cached("road"), 10, seed=0)
    return urand, road


def test_model_sensitivity(benchmark, report):
    urand, road = benchmark.pedantic(_run, rounds=1, iterations=1)

    rows = sensitivity_report(urand.ledger, BRIDGES_RSM, p=28, metric="speedup")
    text = "speedup of urand at 28 cores under parameter sweeps:\n"
    text += format_sensitivity(rows)

    # Headline 1: urand out-scales road under every 2x perturbation of
    # every parameter.
    robust = []
    for name in TUNABLE:
        for factor in (0.5, 2.0):
            m = _perturb(BRIDGES_RSM, name, factor)
            su = urand.simulated_seconds(m, 1) / urand.simulated_seconds(m, 28)
            sr = road.simulated_seconds(m, 1) / road.simulated_seconds(m, 28)
            robust.append((name, factor, su, sr))
            assert su > sr, (name, factor)
    text += "\n\nurand-vs-road speedup ordering: stable under all sweeps"

    # Headline 2: DOrtho stays strongly sublinear (bandwidth-bound)
    # under 2x bandwidth miscalibration either way.  (Halving the
    # per-core bandwidth legitimately moves the knee from ~7 to ~14
    # cores, so the robust claim is sublinearity, not the knee's exact
    # position.)
    for factor in (0.5, 2.0):
        m = _perturb(BRIDGES_RSM, "stream_bw_core", factor)
        d7 = phase_times(urand.ledger, m, 7)["DOrtho"]
        d28 = phase_times(urand.ledger, m, 28)["DOrtho"]
        assert d7 / d28 < 2.5, factor  # a linear phase would gain 4x
    text += "\nDOrtho bandwidth-bound sublinearity: survives 2x sweeps"

    # The most influential knobs should be the compute/latency rates —
    # that is where the calibration effort went.
    spreads = {k: v.spread for k, v in rows.items()}
    text += "\n\nspread (max/min speedup) per parameter: " + ", ".join(
        f"{k}={v:.2f}x" for k, v in sorted(
            spreads.items(), key=lambda kv: -kv[1]
        )
    )
    report("model_sensitivity", text)
