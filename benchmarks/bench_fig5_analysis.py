"""Figure 5: additional ParHDE performance analysis.

Left: with s = 50 sources, DOrtho's quadratic work makes it a much
larger slice than with s = 10.  Middle: the BFS phase is dominated by
actual traversal, not source-selection overhead.  Right: the TripleProd
split — the LS SpMM dominates for shuffled-id graphs, while the dgemm
share is visibly higher on sk-2005 and road_usa (equivalently: their LS
is cheap thanks to vertex-ordering locality).
"""

from repro import datasets, parhde
from repro.parallel import BRIDGES_RSM
from repro.parallel.machine import subphase_times

from conftest import load_cached


def _run():
    out = {}
    for key in datasets.LARGE_FIVE:
        g = load_cached(key)
        out[g.name] = (parhde(g, 50, seed=0), parhde(g, 10, seed=0))
    return out


def test_fig5_analysis(benchmark, report):
    runs = benchmark.pedantic(_run, rounds=1, iterations=1)

    lines = []
    dortho_share = {}
    for name, (r50, r10) in runs.items():
        ph50 = r50.phase_seconds(BRIDGES_RSM, 28)
        ph10 = r10.phase_seconds(BRIDGES_RSM, 28)
        tot50, tot10 = sum(ph50.values()), sum(ph10.values())
        dortho_share[name] = (
            ph50["DOrtho"] / tot50,
            ph10["DOrtho"] / tot10,
        )
        bfs = subphase_times(r50.ledger, BRIDGES_RSM, 28, "BFS")
        tp = subphase_times(r50.ledger, BRIDGES_RSM, 28, "TripleProd")
        ls_share = tp["LS"] / (tp["LS"] + tp["S'(LS)"])
        trav_share = bfs["traversal"] / (bfs["traversal"] + bfs["overhead"])
        lines.append(
            f"{name:<18} DOrtho%: s=50 {100 * dortho_share[name][0]:5.1f}"
            f" vs s=10 {100 * dortho_share[name][1]:5.1f} |"
            f" BFS traversal share {100 * trav_share:5.1f}% |"
            f" LS share of TripleProd {100 * ls_share:5.1f}%"
        )
    report("fig5_analysis", "\n".join(lines))

    names = {n.split("[")[0]: n for n in runs}
    for name, (r50, r10) in runs.items():
        # Left chart: DOrtho slice grows considerably at s = 50.
        assert dortho_share[name][0] > 1.5 * dortho_share[name][1]
        # Middle chart: traversal dominates the BFS phase.
        bfs = subphase_times(r50.ledger, BRIDGES_RSM, 28, "BFS")
        assert bfs["traversal"] > bfs["overhead"]

    def ls_share(paper_name):
        r50 = runs[names[paper_name]][0]
        tp = subphase_times(r50.ledger, BRIDGES_RSM, 28, "TripleProd")
        return tp["LS"] / (tp["LS"] + tp["S'(LS)"])

    # Right chart: urand/kron/twitter have near-negligible dgemm time,
    # whereas sk-2005's and road's LS share is visibly lower.
    for fast in ("urand27", "kron27", "twitter7"):
        for local in ("sk-2005", "road_usa"):
            assert ls_share(fast) > ls_share(local)
