"""Ablation: subspace iteration rounds vs quality vs simulated cost.

Koren's subspace refinement (implemented in
``repro.core.subspace_iteration``) trades one extra TripleProd-sized
phase per round for a better eigenvector approximation.  This ablation
sweeps the round count and records the principal angle to the exact
spectral plane next to the simulated 28-core time, exposing the
quality/cost knee.
"""

from repro.baselines import spectral_layout
from repro.core import parhde_refined_subspace
from repro.metrics import principal_angles
from repro.parallel import BRIDGES_RSM

from conftest import load_cached

ROUNDS = (0, 1, 2, 4, 8)


def _run():
    g = load_cached("barth", scale="small")
    exact = spectral_layout(g, 2, tol=1e-9, seed=0)
    results = {
        r: parhde_refined_subspace(g, s=10, rounds=r, seed=0) for r in ROUNDS
    }
    return g, exact, results


def test_subspace_iteration_ablation(benchmark, report):
    g, exact, results = benchmark.pedantic(_run, rounds=1, iterations=1)
    d = g.weighted_degrees

    lines = [
        f"{'rounds':>7} {'angle to exact':>15} {'sum eigvals':>12}"
        f" {'sim 28-core (s)':>16}",
        "-" * 56,
    ]
    angles = {}
    times = {}
    for r, res in results.items():
        angles[r] = principal_angles(res.coords, exact.coords, d)[0]
        times[r] = res.simulated_seconds(BRIDGES_RSM, 28)
        lines.append(
            f"{r:>7} {angles[r]:>15.4f} {res.eigenvalues.sum():>12.6f}"
            f" {times[r]:>16.6f}"
        )
    report("subspace_iteration_ablation", "\n".join(lines))

    # More rounds, closer to the exact plane (monotone within noise).
    assert angles[8] < angles[0]
    assert angles[4] <= angles[0]
    # The projected objective (sum of the two Rayleigh values) improves.
    evs = {r: res.eigenvalues.sum() for r, res in results.items()}
    assert evs[8] <= evs[0] + 1e-12
    # And the cost grows with the rounds (each adds walk SpMMs).
    assert times[8] > times[0]
